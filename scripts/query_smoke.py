"""CI smoke test for the detection store + query serving tier.

Exercises the whole story end to end, fast and in-process:

* a simulated run persists one :class:`DetectionRecord` per frame outcome
  into a segmented store whose counts reconcile with ``RunMetrics``;
* ``GET /query`` answers count / top-k / window queries over a real socket,
  agreeing with the in-process query functions;
* ``GET /subscribe`` streams Server-Sent Events of records *while a run is
  appending them*, and the long-poll fallback catches up from a sequence
  number;
* a cluster-mode run writes per-instance stores whose merged answers equal
  the solo run's, both in-process (``open_store``) and over the cluster
  fan-out endpoint;
* the ``repro query`` CLI prints the same numbers.

Exit code 0 means the query tier works on this interpreter; any assertion
failure or exception fails the CI step.
"""

import contextlib
import io
import json
import socket
import sys
import tempfile
import threading
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core import FFSVAConfig, workload_trace  # noqa: E402
from repro.obs.export import ClusterMetricsServer, MetricsAggregator, TelemetryServer  # noqa: E402
from repro.sim import PipelineSimulator  # noqa: E402
from repro.sim.cluster import ClusterSimulator  # noqa: E402
from repro.store import (  # noqa: E402
    DetectionRecord,
    DetStore,
    count_detections,
    open_store,
    top_k_streams,
    window_aggregate,
)
from repro.video import jackson  # noqa: E402

N_FRAMES = 400


def _traces(n_streams: int):
    return [
        workload_trace(jackson(), N_FRAMES, tor=0.25 + 0.1 * i, seed=3 + i)
        for i in range(n_streams)
    ]


def _get_json(url: str):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def check_live_run_and_queries(tmp: Path) -> dict:
    """Run → persisted store → /query over a real socket."""
    store_dir = tmp / "solo"
    cfg = FFSVAConfig(result_store_dir=str(store_dir), store_segment_kb=16)
    sim = PipelineSimulator(_traces(2), cfg, online=False)
    metrics = sim.run()

    reader = open_store(store_dir)
    detected = count_detections(reader)
    offered = count_detections(reader, disposition="any")
    assert detected == metrics.frames_to_ref, (
        f"store detected {detected} != metrics frames_to_ref {metrics.frames_to_ref}"
    )
    assert offered == metrics.frames_offered
    top = top_k_streams(reader, 5)
    assert len(top) == 2 and top[0][1] >= top[1][1]
    bins = window_aggregate(reader, 1.0, disposition="any")
    assert sum(b["count"] for b in bins) == offered

    server = TelemetryServer(lambda: (metrics, None), store_dir=str(store_dir)).start()
    try:
        doc = _get_json(f"{server.url}/query?q=count")
        assert doc["count"] == detected, "/query count disagrees with open_store"
        doc = _get_json(f"{server.url}/query?q=topk&k=5")
        assert [(d["stream"], d["count"]) for d in doc["top"]] == top
        doc = _get_json(f"{server.url}/query?q=windows&window=1.0&disposition=any")
        assert sum(b["count"] for b in doc["windows"]) == offered
    finally:
        server.stop()
    print(f"query smoke: solo run ok ({detected}/{offered} detected, top={top})")
    return {"detected": detected, "offered": offered, "top": top}


def check_live_subscription(tmp: Path) -> None:
    """SSE + long-poll subscribers fed by an actually-running pipeline."""
    store = DetStore(tmp / "live", terminal="ref")
    server = TelemetryServer(lambda: (None, None), store=store).start()
    n_events = 25
    got: dict = {}

    def subscribe() -> None:
        with socket.create_connection(("127.0.0.1", server.port), timeout=30) as s:
            s.sendall(
                f"GET /subscribe?max_events={n_events}&timeout=20 HTTP/1.0\r\n\r\n".encode()
            )
            buf = b""
            while True:
                chunk = s.recv(65536)
                if not chunk:
                    break
                buf += chunk
            got["raw"] = buf

    sub = threading.Thread(target=subscribe)
    sub.start()
    # Wait until the handler's queue is registered so no event is missed.
    for _ in range(200):
        if server._hub is not None and server._hub._subs:
            break
        threading.Event().wait(0.05)
    assert server._hub._subs, "SSE subscriber never registered"

    sim = PipelineSimulator(_traces(1), FFSVAConfig(), online=False, store=store)
    sim.run()  # every outcome is appended (and fanned out) during the run
    sub.join(timeout=30)
    assert not sub.is_alive(), "SSE subscriber did not terminate"

    head, _, body = got["raw"].partition(b"\r\n\r\n")
    assert b"200" in head.split(b"\r\n")[0] and b"text/event-stream" in head
    events = [e for e in body.split(b"\n\n") if e.strip()]
    assert len(events) == n_events, f"expected {n_events} SSE events, got {len(events)}"
    seqs = []
    for raw in events:
        id_line, data_line = raw.split(b"\n", 1)
        seqs.append(int(id_line.split(b": ")[1]))
        rec = DetectionRecord.from_json(data_line.split(b"data: ", 1)[1].decode())
        assert rec.stream and rec.disposition
    assert seqs == sorted(seqs), "SSE sequence ids must be monotone"

    # Long-poll catch-up: everything after the last SSE event is fetchable.
    doc = _get_json(f"{server.url}/subscribe?mode=poll&after={seqs[-1]}")
    assert doc["next"] >= seqs[-1]
    assert all(isinstance(r["frame"], int) for r in doc["records"])

    # /snapshot carries the live store section off the same hub.
    snap = _get_json(f"{server.url}/snapshot")
    assert snap["store"]["seq"] == store.seq
    assert snap["store"]["recent"], "no recent records in /snapshot store section"

    server.stop()
    store.close()
    print(f"query smoke: SSE ok ({len(events)} events, poll next={doc['next']})")


def check_cluster_merge(tmp: Path, solo: dict) -> None:
    """Cluster-mode per-instance stores merge to the solo run's answers."""
    parent = tmp / "cluster"
    cfg = FFSVAConfig(
        cluster_instances=2, result_store_dir=str(parent), store_segment_kb=16
    )
    ClusterSimulator(_traces(2), cfg, online=True).run()
    merged = open_store(parent)
    assert count_detections(merged) == solo["detected"]
    assert count_detections(merged, disposition="any") == solo["offered"]
    assert top_k_streams(merged, 5) == solo["top"]

    agg = MetricsAggregator({})
    server = ClusterMetricsServer(
        agg,
        store_dirs={
            "0": str(parent / "instance-0"),
            "1": str(parent / "instance-1"),
        },
    ).start()
    try:
        doc = _get_json(f"{server.url}/query?q=count")
        assert doc["count"] == solo["detected"], "cluster fan-out count disagrees"
        doc = _get_json(f"{server.url}/query?q=topk&k=5")
        assert [(d["stream"], d["count"]) for d in doc["top"]] == solo["top"]
    finally:
        server.stop()

    # The CLI reads the same merged layout.
    out = io.StringIO()
    with contextlib.redirect_stdout(out):
        rc = cli_main(["query", str(parent), "--q", "count"])
    assert rc == 0
    assert str(solo["detected"]) in out.getvalue()
    print("query smoke: cluster merged queries ok")


def main() -> int:
    with tempfile.TemporaryDirectory() as tmp_str:
        tmp = Path(tmp_str)
        solo = check_live_run_and_queries(tmp)
        check_live_subscription(tmp)
        check_cluster_merge(tmp, solo)
    print("query smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
