"""CI smoke test for frame lineage & critical-path attribution.

Runs fast, in-process, over real sockets:

* ``/lineage?stream=&frame=`` serves one frame's hop table from a live
  :class:`TelemetryServer` (stream-id resolution via the pipeline's lineage
  context, partition property on the decomposition, 404 on unknown frames);
* ``/lineage`` without a frame serves the critical-path summary whose
  component shares sum to 1;
* the cluster plane stitches a handed-off stream across two instance
  endpoints: the source served frames ``[0, k)``, the destination the tail
  ``[k, end)`` on the handoff contract (``FrameTrace.sliced`` +
  ``arrival_offset``), and ``/lineage`` on the aggregator finds both sides,
  labels which side of the boundary the frame ran on, and merges cluster-wide
  wait/service histograms (``ffsva_cluster_stage_wait_seconds_hist_*``);
* ``ffs-va explain`` exits 0 and emits a parseable ``--json`` body;
* the telemetry-off hot path is unchanged: no lineage state is stamped, no
  lineage section appears in the metrics, and the counters equal a
  telemetry-on run's (overhead is reported, not gated — CI clocks are noisy).

Writes a ``LINEAGE_smoke.json`` summary artifact.  Exit code 0 means the
lineage story works on this interpreter.
"""

import json
import sys
import time
import urllib.error
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core import FFSVAConfig, workload_trace  # noqa: E402
from repro.obs import (  # noqa: E402
    ClusterMetricsServer,
    MetricsAggregator,
    Telemetry,
    parse_prometheus,
)
from repro.sim import PipelineSimulator  # noqa: E402
from repro.video import jackson  # noqa: E402

N_FRAMES = 400
BOUNDARY = 160  # forced handoff: src served [0, 160), dst [160, 400)


def _get_json(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=5) as resp:
            return resp.status, json.loads(resp.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _run_sim(trace, config=None, telemetry=None):
    config = config or FFSVAConfig(telemetry=True)
    sim = PipelineSimulator(
        [trace] if not isinstance(trace, list) else trace,
        config,
        online=False,
        telemetry=telemetry,
    )
    metrics = sim.run()
    return sim, metrics


def check_live_lineage_endpoint() -> dict:
    """/lineage over a real socket: one frame's story plus the summary."""
    trace = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=3)
    telemetry = Telemetry()
    sim, metrics = _run_sim(trace, telemetry=telemetry)
    server = telemetry.serve(
        lambda: metrics, port=0, lineage=sim.lineage_context
    )
    url = server.url
    try:
        status, body = _get_json(
            f"{server.url}/lineage?stream={trace.stream_id}&frame=25"
        )
        assert status == 200, body
        assert body["found"] and not body["incomplete"], body
        assert body["hops"], "no hops reconstructed"
        assert body["frame_local"] == 25
        for hop in body["hops"]:
            assert hop["complete"]
        totals = body["totals"]
        assert abs(totals["total"] - body["total_latency"]) < 1e-9, (
            f"partition {totals['total']} != recorded {body['total_latency']}"
        )

        status, summary = _get_json(f"{server.url}/lineage")
        assert status == 200
        assert summary["frames"] == N_FRAMES
        assert summary["incomplete"] == 0
        shares = sum(c["share"] for c in summary["components"].values())
        assert abs(shares - 1.0) < 1e-9, shares
        assert summary["quantiles"]["p99"]["top"] in summary["components"]

        status, missing = _get_json(
            f"{server.url}/lineage?stream={trace.stream_id}&frame=99999"
        )
        assert status == 404 and missing["found"] is False

        status, unknown = _get_json(f"{server.url}/lineage?stream=nope&frame=1")
        assert status == 404 and "unknown stream" in unknown["error"]
    finally:
        server.stop()
    print(
        f"lineage endpoint: frame story + summary over {url} — ok"
    )
    return {"frames": summary["frames"], "p99": summary["quantiles"]["p99"]}


def check_cluster_stitch() -> dict:
    """Cluster /lineage finds both sides of a handed-off stream."""
    base = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=7)
    # The handoff contract: source ran [0, BOUNDARY), destination attached
    # the tail from exactly BOUNDARY on the original arrival clock.
    src_trace = base.sliced(0, BOUNDARY)
    dst_trace = base.sliced(BOUNDARY, N_FRAMES)
    config = FFSVAConfig(telemetry=True)

    tel_src = Telemetry()
    sim_src = PipelineSimulator(
        [src_trace], config, online=False, telemetry=tel_src
    )
    m_src = sim_src.run()
    tel_dst = Telemetry()
    sim_dst = PipelineSimulator([dst_trace], config, online=False, telemetry=tel_dst)
    sim_dst.streams[0].arrival_offset = BOUNDARY
    m_dst = sim_dst.run()

    servers = [
        tel_src.serve(lambda: m_src, port=0, lineage=sim_src.lineage_context),
        tel_dst.serve(lambda: m_dst, port=0, lineage=sim_dst.lineage_context),
    ]
    handoffs = [
        {"stream": base.stream_id, "src": 0, "dst": 1, "boundary": BOUNDARY}
    ]
    try:
        aggregator = MetricsAggregator(
            {str(i): s.url for i, s in enumerate(servers)}
        )
        with ClusterMetricsServer(
            aggregator, port=0, handoffs=lambda: handoffs
        ) as cluster:
            # A frame each side of the boundary resolves to the right
            # instance with the right handoff side label.
            for frame, inst, side in ((40, "0", "src"), (200, "1", "dst")):
                status, body = _get_json(
                    f"{cluster.url}/lineage?stream={base.stream_id}&frame={frame}"
                )
                assert status == 200, (frame, body)
                assert body["found"], (frame, body)
                assert body["errors"] == {}, body["errors"]
                found_on = [
                    label
                    for label, reply in body["instances"].items()
                    if reply.get("found")
                ]
                assert found_on == [inst], (frame, found_on)
                assert body["handoff"]["side"] == side, (frame, body["handoff"])
                assert body["handoff"]["boundary"] == BOUNDARY
                assert all(h["instance"] == inst for h in body["hops"])
            status, nobody = _get_json(
                f"{cluster.url}/lineage?stream={base.stream_id}&frame=99999"
            )
            assert status == 404 and nobody["found"] is False

            # Cluster-wide histogram merge: the aggregated exposition's
            # wait/service histogram count equals the per-instance sums.
            text = urllib.request.urlopen(
                f"{cluster.url}/metrics", timeout=5
            ).read().decode()
        samples = parse_prometheus(text)
        for family in ("stage_wait_seconds", "stage_service_seconds"):
            name = f"ffsva_cluster_{family}_hist_count"
            merged = {
                labels["stage"]: value
                for n, labels, value in samples
                if n == name
            }
            assert merged, f"no {name} series in cluster /metrics"
            for stage, value in merged.items():
                expected = sum(
                    h.count
                    for tel in (tel_src, tel_dst)
                    for key, h in tel.histograms.get(family, {}).items()
                    if dict(key).get("stage") == stage
                )
                assert value == float(expected), (stage, value, expected)
    finally:
        for s in servers:
            s.stop()
    print(
        f"cluster stitch: boundary {BOUNDARY}, both sides found, labeled, "
        "histograms merged — ok"
    )
    return {"boundary": BOUNDARY, "instances": 2}


def check_cli_explain(tmp: Path) -> dict:
    """`ffs-va explain` exits 0, with a parseable --json body."""
    argv = [
        "explain", "--workload", "jackson", "--tor", "0.3",
        "--frames", str(N_FRAMES), "--frame", "25",
    ]
    assert cli_main(argv) == 0

    import contextlib
    import io

    buf = io.StringIO()
    with contextlib.redirect_stdout(buf):
        rc = cli_main(argv + ["--json"])
    assert rc == 0
    body = json.loads(buf.getvalue())
    assert body["found"] and body["hops"]

    # Summary form (no --frame) also exits 0.
    assert cli_main([
        "explain", "--workload", "jackson", "--tor", "0.3",
        "--frames", str(N_FRAMES),
    ]) == 0
    print("cli explain: frame table, --json body, summary — ok")
    return {"hops": len(body["hops"]), "disposition": body["disposition"]}


def check_telemetry_off_overhead() -> dict:
    """With telemetry off, the lineage plane leaves no trace on the hot path."""
    trace = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=3)

    t0 = time.perf_counter()
    sim_off, m_off = _run_sim(trace, config=FFSVAConfig(), telemetry=None)
    t_off = time.perf_counter() - t0

    t0 = time.perf_counter()
    telemetry = Telemetry()
    sim_on, m_on = _run_sim(trace, telemetry=telemetry)
    t_on = time.perf_counter() - t0

    # No lineage state was ever stamped without telemetry...
    assert all(not st.enter_t for st in sim_off._stages.values())
    assert "lineage" not in m_off.extra
    assert "stage_wait_seconds" not in (sim_off.telemetry or Telemetry()).histograms
    # ...and attaching it changes observability, never the outcome.
    assert m_on.extra["lineage"]["frames"] == N_FRAMES
    assert "stage_wait_seconds" in telemetry.histograms
    for stage, c in m_off.stages.items():
        c_on = m_on.stages[stage]
        assert (c.entered, c.passed, c.filtered) == (
            c_on.entered, c_on.passed, c_on.filtered
        ), stage
    ratio = t_on / t_off if t_off > 0 else float("inf")
    # Informational: CI wall clocks are too noisy to hard-gate a ratio.
    print(
        f"telemetry-off overhead: off {t_off * 1e3:.0f} ms, "
        f"on {t_on * 1e3:.0f} ms (x{ratio:.2f}) — hot path clean, ok"
    )
    return {"t_off_s": t_off, "t_on_s": t_on, "ratio": ratio}


def main() -> int:
    import tempfile

    summary = {}
    with tempfile.TemporaryDirectory() as d:
        summary["endpoint"] = check_live_lineage_endpoint()
        summary["cluster"] = check_cluster_stitch()
        summary["cli"] = check_cli_explain(Path(d))
        summary["overhead"] = check_telemetry_off_overhead()
    out = Path(__file__).resolve().parent.parent / "LINEAGE_smoke.json"
    out.write_text(json.dumps(summary, indent=2) + "\n")
    print(f"lineage smoke: all checks passed ({out.name} written)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
