"""CI smoke test for the cluster serving plane — real processes, forced shed.

Launches a two-instance :class:`ClusterSupervisor` over four streams whose
round-robin placement pairs the two busiest on instance 0, with the T-YOLO
stage slowed enough that the pair overloads it on any host.  The run must:

* re-forward a stream mid-run (the router's shed/re-forward move fires);
* conserve frames across the handoff — per instance
  ``frames_offered == len(outcomes)``, globally every planned frame has
  exactly one outcome, and no frame is processed by two instances;
* serve one aggregated ``/metrics`` whose per-instance samples and
  ``ffsva_cluster_*`` sums equal the per-instance ``RunMetrics`` ledgers;
* produce a router decision log that replays deterministically, and that a
  simulated cluster fed the equivalent load skew reproduces.

Exit code 0 means the cluster story works on this interpreter.
"""

import dataclasses
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.core.config import FFSVAConfig  # noqa: E402
from repro.core.pipeline import StageGraph, ffs_va_graph  # noqa: E402
from repro.devices.costs import CostModel  # noqa: E402
from repro.models import ModelZoo  # noqa: E402
from repro.nn import TrainConfig  # noqa: E402
from repro.obs import parse_prometheus  # noqa: E402
from repro.runtime import ClusterSupervisor, StreamRouter  # noqa: E402
from repro.sim import ClusterSimulator  # noqa: E402
from repro.video import jackson, make_stream  # noqa: E402

sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
from tests.helpers import make_synth_trace  # noqa: E402

N_FRAMES = 200
TORS = (0.9, 0.05, 0.45, 0.05)  # i % 2 pairs hot+warm on instance 0


def slow_tyolo_graph(delay: float) -> StageGraph:
    """The paper cascade with T-YOLO pegged at ~1/delay frames/s."""
    specs = []
    for spec in ffs_va_graph():
        if spec.name != "tyolo":
            specs.append(spec)
            continue
        inner = spec.logic

        def evaluate(pixels, bundles, zoo, config, _inner=inner.evaluate, _d=delay):
            time.sleep(_d * len(pixels))
            return _inner(pixels, bundles, zoo, config)

        specs.append(
            dataclasses.replace(spec, logic=dataclasses.replace(inner, evaluate=evaluate))
        )
    return StageGraph(specs, name="ffs-va-slow-tyolo")


def cluster_config() -> FFSVAConfig:
    return FFSVAConfig(
        telemetry=True,
        telemetry_sample_interval=0.02,
        cluster_instances=2,
        cluster_reserve_slots=2,
        router_epoch=0.25,
        admission_depth_fraction=0.4,
        admission_window=0.4,
        admission_hysteresis=2,
        admission_tyolo_fps=60.0,
        stream_fps=30.0,
    )


def main() -> int:
    zoo = ModelZoo()
    streams = []
    for i, tor in enumerate(TORS):
        s = make_stream(jackson(), N_FRAMES, tor=tor, seed=60 + i)
        zoo.train_for_stream(
            s,
            n_train_frames=80,
            stride=2,
            train_config=TrainConfig(epochs=3, batch_size=32, seed=7),
        )
        streams.append(s)

    sup = ClusterSupervisor(
        streams, zoo, cluster_config(), graph=slow_tyolo_graph(0.025)
    )
    res = sup.run(N_FRAMES, online=True)
    planned = len(streams) * N_FRAMES

    # The load spike forced a re-forward of the hot stream.
    assert res.moves, "no shed/re-forward fired under forced overload"
    hot = streams[0].stream_id
    assert res.moves[0] == (hot, 0, 1), f"unexpected first move {res.moves[0]}"

    # Frame conservation across the handoff.
    for i, (metrics, outcomes) in enumerate(zip(res.instances, res.outcomes)):
        assert metrics.frames_offered == len(outcomes), (
            f"instance {i}: offered {metrics.frames_offered} != "
            f"{len(outcomes)} outcomes"
        )
    assert res.total_offered == res.total_outcomes == planned
    seen = set()
    for outcomes in res.outcomes:
        for sid, idx, _stage in outcomes:
            assert (sid, idx) not in seen, f"frame ({sid}, {idx}) processed twice"
            seen.add((sid, idx))

    # Aggregated /metrics (a real scrape of every instance's live endpoint)
    # agrees with the per-instance RunMetrics ledgers.
    samples = parse_prometheus(res.aggregated_metrics)
    per_instance = {
        labels["instance"]: value
        for name, labels, value in samples
        if name == "ffsva_frames_offered_total"
    }
    for i, m in enumerate(res.instances):
        assert per_instance[str(i)] == m.frames_offered, (
            f"instance {i}: aggregated {per_instance[str(i)]} != "
            f"RunMetrics {m.frames_offered}"
        )
    sums = [v for n, _, v in samples if n == "ffsva_cluster_frames_offered_total"]
    assert sums == [float(res.total_offered)], sums
    errors = [v for n, _, v in samples if n == "ffsva_cluster_scrape_errors_total"]
    assert errors == [0.0], f"scrape errors during aggregation: {errors}"

    # Decision-log determinism: replay, and the simulated twin's first move.
    assert StreamRouter.replay(res.router_log).moves() == res.moves
    fracs = ((0.95, 0.9, 0.4), (0.05, 0.02, 0.01), (0.55, 0.5, 0.2), (0.05, 0.02, 0.01))
    traces = [
        make_synth_trace(N_FRAMES, *frac, seed=1 + i, stream_id=s.stream_id)
        for i, (s, frac) in enumerate(zip(streams, fracs))
    ]
    sim_res = ClusterSimulator(
        traces, cluster_config(), CostModel(tyolo_infer=1.0 / 35)
    ).run()
    assert sim_res.moves and sim_res.moves[0] == res.moves[0], (
        f"simulated twin decided {sim_res.moves[:1]}, threaded {res.moves[:1]}"
    )

    print(
        f"cluster smoke: {len(res.instances)} instances, moves={res.moves}, "
        f"{res.total_offered}/{planned} frames conserved, aggregated metrics "
        "consistent — ok"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
