"""CI gate for the dashboard plane: panels vs metric families vs reality.

Three checks, all in-process:

1. **Registry check** — every panel query in the generated Grafana model
   references only families registered in
   ``repro.obs.export.METRIC_FAMILIES`` (``_bucket``/``_sum``/``_count``
   derived series resolve to their parents).
2. **Live check** — a short simulated run with telemetry attached renders a
   real ``/metrics`` exposition, and every family a panel queries must be
   present in it, so the dashboard is validated against what an instance
   actually serves.
3. **Drift check** — the committed ``dashboards/grafana_ffsva.json`` must
   byte-match the generated model.  Regenerate with ``--write`` after
   changing the panel catalog or the registry.

Exit code 0 means the dashboard plane is coherent.
"""

import sys
from pathlib import Path

ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(ROOT / "src"))

from repro.core import FFSVAConfig, workload_trace  # noqa: E402
from repro.obs import Telemetry, render_prometheus  # noqa: E402
from repro.obs.dashboard import (  # noqa: E402
    dashboard_json,
    grafana_dashboard,
    validate_dashboard,
)
from repro.sim import PipelineSimulator  # noqa: E402
from repro.video import jackson  # noqa: E402

DASHBOARD_PATH = ROOT / "dashboards" / "grafana_ffsva.json"


def _live_exposition() -> str:
    """A real /metrics rendering from a short telemetry-attached run."""
    config = FFSVAConfig(telemetry=True)
    telemetry = Telemetry.from_config(config)
    trace = workload_trace(jackson(), 200, tor=0.3, seed=3)
    metrics = PipelineSimulator(
        [trace], config, online=False, telemetry=telemetry
    ).run()
    return render_prometheus(metrics, telemetry)


def main(argv=None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    write = "--write" in argv

    dashboard = grafana_dashboard()
    problems = validate_dashboard(dashboard)
    rendered = _live_exposition()
    problems += validate_dashboard(dashboard, rendered=rendered)
    if problems:
        for p in problems:
            print(f"FAIL: {p}")
        return 1
    n_panels = len(dashboard["panels"])
    print(f"dashboard: {n_panels} panels validated against registry + live /metrics")

    generated = dashboard_json()
    if write:
        DASHBOARD_PATH.parent.mkdir(parents=True, exist_ok=True)
        DASHBOARD_PATH.write_text(generated)
        print(f"wrote {DASHBOARD_PATH}")
        return 0
    if not DASHBOARD_PATH.exists():
        print(f"FAIL: {DASHBOARD_PATH} missing — run with --write")
        return 1
    if DASHBOARD_PATH.read_text() != generated:
        print(
            f"FAIL: {DASHBOARD_PATH} is stale — regenerate with "
            "`python scripts/validate_dashboard.py --write`"
        )
        return 1
    print("committed dashboard JSON matches the generated model")
    return 0


if __name__ == "__main__":
    sys.exit(main())
