"""CI smoke test for the telemetry subsystem — fast and in-process.

Runs a short simulated analysis with telemetry attached, then exercises
every plane end to end:

* the event bus saw all six event kinds' worth of traffic and the per-stage
  disposition events reproduce ``RunMetrics.stages`` exactly;
* per-frame spans reconstruct and the Chrome trace JSON loads;
* the HTTP export plane serves ``/metrics`` (Prometheus text, per-stage
  counters matching the run) and ``/snapshot`` (JSON) over a real socket;
* ``RunMetrics`` round-trips through its JSON form;
* the CLI accepts ``--telemetry``/``--metrics-json``/``--trace-json`` and
  writes loadable artifacts.

Exit code 0 means the telemetry story works on this interpreter; any
assertion failure or exception fails the CI step.
"""

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core import FFSVAConfig, RunMetrics, workload_trace  # noqa: E402
from repro.obs import EVENT_KINDS, Telemetry  # noqa: E402
from repro.sim import PipelineSimulator  # noqa: E402
from repro.video import jackson  # noqa: E402

N_FRAMES = 400


def check_simulator_run(tmp: Path) -> None:
    config = FFSVAConfig(telemetry=True)
    telemetry = Telemetry.from_config(config)
    trace = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=3)
    sim = PipelineSimulator([trace], config, online=False, telemetry=telemetry)
    metrics = sim.run()

    # Event plane: schema and counter agreement.
    events = telemetry.bus.events()
    assert events, "telemetry run produced no events"
    assert telemetry.bus.dropped == 0
    assert {e.kind for e in events} <= set(EVENT_KINDS)
    for stage, c in metrics.stages.items():
        dispositions = [
            e for e in events
            if e.stage == stage and e.kind in ("frame_pass", "frame_filter")
        ]
        assert len(dispositions) == c.entered, (
            f"{stage}: {len(dispositions)} disposition events != {c.entered} entered"
        )

    # Trace plane: spans reconstruct, Chrome JSON loads from disk.
    spans = telemetry.spans(terminal="ref")
    assert spans
    trace_path = tmp / "trace.json"
    telemetry.dump_chrome_trace(trace_path, terminal="ref")
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"], "chrome trace has no events"

    # Export plane over a real socket.
    server = telemetry.serve(lambda: metrics, port=0)
    try:
        text = urllib.request.urlopen(f"{server.url}/metrics", timeout=5).read().decode()
        for stage, c in metrics.stages.items():
            needle = f'ffsva_stage_frames_entered_total{{stage="{stage}"}} {c.entered}'
            assert needle in text, f"missing {needle!r} in /metrics"
        snap = json.loads(
            urllib.request.urlopen(f"{server.url}/snapshot", timeout=5).read()
        )
        assert snap["metrics"]["frames_ingested"] == metrics.frames_ingested
        assert snap["series"], "no sampled time-series in /snapshot"
    finally:
        server.stop()

    # Metrics serialization round-trip.
    clone = RunMetrics.from_json(metrics.to_json())
    assert clone.to_dict() == metrics.to_dict()
    print(
        f"simulator: {telemetry.bus.published} events, {len(spans)} spans, "
        f"{len(telemetry.sampler.names)} series — ok"
    )


def check_cli(tmp: Path) -> None:
    metrics_path = tmp / "metrics.json"
    trace_path = tmp / "cli_trace.json"
    rc = cli_main([
        "simulate", "--workload", "jackson", "--tor", "0.3",
        "--frames", str(N_FRAMES), "--telemetry",
        "--metrics-json", str(metrics_path), "--trace-json", str(trace_path),
    ])
    assert rc == 0
    m = RunMetrics.from_json(metrics_path.read_text())
    assert m.frames_ingested == N_FRAMES
    assert json.loads(trace_path.read_text())["traceEvents"]
    print("cli: metrics + chrome trace artifacts written — ok")


def main() -> int:
    with tempfile.TemporaryDirectory() as d:
        tmp = Path(d)
        check_simulator_run(tmp)
        check_cli(tmp)
    print("telemetry smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
