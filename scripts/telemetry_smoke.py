"""CI smoke test for the telemetry subsystem — fast and in-process.

Runs a short simulated analysis with telemetry attached, then exercises
every plane end to end:

* the event bus saw all six event kinds' worth of traffic and the per-stage
  disposition events reproduce ``RunMetrics.stages`` exactly;
* per-frame spans reconstruct and the Chrome trace JSON loads;
* the HTTP export plane serves ``/metrics`` (Prometheus text, per-stage
  counters matching the run) and ``/snapshot`` (JSON) over a real socket;
* ``RunMetrics`` round-trips through its JSON form;
* the YOLOv2-everywhere baseline emits the same event schema and serves the
  same ``/metrics`` exposition over a real socket;
* a long run segments into a rotated multi-file trace with a manifest, and
  the ``/traces`` endpoint serves those segments back by time range over a
  real socket (retention-aware: rotated-out files are reported, not 500s);
* two instances' ``/metrics`` aggregate into one labeled exposition whose
  ``ffsva_cluster_*`` sums match the per-instance ledgers;
* the CLI accepts ``--telemetry``/``--metrics-json``/``--trace-json`` and
  writes loadable artifacts.

Exit code 0 means the telemetry story works on this interpreter; any
assertion failure or exception fails the CI step.
"""

import json
import sys
import tempfile
import urllib.request
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.cli import main as cli_main  # noqa: E402
from repro.core import FFSVAConfig, RunMetrics, workload_trace  # noqa: E402
from repro.obs import EVENT_KINDS, Telemetry  # noqa: E402
from repro.sim import PipelineSimulator  # noqa: E402
from repro.video import jackson  # noqa: E402

N_FRAMES = 400


def check_simulator_run(tmp: Path) -> None:
    config = FFSVAConfig(telemetry=True)
    telemetry = Telemetry.from_config(config)
    trace = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=3)
    sim = PipelineSimulator([trace], config, online=False, telemetry=telemetry)
    metrics = sim.run()

    # Event plane: schema and counter agreement.
    events = telemetry.bus.events()
    assert events, "telemetry run produced no events"
    assert telemetry.bus.dropped == 0
    assert {e.kind for e in events} <= set(EVENT_KINDS)
    for stage, c in metrics.stages.items():
        dispositions = [
            e for e in events
            if e.stage == stage and e.kind in ("frame_pass", "frame_filter")
        ]
        assert len(dispositions) == c.entered, (
            f"{stage}: {len(dispositions)} disposition events != {c.entered} entered"
        )

    # Trace plane: spans reconstruct, Chrome JSON loads from disk.
    spans = telemetry.spans(terminal="ref")
    assert spans
    trace_path = tmp / "trace.json"
    telemetry.dump_chrome_trace(trace_path, terminal="ref")
    doc = json.loads(trace_path.read_text())
    assert doc["traceEvents"], "chrome trace has no events"

    # Export plane over a real socket.
    server = telemetry.serve(lambda: metrics, port=0)
    try:
        text = urllib.request.urlopen(f"{server.url}/metrics", timeout=5).read().decode()
        for stage, c in metrics.stages.items():
            needle = f'ffsva_stage_frames_entered_total{{stage="{stage}"}} {c.entered}'
            assert needle in text, f"missing {needle!r} in /metrics"
        snap = json.loads(
            urllib.request.urlopen(f"{server.url}/snapshot", timeout=5).read()
        )
        assert snap["metrics"]["frames_ingested"] == metrics.frames_ingested
        assert snap["series"], "no sampled time-series in /snapshot"
    finally:
        server.stop()

    # Metrics serialization round-trip.
    clone = RunMetrics.from_json(metrics.to_json())
    assert clone.to_dict() == metrics.to_dict()
    print(
        f"simulator: {telemetry.bus.published} events, {len(spans)} spans, "
        f"{len(telemetry.sampler.names)} series — ok"
    )


def check_baseline_run(tmp: Path) -> None:
    """The baseline runtime speaks the same telemetry dialect."""
    from repro.baseline import BaselineSimulator  # noqa: E402

    telemetry = Telemetry()
    trace = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=3)
    sim = BaselineSimulator([trace], online=False, telemetry=telemetry)
    metrics = sim.run()

    events = telemetry.bus.events()
    assert events, "baseline run produced no events"
    kinds = {e.kind for e in events}
    assert kinds <= set(EVENT_KINDS)
    assert {"admission", "frame_enter", "batch_exec", "frame_pass"} <= kinds
    spans = telemetry.spans(terminal="ref")
    assert sum(1 for s in spans if s.disposition == "analyzed") == N_FRAMES

    server = telemetry.serve(lambda: metrics, port=0)
    try:
        text = urllib.request.urlopen(f"{server.url}/metrics", timeout=5).read().decode()
        needle = f'ffsva_stage_frames_entered_total{{stage="ref"}} {N_FRAMES}'
        assert needle in text, f"missing {needle!r} in baseline /metrics"
        assert "ffsva_telemetry_events_total" in text
        assert 'ffsva_sample_gauge{series="stage_fps[ref]"}' in text
    finally:
        server.stop()
    print(
        f"baseline: {telemetry.bus.published} events, {len(spans)} spans, "
        "/metrics served — ok"
    )


def check_rotating_trace(tmp: Path) -> None:
    """A longer run rotates into bounded segments plus a manifest."""
    max_bytes = 16384
    telemetry = Telemetry()
    trace = workload_trace(jackson(), 3 * N_FRAMES, tor=0.3, seed=9)
    PipelineSimulator(
        [trace], FFSVAConfig(telemetry=True), online=False, telemetry=telemetry
    ).run()
    out = tmp / "segments"
    manifest = telemetry.dump_rotating_trace(out, max_bytes=max_bytes, label="ffsva")
    segments = manifest["segments"]
    assert len(segments) >= 2, "long run did not rotate into multiple segments"
    for entry in segments:
        path = out / entry["file"]
        assert path.stat().st_size <= max_bytes, (
            f"{entry['file']}: {path.stat().st_size} bytes > {max_bytes}"
        )
        assert json.loads(path.read_text())["traceEvents"]
    on_disk = json.loads((out / "manifest.json").read_text())
    assert on_disk == manifest
    print(f"rotating trace: {len(segments)} segments, all <= {max_bytes} B — ok")

    # /traces endpoint: the manifest, a time-ranged merge, and retention.
    from repro.obs import TelemetryServer  # noqa: E402

    server = TelemetryServer(
        lambda: (RunMetrics(), Telemetry()), port=0, trace_dir=str(out)
    ).start()
    try:
        served = json.loads(
            urllib.request.urlopen(f"{server.url}/traces", timeout=5).read()
        )
        assert served["segments"] == segments
        t0, t1 = segments[0]["t_start"], segments[0]["t_end"]
        ranged = json.loads(
            urllib.request.urlopen(
                f"{server.url}/traces?t0={t0}&t1={t1}&merge=1", timeout=5
            ).read()
        )
        assert ranged["segments"], "time range matched no segments"
        assert ranged["traceEvents"], "merged trace is empty"
        assert ranged["missing"] == []
        # Simulate retention: delete the oldest segment file and re-query.
        (out / segments[0]["file"]).unlink()
        ranged = json.loads(
            urllib.request.urlopen(
                f"{server.url}/traces?t0=0&t1=1e9", timeout=5
            ).read()
        )
        assert ranged["missing"] == [segments[0]["file"]]
    finally:
        server.stop()
    print("traces endpoint: manifest, time-range merge, retention — ok")


def check_aggregated_metrics(tmp: Path) -> None:
    """Two instance endpoints roll up into one cluster exposition."""
    from repro.obs import (  # noqa: E402
        ClusterMetricsServer,
        MetricsAggregator,
        TelemetryServer,
        parse_prometheus,
    )

    config = FFSVAConfig(telemetry=True)
    runs = []
    for seed in (3, 5):
        telemetry = Telemetry.from_config(config)
        trace = workload_trace(jackson(), N_FRAMES, tor=0.3, seed=seed)
        metrics = PipelineSimulator(
            [trace], config, online=False, telemetry=telemetry
        ).run()
        runs.append((metrics, telemetry))

    servers = [
        TelemetryServer(lambda m=m, t=t: (m, t), port=0).start() for m, t in runs
    ]
    try:
        aggregator = MetricsAggregator(
            {str(i): s.url for i, s in enumerate(servers)}
        )
        with ClusterMetricsServer(aggregator, port=0) as cluster:
            text = urllib.request.urlopen(
                f"{cluster.url}/metrics", timeout=5
            ).read().decode()
            instances = json.loads(
                urllib.request.urlopen(f"{cluster.url}/instances", timeout=5).read()
            )
        assert instances["errors"] == {}, instances["errors"]
        samples = parse_prometheus(text)
        per_instance = {
            labels["instance"]: value
            for name, labels, value in samples
            if name == "ffsva_frames_offered_total"
        }
        for i, (metrics, _) in enumerate(runs):
            assert per_instance[str(i)] == metrics.frames_offered
        sums = [v for n, _, v in samples if n == "ffsva_cluster_frames_offered_total"]
        expected = float(sum(m.frames_offered for m, _ in runs))
        assert sums == [expected], f"cluster sum {sums} != {expected}"
        errors = [v for n, _, v in samples if n == "ffsva_cluster_scrape_errors_total"]
        assert errors == [0.0]
    finally:
        for s in servers:
            s.stop()
    print(
        f"aggregated metrics: {len(servers)} instances, cluster sum "
        f"{int(expected)} frames — ok"
    )


def check_cli(tmp: Path) -> None:
    metrics_path = tmp / "metrics.json"
    trace_path = tmp / "cli_trace.json"
    rc = cli_main([
        "simulate", "--workload", "jackson", "--tor", "0.3",
        "--frames", str(N_FRAMES), "--telemetry",
        "--metrics-json", str(metrics_path), "--trace-json", str(trace_path),
    ])
    assert rc == 0
    m = RunMetrics.from_json(metrics_path.read_text())
    assert m.frames_ingested == N_FRAMES
    assert json.loads(trace_path.read_text())["traceEvents"]
    print("cli: metrics + chrome trace artifacts written — ok")


def main() -> int:
    with tempfile.TemporaryDirectory() as d:
        tmp = Path(d)
        check_simulator_run(tmp)
        check_baseline_run(tmp)
        check_rotating_trace(tmp)
        check_aggregated_metrics(tmp)
        check_cli(tmp)
    print("telemetry smoke: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
