"""Pure query functions over a detection store.

Every function takes a reader (:class:`~repro.store.detstore.DetStoreReader`
or :class:`MultiReader`) and answers one of the *Video Monitoring Queries*
classes — count, top-k busiest streams, windowed aggregates — by streaming
the touched segments.  Nothing here mutates the store or needs the
pipeline: the same code serves an offline ``repro query``, the live
``/query`` endpoint, and the cluster fan-out.

The ``disposition`` selector is common to all queries:

* ``"detected"`` (default) — only rows whose disposition is the store's
  terminal stage name, i.e. frames the full cascade analyzed;
* ``"any"`` — every recorded outcome;
* any literal stage name (``"sdd"``, ``"dropped"``, ...) — rows that ended
  at exactly that stage.
"""

from __future__ import annotations

import math
import os
from pathlib import Path

from .detstore import DetStoreReader

__all__ = [
    "MultiReader",
    "count_detections",
    "detected_frames",
    "open_store",
    "top_k_streams",
    "window_aggregate",
]

_INF = float("inf")


class MultiReader:
    """Read several stores (a cluster's per-instance directories) as one.

    Record order is per-store; queries here never depend on global order.
    The terminal stage is taken from the first store — every instance of
    one cluster runs the same graph, so they agree.
    """

    def __init__(self, readers: list[DetStoreReader]):
        if not readers:
            raise ValueError("MultiReader needs at least one reader")
        self.readers = readers
        self.missing: list[str] = []
        self.last_opened: list[str] = []

    @property
    def terminal(self) -> str:
        return self.readers[0].terminal

    def iter_records(self, t0: float = -_INF, t1: float = _INF):
        self.missing = []
        self.last_opened = []
        for reader in self.readers:
            yield from reader.iter_records(t0, t1)
            self.missing.extend(reader.missing)
            self.last_opened.extend(reader.last_opened)

    def records(self, t0: float = -_INF, t1: float = _INF):
        return list(self.iter_records(t0, t1))


def open_store(path):
    """Open ``path`` as a single store or a cluster parent directory.

    A directory holding ``manifest.json`` (or any ``det-*`` segment) reads
    as one store; otherwise its subdirectories that hold a manifest (the
    ``instance-N/`` layout the cluster writes) are merged through a
    :class:`MultiReader`.  Raises :class:`FileNotFoundError` when neither
    shape is present.
    """
    path = Path(path)
    if not path.is_dir():
        raise FileNotFoundError(f"no store directory at {path}")
    has_manifest = (path / "manifest.json").is_file()
    has_segments = any(n.startswith("det-") for n in os.listdir(path))
    if has_manifest or has_segments:
        return DetStoreReader(path)
    subs = sorted(
        p for p in path.iterdir() if p.is_dir() and (p / "manifest.json").is_file()
    )
    if subs:
        return MultiReader([DetStoreReader(p) for p in subs])
    raise FileNotFoundError(f"{path} holds neither a store nor instance stores")


def _matcher(reader, stream, cls, disposition):
    terminal = reader.terminal

    def match(rec) -> bool:
        if stream is not None and rec.stream != stream:
            return False
        if cls is not None and rec.cls != cls:
            return False
        if disposition == "any":
            return True
        if disposition == "detected":
            return rec.disposition == terminal
        return rec.disposition == disposition

    return match


def count_detections(
    reader,
    *,
    stream: str | None = None,
    cls: str | None = None,
    t0: float = -_INF,
    t1: float = _INF,
    disposition: str = "detected",
) -> int:
    """``count class c on stream s in [t0, t1]`` — the headline query."""
    match = _matcher(reader, stream, cls, disposition)
    return sum(1 for rec in reader.iter_records(t0, t1) if match(rec))


def top_k_streams(
    reader,
    k: int = 5,
    *,
    cls: str | None = None,
    t0: float = -_INF,
    t1: float = _INF,
    disposition: str = "detected",
) -> list[tuple[str, int]]:
    """The ``k`` busiest streams by matching-record count, ties broken by
    stream id so the answer is deterministic across store layouts."""
    if k < 1:
        raise ValueError("k must be >= 1")
    match = _matcher(reader, None, cls, disposition)
    counts: dict[str, int] = {}
    for rec in reader.iter_records(t0, t1):
        if match(rec):
            counts[rec.stream] = counts.get(rec.stream, 0) + 1
    return sorted(counts.items(), key=lambda kv: (-kv[1], kv[0]))[:k]


def window_aggregate(
    reader,
    window: float,
    *,
    stream: str | None = None,
    cls: str | None = None,
    t0: float | None = None,
    t1: float | None = None,
    disposition: str = "detected",
) -> list[dict]:
    """Fixed-width time windows with count / score sum / score max.

    When ``t0``/``t1`` are omitted the bounds come from the matched
    records themselves, aligned down/up to ``window`` multiples.  Empty
    windows inside the range are emitted with ``count: 0`` so plots keep
    their time axis.
    """
    if window <= 0:
        raise ValueError("window must be > 0")
    match = _matcher(reader, stream, cls, disposition)
    lo = -_INF if t0 is None else t0
    hi = _INF if t1 is None else t1
    matched = [rec for rec in reader.iter_records(lo, hi) if match(rec)]
    if t0 is None:
        if not matched:
            return []
        t0 = min(rec.t for rec in matched)
    if t1 is None:
        t1 = max(rec.t for rec in matched)
    start = math.floor(t0 / window) * window
    n_bins = max(1, math.ceil((t1 - start) / window + 1e-9))
    bins = [
        {
            "t0": start + i * window,
            "t1": start + (i + 1) * window,
            "count": 0,
            "score_sum": 0.0,
            "score_max": 0.0,
        }
        for i in range(n_bins)
    ]
    for rec in matched:
        i = min(n_bins - 1, max(0, int((rec.t - start) / window)))
        b = bins[i]
        b["count"] += 1
        b["score_sum"] += rec.score
        b["score_max"] = max(b["score_max"], rec.score)
    return bins


def detected_frames(
    reader,
    stream: str,
    *,
    t0: float = -_INF,
    t1: float = _INF,
    disposition: str = "detected",
) -> list[int]:
    """Sorted frame indices of matching records on one stream — what the
    replay path and store-backed evaluation consume."""
    match = _matcher(reader, stream, None, disposition)
    return sorted(rec.frame for rec in reader.iter_records(t0, t1) if match(rec))
