"""Persistent detection store and query plane.

The pipeline's other half: every frame disposition the runtimes produce
(analyzed, filtered, dropped, aborted) becomes a durable
:class:`DetectionRecord` row in an append-only, segmented, retention-bounded
store — and the query classes of *Video Monitoring Queries* (counts, top-k
busiest streams, windowed aggregates) run over those segments without the
pipeline in the loop.

* :mod:`repro.store.detstore` — the record type, its JSON/binary
  serializers, the segmented :class:`DetStore` writer and the
  retention/crash-aware :class:`DetStoreReader`;
* :mod:`repro.store.query` — pure query functions over a reader, plus
  :func:`open_store`, which transparently merges a cluster's per-instance
  stores;
* :mod:`repro.store.replay` — query-driven frame re-decode through the
  memory-bounded :class:`~repro.video.clipstore.ClipStore`;
* :mod:`repro.store.server` — the HTTP reply builders and the live
  :class:`SubscriptionHub` behind ``/query`` and ``/subscribe``.
"""

from .detstore import (
    DetectionRecord,
    DetStore,
    DetStoreReader,
    assert_store_rows_equal,
    recover_store,
)
from .query import MultiReader, count_detections, open_store, top_k_streams, window_aggregate
from .replay import ReplayResult, replay_detections
from .server import SubscriptionHub, query_reply, store_section

__all__ = [
    "DetectionRecord",
    "DetStore",
    "DetStoreReader",
    "MultiReader",
    "ReplayResult",
    "SubscriptionHub",
    "assert_store_rows_equal",
    "count_detections",
    "open_store",
    "query_reply",
    "recover_store",
    "replay_detections",
    "store_section",
    "top_k_streams",
    "window_aggregate",
]
