"""Append-only, segmented detection store with a manifest index.

Every frame the pipeline disposes of becomes one :class:`DetectionRecord`;
a run's records land in rotated segment files inside one directory, indexed
by ``manifest.json`` — the same rotate/retain idiom
:class:`~repro.obs.trace.RotatingTraceWriter` established for trace
segments, specialized for typed rows:

* **append-only**: each record is written (and buffered-flushed) into the
  *live* segment the moment the runtime records the outcome, so a crash
  loses at most the unflushed tail of one file;
* **rotate-before-append**: when one more record would push the live
  segment past ``segment_bytes`` it is sealed first — a record landing
  *exactly* on the boundary stays in its segment;
* **manifest index**: sealed segments are listed oldest-first with their
  time bounds and row counts, so a range query opens only the touched
  files; the live segment is discovered by directory scan (which is also
  what makes an unclean shutdown readable);
* **retention**: with ``max_segments`` set, sealing the newest segment
  deletes the oldest beyond the bound (``dropped_segments`` /
  ``dropped_rows`` count what was lost).

Both runtimes feed a store through the same sink contract — one record per
:class:`~repro.runtime.engine.FrameOutcome`-equivalent disposition, stamped
with *stream time* (``global_frame_index / fps``), never the wall or
virtual clock — so a threaded run and a simulated run of the same workload
produce byte-identical rows (:func:`assert_store_rows_equal`).
"""

from __future__ import annotations

import json
import os
import struct
import threading
from dataclasses import dataclass
from pathlib import Path

__all__ = [
    "DetectionRecord",
    "DetStore",
    "DetStoreReader",
    "assert_store_rows_equal",
    "recover_store",
]

#: On-disk record formats a store can write (readers handle both).
FORMATS = ("jsonl", "binary")

_SEGMENT_PREFIX = "det-"
_SEGMENT_EXTS = {"jsonl": ".jsonl", "binary": ".bin"}

# Binary record layout (inside a u32 length-prefixed frame):
#   u8  flags (bit 0: box present)
#   i64 frame, f64 t, f64 score, [4 x f64 box]
#   u16-length-prefixed UTF-8: stream, cls, disposition
_FIXED = struct.Struct("<Bqdd")
_BOX = struct.Struct("<4d")
_U16 = struct.Struct("<H")
_U32 = struct.Struct("<I")


@dataclass(frozen=True)
class DetectionRecord:
    """One frame's durable analytics row.

    ``frame`` is the stream-global frame index (handoffs preserve it) and
    ``t = frame / fps`` is stream time — deterministic across runtimes.
    ``disposition`` names the stage where the frame's journey ended: the
    graph's terminal stage name means *detected/analyzed*; any earlier
    stage name means filtered there; ``"dropped"``/``"aborted"`` are the
    runtime's terminal failure dispositions.  ``score`` carries the
    terminal stage's object count for analyzed frames (0.0 otherwise) and
    a detector confidence for replay-produced rows; ``box`` is populated
    only by replay/evaluation paths (the live sinks record outcomes, not
    geometry).
    """

    stream: str
    frame: int
    t: float
    cls: str
    box: tuple[float, float, float, float] | None
    score: float
    disposition: str

    # -- dict / JSON -----------------------------------------------------
    def to_dict(self) -> dict:
        return {
            "stream": self.stream,
            "frame": self.frame,
            "t": self.t,
            "cls": self.cls,
            "box": None if self.box is None else list(self.box),
            "score": self.score,
            "disposition": self.disposition,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "DetectionRecord":
        box = d.get("box")
        return cls(
            stream=str(d["stream"]),
            frame=int(d["frame"]),
            t=float(d["t"]),
            cls=str(d["cls"]),
            box=None if box is None else tuple(float(v) for v in box),
            score=float(d["score"]),
            disposition=str(d["disposition"]),
        )

    def to_json(self) -> str:
        """Compact JSON; floats use Python's shortest round-trip repr, so
        decoding recovers bit-identical doubles."""
        return json.dumps(self.to_dict(), separators=(",", ":"), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "DetectionRecord":
        return cls.from_dict(json.loads(text))

    # -- binary ----------------------------------------------------------
    def to_bytes(self) -> bytes:
        flags = 0 if self.box is None else 1
        parts = [_FIXED.pack(flags, self.frame, self.t, self.score)]
        if self.box is not None:
            parts.append(_BOX.pack(*self.box))
        for text in (self.stream, self.cls, self.disposition):
            raw = text.encode("utf-8")
            if len(raw) > 0xFFFF:
                raise ValueError("string field exceeds 65535 encoded bytes")
            parts.append(_U16.pack(len(raw)))
            parts.append(raw)
        return b"".join(parts)

    @classmethod
    def from_bytes(cls, raw: bytes) -> "DetectionRecord":
        flags, frame, t, score = _FIXED.unpack_from(raw, 0)
        off = _FIXED.size
        box = None
        if flags & 1:
            box = _BOX.unpack_from(raw, off)
            off += _BOX.size
        texts = []
        for _ in range(3):
            (n,) = _U16.unpack_from(raw, off)
            off += _U16.size
            texts.append(raw[off : off + n].decode("utf-8"))
            off += n
        if off != len(raw):
            raise ValueError(f"trailing bytes in record ({len(raw) - off})")
        stream, kind, disposition = texts
        return cls(
            stream=stream, frame=frame, t=t, cls=kind,
            box=box, score=score, disposition=disposition,
        )


def _encode(record: DetectionRecord, fmt: str) -> bytes:
    if fmt == "jsonl":
        return record.to_json().encode("utf-8") + b"\n"
    payload = record.to_bytes()
    return _U32.pack(len(payload)) + payload


def _decode_file(raw: bytes, fmt: str):
    """Yield the complete records of one segment's bytes.

    Tolerant of a truncated tail (the crash case): a partial last line /
    length-frame simply ends the iteration — everything before it is
    returned intact.
    """
    if fmt == "jsonl":
        for line in raw.split(b"\n"):
            if not line:
                continue
            try:
                yield DetectionRecord.from_json(line.decode("utf-8"))
            except (ValueError, KeyError, UnicodeDecodeError):
                return  # truncated / garbled tail: stop at the last good row
        return
    off = 0
    while off + _U32.size <= len(raw):
        (n,) = _U32.unpack_from(raw, off)
        if off + _U32.size + n > len(raw):
            return  # length frame runs past EOF: truncated tail
        try:
            yield DetectionRecord.from_bytes(raw[off + _U32.size : off + _U32.size + n])
        except (ValueError, UnicodeDecodeError):
            return
        off += _U32.size + n


class DetStore:
    """Segmented append-only writer for :class:`DetectionRecord` rows."""

    def __init__(
        self,
        directory,
        *,
        segment_bytes: int = 256 * 1024,
        max_segments: int | None = None,
        terminal: str = "ref",
        fmt: str = "jsonl",
        label: str | None = None,
    ):
        if segment_bytes < 512:
            raise ValueError("segment_bytes must be >= 512")
        if max_segments is not None and max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        if fmt not in FORMATS:
            raise ValueError(f"fmt must be one of {FORMATS}")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.segment_bytes = segment_bytes
        self.max_segments = max_segments
        self.terminal = terminal
        self.fmt = fmt
        self.label = label
        self.segments: list[dict] = []
        self.dropped_segments = 0
        self.dropped_rows = 0
        self.rows_appended = 0
        self._seq_no = 0  # segment sequence
        self.seq = 0  # record sequence (monotone over appends)
        self._lock = threading.Lock()
        self._listeners: list = []
        self._file = None
        self._closed = False
        self._reset_segment()
        self._write_manifest()  # terminal/format are readable before any seal

    # -- live segment ----------------------------------------------------
    def _reset_segment(self) -> None:
        self._live_name: str | None = None
        self._bytes = 0
        self._rows = 0
        self._detected = 0
        self._t_lo: float | None = None
        self._t_hi: float | None = None

    def _open_live(self) -> None:
        self._live_name = f"{_SEGMENT_PREFIX}{self._seq_no:05d}{_SEGMENT_EXTS[self.fmt]}"
        self._seq_no += 1
        self._file = open(self.directory / self._live_name, "wb")

    def _seal_segment(self) -> dict | None:
        """Close the live segment into the manifest; apply retention."""
        if self._rows == 0:
            return None
        self._file.close()
        self._file = None
        entry = {
            "file": self._live_name,
            "format": self.fmt,
            "t_lo": self._t_lo,
            "t_hi": self._t_hi,
            "rows": self._rows,
            "detected": self._detected,
            "bytes": self._bytes,
        }
        self.segments.append(entry)
        while self.max_segments is not None and len(self.segments) > self.max_segments:
            oldest = self.segments.pop(0)
            try:
                os.remove(self.directory / oldest["file"])
            except FileNotFoundError:
                pass
            self.dropped_segments += 1
            self.dropped_rows += oldest["rows"]
        self._reset_segment()
        self._write_manifest()
        return entry

    def _write_manifest(self) -> None:
        manifest = {
            "version": 1,
            "format": self.fmt,
            "terminal": self.terminal,
            "label": self.label,
            "segment_bytes": self.segment_bytes,
            "max_segments": self.max_segments,
            "dropped_segments": self.dropped_segments,
            "dropped_rows": self.dropped_rows,
            "segments": self.segments,
        }
        with open(self.directory / "manifest.json", "w") as fh:
            json.dump(manifest, fh, indent=2)

    # -- writing ---------------------------------------------------------
    def append(self, record: DetectionRecord) -> int:
        """Durably append one record; returns its monotone sequence number.

        Thread-safe: the engine's stage workers all record outcomes
        concurrently.  Listeners (the live subscription hub) are invoked
        under the lock, in sequence order — they must only enqueue.
        """
        raw = _encode(record, self.fmt)
        with self._lock:
            if self._closed:
                raise RuntimeError("store is closed")
            if self._rows and self._bytes + len(raw) > self.segment_bytes:
                self._seal_segment()
            if self._file is None:
                self._open_live()
            self._file.write(raw)
            self._bytes += len(raw)
            self._rows += 1
            self.rows_appended += 1
            if record.disposition == self.terminal:
                self._detected += 1
            self._t_lo = record.t if self._t_lo is None else min(self._t_lo, record.t)
            self._t_hi = record.t if self._t_hi is None else max(self._t_hi, record.t)
            self.seq += 1
            seq = self.seq
            for listener in self._listeners:
                listener(seq, record)
        return seq

    def extend(self, records) -> None:
        for record in records:
            self.append(record)

    def flush(self) -> None:
        """Push buffered live-segment bytes to the OS (crash narrowing)."""
        with self._lock:
            if self._file is not None:
                self._file.flush()

    def close(self) -> dict:
        """Seal the live segment and finalize the manifest (idempotent)."""
        with self._lock:
            if not self._closed:
                self._seal_segment()
                if self._file is not None:  # empty live file, never written
                    self._file.close()
                    self._file = None
                self._write_manifest()
                self._closed = True
        with open(self.directory / "manifest.json") as fh:
            return json.load(fh)

    # -- live subscriptions ---------------------------------------------
    def add_listener(self, fn) -> None:
        """Register ``fn(seq, record)``, called on every append."""
        with self._lock:
            self._listeners.append(fn)

    def remove_listener(self, fn) -> None:
        with self._lock:
            if fn in self._listeners:
                self._listeners.remove(fn)

    # -- config wiring ---------------------------------------------------
    @classmethod
    def from_config(cls, config, *, terminal: str, label: str | None = None):
        """The store a config asks for (None when ``result_store_dir`` is
        unset) — the construction hook both runtimes share."""
        directory = getattr(config, "result_store_dir", None)
        if directory is None:
            return None
        return cls(
            directory,
            segment_bytes=config.store_segment_kb * 1024,
            max_segments=config.store_segments,
            terminal=terminal,
            label=label,
        )


# ---------------------------------------------------------------------------
# reading
# ---------------------------------------------------------------------------


def _segment_ext_format(name: str) -> str | None:
    for fmt, ext in _SEGMENT_EXTS.items():
        if name.endswith(ext):
            return fmt
    return None


class DetStoreReader:
    """Retention- and crash-aware reader over one store directory.

    The manifest is re-read on every access (like the telemetry plane's
    ``/traces`` endpoint), so a long-lived reader keeps agreeing with a
    store that is still rotating.  Segments the manifest lists but that
    retention already deleted land in :attr:`missing` instead of raising;
    on-disk segment files the manifest does *not* list yet (the live
    segment, or everything after an unclean shutdown) are scanned too, with
    truncated tails tolerated.
    """

    def __init__(self, directory):
        self.directory = Path(directory)
        #: Manifest-listed files absent on disk, per last iteration.
        self.missing: list[str] = []
        #: Files actually opened by the last iteration (query cost probe).
        self.last_opened: list[str] = []

    def manifest(self) -> dict:
        try:
            with open(self.directory / "manifest.json") as fh:
                return json.load(fh)
        except (OSError, ValueError):
            return {}

    @property
    def terminal(self) -> str:
        return self.manifest().get("terminal", "ref")

    def _unmanifested(self, listed: set[str]) -> list[str]:
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return []
        return [
            n
            for n in names
            if n.startswith(_SEGMENT_PREFIX)
            and _segment_ext_format(n) is not None
            and n not in listed
        ]

    def segment_files(
        self, t0: float = float("-inf"), t1: float = float("inf")
    ) -> list[tuple[str, str]]:
        """``(file, format)`` of every segment a ``[t0, t1]`` query must
        open: manifest entries overlapping the range (the time index prunes
        the rest) plus all unmanifested on-disk files, whose bounds are
        unknown until read."""
        manifest = self.manifest()
        default_fmt = manifest.get("format", "jsonl")
        out: list[tuple[str, str]] = []
        listed: set[str] = set()
        for seg in manifest.get("segments", []):
            listed.add(seg["file"])
            if seg["t_hi"] >= t0 and seg["t_lo"] <= t1:
                out.append((seg["file"], seg.get("format", default_fmt)))
        for name in self._unmanifested(listed):
            out.append((name, _segment_ext_format(name) or default_fmt))
        return out

    def iter_records(self, t0: float = float("-inf"), t1: float = float("inf")):
        """Yield records with ``t0 <= t <= t1``, oldest segment first."""
        self.missing = []
        self.last_opened = []
        for name, fmt in self.segment_files(t0, t1):
            try:
                with open(self.directory / name, "rb") as fh:
                    raw = fh.read()
            except OSError:
                self.missing.append(name)
                continue
            self.last_opened.append(name)
            for record in _decode_file(raw, fmt):
                if t0 <= record.t <= t1:
                    yield record

    def records(
        self, t0: float = float("-inf"), t1: float = float("inf")
    ) -> list[DetectionRecord]:
        return list(self.iter_records(t0, t1))


def recover_store(directory) -> dict:
    """Rebuild ``manifest.json`` from the segment files on disk.

    The crash-recovery path: every ``det-*`` file is scanned (truncated
    tails dropped), sealed into a fresh manifest entry with recomputed
    bounds and row counts, and the manifest is rewritten.  Store metadata
    (terminal stage, format, label) survives from the old manifest when it
    is still readable.
    """
    directory = Path(directory)
    reader = DetStoreReader(directory)
    old = reader.manifest()
    default_fmt = old.get("format", "jsonl")
    segments = []
    try:
        names = sorted(os.listdir(directory))
    except OSError:
        names = []
    for name in names:
        fmt = _segment_ext_format(name)
        if not name.startswith(_SEGMENT_PREFIX) or fmt is None:
            continue
        with open(directory / name, "rb") as fh:
            raw = fh.read()
        rows = list(_decode_file(raw, fmt))
        if not rows:
            os.remove(directory / name)  # empty/garbled file: nothing to index
            continue
        ts = [r.t for r in rows]
        segments.append(
            {
                "file": name,
                "format": fmt,
                "t_lo": min(ts),
                "t_hi": max(ts),
                "rows": len(rows),
                "detected": sum(
                    1 for r in rows if r.disposition == old.get("terminal", "ref")
                ),
                "bytes": len(raw),
            }
        )
    manifest = {
        "version": 1,
        "format": default_fmt,
        "terminal": old.get("terminal", "ref"),
        "label": old.get("label"),
        "segment_bytes": old.get("segment_bytes", 256 * 1024),
        "max_segments": old.get("max_segments"),
        "dropped_segments": old.get("dropped_segments", 0),
        "dropped_rows": old.get("dropped_rows", 0),
        "recovered": True,
        "segments": segments,
    }
    with open(directory / "manifest.json", "w") as fh:
        json.dump(manifest, fh, indent=2)
    return manifest


def assert_store_rows_equal(a, b, *, context: str = "") -> None:
    """Assert two runs produced identical rows (the store-level analogue of
    :func:`~repro.core.metrics.assert_stage_counts_equal`).

    ``a``/``b`` are readers or record lists.  Rows are compared field-for-
    field after sorting by ``(stream, frame)`` — the one-record-per-outcome
    invariant makes that key unique within a run.
    """
    rows_a = sorted(
        a if isinstance(a, list) else a.records(), key=lambda r: (r.stream, r.frame)
    )
    rows_b = sorted(
        b if isinstance(b, list) else b.records(), key=lambda r: (r.stream, r.frame)
    )
    prefix = f"{context}: " if context else ""
    assert len(rows_a) == len(rows_b), (
        f"{prefix}row counts differ: {len(rows_a)} != {len(rows_b)}"
    )
    for ra, rb in zip(rows_a, rows_b):
        assert ra == rb, f"{prefix}rows differ:\n  {ra}\n  {rb}"
