"""HTTP reply builders and the live subscription hub.

The telemetry plane (:mod:`repro.obs.export`) owns the sockets; this
module owns the store-specific logic behind them so it is testable without
a server:

* :func:`query_reply` — ``GET /query?...`` parameter parsing + execution
  over a store directory (or a cluster's dict of them, the
  ``MetricsAggregator``-style fan-out);
* :class:`SubscriptionHub` — fans every :meth:`DetStore.append` out to
  subscriber queues feeding ``GET /subscribe`` (SSE) and its long-poll
  fallback;
* :func:`store_section` — the store's contribution to ``/snapshot``,
  reusing the record serializer (satellite: one serializer shared by
  store, snapshot, and evaluation).
"""

from __future__ import annotations

import json
import threading
import time
from collections import deque
from pathlib import Path
from queue import SimpleQueue

from .detstore import DetStoreReader
from .query import (
    MultiReader,
    count_detections,
    open_store,
    top_k_streams,
    window_aggregate,
)

__all__ = [
    "SubscriptionHub",
    "poll_reply",
    "query_reply",
    "sse_event",
    "store_section",
]

_INF = float("inf")


class SubscriptionHub:
    """Fan-out of live store appends to subscriber queues.

    Registers itself as a store listener; every append lands as
    ``(seq, record)`` in a bounded ring (for long-poll catch-up) and in
    each live subscriber's :class:`~queue.SimpleQueue` (for SSE).  A
    ``(None, None)`` sentinel is broadcast on :meth:`close` so handler
    loops exit when the run ends.
    """

    def __init__(self, store, ring: int = 1024):
        self.store = store
        self._ring: deque = deque(maxlen=ring)
        self._subs: list[SimpleQueue] = []
        self._cond = threading.Condition()
        self._closed = False
        self.delivered = 0
        store.add_listener(self._on_append)

    def _on_append(self, seq: int, record) -> None:
        with self._cond:
            self._ring.append((seq, record))
            self.delivered += 1
            for q in self._subs:
                q.put((seq, record))
            self._cond.notify_all()

    # -- SSE path --------------------------------------------------------
    def subscribe(self) -> SimpleQueue:
        with self._cond:
            q: SimpleQueue = SimpleQueue()
            if self._closed:
                q.put((None, None))
            self._subs.append(q)
            return q

    def unsubscribe(self, q: SimpleQueue) -> None:
        with self._cond:
            if q in self._subs:
                self._subs.remove(q)

    # -- long-poll path --------------------------------------------------
    def since(self, after: int, wait: float = 0.0):
        """``(last_seq, items)`` with every ringed item whose seq is
        ``> after``; blocks up to ``wait`` seconds when none are ready."""
        deadline = None
        with self._cond:
            while True:
                items = [(s, r) for (s, r) in self._ring if s > after]
                if items or self._closed or wait <= 0:
                    last = items[-1][0] if items else after
                    return last, items
                if deadline is None:
                    deadline = time.monotonic() + wait
                    remaining = wait
                else:
                    remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return after, []
                self._cond.wait(remaining)

    def close(self) -> None:
        with self._cond:
            if self._closed:
                return
            self._closed = True
            for q in self._subs:
                q.put((None, None))
            self._cond.notify_all()
        self.store.remove_listener(self._on_append)


def sse_event(seq: int, record) -> bytes:
    """One Server-Sent-Events frame: ``id:`` carries the store sequence so
    a reconnecting client knows where it left off."""
    return f"id: {seq}\ndata: {record.to_json()}\n\n".encode("utf-8")


# ---------------------------------------------------------------------------
# /query
# ---------------------------------------------------------------------------


def _first(params: dict, key: str, default=None):
    vals = params.get(key)
    return vals[0] if vals else default


def _parse_common(params: dict) -> dict:
    out = {
        "stream": _first(params, "stream"),
        "cls": _first(params, "cls"),
        "disposition": _first(params, "disposition", "detected"),
    }
    try:
        out["t0"] = float(_first(params, "t0", -_INF))
        out["t1"] = float(_first(params, "t1", _INF))
    except ValueError as exc:
        raise ValueError(f"bad time bound: {exc}") from exc
    return out


def query_reply(target, params: dict):
    """Build the ``GET /query`` response: ``(status, content_type, body)``.

    ``target`` is one store directory, or a ``{label: directory}`` dict for
    the cluster fan-out — each existing instance store is opened and the
    query runs over their merged records (labels of missing directories are
    reported, not fatal; *no* store at all is a 404).  ``params`` is the
    ``parse_qs`` dict; ``q`` picks the query class (``count`` | ``topk`` |
    ``windows``).  Bad parameters are a 400 with a JSON ``error`` body.
    """
    skipped: list[str] = []
    try:
        if isinstance(target, dict):
            readers = []
            for label in sorted(target):
                path = Path(target[label])
                if path.is_dir():
                    readers.append(DetStoreReader(path))
                else:
                    skipped.append(label)
            if not readers:
                raise FileNotFoundError("no instance store directories exist yet")
            reader = MultiReader(readers) if len(readers) > 1 else readers[0]
        else:
            reader = open_store(target)
    except FileNotFoundError as exc:
        body = json.dumps({"error": str(exc)}).encode("utf-8")
        return 404, "application/json", body

    q = _first(params, "q", "count")
    try:
        common = _parse_common(params)
        if q == "count":
            result = {"count": count_detections(reader, **common)}
        elif q == "topk":
            k = int(_first(params, "k", 5))
            kw = dict(common)
            kw.pop("stream")  # topk ranks streams; a stream filter is meaningless
            result = {
                "top": [
                    {"stream": s, "count": n} for s, n in top_k_streams(reader, k, **kw)
                ]
            }
        elif q == "windows":
            window = float(_first(params, "window", 1.0))
            kw = dict(common)
            t0, t1 = kw.pop("t0"), kw.pop("t1")
            result = {
                "windows": window_aggregate(
                    reader,
                    window,
                    t0=None if t0 == -_INF else t0,
                    t1=None if t1 == _INF else t1,
                    **kw,
                )
            }
        else:
            raise ValueError(f"unknown query class {q!r} (count|topk|windows)")
    except (ValueError, TypeError) as exc:
        body = json.dumps({"error": str(exc)}).encode("utf-8")
        return 400, "application/json", body

    result["q"] = q
    result["missing_segments"] = list(reader.missing)
    if skipped:
        result["missing_instances"] = skipped
    return 200, "application/json", json.dumps(result, indent=2).encode("utf-8")


def poll_reply(hub: SubscriptionHub | None, params: dict):
    """Long-poll branch of ``/subscribe`` (``mode=poll``): records after
    sequence ``after``, waiting up to ``wait`` seconds for news."""
    if hub is None:
        body = json.dumps({"error": "no live store on this instance"}).encode("utf-8")
        return 404, "application/json", body
    try:
        after = int(_first(params, "after", 0))
        wait = min(30.0, float(_first(params, "wait", 0.0)))
    except ValueError as exc:
        body = json.dumps({"error": str(exc)}).encode("utf-8")
        return 400, "application/json", body
    last, items = hub.since(after, wait)
    body = json.dumps(
        {"next": last, "records": [rec.to_dict() for _, rec in items]}
    ).encode("utf-8")
    return 200, "application/json", body


def store_section(store_dir, hub: SubscriptionHub | None, recent: int = 16) -> dict:
    """The ``store`` object inside ``/snapshot``: the live manifest plus
    the most recent records (serialized with the shared record codec)."""
    section: dict = {"dir": str(store_dir)}
    try:
        reader = open_store(store_dir)
        manifest = reader.manifest() if hasattr(reader, "manifest") else {}
    except FileNotFoundError:
        manifest = {}
    section["manifest"] = manifest
    if hub is not None:
        with hub._cond:
            tail = list(hub._ring)[-recent:]
        section["recent"] = [rec.to_dict() for _, rec in tail]
        section["seq"] = hub.store.seq
    return section
