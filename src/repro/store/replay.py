"""Query-driven frame replay through the memory-bounded clip cache.

The store records *which* frames the cascade analyzed; replay brings their
*pixels* back.  :func:`replay_detections` takes a query result (a reader +
filters), re-decodes exactly the matching frames of one stream through
:class:`~repro.video.clipstore.ClipStore` — so an arbitrarily long range
costs at most the clip cache's memory budget, never a full-video decode —
and can optionally re-run a detector over them to attach boxes the live
sinks never record.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..video.clipstore import ClipStore
from .detstore import DetectionRecord
from .query import detected_frames

__all__ = ["ReplayResult", "replay_detections"]

_INF = float("inf")


@dataclass
class ReplayResult:
    """What a replay produced, plus proof it stayed within budget."""

    records: list[DetectionRecord] = field(default_factory=list)
    frames: list[int] = field(default_factory=list)
    clip_stats: dict = field(default_factory=dict)


def replay_detections(
    reader,
    stream,
    *,
    t0: float = -_INF,
    t1: float = _INF,
    stream_id: str | None = None,
    detector=None,
    detector_cls: str = "object",
    chunk_frames: int = 64,
    memory_budget_bytes: int = 64 * 2**20,
    disposition: str = "detected",
) -> ReplayResult:
    """Re-decode the frames a query matches, under a fixed memory budget.

    ``stream`` is the :class:`~repro.video.stream.VideoStream` (or synth
    stream) holding the pixels; ``stream_id`` is its id in the store
    (defaults to ``stream.stream_id``).  Frames the store knows but the
    clip no longer covers (shorter re-render, retention of the source) are
    skipped rather than fatal.  With ``detector`` set, each replayed frame
    runs ``detector.detect(pixels, background)`` and every detection
    becomes a box-filled record with ``disposition="replay"``; without it
    the result just carries the decoded frame indices and cache stats.
    """
    if stream_id is None:
        stream_id = getattr(stream, "stream_id", None) or str(stream)
    frames = detected_frames(reader, stream_id, t0=t0, t1=t1, disposition=disposition)
    clip = ClipStore(
        stream, chunk_frames=chunk_frames, memory_budget_bytes=memory_budget_bytes
    )
    background = stream.reference_image() if detector is not None else None
    fps = float(getattr(stream, "fps", 30.0))
    records: list[DetectionRecord] = []
    replayed: list[int] = []
    for f in frames:
        if not 0 <= f < len(clip):
            continue
        px = clip.pixels(f)
        replayed.append(f)
        if detector is None:
            continue
        for det in detector.detect(px, background):
            records.append(
                DetectionRecord(
                    stream=stream_id,
                    frame=f,
                    t=f / fps,
                    cls=detector_cls,
                    box=(
                        float(det.x0),
                        float(det.y0),
                        float(det.x1),
                        float(det.y1),
                    ),
                    score=float(det.confidence),
                    disposition="replay",
                )
            )
    return ReplayResult(records=records, frames=replayed, clip_stats=clip.stats())
