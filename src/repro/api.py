"""High-level FFS-VA facade — the library's front door.

Typical use::

    from repro import FFSVA, FFSVAConfig, jackson, make_stream

    system = FFSVA(FFSVAConfig(filter_degree=0.5, number_of_objects=1))
    stream = make_stream(jackson(), 3000, tor=0.1, seed=0)
    system.train(stream)                      # specialize SDD + SNM
    report = system.analyze_offline(stream, n_frames=1000)
    print(report.metrics.throughput_fps, len(report.events))

Two execution paths are offered:

* :meth:`FFSVA.analyze_offline` / :meth:`FFSVA.serve_online` run the real
  threaded pipeline (actual NumPy inference) — ground truth for behaviour.
* :meth:`FFSVA.simulate_offline` / :meth:`FFSVA.simulate_online` replay a
  :class:`~repro.core.trace.FrameTrace` through the discrete-event
  simulator with the paper-calibrated cost model — ground truth for
  paper-scale performance.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .baseline import baseline_offline, baseline_online
from .core.config import FFSVAConfig
from .core.metrics import RunMetrics
from .core.trace import FrameTrace, build_trace
from .devices.costs import CostModel
from .models.zoo import ModelZoo, StreamModels
from .obs import Telemetry
from .runtime.engine import FrameOutcome, ThreadedPipeline
from .sim import simulate_offline, simulate_online
from .video.stream import VideoStream

__all__ = ["AnalysisReport", "FFSVA"]


@dataclass
class AnalysisReport:
    """Result of a real (threaded) pipeline run."""

    metrics: RunMetrics
    outcomes: list[FrameOutcome]
    #: Frames that reached the reference model and matched the event
    #: (reference count >= NumberofObjects) — the system's actual output.
    events: list[FrameOutcome] = field(default_factory=list)
    #: The run's telemetry (trace spans, time-series) when it was enabled.
    telemetry: Telemetry | None = None


class FFSVA:
    """A Fast Filtering System for Video Analytics."""

    def __init__(
        self,
        config: FFSVAConfig | None = None,
        zoo: ModelZoo | None = None,
        cost_model: CostModel | None = None,
        telemetry: Telemetry | None = None,
    ):
        self.config = config or FFSVAConfig()
        self.zoo = zoo or ModelZoo()
        self.cost_model = cost_model or CostModel()
        #: Shared by every run this facade launches; built automatically
        #: when the config asks for telemetry, or pass your own.
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.from_config(self.config)
        )

    # ------------------------------------------------------------------
    # model management
    # ------------------------------------------------------------------
    def train(self, stream: VideoStream, **train_kwargs) -> StreamModels:
        """Train and register the stream's specialized SDD and SNM."""
        return self.zoo.train_for_stream(stream, **train_kwargs)

    def is_trained(self, stream: VideoStream) -> bool:
        return stream.stream_id in self.zoo

    # ------------------------------------------------------------------
    # real execution
    # ------------------------------------------------------------------
    def _ensure_trained(self, streams: list[VideoStream]) -> None:
        for s in streams:
            if s.stream_id not in self.zoo:
                self.zoo.train_for_stream(s)

    def analyze_offline(
        self, stream: VideoStream, n_frames: int | None = None
    ) -> AnalysisReport:
        """Analyze one stored stream as fast as possible (real inference)."""
        return self._run([stream], n_frames, online=False)

    def serve_online(
        self,
        streams: list[VideoStream],
        n_frames: int | None = None,
        paced_fps: float | None = None,
    ) -> AnalysisReport:
        """Serve live streams with paced arrivals (real inference)."""
        return self._run(streams, n_frames, online=True, paced_fps=paced_fps)

    def _run(self, streams, n_frames, *, online, paced_fps=None) -> AnalysisReport:
        self._ensure_trained(streams)
        pipeline = ThreadedPipeline(
            streams, self.zoo, self.config, telemetry=self.telemetry
        )
        metrics = pipeline.run(n_frames, online=online, paced_fps=paced_fps)
        terminal = pipeline.graph.terminal.name
        events = [
            o
            for o in pipeline.outcomes
            if o.stage == terminal
            and o.ref_count is not None
            and o.ref_count >= self.config.number_of_objects
        ]
        return AnalysisReport(
            metrics=metrics,
            outcomes=pipeline.outcomes,
            events=events,
            telemetry=self.telemetry,
        )

    # ------------------------------------------------------------------
    # trace building and simulation
    # ------------------------------------------------------------------
    def trace(self, stream: VideoStream, *, with_ref: bool = False, **kw) -> FrameTrace:
        """Run the real models over the stream and record their observables."""
        return build_trace(stream, self.zoo, with_ref=with_ref, **kw)

    def simulate_offline(self, traces: list[FrameTrace]) -> RunMetrics:
        """Paper-scale offline run on the calibrated virtual server."""
        return simulate_offline(
            traces, self.config, self.cost_model, telemetry=self.telemetry
        )

    def simulate_online(self, traces: list[FrameTrace], **kw) -> RunMetrics:
        """Paper-scale online run on the calibrated virtual server."""
        return simulate_online(
            traces, self.config, self.cost_model, telemetry=self.telemetry, **kw
        )

    def simulate_baseline_offline(self, traces: list[FrameTrace]) -> RunMetrics:
        """The YOLOv2-on-everything comparison system, offline."""
        return baseline_offline(traces, self.config, self.cost_model)

    def simulate_baseline_online(self, traces: list[FrameTrace], **kw) -> RunMetrics:
        """The YOLOv2-on-everything comparison system, online."""
        return baseline_online(traces, self.config, self.cost_model, **kw)
