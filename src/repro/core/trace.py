"""Frame traces: precomputed filter observables for a stream.

The simulated runtime must make the *same filtering decisions* the real
models make, at paper-scale frame counts.  The key observation is that every
threshold in FFS-VA is applied to a scalar the models compute per frame:

=========  =========================  ===========================
Filter      Observable                 Decision
=========  =========================  ===========================
SDD         distance to reference      pass iff distance > delta_diff
SNM         probability c              pass iff c >= t_pre(FilterDegree)
T-YOLO      detected object count      pass iff count >= NumberofObjects-relax
reference   detected object count      (final analysis / accuracy oracle)
=========  =========================  ===========================

A :class:`FrameTrace` stores those observables for every frame of a clip,
computed **once** by the real models in vectorized batches.  Any
combination of FilterDegree / NumberofObjects / relax / batch mechanism can
then be evaluated without re-running inference — which is exactly what the
threshold-sensitivity experiments (Figures 7 and 8) sweep.

Traces also power multi-stream experiments cheaply: the paper extracts
non-overlapping clips of one video to simulate many streams, and
:meth:`FrameTrace.rotated` provides the analogous trick (same scene
statistics, shifted phase).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from ..models.tyolo import count_filter_mask
from ..models.zoo import ModelZoo, StreamModels
from ..video.stream import VideoStream

__all__ = ["FrameTrace", "build_trace"]


@dataclass(frozen=True)
class FrameTrace:
    """Per-frame filter observables for one stream clip."""

    stream_id: str
    kind: str
    fps: float
    sdd_dist: np.ndarray
    sdd_threshold: float
    snm_prob: np.ndarray
    c_low: float
    c_high: float
    tyolo_count: np.ndarray
    gt_count: np.ndarray
    ref_count: np.ndarray | None = None
    #: Proposed T-YOLO active-cell ROIs as one flat ``(R, 5)`` int array of
    #: ``(frame, cy0, cx0, cy1, cx1)`` rows, sorted by frame.  These are the
    #: *raw* merged-blob boxes (config-independent); the whole-frame
    #: fallback is applied at use time by
    #: :func:`repro.models.mosaic.effective_regions`.  ``None`` marks a
    #: trace recorded before region proposal existed.
    mosaic_regions: np.ndarray | None = None

    def __post_init__(self) -> None:
        n = len(self.sdd_dist)
        for name in ("snm_prob", "tyolo_count", "gt_count"):
            if len(getattr(self, name)) != n:
                raise ValueError(f"{name} length mismatch ({len(getattr(self, name))} != {n})")
        if self.ref_count is not None and len(self.ref_count) != n:
            raise ValueError("ref_count length mismatch")
        if self.mosaic_regions is not None:
            r = self.mosaic_regions
            if r.ndim != 2 or r.shape[1] != 5:
                raise ValueError("mosaic_regions must be an (R, 5) array")
            if len(r) and (r[:, 0].min() < 0 or r[:, 0].max() >= n):
                raise ValueError("mosaic_regions frame index out of range")

    def __len__(self) -> int:
        return len(self.sdd_dist)

    # -- decisions -------------------------------------------------------
    def sdd_pass(self) -> np.ndarray:
        """Mask of frames SDD forwards (content differs from background)."""
        return self.sdd_dist > self.sdd_threshold

    def t_pre(self, filter_degree: float) -> float:
        """Equation 2 on this trace's calibrated thresholds."""
        if not 0.0 <= filter_degree <= 1.0:
            raise ValueError("filter_degree must be in [0, 1]")
        return (self.c_high - self.c_low) * filter_degree + self.c_low

    def snm_pass(self, filter_degree: float) -> np.ndarray:
        """Mask of frames SNM forwards at the given FilterDegree."""
        return self.snm_prob >= self.t_pre(filter_degree)

    def tyolo_pass(self, number_of_objects: int = 1, relax: int = 0) -> np.ndarray:
        """Mask of frames T-YOLO forwards at the given intensity threshold."""
        return count_filter_mask(self.tyolo_count, number_of_objects, relax)

    def cascade_pass(
        self, filter_degree: float, number_of_objects: int = 1, relax: int = 0
    ) -> np.ndarray:
        """Frames that survive all three filters (reach the reference model)."""
        return (
            self.sdd_pass()
            & self.snm_pass(filter_degree)
            & self.tyolo_pass(number_of_objects, relax)
        )

    def tor(self) -> float:
        """Ground-truth target-object ratio of the clip."""
        return float((self.gt_count > 0).mean()) if len(self) else 0.0

    def regions_by_frame(self) -> list[np.ndarray] | None:
        """Per-frame ``(R, 4)`` ROI arrays, or ``None`` when unrecorded.

        Splits the flat :attr:`mosaic_regions` table by frame; frames with
        no active cells get an empty array (they cost no canvas space).
        """
        if self.mosaic_regions is None:
            return None
        flat = self.mosaic_regions
        order = np.argsort(flat[:, 0], kind="stable")
        flat = flat[order]
        splits = np.searchsorted(flat[:, 0], np.arange(len(self) + 1))
        return [flat[splits[i] : splits[i + 1], 1:] for i in range(len(self))]

    # -- transforms ------------------------------------------------------
    def rotated(self, offset: int) -> "FrameTrace":
        """Circularly shift the clip by ``offset`` frames (a phase-shifted
        'non-overlapping clip' with identical content statistics)."""
        offset %= max(len(self), 1)
        roll = lambda a: None if a is None else np.roll(a, -offset)
        regions = self.mosaic_regions
        if regions is not None and len(regions):
            regions = regions.copy()
            regions[:, 0] = (regions[:, 0] - offset) % len(self)
            regions = regions[np.lexsort(regions.T[::-1])]
        return replace(
            self,
            sdd_dist=roll(self.sdd_dist),
            snm_prob=roll(self.snm_prob),
            tyolo_count=roll(self.tyolo_count),
            gt_count=roll(self.gt_count),
            ref_count=roll(self.ref_count),
            mosaic_regions=regions,
        )

    def sliced(self, start: int, stop: int) -> "FrameTrace":
        """A sub-clip trace over ``[start, stop)``."""
        if not 0 <= start < stop <= len(self):
            raise ValueError(f"bad slice [{start}, {stop}) for trace of {len(self)}")
        cut = lambda a: None if a is None else a[start:stop]
        regions = self.mosaic_regions
        if regions is not None:
            keep = (regions[:, 0] >= start) & (regions[:, 0] < stop)
            regions = regions[keep].copy()
            regions[:, 0] -= start
        return replace(
            self,
            sdd_dist=cut(self.sdd_dist),
            snm_prob=cut(self.snm_prob),
            tyolo_count=cut(self.tyolo_count),
            gt_count=cut(self.gt_count),
            ref_count=cut(self.ref_count),
            mosaic_regions=regions,
        )

    def renamed(self, stream_id: str) -> "FrameTrace":
        return replace(self, stream_id=stream_id)


def build_trace(
    stream: VideoStream,
    zoo: ModelZoo | None = None,
    *,
    with_ref: bool = False,
    n_frames: int | None = None,
    chunk: int = 256,
    **train_kwargs,
) -> FrameTrace:
    """Run the real models over ``stream`` and record their observables.

    Parameters
    ----------
    zoo:
        A :class:`ModelZoo`; the stream's specialized models are trained on
        demand if not yet registered.
    with_ref:
        Also run the reference model over *every* frame (needed by accuracy
        experiments, expensive otherwise).
    n_frames:
        Trace only the first ``n_frames`` frames.
    chunk:
        Frames rendered/processed per vectorized batch (memory knob).
    """
    zoo = zoo or ModelZoo()
    if stream.stream_id not in zoo:
        zoo.train_for_stream(stream, **train_kwargs)
    bundle: StreamModels = zoo[stream.stream_id]

    n = len(stream) if n_frames is None else min(n_frames, len(stream))
    sdd_dist = np.empty(n, dtype=np.float64)
    snm_prob = np.empty(n, dtype=np.float32)
    tyolo_count = np.empty(n, dtype=np.int64)
    ref_count = np.empty(n, dtype=np.int64) if with_ref else None
    region_rows: list[np.ndarray] = []

    for start in range(0, n, chunk):
        stop = min(start + chunk, n)
        px = stream.pixel_batch(np.arange(start, stop))
        sdd_dist[start:stop] = bundle.sdd.distances(px)
        snm_prob[start:stop] = bundle.snm.predict_proba(px)
        counts, regions = zoo.tyolo.count_and_regions(px, bundle.background)
        tyolo_count[start:stop] = counts
        for j, boxes in enumerate(regions):
            if len(boxes):
                frames_col = np.full((len(boxes), 1), start + j, dtype=np.int64)
                region_rows.append(np.hstack([frames_col, boxes]))
        if ref_count is not None:
            ref_count[start:stop] = zoo.reference.count_batch(px, bundle.background)

    mosaic_regions = (
        np.concatenate(region_rows)
        if region_rows
        else np.zeros((0, 5), dtype=np.int64)
    )

    return FrameTrace(
        stream_id=stream.stream_id,
        kind=stream.kind,
        fps=stream.fps,
        sdd_dist=sdd_dist,
        sdd_threshold=bundle.sdd.threshold,
        snm_prob=snm_prob,
        c_low=bundle.snm.c_low,
        c_high=bundle.snm.c_high,
        tyolo_count=tyolo_count,
        gt_count=stream.gt_counts()[:n].astype(np.int64),
        ref_count=ref_count,
        mosaic_regions=mosaic_regions,
    )
