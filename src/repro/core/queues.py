"""Bounded feedback queues connecting pipeline stages.

Section 4.3.1: "FFS-VA controls the detecting speed of a filter in an
earlier stage in the pipeline by detecting the queue depth of the filter at
a later stage.  For example, when the T-YOLO queue depth exceeds a
threshold, the SNM thread automatically slows down or even gets blocked, and
stops pushing frames to the T-YOLO queue until the T-YOLO queue is free."

:class:`FeedbackQueue` is the thread-safe implementation used by the real
threaded runtime; the discrete-event simulator reuses the same bounded-depth
semantics through :class:`SimQueue`, a non-locking variant, so both runtimes
share one behaviour contract:

* ``put`` blocks while the queue is at its depth threshold (back-pressure);
* ``pop_batch`` removes up to ``max_n`` items FIFO;
* an unbounded mode (``depth=None``) models the static-batch configuration,
  which runs without the feedback mechanism.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Any, Iterable

__all__ = ["QueueClosed", "FeedbackQueue", "SimQueue"]


class QueueClosed(Exception):
    """Raised when putting into (or draining from) a closed queue."""


class SimQueue:
    """Bounded FIFO for the discrete-event simulator (no locking).

    Supports **slot reservations**: when a stage starts a batch whose
    surviving frames will land in this queue at completion time, the
    simulator reserves the slots up front so concurrent stages cannot
    oversubscribe the depth threshold while the batch is in flight.
    Tracks high-water depth for diagnostics.
    """

    def __init__(self, depth: int | None = None, name: str = "q"):
        if depth is not None and depth < 1:
            raise ValueError("depth must be >= 1 or None")
        self.depth = depth
        self.name = name
        self._items: deque = deque()
        self.reserved = 0
        self.high_water = 0
        self.total_in = 0

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self):
        """Iterate queued items front to back without removing them."""
        return iter(self._items)

    def has_room(self, n: int = 1) -> bool:
        """True if ``n`` more items fit under the depth threshold."""
        return self.depth is None or len(self._items) + self.reserved + n <= self.depth

    def free_slots(self) -> int | None:
        """Unreserved remaining capacity, or None when unbounded."""
        if self.depth is None:
            return None
        return max(0, self.depth - len(self._items) - self.reserved)

    def reserve(self, n: int) -> bool:
        """Reserve ``n`` slots for an in-flight batch (False if no room)."""
        if n < 0:
            raise ValueError("cannot reserve a negative slot count")
        if not self.has_room(n):
            return False
        self.reserved += n
        return True

    def put(self, item: Any, *, reserved: bool = False) -> None:
        """Append an item, consuming a prior reservation when ``reserved``."""
        if reserved:
            if self.reserved <= 0:
                raise RuntimeError(f"queue {self.name}: put(reserved=True) without reservation")
            self.reserved -= 1
        elif not self.has_room(1):
            raise OverflowError(f"queue {self.name} over depth {self.depth}")
        self._items.append(item)
        self.total_in += 1
        self.high_water = max(self.high_water, len(self._items))

    def put_many(self, items: Iterable[Any], *, reserved: bool = False) -> None:
        for item in items:
            self.put(item, reserved=reserved)

    def peek(self) -> Any:
        return self._items[0]

    def pop(self) -> Any:
        return self._items.popleft()

    def pop_batch(self, max_n: int) -> list:
        n = min(max_n, len(self._items))
        return [self._items.popleft() for _ in range(n)]


class FeedbackQueue:
    """Thread-safe bounded FIFO with blocking back-pressure."""

    def __init__(self, depth: int | None = None, name: str = "q"):
        if depth is not None and depth < 1:
            raise ValueError("depth must be >= 1 or None")
        self.depth = depth
        self.name = name
        self._items: deque = deque()
        self._cond = threading.Condition()
        self._closed = False
        self.high_water = 0
        self.total_in = 0
        #: Telemetry hook point: how many ``put`` calls timed out against a
        #: full queue (each is one observed back-pressure stall).
        self.put_timeouts = 0

    def __len__(self) -> int:
        with self._cond:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._cond:
            return self._closed

    def close(self) -> None:
        """Mark end-of-stream; blocked producers/consumers wake up."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def put(self, item: Any, timeout: float | None = None) -> bool:
        """Append ``item``, blocking while the queue is full.

        Returns True on success, False on timeout.  Raises
        :class:`QueueClosed` if the queue was closed.
        """
        with self._cond:
            if self.depth is not None:
                ok = self._cond.wait_for(
                    lambda: self._closed or len(self._items) < self.depth,
                    timeout=timeout,
                )
                if not ok:
                    self.put_timeouts += 1
                    return False
            if self._closed:
                raise QueueClosed(self.name)
            self._items.append(item)
            self.total_in += 1
            self.high_water = max(self.high_water, len(self._items))
            self._cond.notify_all()
            return True

    def pop_batch(
        self,
        max_n: int,
        min_n: int = 1,
        timeout: float | None = None,
    ) -> list:
        """Remove up to ``max_n`` items, waiting for at least ``min_n``.

        ``min_n`` > 1 implements static batching (wait for a full batch);
        ``min_n`` = 1 implements dynamic batching (take what is there).  When
        the queue is closed, returns whatever remains (possibly fewer than
        ``min_n``, possibly empty).
        """
        if max_n < 1 or min_n < 1 or min_n > max_n:
            raise ValueError("need 1 <= min_n <= max_n")
        with self._cond:
            satisfied = self._cond.wait_for(
                lambda: self._closed or len(self._items) >= min_n,
                timeout=timeout,
            )
            if not satisfied:
                return []  # timed out before a full min_n batch formed
            n = min(max_n, len(self._items))
            out = [self._items.popleft() for _ in range(n)]
            if out:
                self._cond.notify_all()
            return out

    def drain(self) -> list:
        """Remove and return everything currently queued."""
        with self._cond:
            out = list(self._items)
            self._items.clear()
            if out:
                self._cond.notify_all()
            return out

    def snapshot(self) -> dict:
        """Telemetry hook point: a consistent gauge/counter snapshot."""
        with self._cond:
            return {
                "depth": len(self._items),
                "high_water": self.high_water,
                "total_in": self.total_in,
                "put_timeouts": self.put_timeouts,
                "closed": self._closed,
            }
