"""Batch-formation policies (Section 4.3.2).

The paper compares three mechanisms on the SNM stage:

* **static** — always wait for a full ``BatchSize`` of frames, with
  unbounded queues (no feedback).  Highest GPU efficiency, highest latency.
* **feedback** — full batches over bounded feedback queues: batch formation
  is additionally capped by the queue depth threshold, so "when the batch
  size is greater than the queue depth threshold, video frames have to wait
  in the SNM" — a slight throughput drop (~8%) at large BatchSize.
* **dynamic** — "if there are enough video frames in the SNM queue, SNM pops
  out a batch of (BatchSize) images from the queue for SNM prediction.
  Otherwise, the frames are popped from the SNM queue until the queue is
  empty."  Smaller average batches lower computational efficiency (~16%
  throughput) but halve the average latency.

The decision logic is a pure function over observable queue state so the
threaded runtime and the discrete-event simulator share it exactly.
"""

from __future__ import annotations

from .config import FFSVAConfig

__all__ = ["decide_batch", "decide_fused_batch", "fused_pop_order", "batch_wait_bound"]


def decide_batch(
    policy: str,
    queue_len: int,
    batch_size: int,
    queue_depth: int | None,
    *,
    eof: bool = False,
) -> int:
    """How many frames the SNM stage should pop right now (0 = keep waiting).

    Parameters
    ----------
    policy:
        ``"static"``, ``"feedback"``, or ``"dynamic"``.
    queue_len:
        Current number of frames waiting in the stage's input queue.
    batch_size:
        The configured BatchSize.
    queue_depth:
        The queue's depth threshold (None = unbounded, static mode).
    eof:
        True once the producer finished; remaining frames must flush even if
        a full batch can never form again.
    """
    if queue_len < 0 or batch_size < 1:
        raise ValueError("queue_len must be >= 0 and batch_size >= 1")
    if queue_len == 0:
        return 0
    if eof:
        return min(queue_len, batch_size)

    if policy == "static":
        return batch_size if queue_len >= batch_size else 0
    if policy == "feedback":
        # Full batches, but a bounded queue can never hold more than its
        # depth: the effective batch target is capped by the threshold.
        target = batch_size if queue_depth is None else min(batch_size, queue_depth)
        return target if queue_len >= target else 0
    if policy == "dynamic":
        return min(queue_len, batch_size)
    raise ValueError(f"unknown batch policy {policy!r}")


def decide_fused_batch(
    policy: str,
    queue_lens: list[int],
    batch_size: int,
    queue_depth: int | None,
    *,
    eof: bool = False,
    start: int = 0,
) -> list[int]:
    """Per-stream take counts for one cross-stream SNM mega-batch.

    The fused SNM stage (fan-in ``"fused"``) has one queue per stream and a
    single worker that pools them: the batch target is the same
    ``BatchSize`` :func:`decide_batch` would use, but it is satisfied from
    the *aggregate* of all queues — a full GPU-efficient batch forms as soon
    as the streams have enough frames between them, instead of waiting for
    any single stream to fill one.

    Frames are distributed round-robin, one at a time over the non-empty
    queues starting at stream ``start``, so no stream can monopolize the
    mega-batch (the same inter-stream fairness goal as the T-YOLO extraction
    cap of Section 3.2.3).  Returns a per-stream count vector summing to the
    decided batch size; all zeros means keep waiting.

    ``eof`` (every producer finished) flushes whatever remains even when the
    per-stream queues are partially empty and a full batch can never form.
    """
    if batch_size < 1:
        raise ValueError("batch_size must be >= 1")
    if any(n < 0 for n in queue_lens):
        raise ValueError("queue lengths must be >= 0")
    n_streams = len(queue_lens)
    takes = [0] * n_streams
    total = sum(queue_lens)
    if total == 0:
        return takes
    # The aggregate target follows decide_batch's policy semantics exactly,
    # applied to the pooled queue length.
    target = decide_batch(policy, total, batch_size, queue_depth, eof=eof)
    if target == 0:
        return takes
    left = list(queue_lens)
    picked = 0
    while picked < target:
        progressed = False
        for off in range(n_streams):
            idx = (start + off) % n_streams
            if left[idx] > 0 and picked < target:
                takes[idx] += 1
                left[idx] -= 1
                picked += 1
                progressed = True
        if not progressed:  # pragma: no cover - target <= total by construction
            break
    return takes


def fused_pop_order(takes: list[int], start: int = 0) -> list[int]:
    """Stream visit order matching :func:`decide_fused_batch`'s distribution.

    Both runtimes pop each stream's ``takes[idx]`` frames contiguously,
    visiting streams in round-robin order from ``start`` — this fixes the
    mega-batch layout so the threaded runtime and the simulator agree on
    batch composition (per-frame results are order-independent, but a shared
    convention keeps the two executors trivially comparable).
    """
    n = len(takes)
    return [(start + off) % n for off in range(n) if takes[(start + off) % n] > 0]


def batch_wait_bound(
    config: FFSVAConfig, input_fps: float, stage: str | None = None
) -> float:
    """Worst-case batch-formation wait (seconds) under the given config.

    For static/feedback policies a frame may wait for the rest of its batch
    to arrive; dynamic batching never waits once a frame is queued.  Used by
    capacity planning and asserted by the latency benchmarks.  ``stage``
    names the config-batched stage whose queue threshold caps feedback
    batches; it defaults to the paper's SNM.
    """
    if input_fps <= 0:
        raise ValueError("input_fps must be positive")
    if config.batch_policy == "dynamic":
        return 0.0
    target = config.batch_size
    if config.batch_policy == "feedback":
        if stage is None:
            from .pipeline import SNM as stage  # noqa: N811 - default stage
        target = min(target, config.queue_depth(stage))
    return (target - 1) / input_fps
