"""Disk cache for frame traces.

Building a trace renders thousands of frames and runs three models over
them; the benchmark suite reuses a small set of workload/TOR/seed
combinations across many experiments, so traces are cached as ``.npz``
archives keyed by a content hash of their generating parameters.

The cache lives in ``.trace_cache/`` next to the repository root by default
(override with the ``REPRO_TRACE_CACHE`` environment variable, or disable
with ``REPRO_TRACE_CACHE=off``).
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path

import numpy as np

from ..models.zoo import ModelZoo
from ..video.workloads import WorkloadSpec, make_stream
from .trace import FrameTrace, build_trace

__all__ = ["cache_dir", "cached_trace", "workload_trace"]

#: Bump to invalidate caches after behaviour-affecting model changes.
_CACHE_VERSION = 5


def cache_dir() -> Path | None:
    """Resolve the cache directory (None = caching disabled)."""
    env = os.environ.get("REPRO_TRACE_CACHE", "")
    if env.lower() == "off":
        return None
    if env:
        path = Path(env)
    else:
        path = Path(__file__).resolve().parents[3] / ".trace_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _key(params: dict) -> str:
    canon = json.dumps(params, sort_keys=True, default=str)
    return hashlib.sha1(canon.encode()).hexdigest()[:20]


def _save(path: Path, trace: FrameTrace) -> None:
    meta = dict(
        stream_id=trace.stream_id,
        kind=trace.kind,
        fps=trace.fps,
        sdd_threshold=trace.sdd_threshold,
        c_low=trace.c_low,
        c_high=trace.c_high,
        has_ref=trace.ref_count is not None,
        has_regions=trace.mosaic_regions is not None,
    )
    arrays = dict(
        sdd_dist=trace.sdd_dist,
        snm_prob=trace.snm_prob,
        tyolo_count=trace.tyolo_count,
        gt_count=trace.gt_count,
        meta=np.frombuffer(json.dumps(meta).encode(), dtype=np.uint8),
    )
    if trace.ref_count is not None:
        arrays["ref_count"] = trace.ref_count
    if trace.mosaic_regions is not None:
        arrays["mosaic_regions"] = trace.mosaic_regions
    tmp = path.with_suffix(".tmp.npz")
    np.savez_compressed(tmp, **arrays)
    os.replace(tmp, path)


def _load(path: Path) -> FrameTrace:
    with np.load(path) as z:
        meta = json.loads(bytes(z["meta"].tobytes()).decode())
        return FrameTrace(
            stream_id=meta["stream_id"],
            kind=meta["kind"],
            fps=meta["fps"],
            sdd_dist=z["sdd_dist"],
            sdd_threshold=meta["sdd_threshold"],
            snm_prob=z["snm_prob"],
            c_low=meta["c_low"],
            c_high=meta["c_high"],
            tyolo_count=z["tyolo_count"],
            gt_count=z["gt_count"],
            ref_count=z["ref_count"] if meta["has_ref"] else None,
            mosaic_regions=(
                z["mosaic_regions"] if meta.get("has_regions") else None
            ),
        )


def cached_trace(params: dict, builder) -> FrameTrace:
    """Fetch the trace for ``params`` from cache, building it if absent.

    ``builder`` is a zero-argument callable producing the trace.  A cached
    trace without reference counts does not satisfy a request with
    ``with_ref=True`` (encoded in the params), so such requests use distinct
    keys.
    """
    directory = cache_dir()
    if directory is None:
        return builder()
    path = directory / f"trace_{_key({**params, 'v': _CACHE_VERSION})}.npz"
    if path.exists():
        try:
            return _load(path)
        except Exception:
            path.unlink(missing_ok=True)
    trace = builder()
    _save(path, trace)
    return trace


def workload_trace(
    spec: WorkloadSpec,
    n_frames: int,
    *,
    tor: float | None = None,
    seed: int = 0,
    with_ref: bool = False,
    zoo: ModelZoo | None = None,
) -> FrameTrace:
    """Cached trace for one synthetic workload clip.

    This is the entry point the benchmarks use: it materializes the stream,
    trains its specialized models, runs the filter cascade observables, and
    caches the result on disk.
    """
    params = dict(
        workload=spec.name,
        kind=spec.kind,
        h=spec.render_height,
        w=spec.render_width,
        fps=spec.fps,
        tor=spec.base_tor if tor is None else tor,
        max_objects=spec.max_objects,
        intensity=spec.intensity,
        scene_len=spec.mean_scene_len,
        n=n_frames,
        seed=seed,
        ref=with_ref,
    )

    def builder() -> FrameTrace:
        stream = make_stream(spec, n_frames, tor=tor, seed=seed)
        return build_trace(stream, zoo or ModelZoo(), with_ref=with_ref)

    return cached_trace(params, builder)
