"""FFS-VA core: configuration, queues, batching, traces, and metrics."""

from .batching import batch_wait_bound, decide_batch
from .config import FFSVAConfig
from .metrics import LatencyStats, RunMetrics, StageCounters
from .planner import CapacityPlan, offline_throughput_bound, plan_capacity
from .queues import FeedbackQueue, QueueClosed, SimQueue
from .trace import FrameTrace, build_trace
from .tracecache import cached_trace, workload_trace

__all__ = [
    "FFSVAConfig",
    "decide_batch",
    "batch_wait_bound",
    "FeedbackQueue",
    "SimQueue",
    "QueueClosed",
    "FrameTrace",
    "build_trace",
    "cached_trace",
    "workload_trace",
    "RunMetrics",
    "StageCounters",
    "LatencyStats",
    "CapacityPlan",
    "plan_capacity",
    "offline_throughput_bound",
]
