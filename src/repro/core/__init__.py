"""FFS-VA core: the stage-graph control plane, configuration, queues,
batching, traces, and metrics."""

from .batching import batch_wait_bound, decide_batch
from .config import FFSVAConfig
from .metrics import (
    LatencyStats,
    RunMetrics,
    StageCounters,
    assert_stage_counts_equal,
)
from .pipeline import (
    CASCADES,
    STAGES,
    BatchRule,
    StageGraph,
    StageLogic,
    StageSpec,
    cascade,
    ffs_va_graph,
)
from .planner import CapacityPlan, offline_throughput_bound, plan_capacity
from .queues import FeedbackQueue, QueueClosed, SimQueue
from .trace import FrameTrace, build_trace
from .tracecache import cached_trace, workload_trace

__all__ = [
    "FFSVAConfig",
    "StageGraph",
    "StageSpec",
    "StageLogic",
    "BatchRule",
    "CASCADES",
    "STAGES",
    "cascade",
    "ffs_va_graph",
    "decide_batch",
    "batch_wait_bound",
    "FeedbackQueue",
    "SimQueue",
    "QueueClosed",
    "FrameTrace",
    "build_trace",
    "cached_trace",
    "workload_trace",
    "RunMetrics",
    "StageCounters",
    "LatencyStats",
    "assert_stage_counts_equal",
    "CapacityPlan",
    "plan_capacity",
    "offline_throughput_bound",
]
