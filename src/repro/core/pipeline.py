"""The stage-graph control plane shared by both runtimes.

DESIGN.md's key decision #1 is "two runtimes, one control plane".  This
module is that control plane made first-class: a :class:`StageGraph` is a
declarative description of a filter cascade — one :class:`StageSpec` per
stage carrying its name, default device, fan-in mode, batch-formation rule,
and a pure :class:`StageLogic` that produces pass/drop verdicts — and both
executors (:class:`~repro.runtime.engine.ThreadedPipeline` and
:class:`~repro.sim.simulator.PipelineSimulator`) construct their queues,
workers, and event tables from it.  The graph is the single source of truth
for stage names and topology; nothing outside this module hard-codes the
SDD → SNM → T-YOLO → ref chain.

A stage declares *what* it computes in two interchangeable forms:

* ``logic.evaluate(pixels, bundles, zoo, config)`` runs real inference on a
  batch of frames (threaded runtime);
* ``logic.trace_mask(trace, config)`` replays the same decision from a
  precomputed :class:`~repro.core.trace.FrameTrace` (simulator).

Keeping both on one object is what makes runtime-vs-simulator
cross-validation a single assertion (see
:func:`repro.core.metrics.assert_stage_counts_equal`).

Registering a custom stage::

    from repro.core.pipeline import (
        PER_STREAM, BatchRule, StageGraph, StageLogic, StageSpec,
        sdd_spec, tyolo_spec, ref_spec,
    )

    blur = StageSpec(
        name="blur",
        device="cpu0",
        fan_in=PER_STREAM,
        batch=BatchRule("fixed", 8),
        logic=StageLogic(
            evaluate=lambda pixels, bundles, zoo, cfg: (laplacian_ok(pixels), None),
            trace_mask=lambda trace, cfg: np.ones(len(trace), dtype=bool),
        ),
        queue_key="sdd",  # reuse an existing queue-depth threshold
        cost=(0.0, 1e-4),  # (per-batch overhead s, per-frame s) for the DES
    )
    graph = StageGraph([sdd_spec(), blur, tyolo_spec(), ref_spec()], name="blur-cascade")
    ThreadedPipeline(streams, zoo, config, graph=graph).run()

The calibrated :class:`~repro.devices.costs.CostModel` only knows the
paper's four stages, so a custom stage must carry its own ``cost`` pair to
run in the simulator; :func:`stage_service_time` dispatches between the
two.  The threaded runtime measures real compute and ignores ``cost``.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable, Iterator, Sequence

import numpy as np

from ..models.tyolo import count_filter_mask

__all__ = [
    "SDD",
    "SNM",
    "TYOLO",
    "REF",
    "STAGES",
    "ABORTED",
    "DROPPED",
    "PER_STREAM",
    "SHARED_RR",
    "MERGED",
    "FUSED",
    "EXECUTORS",
    "BatchRule",
    "StageLogic",
    "StageSpec",
    "StageGraph",
    "CASCADES",
    "cascade",
    "sdd_spec",
    "snm_spec",
    "tyolo_spec",
    "ref_spec",
    "ffs_va_graph",
    "scaled_graph",
    "effective_batch",
    "arbitration_batch",
    "stage_service_time",
    "stage_per_frame_time",
]

# ----------------------------------------------------------------------
# Canonical stage names.  This is the only module where they exist as
# string literals; everything else imports them (or reads them off a graph).
# ----------------------------------------------------------------------
SDD = "sdd"
SNM = "snm"
TYOLO = "tyolo"
REF = "ref"

#: The paper's stages in pipeline order (the default cascade).
STAGES = (SDD, SNM, TYOLO, REF)

#: Terminal disposition of a frame abandoned mid-flight when the pipeline
#: aborts (a worker failed); distinct from every stage name.
ABORTED = "aborted"

#: Terminal disposition of a frame given up at a full or closed inter-stage
#: queue (a ``put`` that exceeded ``FFSVAConfig.queue_put_timeout``, or a
#: downstream queue already closed); distinct from every stage name.
DROPPED = "dropped"

# Fan-in modes: how a stage's input queue(s) relate to the streams.
PER_STREAM = "per_stream"  # one queue and one worker per stream
SHARED_RR = "shared_rr"  # one queue per stream, one worker round-robins
MERGED = "merged"  # a single queue merging all streams
FUSED = "fused"  # one queue per stream, one worker forming cross-stream mega-batches
_FAN_INS = (PER_STREAM, SHARED_RR, MERGED, FUSED)

#: How a stage's work is executed by the threaded runtime: in the worker
#: thread itself, or shipped to a pool of worker processes
#: (:mod:`repro.runtime.procpool`) via the shared-memory frame plane.
EXECUTORS = ("thread", "process")

_BATCH_KINDS = ("fixed", "config", "rr_cap")


@dataclass(frozen=True)
class BatchRule:
    """How a stage forms batches from its input queue(s).

    * ``fixed`` — always take up to ``size`` frames (SDD event batching,
      the one-frame reference batches).
    * ``config`` — apply the configured static/feedback/dynamic policy via
      :func:`repro.core.batching.decide_batch` with ``config.batch_size``
      (the SNM batch mechanism of Section 4.3.2).
    * ``rr_cap`` — take up to ``config.num_t_yolo`` frames per stream per
      round-robin visit (the T-YOLO extraction cap of Section 3.2.3).
    """

    kind: str
    size: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _BATCH_KINDS:
            raise ValueError(f"batch rule kind must be one of {_BATCH_KINDS}")
        if self.size < 1:
            raise ValueError("batch rule size must be >= 1")


@dataclass(frozen=True)
class StageLogic:
    """The pure decision function of a stage, in both executable forms.

    ``evaluate(pixels, bundles, zoo, config)`` receives a stacked pixel
    batch plus the per-frame :class:`~repro.models.zoo.StreamModels`
    bundles (all from one stream except at ``merged`` stages) and returns
    ``(passes, info)``: a boolean pass mask and an optional per-frame info
    array (terminal stages report it as the frame's ``ref_count``).

    ``trace_mask(trace, config)`` returns the same verdict for every frame
    of a precomputed trace at once.

    ``build_fused(bundles, zoo, config)``, when present, supports the
    ``fused`` fan-in mode: called once per run with *all* streams' model
    bundles, it returns ``fused_evaluate(pixels, stream_idx) ->
    (passes, info)`` — an evaluator over cross-stream mega-batches whose
    per-frame stream membership is given by the ``stream_idx`` vector.
    Stages without one still work under ``fused`` fan-in: the runtime
    falls back to grouping the mega-batch by stream and calling
    ``evaluate`` per group.
    """

    evaluate: Callable
    trace_mask: Callable
    build_fused: Callable | None = None


@dataclass(frozen=True)
class StageSpec:
    """Declaration of one pipeline stage."""

    name: str
    device: str  # default device hint (placements may override)
    fan_in: str
    batch: BatchRule
    logic: StageLogic
    #: Queue-depth key into ``FFSVAConfig.queue_depths`` (defaults to name).
    queue_key: str | None = None
    #: Terminal stages consume every frame (no pass/drop routing).
    terminal: bool = False
    #: Optional ``(per_batch_overhead_s, per_frame_s)`` service-time pair
    #: for the simulator.  ``None`` means the stage is one of the paper's
    #: calibrated stages and the cost model resolves it by name.
    cost: tuple[float, float] | None = None
    #: ``"thread"`` runs the stage's logic inline in its worker thread;
    #: ``"process"`` ships batches to a :class:`repro.runtime.procpool.ProcPool`
    #: over the shared-memory frame plane (CPU stages only — the flagship
    #: user is SDD, which the GIL otherwise serializes across streams).
    executor: str = "thread"
    #: Object-level consolidation: the stage packs active regions from its
    #: mega-batch onto composite canvases and runs the detector per canvas.
    #: The simulator then charges :meth:`CostModel.mosaic_service_time`
    #: (per-canvas, not per-frame) for this stage's batches.  Only
    #: meaningful with ``fused`` fan-in.
    mosaic: bool = False

    def __post_init__(self) -> None:
        if not self.name or self.name in (ABORTED, DROPPED):
            raise ValueError(f"invalid stage name {self.name!r}")
        if self.fan_in not in _FAN_INS:
            raise ValueError(f"fan_in must be one of {_FAN_INS}")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")
        if self.cost is not None and (len(self.cost) != 2 or min(self.cost) < 0):
            raise ValueError("cost must be a (overhead >= 0, per_frame >= 0) pair")
        if self.mosaic and self.fan_in != FUSED:
            raise ValueError("mosaic stages require fused fan-in")

    @property
    def depth_key(self) -> str:
        return self.queue_key or self.name


class StageGraph:
    """An ordered chain of stages — the pipeline definition.

    Both runtimes execute a graph front to back: frames enter the first
    stage, survivors of stage *i* flow to stage *i+1*, and the (single,
    last) terminal stage disposes of every frame that reaches it.
    """

    def __init__(self, specs: Sequence[StageSpec], name: str = "custom"):
        specs = tuple(specs)
        if not specs:
            raise ValueError("a stage graph needs at least one stage")
        names = [s.name for s in specs]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate stage names in {names}")
        for s in specs[:-1]:
            if s.terminal:
                raise ValueError(f"terminal stage {s.name!r} must come last")
        if not specs[-1].terminal:
            raise ValueError("the last stage must be terminal")
        self.specs = specs
        self.name = name
        self._index = {s.name: i for i, s in enumerate(specs)}

    # -- container protocol -------------------------------------------
    def __iter__(self) -> Iterator[StageSpec]:
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def __contains__(self, name: str) -> bool:
        return name in self._index

    def __getitem__(self, key: str | int) -> StageSpec:
        if isinstance(key, int):
            return self.specs[key]
        return self.specs[self._index[key]]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        chain = " -> ".join(s.name for s in self.specs)
        return f"StageGraph({self.name!r}: {chain})"

    # -- topology ------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(s.name for s in self.specs)

    @property
    def first(self) -> StageSpec:
        return self.specs[0]

    @property
    def terminal(self) -> StageSpec:
        return self.specs[-1]

    def next(self, name: str) -> StageSpec | None:
        """The stage downstream of ``name`` (None for the terminal)."""
        i = self._index[name]
        return self.specs[i + 1] if i + 1 < len(self.specs) else None

    def upstream(self, name: str) -> tuple[StageSpec, ...]:
        """All stages strictly before ``name``, in order."""
        return self.specs[: self._index[name]]

    def default_placement_map(self) -> dict[str, list[str]]:
        """Stage → device-name lists from each spec's device hint."""
        return {s.name: [s.device] for s in self.specs}

    # -- trace-side decisions ------------------------------------------
    def trace_masks(self, trace, config) -> dict[str, np.ndarray]:
        """Each stage's pass verdict over a full trace."""
        return {
            s.name: np.asarray(s.logic.trace_mask(trace, config), dtype=bool)
            for s in self.specs
        }

    def cascade_mask(self, trace, config) -> np.ndarray:
        """Frames surviving every stage of the graph."""
        alive = np.ones(len(trace), dtype=bool)
        for s in self.specs:
            alive &= np.asarray(s.logic.trace_mask(trace, config), dtype=bool)
        return alive

    def stage_fractions(self, trace, config) -> dict[str, float]:
        """Fraction of source frames that *reach* each stage (Figure 5)."""
        n = max(len(trace), 1)
        alive = np.ones(len(trace), dtype=bool)
        fractions: dict[str, float] = {}
        for s in self.specs:
            fractions[s.name] = float(alive.sum()) / n
            alive = alive & np.asarray(s.logic.trace_mask(trace, config), dtype=bool)
        return fractions


# ----------------------------------------------------------------------
# Batch-size helpers shared by the planner and the simulator.
# ----------------------------------------------------------------------
def effective_batch(spec: StageSpec, config) -> int:
    """Steady-state batch size the cost model should amortize over."""
    rule = spec.batch
    if rule.kind == "config":
        if config.batch_policy == "static":
            return config.batch_size
        return min(config.batch_size, config.queue_depth(spec.depth_key))
    if rule.kind == "rr_cap":
        return config.num_t_yolo
    return max(1, rule.size)


def arbitration_batch(spec: StageSpec, config) -> int:
    """Batch size for estimating a stage's pending work when several
    stages share one device (the simulator's GPU arbitration)."""
    rule = spec.batch
    if rule.kind == "config":
        return max(config.batch_size, 1)
    if rule.kind == "rr_cap":
        return config.num_t_yolo
    return max(1, rule.size)


def stage_service_time(
    spec: StageSpec, costs, batch_size: int, parallelism: int = 1
) -> float:
    """Device busy time for one batch at ``spec``.

    The spec's own ``cost`` pair wins (custom stages); otherwise the
    calibrated cost model resolves the stage by name.  ``parallelism`` > 1
    models a process-pool executor (``spec.executor == "process"``): N
    worker processes drain the stage's batches concurrently, so the
    simulator's single service event shrinks by that factor — an idealized
    linear-scaling approximation of the pool (counters are unaffected).
    """
    if spec.cost is not None:
        overhead, per_frame = spec.cost
        dt = overhead + batch_size * per_frame
    else:
        dt = costs.service_time(spec.name, batch_size)
    return dt / max(1, parallelism)


def stage_per_frame_time(spec: StageSpec, costs, batch_size: int) -> float:
    """Amortized per-frame service time at the given batch size."""
    return stage_service_time(spec, costs, batch_size) / batch_size


# ----------------------------------------------------------------------
# The paper's stage logic.
# ----------------------------------------------------------------------
def _sdd_evaluate(pixels, bundles, zoo, config):
    return bundles[0].sdd.passes(pixels), None


def _sdd_mask(trace, config):
    return trace.sdd_pass()


def _snm_evaluate(pixels, bundles, zoo, config):
    snm = bundles[0].snm
    probs = snm.predict_proba(pixels)
    return snm.passes(probs, config.filter_degree), None


def _snm_mask(trace, config):
    return trace.snm_pass(config.filter_degree)


def _snm_build_fused(bundles, zoo, config):
    """Cross-stream SNM evaluator: one weight-stacked forward per mega-batch.

    Built once per run from every stream's SNM (paper Section 3.1.2: the
    per-stream SNMs are all resident on GPU-0 and batched there).  The
    returned callable is bit-identical to running each stream's
    ``snm.predict_proba`` on its own frames of the batch — see
    :class:`repro.models.snm.FusedSNM`.
    """
    from ..models.snm import FusedSNM

    fused = FusedSNM([b.snm for b in bundles])
    base_degree = config.filter_degree

    def fused_evaluate(pixels, stream_idx, degrees=None):
        # ``degrees`` is the adaptive planner's per-stream FilterDegree
        # vector; None keeps the configured static degree for every stream.
        probs = fused.predict_proba(pixels, stream_idx)
        degree = base_degree if degrees is None else degrees
        return fused.passes(probs, stream_idx, degree), None

    return fused_evaluate


def _tyolo_evaluate(pixels, bundles, zoo, config):
    counts = zoo.tyolo.count_batch(pixels, bundles[0].background)
    return count_filter_mask(counts, config.number_of_objects, config.relax), counts


def _tyolo_build_fused(bundles, zoo, config):
    """Cross-stream mosaic T-YOLO evaluator (object-level consolidation).

    The returned callable packs the active regions of every frame in a
    mega-batch — proposed from the detector's own background-deviation
    response, with the whole-frame fallback of
    :func:`repro.models.mosaic.effective_regions` — onto composite
    canvases, runs blob detection once per canvas, and credits each
    detection back to its source frame.  Counts are exactly those of the
    per-frame path (see models/mosaic.py for why), so the filter verdicts
    are identical; only the detector-invocation count changes.

    The :class:`~repro.models.mosaic.MosaicStats` accumulated across every
    batch of the run ride on the closure as ``fused_evaluate.mosaic_stats``
    for the telemetry plane and the final RunMetrics.
    """
    from ..models.mosaic import (
        MosaicStats,
        Region,
        effective_regions,
        mosaic_counts,
        plan_mosaics,
    )

    det = zoo.tyolo.detector
    grid = det.grid
    stats = MosaicStats()

    def fused_evaluate(pixels, stream_idx, degrees=None):
        # ``degrees`` is accepted for call-site uniformity with the fused
        # SNM evaluator; the mosaic detector has no SNM threshold to vary.
        n = len(pixels)
        stream_idx = np.asarray(stream_idx)
        cells = np.empty((n, grid, grid), dtype=np.float32)
        for s in np.unique(stream_idx):
            mask = stream_idx == s
            cells[mask] = det.response_cells(pixels[mask], bundles[s].background)
        proposed = det.propose_regions(cells)
        regions = [
            Region(i, int(b[0]), int(b[1]), int(b[2]), int(b[3]))
            for i in range(n)
            for b in effective_regions(proposed[i], grid)
        ]
        plan = plan_mosaics(regions, config.mosaic_canvas, config.mosaic_gutter)
        counts = mosaic_counts(det, plan, cells, n)
        stats.observe(plan, n)
        return count_filter_mask(counts, config.number_of_objects, config.relax), counts

    fused_evaluate.mosaic_stats = stats
    return fused_evaluate


def _tyolo_mask(trace, config):
    return trace.tyolo_pass(config.number_of_objects, config.relax)


def _ref_evaluate(pixels, bundles, zoo, config):
    counts = np.array(
        [zoo.reference.count(px, b.background) for px, b in zip(pixels, bundles)],
        dtype=np.int64,
    )
    return np.ones(len(pixels), dtype=bool), counts


def _all_pass_mask(trace, config):
    return np.ones(len(trace), dtype=bool)


def sdd_spec() -> StageSpec:
    """Stream-specialized difference detector on the CPU (Section 3.2.1)."""
    return StageSpec(
        name=SDD,
        device="cpu0",
        fan_in=PER_STREAM,
        batch=BatchRule("fixed", 16),
        logic=StageLogic(_sdd_evaluate, _sdd_mask),
    )


def snm_spec() -> StageSpec:
    """Stream-specialized tiny CNN on the filter GPU (Section 3.2.2)."""
    return StageSpec(
        name=SNM,
        device="gpu0",
        fan_in=PER_STREAM,
        batch=BatchRule("config"),
        logic=StageLogic(_snm_evaluate, _snm_mask, build_fused=_snm_build_fused),
    )


def tyolo_spec() -> StageSpec:
    """Shared T-YOLO, round-robin over streams (Section 3.2.3)."""
    return StageSpec(
        name=TYOLO,
        device="gpu0",
        fan_in=SHARED_RR,
        batch=BatchRule("rr_cap"),
        logic=StageLogic(_tyolo_evaluate, _tyolo_mask, build_fused=_tyolo_build_fused),
    )


def ref_spec() -> StageSpec:
    """The full-feature reference model, merged onto its own GPU."""
    return StageSpec(
        name=REF,
        device="gpu1",
        fan_in=MERGED,
        batch=BatchRule("fixed", 1),
        logic=StageLogic(_ref_evaluate, _all_pass_mask),
        terminal=True,
    )


def ffs_va_graph() -> StageGraph:
    """The paper's full cascade: SDD → SNM → T-YOLO → reference."""
    return StageGraph([sdd_spec(), snm_spec(), tyolo_spec(), ref_spec()], name="ffs-va")


def scaled_graph(
    graph: StageGraph,
    *,
    executor: str = "thread",
    snm_fusion: bool = False,
    tyolo_mosaic: bool = False,
) -> StageGraph:
    """Apply the scale-out execution options of a config to a stage graph.

    * ``executor="process"`` marks every CPU-hosted stage to run its batches
      on a worker-process pool (the threaded runtime ignores the flag for
      GPU stages, whose device lock already serializes them);
    * ``snm_fusion=True`` switches the SNM stage's fan-in to ``fused``: one
      worker pops all streams' queues into cross-stream mega-batches;
    * ``tyolo_mosaic=True`` promotes T-YOLO to a fused mosaic stage: the
      round-robin extraction cap gives way to the shared
      :func:`repro.core.batching.decide_fused_batch` policy, and each
      mega-batch's active regions are consolidated onto composite canvases
      (one detector pass per canvas — see models/mosaic.py).

    Returns the graph unchanged (same object) when no option is active.
    """
    if executor not in EXECUTORS:
        raise ValueError(f"executor must be one of {EXECUTORS}")
    if executor == "thread" and not snm_fusion and not tyolo_mosaic:
        return graph
    specs = []
    changed = False
    for spec in graph:
        if executor == "process" and spec.device.startswith("cpu") and not spec.terminal:
            spec = replace(spec, executor="process")
            changed = True
        if snm_fusion and spec.name == SNM and spec.fan_in == PER_STREAM:
            spec = replace(spec, fan_in=FUSED)
            changed = True
        if tyolo_mosaic and spec.name == TYOLO and spec.fan_in == SHARED_RR:
            spec = replace(
                spec, fan_in=FUSED, batch=BatchRule("config"), mosaic=True
            )
            changed = True
        specs.append(spec)
    if not changed:
        return graph
    return StageGraph(specs, name=graph.name)


#: Named cascade compositions selectable via ``FFSVAConfig.cascade``.
#: The alternatives power the X2 composition ablation: each drops one or
#: more prepositive filters while keeping the same execution machinery.
CASCADES: dict[str, StageGraph] = {
    "ffs-va": ffs_va_graph(),
    "no-sdd": StageGraph([snm_spec(), tyolo_spec(), ref_spec()], name="no-sdd"),
    "no-snm": StageGraph([sdd_spec(), tyolo_spec(), ref_spec()], name="no-snm"),
    "snm-only": StageGraph([snm_spec(), ref_spec()], name="snm-only"),
    "tyolo-only": StageGraph([tyolo_spec(), ref_spec()], name="tyolo-only"),
    "ref-only": StageGraph([ref_spec()], name="ref-only"),
}


def cascade(which: str | StageGraph | None) -> StageGraph:
    """Resolve a cascade name (or pass a graph through; None → default)."""
    if which is None:
        return CASCADES["ffs-va"]
    if isinstance(which, StageGraph):
        return which
    try:
        return CASCADES[which]
    except KeyError:
        raise ValueError(
            f"unknown cascade {which!r}; known: {sorted(CASCADES)}"
        ) from None
