"""Analytic capacity model for FFS-VA deployments.

The simulator answers "how does this exact configuration behave"; this
module answers the designer's questions in closed form, using the same
cost model and a trace's measured pass fractions:

* how much device time does one stream consume per second at each stage,
* which device is the bottleneck,
* how many concurrent real-time streams a server supports, and
* what offline throughput a stream mix achieves.

The analysis mirrors Section 2.3's motivation arithmetic (a GPU supports
two YOLOv2 streams; a dual-GPU server four) and is validated against the
discrete-event simulator in the test suite — the two must agree to within
the granularity effects the analytic model ignores (batch quantization,
round-robin scheduling, queue ramp-up).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..devices.costs import CostModel
from ..devices.placement import Placement, ffs_va_placement
from .config import FFSVAConfig
from .pipeline import effective_batch, stage_per_frame_time
from .trace import FrameTrace

__all__ = ["StageLoad", "CapacityPlan", "plan_capacity", "offline_throughput_bound"]


@dataclass(frozen=True)
class StageLoad:
    """Per-stream service demand of one stage."""

    stage: str
    device: str
    fraction: float  # fraction of source frames this stage executes
    per_frame: float  # amortized seconds of device time per executed frame
    seconds_per_stream_second: float  # device seconds consumed per stream second


@dataclass
class CapacityPlan:
    """Result of the analytic capacity analysis."""

    loads: list[StageLoad]
    device_demand: dict[str, float]  # device seconds per stream second
    bottleneck_device: str
    max_streams: int
    include_reference: bool
    config: FFSVAConfig = field(repr=False, default=None)  # type: ignore[assignment]

    def utilization_at(self, n_streams: int) -> dict[str, float]:
        """Predicted device utilizations with ``n_streams`` live streams."""
        return {d: v * n_streams for d, v in self.device_demand.items()}


def plan_capacity(
    trace: FrameTrace,
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    placement: Placement | None = None,
    *,
    utilization_cap: float = 1.0,
) -> CapacityPlan:
    """How many concurrent real-time streams like ``trace`` fit on a server.

    Each stage's demand is ``fraction * per_frame_time * stream_fps`` device
    seconds per stream second, spread evenly over the devices hosting the
    stage.  The supported stream count is the largest N keeping every
    counted device at or below ``utilization_cap``.

    With ``config.ref_overflow_to_storage`` (the default, see DESIGN.md),
    the reference device is excluded from the real-time constraint — its
    overflow goes to storage — matching what the simulator enforces.
    """
    config = config or FFSVAConfig()
    costs = cost_model or CostModel()
    placement = placement or ffs_va_placement()
    graph = config.graph()
    fractions = graph.stage_fractions(trace, config)
    fps = config.stream_fps

    loads: list[StageLoad] = []
    demand: dict[str, float] = {name: 0.0 for name in placement.devices}
    for spec in graph:
        devices = placement.stage_devices.get(spec.name)
        if not devices:
            continue
        per_frame = stage_per_frame_time(spec, costs, effective_batch(spec, config))
        frac = fractions[spec.name]
        per_stream = frac * per_frame * fps
        share = per_stream / len(devices)
        for dev in devices:
            demand[dev] += share
            loads.append(StageLoad(spec.name, dev, frac, per_frame, share))

    include_ref = not config.ref_overflow_to_storage
    filter_devices = {
        name
        for spec in graph
        if not spec.terminal
        for name in placement.stage_devices.get(spec.name, [])
    }
    counted = {
        name: load
        for name, load in demand.items()
        if load > 0 and (include_ref or name in filter_devices)
    }
    if not counted:
        raise ValueError("no device carries load; check the placement")
    bottleneck = max(counted, key=lambda name: counted[name])
    max_streams = int(utilization_cap / counted[bottleneck])
    return CapacityPlan(
        loads=loads,
        device_demand=demand,
        bottleneck_device=bottleneck,
        max_streams=max_streams,
        include_reference=include_ref,
        config=config,
    )


def offline_throughput_bound(
    trace: FrameTrace,
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    placement: Placement | None = None,
) -> float:
    """Upper bound on offline FPS for one stream: the bottleneck stage rate.

    Offline analysis is work-conserving, so throughput is limited by the
    most loaded device: ``1 / max_d(sum over its stages of
    fraction * per_frame)``.  The reference stage always counts offline —
    the run is not finished until it has drained.
    """
    config = config or FFSVAConfig()
    costs = cost_model or CostModel()
    placement = placement or ffs_va_placement()
    graph = config.graph()
    fractions = graph.stage_fractions(trace, config)
    per_device: dict[str, float] = {}
    for spec in graph:
        devices = placement.stage_devices.get(spec.name)
        if not devices:
            continue
        per_frame = stage_per_frame_time(spec, costs, effective_batch(spec, config))
        cost = fractions[spec.name] * per_frame / len(devices)
        for dev in devices:
            per_device[dev] = per_device.get(dev, 0.0) + cost
    worst = max(per_device.values())
    return 1.0 / worst if worst > 0 else float("inf")
