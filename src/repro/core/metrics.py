"""Pipeline metrics: per-stage counters, throughput, and latency.

These are the quantities every figure in the evaluation reports:
throughput in FPS (Figures 3, 4, 7, 9, 10), per-frame latency (Figures 3,
4, 9, 10), the ratio of frames executed in each filter (Figure 5), and
output-frame counts (Figure 8).
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass, field

import numpy as np

from .pipeline import STAGES

__all__ = [
    "StageCounters",
    "LatencyStats",
    "RunMetrics",
    "assert_stage_counts_equal",
]


@dataclass
class StageCounters:
    """Frames entering, passing, and filtered at one stage."""

    entered: int = 0
    passed: int = 0
    filtered: int = 0

    def record(self, n_in: int, n_passed: int) -> None:
        if n_passed > n_in:
            raise ValueError("cannot pass more frames than entered")
        self.entered += n_in
        self.passed += n_passed
        self.filtered += n_in - n_passed

    @property
    def pass_rate(self) -> float:
        return self.passed / self.entered if self.entered else 0.0


@dataclass
class LatencyStats:
    """Summary of per-frame latencies (seconds)."""

    count: int = 0
    mean: float = 0.0
    p50: float = 0.0
    p95: float = 0.0
    p99: float = 0.0
    max: float = 0.0

    @classmethod
    def from_samples(cls, samples: np.ndarray | list) -> "LatencyStats":
        arr = np.asarray(samples, dtype=np.float64)
        if arr.size == 0:
            return cls()
        return cls(
            count=int(arr.size),
            mean=float(arr.mean()),
            p50=float(np.percentile(arr, 50)),
            p95=float(np.percentile(arr, 95)),
            p99=float(np.percentile(arr, 99)),
            max=float(arr.max()),
        )


@dataclass
class RunMetrics:
    """Everything measured in one pipeline run (real or simulated)."""

    n_streams: int = 0
    duration: float = 0.0  # makespan (virtual or wall seconds)
    frames_offered: int = 0  # frames the sources produced
    frames_ingested: int = 0  # frames that entered the pipeline (SDD)
    frames_to_ref: int = 0  # frames that reached the reference model
    stages: dict[str, StageCounters] = field(
        default_factory=lambda: {s: StageCounters() for s in STAGES}
    )
    #: End-to-end latency of frames that completed the reference stage.
    ref_latency: LatencyStats = field(default_factory=LatencyStats)
    #: Latency over all ingested frames (to wherever each frame's journey
    #: ended: the stage that filtered it, or the reference model).
    frame_latency: LatencyStats = field(default_factory=LatencyStats)
    device_utilization: dict[str, float] = field(default_factory=dict)
    queue_high_water: dict[str, int] = field(default_factory=dict)
    #: Extra run-specific data (per-stream rates, admission events, ...).
    extra: dict = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def throughput_fps(self) -> float:
        """Aggregate processed frames per second over the run."""
        return self.frames_ingested / self.duration if self.duration > 0 else 0.0

    @property
    def per_stream_fps(self) -> float:
        """Average per-stream processing rate."""
        return self.throughput_fps / self.n_streams if self.n_streams else 0.0

    @property
    def ingest_ratio(self) -> float:
        """Fraction of offered frames the pipeline ingested (1.0 = kept up)."""
        if not self.frames_offered:
            return 1.0
        return self.frames_ingested / self.frames_offered

    def achieved_stream_fps(self, stream_fps: float = 30.0) -> float:
        """Offered rate scaled by the ingest ratio: the per-stream rate the
        sources actually sustained (robust to horizon slack in online runs)."""
        return stream_fps * self.ingest_ratio

    def stage_fraction(self, stage: str) -> float:
        """Fraction of ingested frames executed by ``stage`` (Figure 5)."""
        if not self.frames_ingested:
            return 0.0
        return self.stages[stage].entered / self.frames_ingested

    def realtime(self, stream_fps: float = 30.0, tolerance: float = 0.98) -> bool:
        """Did the run sustain real-time ingest for every stream?

        The paper's criterion: "As long as the foremost prefetching process
        can keep at least 30 FPS, the video stream is being analyzed in
        real-time."  We require the average ingest rate to stay within
        ``tolerance`` of the offered rate.
        """
        if self.frames_offered == 0:
            return True
        return self.frames_ingested >= tolerance * self.frames_offered

    # ------------------------------------------------------------------
    # serialization
    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """A JSON-compatible view of the full metrics record.

        Stage order is preserved (both runtimes emit stages in graph
        order); numpy scalars and array-valued ``extra`` entries are
        converted to plain python so the result always serializes.
        """
        return {
            "n_streams": self.n_streams,
            "duration": self.duration,
            "frames_offered": self.frames_offered,
            "frames_ingested": self.frames_ingested,
            "frames_to_ref": self.frames_to_ref,
            "stages": {name: asdict(c) for name, c in self.stages.items()},
            "ref_latency": asdict(self.ref_latency),
            "frame_latency": asdict(self.frame_latency),
            "device_utilization": dict(self.device_utilization),
            "queue_high_water": dict(self.queue_high_water),
            "extra": _jsonable(self.extra),
        }

    def to_json(self, **dumps_kwargs) -> str:
        """Serialize with :func:`json.dumps` (round-trips via from_json)."""
        return json.dumps(self.to_dict(), **dumps_kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "RunMetrics":
        return cls(
            n_streams=int(data.get("n_streams", 0)),
            duration=float(data.get("duration", 0.0)),
            frames_offered=int(data.get("frames_offered", 0)),
            frames_ingested=int(data.get("frames_ingested", 0)),
            frames_to_ref=int(data.get("frames_to_ref", 0)),
            stages={
                name: StageCounters(**c) for name, c in data.get("stages", {}).items()
            },
            ref_latency=LatencyStats(**data.get("ref_latency", {})),
            frame_latency=LatencyStats(**data.get("frame_latency", {})),
            device_utilization=dict(data.get("device_utilization", {})),
            queue_high_water=dict(data.get("queue_high_water", {})),
            extra=dict(data.get("extra", {})),
        )

    @classmethod
    def from_json(cls, text: str) -> "RunMetrics":
        return cls.from_dict(json.loads(text))

    def check_conservation(self) -> None:
        """Assert flow conservation through the cascade (testing hook).

        Every frame entering a stage is either filtered there or passed to
        the next stage; the next stage cannot see more frames than its
        predecessor passed (it may see fewer while frames are still in
        flight at run end).  Stage order is the insertion order of
        ``stages``, which both runtimes emit in graph order.
        """
        order = list(self.stages)
        for stage in order:
            c = self.stages[stage]
            if c.entered != c.passed + c.filtered:
                raise AssertionError(
                    f"{stage}: entered {c.entered} != passed {c.passed} + filtered {c.filtered}"
                )
        for up, down in zip(order, order[1:]):
            if self.stages[down].entered > self.stages[up].passed:
                raise AssertionError(
                    f"{down} entered {self.stages[down].entered} exceeds "
                    f"{up} passed {self.stages[up].passed}"
                )


def _jsonable(value):
    """Recursively convert numpy/tuple values so json.dumps always works."""
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, np.generic):
        return value.item()
    return value


def assert_stage_counts_equal(a: RunMetrics, b: RunMetrics) -> None:
    """Assert two runs saw identical per-stage frame flow.

    This is the runtime-vs-simulator cross-validation: the threaded runtime
    and the discrete-event simulator execute the same :class:`StageGraph`
    and emit the same structured counters, so a trace-faithful pair of runs
    must agree on (entered, passed, filtered) at every stage regardless of
    scheduling.
    """
    if set(a.stages) != set(b.stages):
        raise AssertionError(
            f"stage sets differ: {sorted(a.stages)} vs {sorted(b.stages)}"
        )
    for name in a.stages:
        ca, cb = a.stages[name], b.stages[name]
        if (ca.entered, ca.passed, ca.filtered) != (cb.entered, cb.passed, cb.filtered):
            raise AssertionError(
                f"stage {name!r} counters differ: "
                f"(entered={ca.entered}, passed={ca.passed}, filtered={ca.filtered}) vs "
                f"(entered={cb.entered}, passed={cb.passed}, filtered={cb.filtered})"
            )
