"""Online stream admission and inter-instance load balancing (Section 4.3.1).

The paper's rules:

* "when the execution speed of T-YOLO is lower than a certain level
  (e.g., 140 FPS) for a period of time (e.g., 5s), it means this FFS-VA
  instance has spare ability to serve extra streams.  Consequently, a new
  stream can be considered to add into the instance."
* "when any queue of T-YOLO or SNM is longer than its predefined threshold,
  it means that the FFS-VA instance overloads.  The corresponding video
  stream is re-forwarded to another FFS-VA instance with spare capacity
  immediately."

:class:`AdmissionController` turns raw observations (T-YOLO processing rate
samples, queue depths) into those two signals.  :func:`max_realtime_streams`
searches for the largest stream count an instance sustains in real time —
the quantity Figures 3, 4, and 6a report.  :class:`InstanceGroup` applies
the re-forwarding rule across several simulated instances.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Sequence

from .config import FFSVAConfig
from .metrics import RunMetrics
from .trace import FrameTrace

__all__ = ["AdmissionController", "max_realtime_streams", "InstanceGroup"]


@dataclass
class AdmissionController:
    """Sliding-window admission / overload signals for one instance."""

    config: FFSVAConfig = field(default_factory=FFSVAConfig)
    _samples: deque = field(default_factory=deque)  # (time, tyolo_fps)

    def observe_tyolo_rate(self, time: float, fps: float) -> None:
        """Record a T-YOLO throughput sample and trim the window."""
        self._samples.append((time, fps))
        horizon = time - self.config.admission_window
        while self._samples and self._samples[0][0] < horizon:
            self._samples.popleft()

    def can_admit(self) -> bool:
        """Spare capacity: T-YOLO stayed under the threshold all window long.

        Requires the window to actually span ``admission_window`` seconds of
        samples; a half-empty window is not yet evidence.
        """
        if len(self._samples) < 2:
            return False
        span = self._samples[-1][0] - self._samples[0][0]
        if span < self.config.admission_window * 0.9:
            return False
        return all(fps < self.config.admission_tyolo_fps for _, fps in self._samples)

    def overloaded(self, queue_depths: dict[str, int]) -> bool:
        """Any mid-cascade queue beyond its threshold means overload.

        The paper watches "any queue of T-YOLO or SNM": the queues *between*
        filters, whose growth signals internal imbalance.  Generalized to
        the configured cascade, that is every stage except the first (its
        queue only back-pressures the prefetcher) and the terminal stage
        (whose overflow policy is handled separately).  Queue names are the
        runtimes' ``stage[i]`` / ``stage`` forms.
        """
        graph = self.config.graph()
        monitored = {
            spec.name: self.config.queue_depth(spec.depth_key)
            for spec in graph
            if spec.name != graph.first.name and not spec.terminal
        }
        for name, depth in queue_depths.items():
            threshold = monitored.get(name.split("[")[0])
            if threshold is not None and depth > threshold:
                return True
        return False


def max_realtime_streams(
    run_with_n: Callable[[int], RunMetrics],
    *,
    n_max: int = 64,
    stream_fps: float = 30.0,
    tolerance: float = 0.98,
) -> tuple[int, dict[int, RunMetrics]]:
    """Largest N for which ``run_with_n(N)`` sustains real-time ingest.

    Uses an exponential probe followed by bisection, so expensive simulations
    run O(log n_max) times.  Returns the maximum N (0 if even one stream
    fails) plus all evaluated runs keyed by N.
    """
    runs: dict[int, RunMetrics] = {}

    def ok(n: int) -> bool:
        if n not in runs:
            runs[n] = run_with_n(n)
        return runs[n].realtime(stream_fps, tolerance)

    if not ok(1):
        return 0, runs
    lo = 1
    hi = 2
    while hi <= n_max and ok(hi):
        lo = hi
        hi *= 2
    if hi > n_max:
        hi = n_max + 1
        if lo < n_max and ok(n_max):
            return n_max, runs
    # Invariant: ok(lo), not ok(hi).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo, runs


class InstanceGroup:
    """A set of FFS-VA instances with re-forwarding between them.

    The group assigns streams greedily and applies the paper's rules after
    each evaluation epoch: overloaded instances shed their most expensive
    stream to the instance with the most headroom.
    """

    def __init__(
        self,
        n_instances: int,
        run_instance: Callable[[list[FrameTrace]], RunMetrics],
        config: FFSVAConfig | None = None,
    ):
        if n_instances < 1:
            raise ValueError("need at least one instance")
        self.config = config or FFSVAConfig()
        self.run_instance = run_instance
        self.assignments: list[list[FrameTrace]] = [[] for _ in range(n_instances)]
        self.history: list[dict] = []

    def assign(self, traces: Sequence[FrameTrace]) -> None:
        """Initial round-robin placement of streams onto instances."""
        for i, tr in enumerate(traces):
            self.assignments[i % len(self.assignments)].append(tr)

    def epoch(self) -> list[RunMetrics]:
        """Evaluate every instance once and apply one re-forwarding step."""
        results = [
            self.run_instance(traces) if traces else RunMetrics(n_streams=0)
            for traces in self.assignments
        ]
        # Ingest ratio is the headroom signal (1.0 = keeping up).
        ratios = [
            (m.frames_ingested / m.frames_offered) if m.frames_offered else 1.0
            for m in results
        ]
        worst = min(range(len(ratios)), key=lambda i: ratios[i])
        best = max(range(len(ratios)), key=lambda i: ratios[i])
        moved = None
        if (
            ratios[worst] < 0.98
            and ratios[best] >= 0.999
            and len(self.assignments[worst]) > 1
            and worst != best
        ):
            moved = self.assignments[worst].pop()
            self.assignments[best].append(moved)
        self.history.append(
            {
                "ratios": ratios,
                "moved": None if moved is None else moved.stream_id,
                "from": worst if moved is not None else None,
                "to": best if moved is not None else None,
            }
        )
        return results
