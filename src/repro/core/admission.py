"""Online stream admission and inter-instance load balancing (Section 4.3.1).

The paper's rules:

* "when the execution speed of T-YOLO is lower than a certain level
  (e.g., 140 FPS) for a period of time (e.g., 5s), it means this FFS-VA
  instance has spare ability to serve extra streams.  Consequently, a new
  stream can be considered to add into the instance."
* "when any queue of T-YOLO or SNM is longer than its predefined threshold,
  it means that the FFS-VA instance overloads.  The corresponding video
  stream is re-forwarded to another FFS-VA instance with spare capacity
  immediately."

:class:`AdmissionController` turns those two rules into signals — but it
holds **no measurement state of its own**.  Both the throughput window and
the queue depths are read from the ``repro.obs`` time-series sampler
through :class:`~repro.obs.control.SignalReader`, so the threaded engine,
the simulator, and any offline replay of a recorded series all make the
*same* decision from the same data (the closed loop).
:func:`max_realtime_streams` searches for the largest stream count an
instance sustains in real time — the quantity Figures 3, 4, and 6a report.

The *cluster policy core* lives here too, deliberately free of any runtime
machinery so the threaded serving plane (``repro.runtime.router``), the
simulated one (``repro.sim.cluster``), and the offline
:class:`InstanceGroup` all share one decision function:
:func:`pick_move` maps a vector of :class:`InstanceView` reports to at most
one :class:`Move` per epoch, and :func:`estimate_headroom` turns a sampled
rate series into the spare-capacity scalar those views carry (via
:meth:`~repro.obs.control.SignalReader.ewma`, so irregular sampling
intervals are weighted correctly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from ..obs.control import Hysteresis, SignalReader
from ..obs.sampler import TimeSeriesSampler
from .config import FFSVAConfig
from .metrics import RunMetrics
from .trace import FrameTrace

__all__ = [
    "AdmissionController",
    "max_realtime_streams",
    "InstanceGroup",
    "InstanceView",
    "Move",
    "pick_move",
    "estimate_headroom",
]


class AdmissionController:
    """Sampler-driven admission / overload signals for one instance.

    Decisions are a pure function of the sampled series: ``can_admit``
    reads ``stage_fps[<rate_stage>]`` (T-YOLO in the paper's cascade) and
    ``overloaded`` reads the ``queue_depth[...]`` gauges both runtimes
    sweep into the same sampler.  ``poll`` combines them into a debounced
    admit/hold/shed state machine and logs only the *transitions*, so two
    runs that saw equivalent series produce identical decision logs even
    when their clocks differ.
    """

    def __init__(
        self,
        config: FFSVAConfig | None = None,
        sampler: TimeSeriesSampler | None = None,
        *,
        graph=None,
        rate_stage: str | None = None,
    ):
        self.config = config or FFSVAConfig()
        self.sampler = sampler or TimeSeriesSampler(
            interval=self.config.telemetry_sample_interval
        )
        self.reader = SignalReader(self.sampler)
        if graph is None:
            graph = self.config.graph()
        if rate_stage is None:
            # The paper watches T-YOLO — the last filter before the
            # reference model.  Generalized: the non-terminal stage closest
            # to the terminal one (the terminal itself for ref-only).
            non_terminal = [spec.name for spec in graph if not spec.terminal]
            rate_stage = non_terminal[-1] if non_terminal else graph.terminal.name
        self.rate_stage = rate_stage
        self.rate_series = f"stage_fps[{rate_stage}]"
        # Monitored queues: every stage except the first (its queue only
        # back-pressures the prefetcher) and the terminal stage (whose
        # overflow policy is handled separately).  Queue names arrive in the
        # runtimes' ``stage[i]`` / ``stage`` forms.
        self._monitored = {
            spec.name: self.config.queue_depth(spec.depth_key)
            * self.config.admission_depth_fraction
            for spec in graph
            if spec.name != graph.first.name and not spec.terminal
        }
        self._shed = Hysteresis(up=self.config.admission_hysteresis, down=1)
        #: Decision transitions: ``{"t": float, "state": "admit|hold|shed"}``.
        self.decisions: list[dict] = []
        self.state = "hold"

    def observe_tyolo_rate(self, time: float, fps: float) -> None:
        """Record a throughput sample *into the shared series*.

        Compatibility shim for callers that measured the rate themselves;
        runtimes normally feed the series via their sampler sweeps.
        """
        self.sampler.observe(self.rate_series, time, fps, force=True)

    def can_admit(self, now: float | None = None) -> bool:
        """Spare capacity: the rate stage stayed under the threshold all
        window long.

        Requires the retained points to actually cover ``admission_window``
        seconds; a half-empty window is not yet evidence.
        """
        return self.reader.all_below(
            self.rate_series,
            self.config.admission_tyolo_fps,
            self.config.admission_window,
            now,
        )

    def overloaded(self, queue_depths: dict[str, int] | None = None) -> bool:
        """Any mid-cascade queue beyond its threshold means overload.

        With no explicit depths, the latest ``queue_depth[...]`` gauges are
        read from the sampler (the closed-loop path); passing a dict keeps
        the raw-signal form available for tests and external monitors.
        """
        if queue_depths is None:
            queue_depths = self.reader.latest_map("queue_depth")
        for name, depth in queue_depths.items():
            threshold = self._monitored.get(name.split("[")[0])
            if threshold is not None and depth > threshold:
                return True
        return False

    def poll(self, now: float) -> str:
        """One control sweep: debounce overload, combine with admission.

        Returns the current state and appends to :attr:`decisions` only on
        transitions.  Shed dominates admit; overload must persist for
        ``config.admission_hysteresis`` consecutive polls before the state
        trips (one calm poll clears it).
        """
        shed = self._shed.update(self.overloaded())
        if shed:
            state = "shed"
        elif self.can_admit(now):
            state = "admit"
        else:
            state = "hold"
        if state != self.state:
            self.decisions.append({"t": float(now), "state": state})
            self.state = state
        return state

    def decision_labels(self) -> list[str]:
        """Just the transition labels — clock-free, cross-runtime comparable."""
        return [d["state"] for d in self.decisions]

    def summary(self) -> dict:
        """JSON-able record for ``RunMetrics.extra["admission"]``."""
        return {
            "rate_stage": self.rate_stage,
            "state": self.state,
            "decisions": [dict(d) for d in self.decisions],
        }


def max_realtime_streams(
    run_with_n: Callable[[int], RunMetrics],
    *,
    n_max: int = 64,
    stream_fps: float = 30.0,
    tolerance: float = 0.98,
) -> tuple[int, dict[int, RunMetrics]]:
    """Largest N for which ``run_with_n(N)`` sustains real-time ingest.

    Uses an exponential probe followed by bisection, so expensive simulations
    run O(log n_max) times.  Returns the maximum N (0 if even one stream
    fails) plus all evaluated runs keyed by N.
    """
    runs: dict[int, RunMetrics] = {}

    def ok(n: int) -> bool:
        if n not in runs:
            runs[n] = run_with_n(n)
        return runs[n].realtime(stream_fps, tolerance)

    if not ok(1):
        return 0, runs
    lo = 1
    hi = 2
    while hi <= n_max and ok(hi):
        lo = hi
        hi *= 2
    if hi > n_max:
        hi = n_max + 1
        if lo < n_max and ok(n_max):
            return n_max, runs
    # Invariant: ok(lo), not ok(hi).
    while hi - lo > 1:
        mid = (lo + hi) // 2
        if ok(mid):
            lo = mid
        else:
            hi = mid
    return lo, runs


# ---------------------------------------------------------------------------
# cluster policy core (pure; shared by runtime.router, sim.cluster, and
# InstanceGroup)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class InstanceView:
    """One instance's state as the router sees it at an epoch boundary.

    ``state`` is the instance's admission state (``admit``/``hold``/
    ``shed``), ``headroom`` its spare-capacity estimate (higher = more
    spare; only the relative order matters to the policy), and ``costs``
    maps each *re-forwardable* stream to its observed expense (frames that
    passed the first filter, in the live runtimes).  Streams that already
    delivered every frame must not appear in ``costs``.
    """

    state: str
    headroom: float
    costs: Mapping[str, float]


@dataclass(frozen=True)
class Move:
    """One re-forwarding decision: ``stream`` leaves ``src`` for ``dst``."""

    stream: str
    src: int
    dst: int


def pick_move(views: Sequence[InstanceView]) -> Move | None:
    """The paper's re-forwarding rule as a pure function of instance views.

    At most one move per epoch: the most-pressed overloaded instance (state
    ``shed``, more than one live stream, lowest headroom — ties to the
    lowest index) sheds its most expensive stream (ties to the smallest
    stream id) to the spare-capacity instance (state ``admit``) with the
    most headroom (ties to the lowest index).  Returns ``None`` when no
    instance is shedding, the shedder serves a single stream (nothing may
    leave an instance streamless), or nowhere reports spare capacity.
    """
    sources = [
        i for i, v in enumerate(views) if v.state == "shed" and len(v.costs) > 1
    ]
    if not sources:
        return None
    src = min(sources, key=lambda i: (views[i].headroom, i))
    targets = [i for i, v in enumerate(views) if i != src and v.state == "admit"]
    if not targets:
        return None
    dst = min(targets, key=lambda i: (-views[i].headroom, i))
    costs = views[src].costs
    stream = min(costs, key=lambda sid: (-costs[sid], sid))
    return Move(stream=stream, src=src, dst=dst)


def estimate_headroom(
    reader: SignalReader,
    config: FFSVAConfig,
    rate_series: str,
    *,
    now: float | None = None,
) -> float:
    """Spare rate capacity of one instance, from its sampled series.

    The admission threshold minus the EWMA-smoothed observed rate of the
    rate stage (T-YOLO in the paper's cascade): an instance running well
    under the "140 FPS" level has headroom in proportion.  The EWMA's time
    constant is the admission window, and its irregular-interval weighting
    means sampler decimation cannot bias the estimate.  No samples yet —
    or a rate at/over the threshold — mean zero claimed headroom.
    """
    rate = reader.ewma(rate_series, config.admission_window, now)
    if rate is None:
        return 0.0
    return max(0.0, config.admission_tyolo_fps - rate)


class InstanceGroup:
    """A set of FFS-VA instances with re-forwarding between them.

    The group assigns streams greedily and applies the paper's rules after
    each evaluation epoch: overloaded instances shed their most expensive
    stream to the instance with the most headroom.  The decision itself is
    :func:`pick_move` over ingest-ratio views — the same policy core the
    live cluster router and the simulated cluster run every epoch.
    """

    def __init__(
        self,
        n_instances: int,
        run_instance: Callable[[list[FrameTrace]], RunMetrics],
        config: FFSVAConfig | None = None,
    ):
        if n_instances < 1:
            raise ValueError("need at least one instance")
        self.config = config or FFSVAConfig()
        self.run_instance = run_instance
        self.assignments: list[list[FrameTrace]] = [[] for _ in range(n_instances)]
        self.history: list[dict] = []

    def assign(self, traces: Sequence[FrameTrace]) -> None:
        """Initial round-robin placement of streams onto instances."""
        for i, tr in enumerate(traces):
            self.assignments[i % len(self.assignments)].append(tr)

    def epoch(self) -> list[RunMetrics]:
        """Evaluate every instance once and apply one re-forwarding step."""
        results = [
            self.run_instance(traces) if traces else RunMetrics(n_streams=0)
            for traces in self.assignments
        ]
        # Ingest ratio is the headroom signal (1.0 = keeping up).  Ratios
        # map onto admission states: an instance dropping >2% of its input
        # is shedding, one ingesting everything has spare capacity, and
        # the band between is "hold".  Stream cost is the assignment
        # position, so the most expensive stream is the most recently
        # placed one — the paper re-forwards the stream whose addition
        # tipped the instance over.
        ratios = [
            (m.frames_ingested / m.frames_offered) if m.frames_offered else 1.0
            for m in results
        ]
        views = [
            InstanceView(
                state="shed" if r < 0.98 else ("admit" if r >= 0.999 else "hold"),
                headroom=r,
                costs={tr.stream_id: pos for pos, tr in enumerate(traces)},
            )
            for r, traces in zip(ratios, self.assignments)
        ]
        move = pick_move(views)
        moved = None
        if move is not None:
            src = self.assignments[move.src]
            moved = src.pop(
                next(i for i, tr in enumerate(src) if tr.stream_id == move.stream)
            )
            self.assignments[move.dst].append(moved)
        self.history.append(
            {
                "ratios": ratios,
                "moved": None if moved is None else moved.stream_id,
                "from": move.src if moved is not None else None,
                "to": move.dst if moved is not None else None,
            }
        )
        return results
