"""Content-adaptive query planner: per-chunk cascade depth, FilterDegree,
and batch-size targets driven by observed content.

The static system runs one ``(cascade, filter_degree, batch_size)`` plan for
the whole workload, so quiet streams pay full-cascade cost and busy streams
run with thresholds tuned for nobody.  This module closes that gap the way
THIA's early-inference planner does (PAPERS.md): the stream is cut into
fixed-length *chunks* of ``plan_epoch`` frames, the first filter stage's
per-chunk pass fraction ("activity") is stamped into the shared telemetry
time-series at *stream time*, and at every chunk boundary a pure decision
function picks the next chunk's plan:

* **depth** — the exit stage: quiet streams exit at the first filter (their
  survivors go straight to the reference model), mid streams exit at the
  second, busy streams run the full graph;
* **filter_degree** — the cheapest candidate degree whose calibrated scene
  recall clears ``plan_min_accuracy``, priced with the same
  :func:`~repro.core.pipeline.stage_per_frame_time` arithmetic as
  :mod:`repro.core.planner`'s capacity model;
* **batch target** — an EWMA-smoothed queue-depth follower replacing the
  static feedback-queue batch size when ``adaptive_batching=True``.

Determinism contract (the property the cross-runtime tests pin down):
depth and degree are decided *only* from the ordered sequence of first-stage
verdicts, which is content — not timing — in both runtimes (the first stage
is FIFO per stream, and its verdict does not depend on the plan).  Activity
observations are stamped at stream time ``(chunk_end+1)/fps``, so the EWMA
over them is clock-free and the decision log replays bit-identically from
the sampled series alone (:func:`replay_decisions`).  The batch target is
the one clock-driven dimension; it never affects verdicts or counters, only
batch formation, so counter equality survives target divergence.

Debouncing follows the ``AdmissionController`` pattern (PR 5): a Schmitt
deadband around each band threshold plus a :class:`~repro.obs.control.
Hysteresis` streak of ``plan_hysteresis`` consecutive chunks, so one noisy
chunk can never flap a plan.
"""

from __future__ import annotations

import math
import threading
from dataclasses import dataclass

import numpy as np

from ..obs.control import Hysteresis, SignalReader
from ..obs.sampler import TimeSeriesSampler
from .pipeline import SNM, StageGraph, effective_batch, stage_per_frame_time

__all__ = [
    "BANDS",
    "Plan",
    "PlanSignals",
    "PlanState",
    "PlanCatalog",
    "decide",
    "QueryPlanner",
    "replay_decisions",
]

#: Content bands, quietest first.  The band index is what hysteresis
#: debounces; depth/degree are pure lookups from it.
BANDS = ("quiet", "mid", "busy")


@dataclass(frozen=True)
class Plan:
    """One chunk's execution plan for one stream."""

    depth: str  # exit stage: the last *filter* stage this chunk executes
    filter_degree: float
    batch_target: int
    band: str = "busy"

    def key(self) -> tuple:
        """The verdict-affecting identity (batch target excluded)."""
        return (self.band, self.depth, round(self.filter_degree, 9))


@dataclass(frozen=True)
class PlanSignals:
    """Inputs to one planning decision (all content- or config-derived)."""

    activity: float | None  # EWMA of first-stage chunk pass fractions
    batch_target: int  # current (clock-domain) batch target, passed through


class PlanState:
    """Mutable per-stream debouncing state threaded through :func:`decide`.

    Two Schmitt-triggered booleans encode the band: ``active`` (band is at
    least "mid") and ``busy`` (band is "busy").  Both start True — the
    planner begins every stream at full depth and only relaxes once the
    evidence clears the hysteresis streak, mirroring the admission
    controller's conservative initial state.
    """

    def __init__(self, hysteresis: int = 2):
        self.active = Hysteresis(up=hysteresis, down=hysteresis, initial=True)
        self.busy = Hysteresis(up=hysteresis, down=hysteresis, initial=True)
        self.plan: Plan | None = None  # last decided plan

    @property
    def band_index(self) -> int:
        busy = self.busy.state
        active = self.active.state or busy  # busy implies active
        return (1 if active else 0) + (1 if busy else 0)


class PlanCatalog:
    """The finite plan menu plus the pricing/accuracy tables behind it.

    Built once per run from the config and stage graph (and optionally
    calibrated from traces), so that :func:`decide` reduces to hysteresis
    plus table lookups — both runtimes construct the identical catalog from
    the identical config, which is what makes their decision logs equal.
    """

    def __init__(
        self,
        *,
        depth_by_band: tuple[str, str, str],
        degree_by_band: tuple[float, float, float],
        quiet: float,
        busy: float,
        deadband: float,
        base_degree: float,
        degrees: tuple[float, ...],
        recall: dict | None = None,
        cost: dict | None = None,
    ):
        self.depth_by_band = depth_by_band
        self.degree_by_band = degree_by_band
        self.quiet = quiet
        self.busy = busy
        self.deadband = deadband
        self.base_degree = base_degree
        self.degrees = degrees
        #: Calibrated scene recall per (depth, degree) — diagnostics.
        self.recall = recall or {}
        #: Priced device-seconds per source frame per (band, degree).
        self.cost = cost or {}

    # -- construction ----------------------------------------------------
    @classmethod
    def build(
        cls,
        config,
        graph: StageGraph | None = None,
        *,
        traces=None,
        cost_model=None,
    ) -> "PlanCatalog":
        """Derive the plan menu from ``config`` (+ optional calibration).

        Depths come from the graph's non-terminal chain: band 0 exits at the
        first filter, band 1 at the second, band 2 at the last.  Candidate
        degrees are ``config.plan_degrees``; each band's degree is the
        cheapest candidate (device-seconds per source frame, including the
        reference stage the early exits feed) whose calibrated scene recall
        at that band's depth clears ``config.plan_min_accuracy``.  Without
        calibration traces the accuracy model is conservative: only degrees
        at or below the configured static ``filter_degree`` are assumed
        safe, so an uncalibrated adaptive run never filters harder than the
        static plan it replaces.
        """
        graph = graph or config.graph()
        filters = [s.name for s in graph if not s.terminal]
        if not filters:
            raise ValueError("adaptive planning needs at least one filter stage")
        depth_by_band = (
            filters[0],
            filters[min(1, len(filters) - 1)],
            filters[-1],
        )
        degrees = tuple(sorted(set(float(d) for d in config.plan_degrees)))

        recall = cls._recall_table(config, graph, filters, degrees, traces)
        cost = cls._cost_table(config, graph, filters, degrees, traces, cost_model)

        degree_by_band = []
        for band, depth in enumerate(depth_by_band):
            if SNM not in graph or _stage_index(graph, SNM) > _stage_index(graph, depth):
                # The SNM threshold is never evaluated at this depth.
                degree_by_band.append(config.filter_degree)
                continue
            ok = [
                d
                for d in degrees
                if recall[(depth, d)] >= config.plan_min_accuracy
            ]
            if not ok:
                ok = [min(degrees, key=lambda d: -recall[(depth, d)])]
            degree_by_band.append(min(ok, key=lambda d: (cost[(band, depth, d)], -d)))
        return cls(
            depth_by_band=depth_by_band,
            degree_by_band=tuple(degree_by_band),
            quiet=config.plan_quiet,
            busy=config.plan_busy,
            deadband=config.plan_deadband,
            base_degree=config.filter_degree,
            degrees=degrees,
            recall=recall,
            cost=cost,
        )

    @staticmethod
    def _recall_table(config, graph, filters, degrees, traces) -> dict:
        """Scene-level recall per (depth, degree).

        A scene is a maximal run of frames whose ground-truth count meets
        ``number_of_objects``; it is detected when *any* of its frames
        survives every filter up to the exit depth (the event-level metric
        the benchmarks report).  Uncalibrated fallback: degrees above the
        static ``filter_degree`` are assumed unsafe (recall 0), at or below
        it safe (recall 1).
        """
        table = {}
        if not traces:
            for depth in filters:
                for d in degrees:
                    table[(depth, d)] = 1.0 if d <= config.filter_degree else 0.0
            return table
        for depth in filters:
            cut = filters[: filters.index(depth) + 1]
            for d in degrees:
                detected = total = 0
                for trace in traces:
                    cfg = config.with_(filter_degree=d)
                    alive = np.ones(len(trace), dtype=bool)
                    for name in cut:
                        alive &= np.asarray(
                            graph[name].logic.trace_mask(trace, cfg), dtype=bool
                        )
                    positive = (
                        np.asarray(trace.gt_count) >= config.number_of_objects
                    )
                    for lo, hi in _runs(positive):
                        total += 1
                        if alive[lo:hi].any():
                            detected += 1
                table[(depth, d)] = detected / total if total else 1.0
        return table

    @staticmethod
    def _cost_table(config, graph, filters, degrees, traces, cost_model) -> dict:
        """Device-seconds per source frame per (band, depth, degree).

        The same pricing arithmetic as :func:`repro.core.planner.
        plan_capacity`: each executed stage charges its amortized
        ``stage_per_frame_time`` weighted by the fraction of source frames
        reaching it, *including the terminal reference stage* — exiting
        early sends more survivors to the reference model, and that cost is
        what keeps the planner honest about shallow plans.
        """
        from ..devices.costs import CostModel

        costs = cost_model or CostModel()
        # Representative first-stage activity per band and estimated
        # conditional keep-rates (trace-calibrated when available).
        activity = {
            0: max(0.0, config.plan_quiet - config.plan_deadband),
            1: (config.plan_quiet + config.plan_busy) / 2.0,
            2: min(1.0, config.plan_busy + config.plan_deadband),
        }
        keep = _keep_rates(config, graph, filters, degrees, traces)
        per_frame = {
            s.name: stage_per_frame_time(
                s, costs, effective_batch(s, config)
            )
            for s in graph
        }
        table = {}
        terminal = graph.terminal.name
        for band, act in activity.items():
            for depth in filters:
                cut = filters[: filters.index(depth) + 1]
                for d in degrees:
                    reach, total = 1.0, 0.0
                    for name in cut:
                        total += reach * per_frame[name]
                        reach *= act if name == filters[0] else keep[(name, d)]
                    total += reach * per_frame[terminal]
                    table[(band, depth, d)] = total
        return table


def _stage_index(graph: StageGraph, name: str) -> int:
    return list(graph.names).index(name)


def _runs(mask: np.ndarray) -> list[tuple[int, int]]:
    """Maximal ``[lo, hi)`` runs of True in a boolean vector."""
    out, lo = [], None
    for i, v in enumerate(mask):
        if v and lo is None:
            lo = i
        elif not v and lo is not None:
            out.append((lo, i))
            lo = None
    if lo is not None:
        out.append((lo, len(mask)))
    return out


def _keep_rates(config, graph, filters, degrees, traces) -> dict:
    """Conditional pass rate of each non-first filter per degree."""
    table = {}
    for name in filters[1:] if filters else []:
        for d in degrees:
            if traces:
                entered = passed = 0
                cfg = config.with_(filter_degree=d)
                for trace in traces:
                    alive = np.ones(len(trace), dtype=bool)
                    for up in filters[: filters.index(name)]:
                        alive &= np.asarray(
                            graph[up].logic.trace_mask(trace, cfg), dtype=bool
                        )
                    mask = np.asarray(
                        graph[name].logic.trace_mask(trace, cfg), dtype=bool
                    )
                    entered += int(alive.sum())
                    passed += int((alive & mask).sum())
                table[(name, d)] = passed / entered if entered else 1.0
            else:
                # Uncalibrated heuristic: SNM keeps (1 - degree) of its
                # input (Eq. 2's linear threshold), other filters 0.7.
                table[(name, d)] = (
                    max(0.05, 1.0 - d) if name == SNM else 0.7
                )
    return table


def decide(signals: PlanSignals, catalog: PlanCatalog, prior: PlanState) -> Plan:
    """One planning decision: pure in ``(signals, catalog, prior)``.

    Band classification is a double Schmitt trigger (deadband around the
    quiet and busy thresholds) debounced by the ``Hysteresis`` streaks
    inside ``prior``; depth and degree are catalog lookups from the band.
    The batch target is passed through unchanged — it lives on the clock
    domain and must not influence the (deterministic) depth/degree log.
    """
    a = signals.activity
    if a is not None:
        on = catalog.deadband
        raw_active = a >= (catalog.quiet - on if prior.active.state else catalog.quiet + on)
        raw_busy = a >= (catalog.busy - on if prior.busy.state else catalog.busy + on)
        prior.active.update(bool(raw_active))
        prior.busy.update(bool(raw_busy))
    band = prior.band_index
    plan = Plan(
        depth=catalog.depth_by_band[band],
        filter_degree=catalog.degree_by_band[band],
        batch_target=signals.batch_target,
        band=BANDS[band],
    )
    prior.plan = plan
    return plan


class QueryPlanner:
    """Per-stream, per-chunk plan selection over the shared time-series.

    Both runtimes drive one planner the same way:

    * the *first* filter stage reports its verdicts in frame order via
      :meth:`observe_first`; every completed ``plan_epoch``-frame chunk
      stamps its pass fraction into the sampler at stream time and decides
      the *next* chunk's plan (so a chunk's plan is always fixed before any
      of its frames is routed beyond the first stage);
    * every stage looks up :meth:`plan_for` / :meth:`degree_for` /
      :meth:`exits_at` per frame — plan switches thus take effect exactly
      at chunk boundaries;
    * the sampling loop calls :meth:`poll` on its clock to follow queue
      depth with the EWMA batch target (``adaptive_batching`` only).
    """

    def __init__(
        self,
        config,
        graph: StageGraph | None = None,
        sampler: TimeSeriesSampler | None = None,
        catalog: PlanCatalog | None = None,
    ):
        self.config = config
        self.graph = graph or config.graph()
        self.active = config.plan == "adaptive"
        self.adaptive_batching = bool(config.adaptive_batching) and self.active
        self.epoch = int(config.plan_epoch)
        self.fps = float(config.stream_fps)
        self.sampler = sampler or TimeSeriesSampler(
            interval=config.telemetry_sample_interval
        )
        self.reader = SignalReader(self.sampler)
        self.catalog = catalog or PlanCatalog.build(config, self.graph)
        filters = [s.name for s in self.graph if not s.terminal]
        self._first = filters[0] if filters else None
        self._full_depth = filters[-1] if filters else None
        #: Stage whose batch formation follows the adaptive target (the
        #: first "config"-batched stage — SNM in the paper's graph).
        self._batch_stage = next(
            (s.name for s in self.graph if s.batch.kind == "config"), None
        )
        self.initial_plan = Plan(
            depth=self._full_depth or self.graph.terminal.name,
            filter_degree=config.filter_degree,
            batch_target=config.batch_size,
            band="busy",
        )
        self._lock = threading.Lock()
        self._states: dict[int, PlanState] = {}
        self._plans: dict[int, list[Plan]] = {}
        self._open: dict[int, list[int]] = {}  # stream -> [chunk, passed, seen]
        self._ids: dict[int, str] = {}
        self.decisions: list[dict] = []
        self._batch_ewma = float(config.batch_size)
        self._batch_t: float | None = None
        self._batch_target = int(config.batch_size)

    # -- stream registry -------------------------------------------------
    def register(self, stream_idx: int, stream_id: str | None = None) -> None:
        with self._lock:
            if stream_idx in self._plans:
                return
            self._states[stream_idx] = PlanState(self.config.plan_hysteresis)
            self._plans[stream_idx] = [self.initial_plan]
            self._open[stream_idx] = [0, 0, 0]
            self._ids[stream_idx] = stream_id or f"stream-{stream_idx}"

    # -- content observation (first filter stage, frame order) -----------
    def observe_first(self, stream_idx: int, frames, passes) -> None:
        """Report first-stage verdicts for consecutive frames of one stream.

        Must be called in frame order per stream (both runtimes' first
        stages are FIFO per stream) and *before* routing those frames
        downstream, so a chunk's plan exists before its frames leave the
        first stage.
        """
        if not self.active:
            return
        with self._lock:
            if stream_idx not in self._plans:
                self._states[stream_idx] = PlanState(self.config.plan_hysteresis)
                self._plans[stream_idx] = [self.initial_plan]
                self._open[stream_idx] = [0, 0, 0]
                self._ids[stream_idx] = f"stream-{stream_idx}"
            cur = self._open[stream_idx]
            for f, ok in zip(frames, passes):
                c = int(f) // self.epoch
                if c > cur[0]:
                    # A gap (lost frames): close the open chunk on what we
                    # saw so the planner keeps advancing deterministically.
                    self._finalize(stream_idx, cur[0], cur[1], cur[2])
                    cur[0], cur[1], cur[2] = c, 0, 0
                cur[1] += int(bool(ok))
                cur[2] += 1
                if (int(f) + 1) % self.epoch == 0:
                    self._finalize(stream_idx, cur[0], cur[1], cur[2])
                    cur[0], cur[1], cur[2] = cur[0] + 1, 0, 0

    def _finalize(self, stream_idx: int, chunk: int, passed: int, seen: int) -> None:
        """Close chunk ``chunk``; decide the plan for ``chunk + 1``."""
        activity = passed / seen if seen else 0.0
        t = (chunk + 1) * self.epoch / self.fps  # stream time, clock-free
        name = f"plan_activity[{stream_idx}]"
        self.sampler.observe(name, t, activity, force=True)
        ewma = self.reader.ewma(name, self.config.plan_tau, now=t)
        state = self._states[stream_idx]
        prev = self._plans[stream_idx][-1]
        plan = decide(
            PlanSignals(activity=ewma, batch_target=self._batch_target),
            self.catalog,
            state,
        )
        plans = self._plans[stream_idx]
        while len(plans) <= chunk:  # gap chunks inherit the previous plan
            plans.append(prev)
        plans.append(plan)
        if plan.key() != prev.key():
            self.decisions.append(
                {
                    "t": float(t),
                    "stream": int(stream_idx),
                    "chunk": int(chunk + 1),
                    "band": plan.band,
                    "depth": plan.depth,
                    "degree": float(plan.filter_degree),
                }
            )

    # -- per-frame lookups (hot path; GIL-safe reads of append-only lists)
    def plan_for(self, stream_idx: int, frame_idx: int) -> Plan:
        plans = self._plans.get(stream_idx)
        if not plans:
            return self.initial_plan
        return plans[min(frame_idx // self.epoch, len(plans) - 1)]

    def degree_for(self, stream_idx: int, frame_idx: int) -> float:
        if not self.active:
            return self.config.filter_degree
        return self.plan_for(stream_idx, frame_idx).filter_degree

    def exits_at(self, stage_name: str, stream_idx: int, frame_idx: int) -> bool:
        """Should a passer of ``stage_name`` route straight to the terminal?"""
        if not self.active or stage_name == self._full_depth:
            return False
        return self.plan_for(stream_idx, frame_idx).depth == stage_name

    # -- clock-domain batch target ---------------------------------------
    def poll(self, now: float) -> None:
        """EWMA-follow the batch stage's queue depth (adaptive batching)."""
        if not self.adaptive_batching or self._batch_stage is None:
            return
        with self._lock:
            depths = self.reader.latest_map("queue_depth")
            prefix = self._batch_stage
            vals = [
                v
                for k, v in depths.items()
                if k == prefix or k.startswith(prefix + "[")
            ]
            one = self.reader.latest(f"queue_depth[{prefix}]")
            if one is not None:
                vals.append(one)
            if not vals:
                return
            raw = sum(vals) / len(vals)
            if self._batch_t is None:
                self._batch_ewma = raw
            else:
                dt = max(0.0, now - self._batch_t)
                a = math.exp(-dt / self.config.plan_batch_tau)
                self._batch_ewma = a * self._batch_ewma + (1.0 - a) * raw
            self._batch_t = now
            self._batch_target = max(
                1, min(self.config.batch_size, math.ceil(self._batch_ewma - 1e-9))
            )

    @property
    def batch_target(self) -> int:
        return self._batch_target if self.adaptive_batching else self.config.batch_size

    # -- reporting --------------------------------------------------------
    def sorted_decisions(self) -> list[dict]:
        """The decision log in canonical (stream-time, stream) order.

        Per-stream order is already deterministic; sorting makes the global
        interleaving independent of worker scheduling, so threaded and
        simulated runs produce byte-identical logs.
        """
        with self._lock:
            return sorted(
                (dict(d) for d in self.decisions),
                key=lambda d: (d["t"], d["stream"], d["chunk"]),
            )

    def decision_labels(self) -> list[tuple]:
        """Clock-free decision identities (for cross-runtime equality)."""
        return [
            (d["stream"], d["chunk"], d["band"], d["depth"], round(d["degree"], 9))
            for d in self.sorted_decisions()
        ]

    def summary(self) -> dict:
        """Snapshot for ``RunMetrics.extra['qplan']`` and the exporter."""
        with self._lock:
            streams = {}
            filters = [s.name for s in self.graph if not s.terminal]
            for i in sorted(self._plans):
                plan = self._plans[i][-1]
                streams[self._ids[i]] = {
                    "band": plan.band,
                    "depth": plan.depth,
                    "depth_index": (
                        filters.index(plan.depth) + 1 if plan.depth in filters else 0
                    ),
                    "degree": float(plan.filter_degree),
                    "chunks": len(self._plans[i]) - 1,
                }
            return {
                "plan": self.config.plan,
                "epoch": self.epoch,
                "adaptive_batching": self.adaptive_batching,
                "batch_target": int(self.batch_target),
                "streams": streams,
                "decisions": sorted(
                    (dict(d) for d in self.decisions),
                    key=lambda d: (d["t"], d["stream"], d["chunk"]),
                ),
            }


def replay_decisions(
    sampler: TimeSeriesSampler,
    config,
    graph: StageGraph | None = None,
    catalog: PlanCatalog | None = None,
) -> list[dict]:
    """Re-derive the decision log from sampled ``plan_activity[*]`` series.

    Feeding a run's sampler (or a deserialized copy of its series) through
    the same pure decision core reproduces the exact transitions the live
    planner logged — the replay-determinism contract that makes planner
    behaviour auditable from the telemetry artifact alone.
    """
    planner = QueryPlanner(
        config.with_(plan="adaptive"), graph=graph, catalog=catalog
    )
    reader = SignalReader(sampler)
    logs: list[dict] = []
    for name in sampler.names:
        if not (name.startswith("plan_activity[") and name.endswith("]")):
            continue
        stream_idx = int(name[len("plan_activity["):-1])
        state = PlanState(config.plan_hysteresis)
        prev = planner.initial_plan
        for t, _ in sampler.points(name):
            chunk = int(round(t * config.stream_fps / config.plan_epoch))
            ewma = reader.ewma(name, config.plan_tau, now=t)
            plan = decide(
                PlanSignals(activity=ewma, batch_target=config.batch_size),
                planner.catalog,
                state,
            )
            if plan.key() != prev.key():
                logs.append(
                    {
                        "t": float(t),
                        "stream": stream_idx,
                        "chunk": chunk,
                        "band": plan.band,
                        "depth": plan.depth,
                        "degree": float(plan.filter_degree),
                    }
                )
            prev = plan
    return sorted(logs, key=lambda d: (d["t"], d["stream"], d["chunk"]))
