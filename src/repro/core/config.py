"""FFS-VA system configuration.

Collects every knob the paper exposes:

* **FilterDegree** (Section 4.2.1) — aggressiveness of the SNM filter,
  interpolating ``t_pre`` between ``c_low`` and ``c_high``.
* **NumberofObjects** (Section 4.2.2) — minimum target-object intensity a
  frame must show to survive T-YOLO, with the Section 5.3.3 ``relax``
  tolerance.
* **Batch mechanism** (Section 4.3.2) — ``static`` (fixed-size batches,
  unbounded queues), ``feedback`` (fixed-size batches over bounded feedback
  queues), or ``dynamic`` (bounded queues, take-what-is-there batches).
* **Queue depth thresholds** (Section 4.3.1) — "we initially and empirically
  determine 2, 10, and 2 as the queue depth thresholds of the SDD queues,
  SNM queues, and T-YOLO queues respectively."
* **num_t_yolo** — the cap on frames T-YOLO takes from one stream per
  round-robin cycle (inter-stream load balance, Section 3.2.3/4.3.1).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from ..models.tyolo import TYOLO_GRID
from .pipeline import CASCADES, EXECUTORS, STAGES, StageGraph, scaled_graph

__all__ = ["FFSVAConfig", "BatchPolicyName"]

BatchPolicyName = str  # "static" | "feedback" | "dynamic"

_POLICIES = ("static", "feedback", "dynamic")


@dataclass(frozen=True)
class FFSVAConfig:
    """All user-visible FFS-VA parameters with the paper's defaults."""

    # Filter knobs.
    filter_degree: float = 0.5
    number_of_objects: int = 1
    relax: int = 0

    # Batching.
    batch_policy: BatchPolicyName = "dynamic"
    batch_size: int = 10

    # Queue depth thresholds, in frames, keyed by the queue's consumer stage.
    # An absent "ref" bound in the paper is interpreted as a small multiple
    # of the reference batch.
    queue_depths: dict = field(
        default_factory=lambda: {s: d for s, d in zip(STAGES, (2, 10, 2, 4))}
    )

    # Which registered cascade composition to execute (see
    # repro.core.pipeline.CASCADES).  The default is the paper's full
    # SDD -> SNM -> T-YOLO -> reference chain.
    cascade: str = "ffs-va"

    # T-YOLO round-robin extraction cap per stream per cycle.
    num_t_yolo: int = 2

    # --- scale-out execution plane (repro.runtime.procpool) --------------
    # "process" runs CPU-hosted stages (SDD) on a pool of worker processes
    # fed through the shared-memory frame plane, sidestepping the GIL;
    # "thread" (the default) keeps every stage in its worker thread.
    executor: str = "thread"
    # Worker processes in the SDD pool when executor="process".
    num_sdd_procs: int = 2
    # Fuse the per-stream SNM stages into one worker that pops all streams'
    # queues into cross-stream mega-batches executed as a single
    # weight-stacked forward pass (the paper's GPU-0 batching of SNMs).
    snm_fusion: bool = False
    # Object-level T-YOLO consolidation: promote the T-YOLO stage to fused
    # fan-in and pack each mega-batch's active regions (proposed from the
    # background-deviation response) onto composite canvases, running the
    # detector once per canvas instead of once per frame.  Counts and
    # verdicts are identical to the per-frame path (see models/mosaic.py);
    # incompatible with cluster reserve slots, like every fused stage.
    tyolo_mosaic: bool = False
    # Mosaic canvas side, in detector grid cells.  The default 52 cells is
    # exactly one native 416x416 T-YOLO input (4x4 whole frames, or dozens
    # of sparse regions, per detector pass).
    mosaic_canvas: int = 52
    # Empty-cell gap between mosaic placements, in cells; >= 1 keeps blobs
    # from ever merging across placements under 4-connectivity.
    mosaic_gutter: int = 1

    # Online admission (Section 4.3.1): an instance can accept another stream
    # when T-YOLO's observed rate stays below this for `admission_window`
    # seconds; a stream is re-forwarded away when queues overflow.
    admission_tyolo_fps: float = 140.0
    admission_window: float = 5.0
    # Consecutive overloaded sweeps required before the shed signal trips
    # (and a single calm sweep clears it).  >= 2 means one noisy queue-depth
    # sample can never flap a shed decision.
    admission_hysteresis: int = 2
    # Fraction of a queue's depth threshold at which the overload signal
    # arms.  At the default 1.0 a queue must exceed its full threshold —
    # which a *bounded* queue (capacity == threshold) can never do, so the
    # paper's re-forwarding rule only fires under static (unbounded)
    # batching.  Cluster configs lower this so a bounded queue sitting near
    # capacity counts as overload and a live shed can actually trip.
    admission_depth_fraction: float = 1.0

    # --- cluster serving plane (repro.runtime.cluster) -------------------
    # Pipeline instances the ClusterSupervisor forks; each runs the full
    # threaded engine on its assigned streams.
    cluster_instances: int = 2
    # Seconds between router control epochs (wall seconds for the threaded
    # cluster, virtual seconds for the simulated one).  Each epoch polls
    # every instance and applies at most one shed/re-forward move.
    router_epoch: float = 1.0
    # TCP port for the supervisor's instance control channel; None or 0
    # binds an ephemeral local port.
    router_port: int | None = None
    # Extra single-use stream slots each instance pre-builds so a stream
    # can be re-forwarded *to* it mid-run (queues and workers must exist
    # before the run starts; a used slot is not recycled).
    cluster_reserve_slots: int = 2
    # Frames the shedding instance renders into the shared-memory handoff
    # plane so the receiving instance starts without re-rendering the
    # frames that were already in flight at the boundary.
    cluster_handoff_window: int = 8

    # Frames per second each live stream delivers.
    stream_fps: float = 30.0

    # --- query planner (repro.core.qplan) --------------------------------
    # "adaptive" attaches the content-adaptive QueryPlanner: per-stream
    # plans (cascade exit depth, FilterDegree, batch target) re-decided at
    # every plan_epoch-frame chunk boundary from the first filter stage's
    # observed pass fraction.  "static" (default) keeps the classic single
    # plan for the whole run.
    plan: str = "static"
    # Frames per planning chunk; plan switches take effect exactly at chunk
    # boundaries (about two stream-seconds at the default 30 FPS).
    plan_epoch: int = 64
    # Activity (first-stage pass fraction EWMA) thresholds separating the
    # quiet / mid / busy content bands.
    plan_quiet: float = 0.12
    plan_busy: float = 0.35
    # Schmitt deadband around each band threshold: a band only changes when
    # the signal clears threshold +/- deadband in the new direction.
    plan_deadband: float = 0.03
    # Consecutive chunks beyond the deadband required before a band flips
    # (the Hysteresis streak); >= 2 means one noisy chunk can never flap.
    plan_hysteresis: int = 2
    # EWMA time constant for the activity signal, in *stream* seconds.
    plan_tau: float = 8.0
    # Minimum calibrated scene recall a candidate FilterDegree must keep at
    # the band's exit depth to be eligible.
    plan_min_accuracy: float = 0.95
    # Candidate FilterDegree grid the planner prices per band.
    plan_degrees: tuple = (0.0, 0.25, 0.5, 0.75, 1.0)
    # Replace the static feedback-queue batch size with an EWMA-smoothed
    # queue-depth follower (only meaningful with plan="adaptive").
    adaptive_batching: bool = False
    # EWMA time constant for the batch-target follower, in clock seconds
    # (wall seconds threaded, virtual seconds simulated).
    plan_batch_tau: float = 2.0

    # --- telemetry (repro.obs) ------------------------------------------
    # Attach the telemetry subsystem: structured pipeline events, per-frame
    # trace spans, and time-series sampling.  Off by default: the hot path
    # then pays a single branch per emission site.
    telemetry: bool = False
    # Serve /metrics (Prometheus text) and /snapshot (JSON) on this local
    # port while telemetry is attached; 0 binds an ephemeral port, None
    # disables the HTTP endpoint.
    telemetry_port: int | None = None
    # Base sampling interval for queue-depth/utilization/throughput series
    # (wall seconds in the threaded runtime, virtual seconds in the DES).
    telemetry_sample_interval: float = 0.05

    # --- detection store (repro.store) ----------------------------------
    # Directory for the persistent detection store.  None (default)
    # disables persistence; a path makes both runtimes append one
    # DetectionRecord per frame outcome into rotated segments there.  A
    # cluster run treats this as the parent: each instance writes its own
    # `instance-N/` store underneath, merged transparently at query time.
    result_store_dir: str | None = None
    # Size at which the live store segment rotates (kilobytes).
    store_segment_kb: int = 256
    # Retention bound: keep at most this many sealed segments (oldest are
    # deleted, with dropped counts in the manifest).  None keeps all.
    store_segments: int | None = None

    # How long a threaded-runtime producer may block pushing one frame into
    # a full downstream queue before giving the frame a terminal "dropped"
    # disposition.  None (the default, and the paper's behaviour) blocks
    # indefinitely — back-pressure propagates to the source.
    queue_put_timeout: float | None = None

    # Section 5.5 remedy, applied by default: frames that survive every
    # filter but find the reference model saturated are "temporarily stored
    # in the storage system, to be processed later" instead of
    # back-pressuring T-YOLO.  The real-time criterion (prefetch >= 30 FPS)
    # then binds on the *filters*, which is the only reading under which the
    # paper's TOR=1.000 experiment can support 5-6 streams on one reference
    # GPU.  Disable to make the reference queue a bounded feedback queue too.
    ref_overflow_to_storage: bool = True

    def __post_init__(self) -> None:
        if not 0.0 <= self.filter_degree <= 1.0:
            raise ValueError("filter_degree must be in [0, 1]")
        if self.number_of_objects < 1:
            raise ValueError("number_of_objects must be >= 1")
        if self.relax < 0:
            raise ValueError("relax must be >= 0")
        if self.batch_policy not in _POLICIES:
            raise ValueError(f"batch_policy must be one of {_POLICIES}")
        if self.batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        if self.num_t_yolo < 1:
            raise ValueError("num_t_yolo must be >= 1")
        if self.executor not in EXECUTORS:
            raise ValueError(f"executor must be one of {EXECUTORS}")
        if self.num_sdd_procs < 1:
            raise ValueError("num_sdd_procs must be >= 1")
        if self.mosaic_canvas < TYOLO_GRID:
            raise ValueError(
                f"mosaic_canvas must be >= the {TYOLO_GRID}-cell detector grid"
                " (a whole-frame fallback region must fit one canvas)"
            )
        if self.mosaic_gutter < 1:
            raise ValueError("mosaic_gutter must be >= 1 (isolates placements)")
        if self.cascade not in CASCADES:
            raise ValueError(
                f"cascade must be one of {sorted(CASCADES)}, got {self.cascade!r}"
            )
        for key in STAGES:
            if key not in self.queue_depths:
                raise ValueError(f"queue_depths missing stage {key!r}")
        for spec in CASCADES[self.cascade]:
            if spec.depth_key not in self.queue_depths:
                raise ValueError(f"queue_depths missing stage {spec.depth_key!r}")
        for key, depth in self.queue_depths.items():
            if depth < 1:
                raise ValueError(f"queue depth for {key!r} must be >= 1")
        if self.admission_hysteresis < 1:
            raise ValueError("admission_hysteresis must be >= 1")
        if not 0.0 < self.admission_depth_fraction <= 1.0:
            raise ValueError("admission_depth_fraction must be in (0, 1]")
        if self.cluster_instances < 1:
            raise ValueError("cluster_instances must be >= 1")
        if self.router_epoch <= 0:
            raise ValueError("router_epoch must be positive")
        if self.router_port is not None and not 0 <= self.router_port <= 65535:
            raise ValueError("router_port must be in [0, 65535] or None")
        if self.cluster_reserve_slots < 0:
            raise ValueError("cluster_reserve_slots must be >= 0")
        if self.cluster_handoff_window < 0:
            raise ValueError("cluster_handoff_window must be >= 0")
        if self.stream_fps <= 0:
            raise ValueError("stream_fps must be positive")
        if self.plan not in ("static", "adaptive"):
            raise ValueError("plan must be 'static' or 'adaptive'")
        if self.plan_epoch < 2:
            raise ValueError("plan_epoch must be >= 2")
        if not 0.0 <= self.plan_quiet < self.plan_busy <= 1.0:
            raise ValueError("need 0 <= plan_quiet < plan_busy <= 1")
        if self.plan_deadband < 0:
            raise ValueError("plan_deadband must be >= 0")
        if self.plan_quiet + self.plan_deadband >= self.plan_busy - self.plan_deadband:
            raise ValueError("plan deadbands around quiet and busy overlap")
        if self.plan_hysteresis < 1:
            raise ValueError("plan_hysteresis must be >= 1")
        if self.plan_tau <= 0:
            raise ValueError("plan_tau must be positive")
        if not 0.0 < self.plan_min_accuracy <= 1.0:
            raise ValueError("plan_min_accuracy must be in (0, 1]")
        if not self.plan_degrees or any(
            not 0.0 <= float(d) <= 1.0 for d in self.plan_degrees
        ):
            raise ValueError("plan_degrees must be a non-empty tuple in [0, 1]")
        if self.plan_batch_tau <= 0:
            raise ValueError("plan_batch_tau must be positive")
        if self.telemetry_port is not None and not 0 <= self.telemetry_port <= 65535:
            raise ValueError("telemetry_port must be in [0, 65535] or None")
        if self.telemetry_sample_interval <= 0:
            raise ValueError("telemetry_sample_interval must be positive")
        if self.store_segment_kb < 1:
            raise ValueError("store_segment_kb must be >= 1")
        if self.store_segments is not None and self.store_segments < 1:
            raise ValueError("store_segments must be >= 1 or None")
        if self.queue_put_timeout is not None and self.queue_put_timeout <= 0:
            raise ValueError("queue_put_timeout must be positive or None")

    def with_(self, **kwargs) -> "FFSVAConfig":
        """A modified copy (dataclasses.replace wrapper)."""
        return replace(self, **kwargs)

    def queue_depth(self, stage: str) -> int:
        """Depth threshold of the queue feeding ``stage``."""
        return int(self.queue_depths[stage])

    def graph(self) -> StageGraph:
        """The stage graph this configuration selects, with the scale-out
        execution options (``executor``, ``snm_fusion``, ``tyolo_mosaic``)
        applied."""
        return scaled_graph(
            CASCADES[self.cascade],
            executor=self.executor,
            snm_fusion=self.snm_fusion,
            tyolo_mosaic=self.tyolo_mosaic,
        )

    @property
    def bounded_queues(self) -> bool:
        """Static batching runs without the feedback-queue mechanism."""
        return self.batch_policy != "static"
