"""Optimizers.

The paper trains specialized models with "the stochastic gradient descent
algorithm"; SGD with classical momentum and optional step decay is all the
tiny SNM architectures need.
"""

from __future__ import annotations

import numpy as np

from .network import Sequential

__all__ = ["SGD"]


class SGD:
    """Stochastic gradient descent with momentum and weight decay."""

    def __init__(
        self,
        net: Sequential,
        lr: float = 0.05,
        momentum: float = 0.9,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.net = net
        self.lr = lr
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: dict[str, np.ndarray] = {}

    def step(self) -> None:
        """Apply one update from the accumulated gradients."""
        for tag, params, grads in self.net.parameters():
            for name, p in params.items():
                g = grads[name]
                if self.weight_decay and name == "W":
                    g = g + self.weight_decay * p
                key = f"{tag}/{name}"
                v = self._velocity.get(key)
                if v is None:
                    v = np.zeros_like(p)
                    self._velocity[key] = v
                v *= self.momentum
                v -= self.lr * g
                p += v

    def zero_grad(self) -> None:
        self.net.zero_grads()
