"""Mini-batch training loop with validation-based early stopping.

Reproduces the SNM training recipe of Section 4.1: labelled frames are split
into a training set and a test/validation set; the validation set is later
also used to pick the filter thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .losses import SoftmaxCrossEntropy
from .network import Sequential
from .optim import SGD

__all__ = ["TrainConfig", "TrainResult", "train_classifier", "accuracy"]


@dataclass(frozen=True)
class TrainConfig:
    """Hyper-parameters for :func:`train_classifier`."""

    epochs: int = 12
    batch_size: int = 64
    lr: float = 0.05
    momentum: float = 0.9
    weight_decay: float = 1e-4
    lr_decay: float = 0.7  # multiplied in when validation loss stalls
    patience: int = 3  # epochs without val improvement before early stop
    val_fraction: float = 0.2
    seed: int = 0


@dataclass
class TrainResult:
    """Training diagnostics."""

    train_losses: list[float] = field(default_factory=list)
    val_losses: list[float] = field(default_factory=list)
    val_accuracies: list[float] = field(default_factory=list)
    best_epoch: int = -1
    best_val_loss: float = float("inf")


def accuracy(net: Sequential, x: np.ndarray, y: np.ndarray, batch_size: int = 256) -> float:
    """Top-1 accuracy of ``net`` on ``(x, y)``, evaluated in inference mode."""
    correct = 0
    for i in range(0, len(x), batch_size):
        logits = net.predict(x[i : i + batch_size], copy=False)
        correct += int((logits.argmax(axis=1) == y[i : i + batch_size]).sum())
    return correct / max(len(x), 1)


def train_classifier(
    net: Sequential,
    x: np.ndarray,
    y: np.ndarray,
    config: TrainConfig | None = None,
) -> TrainResult:
    """Train ``net`` as a classifier on ``(x, y)`` with SGD + early stopping.

    The best-validation-loss parameters are restored before returning, so the
    caller always gets the early-stopped model.
    """
    cfg = config or TrainConfig()
    if len(x) != len(y):
        raise ValueError(f"x and y length mismatch: {len(x)} vs {len(y)}")
    if len(x) < 4:
        raise ValueError("need at least 4 samples to train")
    rng = np.random.default_rng(cfg.seed)
    order = rng.permutation(len(x))
    n_val = max(1, int(len(x) * cfg.val_fraction))
    val_idx, train_idx = order[:n_val], order[n_val:]
    xt, yt = x[train_idx], y[train_idx]
    xv, yv = x[val_idx], y[val_idx]

    loss_fn = SoftmaxCrossEntropy()
    opt = SGD(net, lr=cfg.lr, momentum=cfg.momentum, weight_decay=cfg.weight_decay)
    result = TrainResult()
    best_state = net.state_dict()
    stall = 0

    net.set_training(True)
    for epoch in range(cfg.epochs):
        perm = rng.permutation(len(xt))
        epoch_loss = 0.0
        n_batches = 0
        for i in range(0, len(xt), cfg.batch_size):
            idx = perm[i : i + cfg.batch_size]
            opt.zero_grad()
            logits = net.forward(xt[idx])
            loss = loss_fn(logits, yt[idx])
            net.backward(loss_fn.backward())
            opt.step()
            epoch_loss += loss
            n_batches += 1
        result.train_losses.append(epoch_loss / max(n_batches, 1))

        val_logits = net.predict(xv, copy=False)
        val_loss = loss_fn(val_logits, yv)
        val_acc = float((val_logits.argmax(axis=1) == yv).mean())
        result.val_losses.append(val_loss)
        result.val_accuracies.append(val_acc)

        if val_loss < result.best_val_loss - 1e-5:
            result.best_val_loss = val_loss
            result.best_epoch = epoch
            best_state = net.state_dict()
            stall = 0
        else:
            stall += 1
            opt.lr *= cfg.lr_decay
            if stall >= cfg.patience:
                break

    net.load_state_dict(best_state)
    net.set_training(False)
    return result
