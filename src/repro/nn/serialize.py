"""Save/load network weights to ``.npz`` archives.

The model zoo uses this to persist per-stream specialized models, mirroring
the paper's note that retrained scene models can be "saved models in the
past that can match the current environment" (Section 5.5).
"""

from __future__ import annotations

import os

import numpy as np

from .network import Sequential

__all__ = ["save_weights", "load_weights"]

# ``/`` appears in our state keys but npz field names survive it fine; keep a
# marker so load can sanity-check the archive came from us.
_FORMAT_KEY = "__repro_nn_format__"
_FORMAT_VERSION = 1


def save_weights(net: Sequential, path: str | os.PathLike) -> None:
    """Serialize ``net.state_dict()`` to ``path`` (npz, uncompressed)."""
    state = net.state_dict()
    state[_FORMAT_KEY] = np.array(_FORMAT_VERSION)
    np.savez(path, **state)


def load_weights(net: Sequential, path: str | os.PathLike) -> None:
    """Load weights saved with :func:`save_weights` into ``net`` (strict)."""
    with np.load(path) as archive:
        state = {k: archive[k] for k in archive.files}
    version = state.pop(_FORMAT_KEY, None)
    if version is None:
        raise ValueError(f"{path} is not a repro.nn weight archive")
    if int(version) != _FORMAT_VERSION:
        raise ValueError(f"unsupported weight format version {version}")
    net.load_state_dict(state)
