"""Neural-network layers with forward and backward passes, in pure NumPy.

FFS-VA's stream-specialized network model (SNM) is "a three-layer CNN
(CONV, CONV, and FC)" trained per stream with stochastic gradient descent
(paper Sections 2.1 and 3.2.2).  The original uses Darknet/CUDA; this module
is the reproduction's substrate: a minimal but real deep-learning framework
sufficient to train and run such models.

Conventions
-----------
* Activations are ``float32`` arrays shaped ``(N, C, H, W)`` for spatial
  layers and ``(N, D)`` for dense layers.
* ``forward`` caches whatever the corresponding ``backward`` needs;
  ``backward`` receives the loss gradient w.r.t. the layer output and
  returns the gradient w.r.t. the layer input, accumulating parameter
  gradients in ``grads``.
* Convolution is implemented via **im2col** so the inner loop is a single
  GEMM — the standard trick for CPU inference performance (see the
  hpc-parallel guides: vectorize, avoid Python-level pixel loops).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "ReLU",
    "Flatten",
    "Dropout",
    "im2col",
    "col2im",
]


def im2col(
    x: np.ndarray, kh: int, kw: int, stride: int, pad: int, out: np.ndarray | None = None
) -> tuple[np.ndarray, int, int]:
    """Unfold ``(N, C, H, W)`` into ``(N * OH * OW, C * kh * kw)`` patches.

    Returns the patch matrix plus the output spatial dims ``(OH, OW)``.
    Uses stride tricks (a view, no copy) for the window extraction and one
    reshape-copy to produce the GEMM operand.  ``out``, when given, receives
    that copy (it must be C-contiguous ``float32`` of the patch-matrix
    shape), so steady-state inference reuses one scratch buffer instead of
    allocating per call.
    """
    n, c, h, w = x.shape
    oh = (h + 2 * pad - kh) // stride + 1
    ow = (w + 2 * pad - kw) // stride + 1
    if oh <= 0 or ow <= 0:
        raise ValueError(
            f"kernel {kh}x{kw} stride {stride} pad {pad} too large for input {h}x{w}"
        )
    if pad:
        x = np.pad(x, ((0, 0), (0, 0), (pad, pad), (pad, pad)), mode="constant")
    sn, sc, sh, sw = x.strides
    windows = np.lib.stride_tricks.as_strided(
        x,
        shape=(n, c, oh, ow, kh, kw),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )
    # (N, OH, OW, C, kh, kw) -> rows are receptive fields.
    perm = windows.transpose(0, 2, 3, 1, 4, 5)
    rows, width = n * oh * ow, c * kh * kw
    if out is not None:
        if out.shape != (rows, width):
            raise ValueError(f"out must have shape {(rows, width)}, got {out.shape}")
        np.copyto(out.reshape(n, oh, ow, c, kh, kw), perm)
        return out, oh, ow
    cols = perm.reshape(rows, width)
    if not cols.flags.c_contiguous:  # reshape of the strided view usually copies
        cols = np.ascontiguousarray(cols)
    return cols, oh, ow


def col2im(
    cols: np.ndarray,
    x_shape: tuple[int, int, int, int],
    kh: int,
    kw: int,
    stride: int,
    pad: int,
    oh: int,
    ow: int,
) -> np.ndarray:
    """Fold patch gradients back to an input-shaped gradient (im2col adjoint)."""
    n, c, h, w = x_shape
    hp, wp = h + 2 * pad, w + 2 * pad
    dx = np.zeros((n, c, hp, wp), dtype=cols.dtype)
    cols6 = cols.reshape(n, oh, ow, c, kh, kw).transpose(0, 3, 1, 2, 4, 5)
    # Scatter-add each kernel offset in one vectorized slice assignment.
    for i in range(kh):
        for j in range(kw):
            dx[:, :, i : i + stride * oh : stride, j : j + stride * ow : stride] += cols6[
                :, :, :, :, i, j
            ]
    if pad:
        dx = dx[:, :, pad:-pad, pad:-pad]
    return dx


def _scratch(bufs: dict[str, np.ndarray], key: str, shape: tuple, dtype=np.float32) -> np.ndarray:
    """A reusable per-layer buffer: reallocated only when the shape changes.

    The returned array is *owned by the layer* and overwritten by the next
    inference call with the same shapes — callers must not hold onto it.
    """
    buf = bufs.get(key)
    if buf is None or buf.shape != shape or buf.dtype != dtype:
        buf = np.empty(shape, dtype)
        bufs[key] = buf
    return buf


class Layer:
    """Base class: stateless by default, parameterized layers override.

    ``forward`` caches what ``backward`` needs; :meth:`infer` is the
    inference fast path — same outputs, no backward caches, and (where a
    layer overrides it) per-layer scratch buffers reused across calls.
    """

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}
        self.training = True
        #: Inference scratch store (see :func:`_scratch`); not thread-safe —
        #: one network instance serves one worker at a time.
        self._bufs: dict[str, np.ndarray] = {}

    def forward(self, x: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def backward(self, dout: np.ndarray) -> np.ndarray:  # pragma: no cover - interface
        raise NotImplementedError

    def infer(self, x: np.ndarray) -> np.ndarray:
        """Forward pass without backward caching; defaults to ``forward``."""
        return self.forward(x)

    def zero_grads(self) -> None:
        for k in self.grads:
            self.grads[k][...] = 0.0

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)


class Dense(Layer):
    """Fully connected layer ``y = x @ W + b`` with He-uniform init."""

    def __init__(self, in_features: int, out_features: int, *, rng: np.random.Generator | None = None):
        super().__init__()
        rng = rng or np.random.default_rng()
        bound = np.sqrt(6.0 / in_features)
        self.params = {
            "W": rng.uniform(-bound, bound, size=(in_features, out_features)).astype(np.float32),
            "b": np.zeros(out_features, dtype=np.float32),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._x: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Dense expects (N, D) input, got shape {x.shape}")
        self._x = x
        return x @ self.params["W"] + self.params["b"]

    def infer(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 2:
            raise ValueError(f"Dense expects (N, D) input, got shape {x.shape}")
        w = self.params["W"]
        out = _scratch(self._bufs, "y", (x.shape[0], w.shape[1]), np.result_type(x, w))
        np.matmul(x, w, out=out)
        out += self.params["b"]
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._x is not None, "backward called before forward"
        self.grads["W"] += self._x.T @ dout
        self.grads["b"] += dout.sum(axis=0)
        return dout @ self.params["W"].T


class Conv2D(Layer):
    """2-D convolution (cross-correlation) via im2col + GEMM."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        *,
        stride: int = 1,
        pad: int = 0,
        rng: np.random.Generator | None = None,
    ):
        super().__init__()
        rng = rng or np.random.default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.pad = pad
        fan_in = in_channels * kernel_size * kernel_size
        bound = np.sqrt(6.0 / fan_in)
        self.params = {
            "W": rng.uniform(
                -bound, bound, size=(out_channels, in_channels, kernel_size, kernel_size)
            ).astype(np.float32),
            "b": np.zeros(out_channels, dtype=np.float32),
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (N, {self.in_channels}, H, W), got shape {x.shape}"
            )
        k, s, p = self.kernel_size, self.stride, self.pad
        cols, oh, ow = im2col(x, k, k, s, p)
        wmat = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ wmat.T + self.params["b"]
        n = x.shape[0]
        out = out.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols, oh, ow)
        return np.ascontiguousarray(out)

    def infer(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ValueError(
                f"Conv2D expects (N, {self.in_channels}, H, W), got shape {x.shape}"
            )
        k, s, p = self.kernel_size, self.stride, self.pad
        n, c, h, w = x.shape
        oh = (h + 2 * p - k) // s + 1
        ow = (w + 2 * p - k) // s + 1
        bufs = self._bufs
        dtype = np.result_type(x, self.params["W"])
        cols_buf = _scratch(bufs, "cols", (n * oh * ow, c * k * k), dtype)
        cols, oh, ow = im2col(x, k, k, s, p, out=cols_buf)
        wmat = self.params["W"].reshape(self.out_channels, -1)
        gemm = _scratch(bufs, "gemm", (n * oh * ow, self.out_channels), dtype)
        np.matmul(cols, wmat.T, out=gemm)
        gemm += self.params["b"]
        out = _scratch(bufs, "y", (n, self.out_channels, oh, ow), dtype)
        np.copyto(out, gemm.reshape(n, oh, ow, self.out_channels).transpose(0, 3, 1, 2))
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        x_shape, cols, oh, ow = self._cache
        n = x_shape[0]
        k, s, p = self.kernel_size, self.stride, self.pad
        dflat = dout.transpose(0, 2, 3, 1).reshape(n * oh * ow, self.out_channels)
        wmat = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] += (dflat.T @ cols).reshape(self.params["W"].shape)
        self.grads["b"] += dflat.sum(axis=0)
        dcols = dflat @ wmat
        return col2im(dcols, x_shape, k, k, s, p, oh, ow)


class MaxPool2D(Layer):
    """Non-overlapping max pooling with square window ``size``."""

    def __init__(self, size: int = 2):
        super().__init__()
        if size < 1:
            raise ValueError("pool size must be >= 1")
        self.size = size
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        if oh == 0 or ow == 0:
            raise ValueError(f"pool size {s} too large for input {h}x{w}")
        view = x[:, :, : oh * s, : ow * s].reshape(n, c, oh, s, ow, s)
        out = view.max(axis=(3, 5))
        # Mask of the (first) argmax positions, used to route gradients.
        mask = view == out[:, :, :, None, :, None]
        self._cache = (x.shape, mask, oh, ow)
        return out

    def infer(self, x: np.ndarray) -> np.ndarray:
        n, c, h, w = x.shape
        s = self.size
        oh, ow = h // s, w // s
        if oh == 0 or ow == 0:
            raise ValueError(f"pool size {s} too large for input {h}x{w}")
        out = _scratch(self._bufs, "y", (n, c, oh, ow), x.dtype)
        # No argmax mask: inference never routes gradients.  s*s elementwise
        # maxima over strided slices beat one reduction over a 6-D view, and
        # max is exact so the result matches ``view.max(axis=(3, 5))`` bitwise.
        np.copyto(out, x[:, :, : oh * s : s, : ow * s : s])
        for i in range(s):
            for j in range(s):
                if i == 0 and j == 0:
                    continue
                np.maximum(out, x[:, :, i : i + oh * s : s, j : j + ow * s : s], out=out)
        return out

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        x_shape, mask, oh, ow = self._cache
        n, c, h, w = x_shape
        s = self.size
        # Ties split the gradient; normalize by the tie count per window.
        ties = mask.sum(axis=(3, 5), keepdims=True)
        dwin = mask * (dout[:, :, :, None, :, None] / ties)
        dx = np.zeros(x_shape, dtype=dout.dtype)
        dx[:, :, : oh * s, : ow * s] = dwin.reshape(n, c, oh * s, ow * s)
        return dx


class ReLU(Layer):
    """Rectified linear activation."""

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0).astype(x.dtype, copy=False)

    def infer(self, x: np.ndarray) -> np.ndarray:
        out = _scratch(self._bufs, "y", x.shape, x.dtype)
        return np.maximum(x, 0.0, out=out)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._mask is not None, "backward called before forward"
        return dout * self._mask


class Flatten(Layer):
    """Collapse all but the batch dimension."""

    def __init__(self) -> None:
        super().__init__()
        self._shape: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        self._shape = x.shape
        return x.reshape(x.shape[0], -1)

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x.reshape(x.shape[0], -1)

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._shape is not None, "backward called before forward"
        return dout.reshape(self._shape)


class Dropout(Layer):
    """Inverted dropout; identity at inference time."""

    def __init__(self, rate: float = 0.5, *, rng: np.random.Generator | None = None):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError("dropout rate must be in [0, 1)")
        self.rate = rate
        self.rng = rng or np.random.default_rng()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if not self.training or self.rate == 0.0:
            self._mask = None
            return x
        keep = 1.0 - self.rate
        self._mask = (self.rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def infer(self, x: np.ndarray) -> np.ndarray:
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return dout
        return dout * self._mask
