"""Sequential network container."""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from .layers import Layer

__all__ = ["Sequential"]


class Sequential:
    """An ordered stack of layers with joint forward/backward passes."""

    def __init__(self, layers: Iterable[Layer]):
        self.layers = list(layers)

    def forward(self, x: np.ndarray) -> np.ndarray:
        for layer in self.layers:
            x = layer.forward(x)
        return x

    def backward(self, dout: np.ndarray) -> np.ndarray:
        for layer in reversed(self.layers):
            dout = layer.backward(dout)
        return dout

    def predict(self, x: np.ndarray, *, copy: bool = True) -> np.ndarray:
        """Inference fast path: ``forward`` outputs without backward caches.

        Runs every layer in inference mode (``training=False`` for the
        duration of the call; prior flags are restored) through its
        :meth:`~repro.nn.layers.Layer.infer` method, which reuses per-layer
        scratch buffers across calls instead of allocating.  Outputs are
        bit-identical to ``forward`` with ``set_training(False)``.

        Because the final activation lives in a scratch buffer the next call
        will overwrite, the result is copied by default; ``copy=False`` hands
        back the raw buffer for callers that consume it immediately.  Not
        re-entrant: one ``Sequential`` serves one thread at a time.
        """
        flags = [layer.training for layer in self.layers]
        try:
            for layer in self.layers:
                layer.training = False
                x = layer.infer(x)
        finally:
            for layer, flag in zip(self.layers, flags):
                layer.training = flag
        return x.copy() if copy else x

    def __call__(self, x: np.ndarray) -> np.ndarray:
        return self.forward(x)

    # -- parameter plumbing ---------------------------------------------------
    def parameters(self) -> list[tuple[str, dict[str, np.ndarray], dict[str, np.ndarray]]]:
        """Yield ``(layer_tag, params, grads)`` for every parameterized layer."""
        out = []
        for i, layer in enumerate(self.layers):
            if layer.params:
                out.append((f"{i}:{type(layer).__name__}", layer.params, layer.grads))
        return out

    def zero_grads(self) -> None:
        for layer in self.layers:
            layer.zero_grads()

    def set_training(self, training: bool) -> None:
        for layer in self.layers:
            layer.training = training

    def n_parameters(self) -> int:
        """Total number of scalar parameters."""
        return sum(p.size for _, params, _ in self.parameters() for p in params.values())

    # -- (de)serialization -----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Flat mapping of ``"layerTag/paramName" -> array`` (copies)."""
        state = {}
        for tag, params, _ in self.parameters():
            for name, arr in params.items():
                state[f"{tag}/{name}"] = arr.copy()
        return state

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        """Load parameters saved by :meth:`state_dict` (strict shapes/keys)."""
        expected = {
            f"{tag}/{name}": arr
            for tag, params, _ in self.parameters()
            for name, arr in params.items()
        }
        if set(expected) != set(state):
            missing = set(expected) - set(state)
            extra = set(state) - set(expected)
            raise KeyError(f"state mismatch: missing={sorted(missing)} extra={sorted(extra)}")
        for key, arr in state.items():
            if expected[key].shape != arr.shape:
                raise ValueError(
                    f"shape mismatch for {key}: expected {expected[key].shape}, got {arr.shape}"
                )
            expected[key][...] = arr
