"""A minimal from-scratch NumPy deep-learning framework.

Provides exactly what FFS-VA's stream-specialized network models (SNMs)
need: conv/pool/dense layers with backprop, SGD with momentum, a training
loop with early stopping, and weight (de)serialization.
"""

from .extras import Adam, BatchNorm2D, augment_flips_shifts
from .layers import Conv2D, Dense, Dropout, Flatten, Layer, MaxPool2D, ReLU
from .losses import SigmoidBCE, SoftmaxCrossEntropy, softmax
from .network import Sequential
from .optim import SGD
from .serialize import load_weights, save_weights
from .stacked import StackedSequential
from .train import TrainConfig, TrainResult, accuracy, train_classifier

__all__ = [
    "Layer",
    "Dense",
    "Conv2D",
    "MaxPool2D",
    "ReLU",
    "Flatten",
    "Dropout",
    "Sequential",
    "StackedSequential",
    "softmax",
    "SoftmaxCrossEntropy",
    "SigmoidBCE",
    "SGD",
    "TrainConfig",
    "TrainResult",
    "train_classifier",
    "accuracy",
    "save_weights",
    "load_weights",
    "BatchNorm2D",
    "Adam",
    "augment_flips_shifts",
]
