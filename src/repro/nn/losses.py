"""Loss functions with fused, numerically stable gradients."""

from __future__ import annotations

import numpy as np

__all__ = ["softmax", "SoftmaxCrossEntropy", "SigmoidBCE"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Row-wise softmax, stabilized by max subtraction."""
    z = logits - logits.max(axis=1, keepdims=True)
    e = np.exp(z)
    return e / e.sum(axis=1, keepdims=True)


class SoftmaxCrossEntropy:
    """Softmax + cross-entropy with integer class labels.

    Fusing the two yields the famously simple gradient
    ``(softmax(logits) - onehot) / N`` and avoids log-of-zero issues.
    """

    def forward(self, logits: np.ndarray, labels: np.ndarray) -> float:
        if logits.ndim != 2:
            raise ValueError(f"expected (N, C) logits, got {logits.shape}")
        n = logits.shape[0]
        probs = softmax(logits)
        self._probs = probs
        self._labels = labels
        eps = 1e-12
        return float(-np.log(probs[np.arange(n), labels] + eps).mean())

    def backward(self) -> np.ndarray:
        probs, labels = self._probs, self._labels
        n = probs.shape[0]
        grad = probs.copy()
        grad[np.arange(n), labels] -= 1.0
        return grad / n

    def __call__(self, logits: np.ndarray, labels: np.ndarray) -> float:
        return self.forward(logits, labels)


class SigmoidBCE:
    """Sigmoid + binary cross-entropy over a single logit column.

    Accepts logits shaped ``(N,)`` or ``(N, 1)`` and float targets in
    ``{0, 1}``; uses the log-sum-exp form for stability.
    """

    def forward(self, logits: np.ndarray, targets: np.ndarray) -> float:
        z = np.asarray(logits, dtype=np.float64).reshape(-1)
        y = np.asarray(targets, dtype=np.float64).reshape(-1)
        if z.shape != y.shape:
            raise ValueError(f"shape mismatch: logits {z.shape} vs targets {y.shape}")
        self._z, self._y = z, y
        self._shape = np.asarray(logits).shape
        # max(z,0) - z*y + log(1 + exp(-|z|))
        loss = np.maximum(z, 0) - z * y + np.log1p(np.exp(-np.abs(z)))
        return float(loss.mean())

    def backward(self) -> np.ndarray:
        p = 1.0 / (1.0 + np.exp(-self._z))
        grad = (p - self._y) / len(self._z)
        return grad.reshape(self._shape).astype(np.float32)

    def __call__(self, logits: np.ndarray, targets: np.ndarray) -> float:
        return self.forward(logits, targets)
