"""Weight-stacked evaluation of many architecturally-identical networks.

FFS-VA keeps one tiny SNM per stream, all resident on the filter GPU
(Section 3.1.2).  Executing them stream-by-stream wastes the batch
efficiency the paper's GPU-0 batching buys, so the fused SNM stage forms
*cross-stream mega-batches*: frames from every stream in one tensor, plus a
``model_idx`` vector saying which network each frame belongs to.

:class:`StackedSequential` evaluates such batches in one pass: the K
networks' convolution weights are stacked into a single ``(K, C*k*k, OC)``
tensor and the whole conv layer becomes one batched ``np.matmul`` over
per-frame gathered weights; the FC layer and the (cheap) fallback path run
grouped per-model GEMMs whose operands are exactly what per-network
``Sequential.predict`` would see.

Bit-identity contract
---------------------
``forward(x, model_idx)`` must equal running ``nets[k].predict`` on each
model's slice of the batch, *bitwise* — the cascade's verdicts may not
depend on whether fusion is enabled.  The grouped path guarantees this by
construction (it literally calls ``predict`` per group, with the same
256-row chunking ``SNM.predict_proba`` uses).  The batched conv path is
bit-identical on the BLAS builds we target (per-frame GEMM slices of a
batched matmul accumulate identically to one merged GEMM), but that is a
library property, not an IEEE guarantee — so the first ``forward`` call
self-checks the batched result against the grouped reference and silently
falls back to grouped execution on any mismatch.
"""

from __future__ import annotations

import numpy as np

from .layers import Conv2D, Dense, Dropout, Flatten, MaxPool2D, ReLU, _scratch, im2col
from .network import Sequential

__all__ = ["StackedSequential"]

#: Chunk size used by the grouped reference path; matches the chunking of
#: ``SNM.predict_proba`` so grouped execution is operand-identical to the
#: per-stream sequential path even for very large groups.
_GROUP_CHUNK = 256


def _check_same(tag: str, *values) -> None:
    if any(v != values[0] for v in values[1:]):
        raise ValueError(f"stacked networks disagree on {tag}: {values}")


class StackedSequential:
    """Evaluate K same-architecture :class:`Sequential` nets as one batch.

    Parameters
    ----------
    nets:
        The networks, index ``k`` serving frames with ``model_idx == k``.
        Supported layers: ``Conv2D``, ``ReLU``, ``MaxPool2D``, ``Flatten``,
        ``Dense``, ``Dropout`` (identity at inference).
    """

    def __init__(self, nets: list[Sequential]):
        if not nets:
            raise ValueError("need at least one network to stack")
        self.nets = list(nets)
        n_layers = {len(net.layers) for net in nets}
        if len(n_layers) != 1:
            raise ValueError("stacked networks must have the same depth")
        self._plan: list[tuple] = []
        for i, layer in enumerate(nets[0].layers):
            peers = [net.layers[i] for net in nets]
            _check_same(f"layer {i} type", *(type(la).__name__ for la in peers))
            if isinstance(layer, Conv2D):
                _check_same(
                    f"conv {i} geometry",
                    *(
                        (la.in_channels, la.out_channels, la.kernel_size, la.stride, la.pad)
                        for la in peers
                    ),
                )
                # One (K, C*k*k, OC) tensor: frame n multiplies its im2col
                # rows by w_t[model_idx[n]] — the whole layer is one batched
                # matmul over gathered weights.
                w_t = np.ascontiguousarray(
                    np.stack(
                        [la.params["W"].reshape(la.out_channels, -1).T for la in peers]
                    )
                )
                bias = np.stack([la.params["b"] for la in peers])
                self._plan.append(("conv", layer, w_t, bias))
            elif isinstance(layer, Dense):
                _check_same(
                    f"dense {i} shape", *(tuple(la.params["W"].shape) for la in peers)
                )
                w = np.ascontiguousarray(np.stack([la.params["W"] for la in peers]))
                bias = np.stack([la.params["b"] for la in peers])
                self._plan.append(("dense", layer, w, bias))
            elif isinstance(layer, ReLU):
                self._plan.append(("relu", layer, None, None))
            elif isinstance(layer, MaxPool2D):
                _check_same(f"pool {i} size", *(la.size for la in peers))
                self._plan.append(("pool", layer, None, None))
            elif isinstance(layer, (Flatten, Dropout)):
                self._plan.append(("flatten", layer, None, None))
            else:
                raise ValueError(
                    f"layer {type(layer).__name__} is not supported by StackedSequential"
                )
        self._bufs: dict[str, np.ndarray] = {}
        #: "batched" = weight-stacked conv matmul; "grouped" = per-model
        #: ``predict`` calls.  Demoted to "grouped" if the first-call
        #: self-check sees any bitwise difference.
        self.mode = "batched"
        self._verified = False

    # ------------------------------------------------------------------
    def forward(self, x: np.ndarray, model_idx: np.ndarray) -> np.ndarray:
        """Logits for a mega-batch; ``model_idx[n]`` picks frame n's net.

        Bit-identical to per-model ``Sequential.predict`` over each model's
        slice (see the module docstring for how that is enforced).  Returns
        a fresh array the caller owns.
        """
        x = np.asarray(x, dtype=np.float32)
        model_idx = np.asarray(model_idx)
        if x.ndim != 4:
            raise ValueError(f"expected a (N, C, H, W) batch, got shape {x.shape}")
        if model_idx.shape != (len(x),):
            raise ValueError("model_idx must have one entry per frame")
        if len(x) and (model_idx.min() < 0 or model_idx.max() >= len(self.nets)):
            raise ValueError(f"model_idx out of range for {len(self.nets)} networks")
        if self.mode == "grouped":
            return self._forward_grouped(x, model_idx)
        out = self._forward_batched(x, model_idx)
        if not self._verified:
            reference = self._forward_grouped(x, model_idx)
            self._verified = True
            if not np.array_equal(out, reference):
                self.mode = "grouped"
                return reference
        return out

    # ------------------------------------------------------------------
    def _forward_grouped(self, x: np.ndarray, model_idx: np.ndarray) -> np.ndarray:
        """Reference path: the per-stream sequential computation, regrouped."""
        out: np.ndarray | None = None
        for k in np.unique(model_idx):
            sel = np.nonzero(model_idx == k)[0]
            for i in range(0, len(sel), _GROUP_CHUNK):
                idx = sel[i : i + _GROUP_CHUNK]
                yk = self.nets[int(k)].predict(x[idx], copy=True)
                if out is None:
                    out = np.empty((len(x), yk.shape[1]), dtype=yk.dtype)
                out[idx] = yk
        if out is None:
            first_dense = next(p for p in reversed(self._plan) if p[0] == "dense")
            out = np.empty((0, first_dense[2].shape[2]), dtype=np.float32)
        return out

    def _forward_batched(self, x: np.ndarray, model_idx: np.ndarray) -> np.ndarray:
        bufs = self._bufs
        for li, (kind, layer, w, bias) in enumerate(self._plan):
            if kind == "conv":
                k, s, p = layer.kernel_size, layer.stride, layer.pad
                n, c, h, wd = x.shape
                oh = (h + 2 * p - k) // s + 1
                ow = (wd + 2 * p - k) // s + 1
                cols_buf = _scratch(bufs, f"cols{li}", (n * oh * ow, c * k * k))
                cols, oh, ow = im2col(x, k, k, s, p, out=cols_buf)
                cols3 = cols.reshape(n, oh * ow, c * k * k)
                # The one weight-stacked batched matmul: frame n's receptive
                # fields hit its own model's kernel matrix.
                gemm = _scratch(bufs, f"gemm{li}", (n, oh * ow, w.shape[2]))
                np.matmul(cols3, w[model_idx], out=gemm)
                gemm += bias[model_idx][:, None, :]
                y = _scratch(bufs, f"y{li}", (n, w.shape[2], oh, ow))
                np.copyto(y, gemm.reshape(n, oh, ow, w.shape[2]).transpose(0, 3, 1, 2))
                x = y
            elif kind == "dense":
                # The FC layer stays grouped per model: its tiny per-model
                # GEMMs hit BLAS's gemv path at M=1, whose accumulation
                # order differs from the batched 3-D matmul — grouping keeps
                # the operands exactly those of the per-stream path.
                n = x.shape[0]
                y = _scratch(bufs, f"y{li}", (n, w.shape[2]))
                for k in np.unique(model_idx):
                    sel = np.nonzero(model_idx == k)[0]
                    y[sel] = x[sel] @ w[k] + bias[k]
                x = y
            elif kind == "relu":
                y = _scratch(bufs, f"y{li}", x.shape, x.dtype)
                x = np.maximum(x, 0.0, out=y)
            elif kind == "pool":
                s = layer.size
                n, c, h, wd = x.shape
                oh, ow = h // s, wd // s
                y = _scratch(bufs, f"y{li}", (n, c, oh, ow), x.dtype)
                np.copyto(y, x[:, :, : oh * s : s, : ow * s : s])
                for i in range(s):
                    for j in range(s):
                        if i == 0 and j == 0:
                            continue
                        np.maximum(
                            y, x[:, :, i : i + oh * s : s, j : j + ow * s : s], out=y
                        )
                x = y
            else:  # flatten / dropout
                x = x.reshape(x.shape[0], -1)
        return x.copy()
