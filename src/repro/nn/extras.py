"""Optional training machinery: batch normalization, Adam, augmentation.

The paper's Section 2.1 recipe designs "a set of new CNN architectures ...
inheriting from the characteristics of the corresponding successful CNN
models" and picks the best by accuracy and execution time.  These utilities
support that architecture search beyond the plain conv/pool/FC + SGD
baseline: BatchNorm2D stabilizes deeper candidates, Adam converges faster
on small labelled sets, and horizontal-flip/shift augmentation stretches
the few hundred labelled frames each stream provides.
"""

from __future__ import annotations

import numpy as np

from .layers import Layer
from .network import Sequential

__all__ = ["BatchNorm2D", "Adam", "augment_flips_shifts"]


class BatchNorm2D(Layer):
    """Batch normalization over the channel axis of ``(N, C, H, W)`` input."""

    def __init__(self, channels: int, momentum: float = 0.9, eps: float = 1e-5):
        super().__init__()
        if channels < 1:
            raise ValueError("channels must be >= 1")
        if not 0.0 <= momentum < 1.0:
            raise ValueError("momentum must be in [0, 1)")
        self.eps = eps
        self.momentum = momentum
        self.params = {
            "W": np.ones(channels, dtype=np.float32),  # gamma (scale)
            "b": np.zeros(channels, dtype=np.float32),  # beta (shift)
        }
        self.grads = {k: np.zeros_like(v) for k, v in self.params.items()}
        self.running_mean = np.zeros(channels, dtype=np.float32)
        self.running_var = np.ones(channels, dtype=np.float32)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != len(self.running_mean):
            raise ValueError(
                f"expected (N, {len(self.running_mean)}, H, W), got {x.shape}"
            )
        axes = (0, 2, 3)
        if self.training:
            mean = x.mean(axis=axes)
            var = x.var(axis=axes)
            m = self.momentum
            self.running_mean = m * self.running_mean + (1 - m) * mean
            self.running_var = m * self.running_var + (1 - m) * var
        else:
            mean, var = self.running_mean, self.running_var
        std = np.sqrt(var + self.eps)
        xhat = (x - mean[None, :, None, None]) / std[None, :, None, None]
        self._cache = (xhat, std, x.shape)
        return (
            self.params["W"][None, :, None, None] * xhat
            + self.params["b"][None, :, None, None]
        )

    def infer(self, x: np.ndarray) -> np.ndarray:
        if x.ndim != 4 or x.shape[1] != len(self.running_mean):
            raise ValueError(
                f"expected (N, {len(self.running_mean)}, H, W), got {x.shape}"
            )
        std = np.sqrt(self.running_var + self.eps)
        xhat = (x - self.running_mean[None, :, None, None]) / std[None, :, None, None]
        return (
            self.params["W"][None, :, None, None] * xhat
            + self.params["b"][None, :, None, None]
        )

    def backward(self, dout: np.ndarray) -> np.ndarray:
        assert self._cache is not None, "backward called before forward"
        xhat, std, shape = self._cache
        n = shape[0] * shape[2] * shape[3]
        axes = (0, 2, 3)
        self.grads["W"] += (dout * xhat).sum(axis=axes)
        self.grads["b"] += dout.sum(axis=axes)
        gamma = self.params["W"][None, :, None, None]
        dxhat = dout * gamma
        # Standard batchnorm backward (training-mode statistics).
        dx = (
            dxhat
            - dxhat.mean(axis=axes, keepdims=True)
            - xhat * (dxhat * xhat).mean(axis=axes, keepdims=True)
        ) / std[None, :, None, None]
        return dx.astype(dout.dtype, copy=False)


class Adam:
    """Adam optimizer (Kingma & Ba) over a :class:`Sequential`'s parameters."""

    def __init__(
        self,
        net: Sequential,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-8,
        weight_decay: float = 0.0,
    ):
        if lr <= 0:
            raise ValueError("lr must be positive")
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise ValueError("betas must be in [0, 1)")
        self.net = net
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.weight_decay = weight_decay
        self._m: dict[str, np.ndarray] = {}
        self._v: dict[str, np.ndarray] = {}
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        bias1 = 1 - b1**self._t
        bias2 = 1 - b2**self._t
        for tag, params, grads in self.net.parameters():
            for name, p in params.items():
                g = grads[name]
                if self.weight_decay and name == "W":
                    g = g + self.weight_decay * p
                key = f"{tag}/{name}"
                m = self._m.setdefault(key, np.zeros_like(p))
                v = self._v.setdefault(key, np.zeros_like(p))
                m *= b1
                m += (1 - b1) * g
                v *= b2
                v += (1 - b2) * g * g
                p -= self.lr * (m / bias1) / (np.sqrt(v / bias2) + self.eps)

    def zero_grad(self) -> None:
        self.net.zero_grads()


def augment_flips_shifts(
    x: np.ndarray,
    y: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
    flip_prob: float = 0.5,
    max_shift: int = 2,
) -> tuple[np.ndarray, np.ndarray]:
    """One augmented copy of each sample: random horizontal flip + shift.

    Works on ``(N, C, H, W)`` batches; shifts pad with edge values so the
    synthetic background statistics survive.  Returns the concatenation of
    the original and augmented sets (labels duplicated).
    """
    if x.ndim != 4:
        raise ValueError(f"expected (N, C, H, W), got {x.shape}")
    rng = rng or np.random.default_rng()
    aug = x.copy()
    n = len(x)
    flips = rng.random(n) < flip_prob
    aug[flips] = aug[flips, :, :, ::-1]
    if max_shift > 0:
        shifts = rng.integers(-max_shift, max_shift + 1, size=(n, 2))
        for i, (dy, dx_) in enumerate(shifts):
            if dy or dx_:
                aug[i] = np.roll(aug[i], (int(dy), int(dx_)), axis=(1, 2))
    return np.concatenate([x, aug]), np.concatenate([y, y])
