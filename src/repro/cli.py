"""Command-line interface for the FFS-VA reproduction.

Usage (also available as ``python -m repro``)::

    ffs-va workloads
    ffs-va train    --workload jackson --tor 0.3 --frames 2400 --out models/
    ffs-va analyze  --workload jackson --tor 0.3 --frames 600
    ffs-va simulate --workload jackson --tor 0.103 --streams 20 --mode online
    ffs-va plan     --workload jackson --tor 0.103
    ffs-va explain  --workload jackson --frames 600 --stream stream-0 --frame 120

Every command synthesizes its stream deterministically from the workload
preset, TOR and seed, so results are reproducible from the command line
alone.
"""

from __future__ import annotations

import argparse
import sys

from . import __version__
from .core.config import FFSVAConfig
from .core.pipeline import CASCADES
from .core.planner import offline_throughput_bound, plan_capacity
from .core.tracecache import workload_trace
from .models import ModelZoo
from .obs import Telemetry, TelemetryServer
from .sim import PipelineSimulator
from .video.workloads import coral, jackson, make_stream

__all__ = ["main", "build_parser"]

_WORKLOADS = {"jackson": jackson, "coral": coral}


def _add_stream_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--workload", choices=sorted(_WORKLOADS), default="jackson")
    p.add_argument("--tor", type=float, default=None, help="target-object ratio")
    p.add_argument("--frames", type=int, default=3000)
    p.add_argument("--seed", type=int, default=0)


def _add_config_args(p: argparse.ArgumentParser) -> None:
    p.add_argument("--filter-degree", type=float, default=0.5)
    p.add_argument("--number-of-objects", type=int, default=1)
    p.add_argument("--relax", type=int, default=0)
    p.add_argument(
        "--batch-policy", choices=["static", "feedback", "dynamic"], default="dynamic"
    )
    p.add_argument("--batch-size", type=int, default=10)
    p.add_argument(
        "--cascade",
        choices=sorted(CASCADES),
        default="ffs-va",
        help="which registered stage-graph composition to execute",
    )
    p.add_argument(
        "--executor",
        choices=["thread", "process"],
        default="thread",
        help="run CPU-hosted stages (SDD) inline in worker threads, or on a "
             "pool of worker processes fed through the shared-memory frame plane",
    )
    p.add_argument(
        "--num-sdd-procs", type=int, default=2, metavar="N",
        help="worker processes in the SDD pool when --executor process",
    )
    p.add_argument(
        "--snm-fusion", action="store_true",
        help="fuse the per-stream SNMs into one worker forming cross-stream "
             "mega-batches executed as a single weight-stacked forward pass",
    )
    p.add_argument(
        "--tyolo-mosaic", action="store_true",
        help="object-level T-YOLO consolidation: pack each cross-stream "
             "mega-batch's active regions onto composite canvases and run "
             "the detector once per canvas instead of once per frame",
    )
    p.add_argument(
        "--mosaic-canvas", type=int, default=52, metavar="CELLS",
        help="mosaic canvas side in detector grid cells (52 = one native "
             "416x416 T-YOLO input)",
    )
    p.add_argument(
        "--mosaic-gutter", type=int, default=1, metavar="CELLS",
        help="empty-cell gap between mosaic placements (>= 1)",
    )
    p.add_argument(
        "--plan", choices=["static", "adaptive"], default="static",
        help="query planning: 'adaptive' re-decides each stream's cascade "
             "exit depth and SNM FilterDegree every plan epoch from observed "
             "content (first-filter pass fraction)",
    )
    p.add_argument(
        "--plan-epoch", type=int, default=64, metavar="FRAMES",
        help="frames per planning chunk with --plan adaptive",
    )
    p.add_argument(
        "--adaptive-batching", action="store_true",
        help="let the planner steer the SNM batch-size target from an EWMA "
             "of observed queue depth (requires --plan adaptive)",
    )


def _add_telemetry_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--telemetry", action="store_true",
        help="attach the telemetry subsystem (events, spans, time-series)",
    )
    p.add_argument(
        "--telemetry-port", type=int, default=None, metavar="PORT",
        help="serve /metrics and /snapshot on this local port (0 = ephemeral); "
             "implies --telemetry",
    )
    p.add_argument(
        "--telemetry-linger", type=float, default=0.0, metavar="SECONDS",
        help="keep the telemetry endpoint up this long after the run",
    )
    p.add_argument(
        "--metrics-json", default=None, metavar="PATH",
        help="write the run's RunMetrics as JSON to PATH",
    )
    p.add_argument(
        "--trace-json", default=None, metavar="PATH",
        help="write a Chrome trace_event JSON (chrome://tracing) to PATH; "
             "requires --telemetry",
    )
    p.add_argument(
        "--trace-dir", default=None, metavar="DIR",
        help="write a rotated/segmented Chrome trace (trace-NNNNN.json files "
             "plus manifest.json) into DIR for long runs; implies --telemetry",
    )
    p.add_argument(
        "--trace-segment-kb", type=int, default=1024, metavar="KB",
        help="max serialized size of one trace segment (with --trace-dir)",
    )
    p.add_argument(
        "--trace-segments", type=int, default=None, metavar="N",
        help="keep at most N newest trace segments on disk (with --trace-dir)",
    )


def _add_store_args(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--store-dir", default=None, metavar="DIR",
        help="persist one DetectionRecord per frame outcome into a segmented "
             "store under DIR (query later with `repro query DIR`); cluster "
             "runs write per-instance stores DIR/instance-N/",
    )
    p.add_argument(
        "--store-segment-kb", type=int, default=256, metavar="KB",
        help="rotate store segments at this size (with --store-dir)",
    )
    p.add_argument(
        "--store-segments", type=int, default=None, metavar="N",
        help="keep at most N newest store segments (with --store-dir)",
    )


def _config_from(args) -> FFSVAConfig:
    telemetry = bool(
        getattr(args, "telemetry", False)
        or getattr(args, "telemetry_port", None) is not None
        or getattr(args, "trace_json", None)
        or getattr(args, "trace_dir", None)
    )
    return FFSVAConfig(
        filter_degree=args.filter_degree,
        number_of_objects=args.number_of_objects,
        relax=args.relax,
        batch_policy=args.batch_policy,
        batch_size=args.batch_size,
        cascade=args.cascade,
        executor=getattr(args, "executor", "thread"),
        num_sdd_procs=getattr(args, "num_sdd_procs", 2),
        snm_fusion=bool(getattr(args, "snm_fusion", False)),
        tyolo_mosaic=bool(getattr(args, "tyolo_mosaic", False)),
        mosaic_canvas=getattr(args, "mosaic_canvas", 52),
        mosaic_gutter=getattr(args, "mosaic_gutter", 1),
        plan=getattr(args, "plan", "static"),
        plan_epoch=getattr(args, "plan_epoch", 64),
        adaptive_batching=bool(getattr(args, "adaptive_batching", False)),
        telemetry=telemetry,
        telemetry_port=getattr(args, "telemetry_port", None),
        result_store_dir=getattr(args, "store_dir", None),
        store_segment_kb=getattr(args, "store_segment_kb", 256),
        store_segments=getattr(args, "store_segments", None),
    )


def _stream_from(args):
    spec = _WORKLOADS[args.workload]()
    return make_stream(spec, args.frames, tor=args.tor, seed=args.seed)


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ffs-va",
        description="FFS-VA: a fast filtering system for large-scale video analytics",
    )
    parser.add_argument("--version", action="version", version=f"ffs-va {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("workloads", help="list the evaluation workload presets")

    p = sub.add_parser("train", help="train a stream's specialized models")
    _add_stream_args(p)
    p.add_argument("--out", default=None, help="directory to save the models into")
    p.add_argument("--train-frames", type=int, default=400)

    p = sub.add_parser("analyze", help="run the real threaded pipeline offline")
    _add_stream_args(p)
    _add_config_args(p)
    _add_telemetry_args(p)
    _add_store_args(p)
    p.add_argument("--train-frames", type=int, default=300)

    p = sub.add_parser("simulate", help="paper-scale simulation on the virtual server")
    _add_stream_args(p)
    _add_config_args(p)
    _add_telemetry_args(p)
    _add_store_args(p)
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--mode", choices=["offline", "online"], default="offline")
    p.add_argument(
        "--baseline", action="store_true",
        help="run the YOLOv2-on-everything baseline instead of the FFS-VA "
             "cascade (same telemetry schema, so traces overlay)",
    )

    p = sub.add_parser("plan", help="analytic capacity plan for a workload")
    _add_stream_args(p)
    _add_config_args(p)

    p = sub.add_parser(
        "cluster",
        help="N pipeline instances behind a live stream router (shed/re-forward)",
    )
    _add_stream_args(p)
    _add_config_args(p)
    _add_store_args(p)
    p.add_argument("--streams", type=int, default=4)
    p.add_argument("--instances", type=int, default=2)
    p.add_argument(
        "--mode", choices=["sim", "threaded"], default="sim",
        help="sim: virtual-clock ClusterSimulator over workload traces; "
             "threaded: real forked pipeline instances (trains models first)",
    )
    p.add_argument("--router-epoch", type=float, default=0.25, metavar="SECONDS")
    p.add_argument(
        "--depth-fraction", type=float, default=0.5,
        help="admission_depth_fraction: queue fill fraction that arms the "
             "overload signal (1.0 can never trip on bounded queues)",
    )
    p.add_argument("--reserve-slots", type=int, default=2)
    p.add_argument(
        "--admission-fps", type=float, default=140.0,
        help="rate-stage FPS threshold below which an instance can admit",
    )
    p.add_argument("--train-frames", type=int, default=200,
                   help="training frames per stream (threaded mode)")

    p = sub.add_parser(
        "explain",
        help="run a workload with telemetry and explain one frame's lineage "
             "(per-hop queue/batch/service latency decomposition)",
    )
    _add_stream_args(p)
    _add_config_args(p)
    _add_store_args(p)
    p.add_argument(
        "--stream", default=None,
        help="stream id to explain (default: the first stream)",
    )
    p.add_argument(
        "--frame", type=int, default=None, metavar="N",
        help="global frame index to explain; omit for the critical-path "
             "summary over every observed frame",
    )
    p.add_argument(
        "--runtime", choices=["sim", "threaded"], default="sim",
        help="sim: virtual-clock simulator (deterministic lineage); "
             "threaded: the real pipeline (trains models first)",
    )
    p.add_argument("--streams", type=int, default=1)
    p.add_argument("--mode", choices=["offline", "online"], default="offline")
    p.add_argument("--train-frames", type=int, default=300,
                   help="training frames per stream (threaded runtime)")
    p.add_argument("--json", action="store_true",
                   help="emit the raw /lineage JSON body instead of a table")

    p = sub.add_parser(
        "query",
        help="query a persisted detection store (no pipeline in the loop)",
    )
    p.add_argument(
        "store",
        help="store directory from a --store-dir run (or a cluster parent "
             "holding instance-N/ stores, merged transparently)",
    )
    p.add_argument("--q", choices=["count", "topk", "windows"], default="count")
    p.add_argument("--stream", default=None, help="restrict to one stream id")
    p.add_argument("--cls", default=None, help="restrict to one object class")
    p.add_argument("--t0", type=float, default=None, metavar="SECONDS")
    p.add_argument("--t1", type=float, default=None, metavar="SECONDS")
    p.add_argument("--k", type=int, default=5, help="top-k size (--q topk)")
    p.add_argument("--window", type=float, default=1.0,
                   help="bin width in seconds (--q windows)")
    p.add_argument(
        "--disposition", default="detected",
        help='"detected" (terminal stage), "any", or a literal stage name',
    )
    p.add_argument(
        "--replay", action="store_true",
        help="re-decode the matched frames of --stream through the "
             "memory-bounded ClipStore (requires --stream; the stream is "
             "re-synthesized from --workload/--tor/--frames/--seed)",
    )
    _add_stream_args(p)
    p.add_argument("--chunk-frames", type=int, default=64,
                   help="frames per decoded chunk during --replay")
    p.add_argument("--budget-mb", type=int, default=64,
                   help="replay decode-cache memory budget (MiB)")
    return parser


def _cmd_workloads(args) -> int:
    print(f"{'name':<10} {'object':<8} {'paper res':<10} {'fps':<5} {'base TOR'}")
    for name, fn in sorted(_WORKLOADS.items()):
        spec = fn()
        w, h = spec.paper_resolution
        print(f"{name:<10} {spec.kind:<8} {w}*{h:<6} {spec.fps:<5.0f} {spec.base_tor}")
    return 0


def _cmd_train(args) -> int:
    stream = _stream_from(args)
    print(f"training on {stream.stream_id} ({len(stream)} frames, TOR={stream.tor():.3f})")
    zoo = ModelZoo()
    bundle = zoo.train_for_stream(stream, n_train_frames=args.train_frames)
    for key, value in bundle.train_info.items():
        print(f"  {key}: {value}")
    if args.out:
        path = zoo.save_stream(stream.stream_id, args.out)
        print(f"saved to {path}")
    return 0


def _write_artifacts(args, metrics, telemetry, terminal: str) -> None:
    """Persist the optional --metrics-json / --trace-json outputs."""
    if getattr(args, "metrics_json", None):
        with open(args.metrics_json, "w") as fh:
            fh.write(metrics.to_json(indent=2))
        print(f"metrics written to {args.metrics_json}")
    if getattr(args, "trace_json", None) and telemetry is not None:
        telemetry.dump_chrome_trace(args.trace_json, terminal=terminal)
        print(f"chrome trace written to {args.trace_json} (open in chrome://tracing)")
    if getattr(args, "trace_dir", None) and telemetry is not None:
        manifest = telemetry.dump_rotating_trace(
            args.trace_dir,
            terminal=terminal,
            max_bytes=max(4096, getattr(args, "trace_segment_kb", 1024) * 1024),
            max_segments=getattr(args, "trace_segments", None),
        )
        print(f"rotated trace: {len(manifest['segments'])} segment(s) in "
              f"{args.trace_dir} (manifest.json indexes them)")
    if telemetry is not None:
        stats = telemetry.bus.stats()
        print(f"telemetry: {stats['published']} events "
              f"({stats['dropped']} dropped, {len(telemetry.sampler.names)} series)")


def _linger(server: TelemetryServer | None, seconds: float) -> None:
    if server is None:
        return
    if seconds > 0:
        import time

        time.sleep(seconds)
    server.stop()


def _cmd_analyze(args) -> int:
    from .api import FFSVA

    config = _config_from(args)
    stream = _stream_from(args)
    system = FFSVA(config)
    system.train(stream, n_train_frames=args.train_frames)
    report = system.analyze_offline(stream)
    m = report.metrics
    print(f"processed {m.frames_ingested} frames in {m.duration:.1f}s "
          f"({m.throughput_fps:.0f} FPS real compute)")
    for spec in config.graph():
        c = m.stages[spec.name]
        print(f"  {spec.name:>6}: executed {c.entered:5d}  filtered {c.filtered:5d}")
    print(f"{len(report.events)} event frames confirmed by the reference model")
    terminal = config.graph().terminal.name
    _write_artifacts(args, m, report.telemetry, terminal)
    if report.telemetry is not None and config.telemetry_port is not None:
        server = report.telemetry.serve(lambda: m, port=config.telemetry_port)
        print(f"telemetry endpoint: {server.url}/metrics (and /snapshot)")
        _linger(server, args.telemetry_linger)
    return 0


def _cmd_simulate(args) -> int:
    config = _config_from(args)
    base = workload_trace(
        _WORKLOADS[args.workload](), args.frames, tor=args.tor, seed=args.seed
    )
    traces = [base.rotated(997 * i).renamed(f"stream-{i}") for i in range(args.streams)]
    telemetry = Telemetry.from_config(config)
    if args.baseline:
        from .baseline import BaselineSimulator

        sim = BaselineSimulator(
            traces, config, online=(args.mode == "online"), telemetry=telemetry
        )
    else:
        sim = PipelineSimulator(
            traces, config, online=(args.mode == "online"), telemetry=telemetry
        )
    server = None
    if telemetry is not None and config.telemetry_port is not None:
        # Serve live state: scraping /metrics mid-run sees the run so far.
        server = telemetry.serve(lambda: sim.metrics, port=config.telemetry_port)
        print(f"telemetry endpoint: {server.url}/metrics")
    if args.mode == "offline":
        m = sim.run()
    else:
        horizon = max(len(t) for t in traces) / config.stream_fps + 2.0
        m = sim.run(max_virtual_time=horizon)
    print(f"{args.mode} simulation of {args.streams} stream(s):")
    print(f"  throughput: {m.throughput_fps:.1f} FPS aggregate "
          f"({m.per_stream_fps:.1f}/stream)")
    if args.mode == "online":
        print(f"  real-time: {'yes' if m.realtime() else 'NO'} "
              f"(ingest ratio {m.ingest_ratio:.3f})")
    print(f"  latency: mean {m.frame_latency.mean:.3f}s  p95 {m.frame_latency.p95:.3f}s")
    terminal = config.graph().terminal.name
    print(f"  frames to reference model: {m.frames_to_ref} "
          f"({m.stage_fraction(terminal):.1%} of input)")
    for dev, util in sorted(m.device_utilization.items()):
        print(f"  {dev} utilization: {util:.0%}")
    if getattr(sim, "store", None) is not None:
        print(f"  detection store: {sim.store.rows_appended} rows in "
              f"{config.result_store_dir} (query with `ffs-va query`)")
    _write_artifacts(args, m, telemetry, terminal)
    _linger(server, args.telemetry_linger)
    return 0


def _cmd_plan(args) -> int:
    config = _config_from(args)
    trace = workload_trace(
        _WORKLOADS[args.workload](), args.frames, tor=args.tor, seed=args.seed
    )
    plan = plan_capacity(trace, config)
    bound = offline_throughput_bound(trace, config)
    print(f"capacity plan for {args.workload} at TOR={trace.tor():.3f}:")
    print(f"  max real-time streams: {plan.max_streams} "
          f"(bottleneck: {plan.bottleneck_device})")
    for dev, demand in sorted(plan.device_demand.items()):
        print(f"  {dev}: {demand:.4f} device-seconds per stream-second")
    print(f"  offline throughput bound (1 stream): {bound:.0f} FPS")
    return 0


def _cmd_cluster(args) -> int:
    config = _config_from(args).with_(
        telemetry=True,
        cluster_instances=args.instances,
        router_epoch=args.router_epoch,
        admission_depth_fraction=args.depth_fraction,
        cluster_reserve_slots=args.reserve_slots,
        admission_tyolo_fps=args.admission_fps,
    )
    moves: list
    if args.mode == "sim":
        from .sim.cluster import ClusterSimulator

        base = workload_trace(
            _WORKLOADS[args.workload](), args.frames, tor=args.tor, seed=args.seed
        )
        traces = [
            base.rotated(997 * i).renamed(f"stream-{i}") for i in range(args.streams)
        ]
        result = ClusterSimulator(traces, config, online=True).run()
        metrics, moves = result.instances, result.moves
        print(f"simulated cluster: {args.instances} instance(s), "
              f"{args.streams} stream(s), virtual time {result.virtual_time:.2f}s")
    else:
        from .runtime.cluster import ClusterSupervisor

        spec = _WORKLOADS[args.workload]()
        streams = [
            make_stream(spec, args.frames, tor=args.tor, seed=args.seed + i)
            for i in range(args.streams)
        ]
        zoo = ModelZoo()
        for s in streams:
            zoo.train_for_stream(s, n_train_frames=args.train_frames)
        result = ClusterSupervisor(streams, zoo, config).run(args.frames, online=True)
        metrics, moves = result.instances, result.moves
        print(f"threaded cluster: {args.instances} instance(s), "
              f"{args.streams} stream(s)")
    for i, m in enumerate(metrics):
        print(f"  instance {i}: streams {m.n_streams}  offered {m.frames_offered}  "
              f"ingested {m.frames_ingested}  to-ref {m.frames_to_ref}")
    if moves:
        for stream, src, dst in moves:
            print(f"  re-forwarded {stream}: instance {src} -> {dst}")
    else:
        print("  no shed/re-forward was needed")
    total = sum(m.frames_offered for m in metrics)
    print(f"  cluster total: {total} frames offered across "
          f"{sum(m.n_streams for m in metrics)} placements")
    return 0


def _print_attribution(body: dict) -> None:
    """Render the critical-path summary (no --frame) as a terminal report."""
    print(f"critical-path attribution over {body['frames']} frame(s) "
          f"({body['complete']} complete, {body['incomplete']} incomplete)")
    if body.get("warning"):
        print(f"  warning: {body['warning']}")
    for name, comp in list(body["components"].items())[:8]:
        print(f"  {name:<24} {comp['seconds'] * 1e3:10.1f} ms  {comp['share']:6.1%}")
    for q, info in body.get("quantiles", {}).items():
        if info is None:
            continue
        print(f"  {q}: stream {info['stream']} frame {info['frame']} — "
              f"{info['latency_s'] * 1e3:.1f} ms, dominated by {info['top']}")


def _print_lineage(body: dict) -> None:
    """Render one frame's hop table."""
    tag = "  [INCOMPLETE: ring evicted part of this story]" if body["incomplete"] else ""
    print(f"frame {body['frame']} of stream {body['stream']} — "
          f"disposition: {body['disposition'] or 'unknown'}{tag}")
    if body.get("plan"):
        decided = " ".join(f"{k}={v}" for k, v in sorted(body["plan"].items()))
        print(f"  plan in effect: {decided}")
    header = (f"  {'hop':>3}  {'stage':<8} {'gap ms':>9} {'batch ms':>9} "
              f"{'queue ms':>9} {'svc ms':>9} {'bsz':>4} {'batch#':>6}  outcome")
    print(header)
    for i, hop in enumerate(body["hops"]):
        note = hop["disposition"] + ("" if hop["complete"] else "  (enter evicted)")
        if hop["blocked"]:
            note += f"  blocked x{hop['blocked']}"
        print(f"  {i:>3}  {hop['stage']:<8} {hop['gap'] * 1e3:>9.3f} "
              f"{hop['batch_wait'] * 1e3:>9.3f} {hop['queue_wait'] * 1e3:>9.3f} "
              f"{hop['service'] * 1e3:>9.3f} "
              f"{hop['batch_size'] if hop['batch_size'] is not None else '-':>4} "
              f"{hop['batch_id'] if hop['batch_id'] is not None else '-':>6}  {note}")
    t = body["totals"]
    print(f"  totals: gap {t['gap'] * 1e3:.3f} + batch_wait {t['batch_wait'] * 1e3:.3f}"
          f" + queue_wait {t['queue_wait'] * 1e3:.3f} + service {t['service'] * 1e3:.3f}"
          f" = {t['total'] * 1e3:.3f} ms"
          f" (recorded end-to-end {body['total_latency'] * 1e3:.3f} ms)")


def _print_store_row(store_dir: str, stream_id: str, frame: int) -> None:
    """Join the explained frame against its persisted DetectionRecord."""
    from .store import open_store

    try:
        reader = open_store(store_dir)
    except FileNotFoundError:
        return
    row = None
    for rec in reader.iter_records():
        if rec.stream == stream_id and rec.frame == frame:
            row = rec
    if row is None:
        print(f"  store: no persisted record for {stream_id}#{frame}")
    else:
        print(f"  store: disposition={row.disposition} cls={row.cls} "
              f"score={row.score:g} t={row.t:.2f}s")


def _cmd_explain(args) -> int:
    import json as _json

    from .obs.export import _lineage_reply

    config = _config_from(args).with_(telemetry=True)
    telemetry = Telemetry.from_config(config)
    if args.runtime == "sim":
        base = workload_trace(
            _WORKLOADS[args.workload](), args.frames, tor=args.tor, seed=args.seed
        )
        traces = [
            base.rotated(997 * i).renamed(f"stream-{i}") for i in range(args.streams)
        ]
        sim = PipelineSimulator(
            traces, config, online=(args.mode == "online"), telemetry=telemetry
        )
        if args.mode == "offline":
            sim.run()
        else:
            horizon = max(len(t) for t in traces) / config.stream_fps + 2.0
            sim.run(max_virtual_time=horizon)
        context = sim.lineage_context
    else:
        from .runtime.engine import ThreadedPipeline

        spec = _WORKLOADS[args.workload]()
        streams = [
            make_stream(spec, args.frames, tor=args.tor, seed=args.seed + i)
            for i in range(args.streams)
        ]
        zoo = ModelZoo()
        for s in streams:
            zoo.train_for_stream(s, n_train_frames=args.train_frames)
        pipeline = ThreadedPipeline(streams, zoo, config, telemetry=telemetry)
        pipeline.run(args.frames, online=(args.mode == "online"))
        context = pipeline.lineage_context

    ctx = context()
    query: dict = {}
    stream_q = args.stream
    if args.frame is not None:
        if stream_q is None:
            smap = ctx.get("streams", {})
            stream_q = (
                min(smap, key=lambda k: smap[k]["index"]) if smap else "0"
            )
        query = {"stream": [stream_q], "frame": [str(args.frame)]}
    status, _, payload = _lineage_reply(telemetry, context, query)
    body = _json.loads(payload)
    if args.json:
        print(_json.dumps(body, indent=2))
        return 0 if status == 200 else 1
    if args.frame is None:
        _print_attribution(body)
        return 0
    if not body.get("found"):
        print(f"frame {args.frame} of {stream_q}: no surviving lineage "
              f"({body.get('warning') or 'frame never observed'})",
              file=sys.stderr)
        return 1
    _print_lineage(body)
    if config.result_store_dir is not None:
        _print_store_row(config.result_store_dir, stream_q, args.frame)
    return 0


def _cmd_query(args) -> int:
    from .store import (
        count_detections,
        open_store,
        replay_detections,
        top_k_streams,
        window_aggregate,
    )

    try:
        reader = open_store(args.store)
    except FileNotFoundError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    t0 = args.t0 if args.t0 is not None else float("-inf")
    t1 = args.t1 if args.t1 is not None else float("inf")
    if args.q == "count":
        n = count_detections(
            reader, stream=args.stream, cls=args.cls,
            t0=t0, t1=t1, disposition=args.disposition,
        )
        print(n)
    elif args.q == "topk":
        for stream_id, n in top_k_streams(
            reader, args.k, cls=args.cls, t0=t0, t1=t1, disposition=args.disposition
        ):
            print(f"{stream_id}\t{n}")
    else:
        for b in window_aggregate(
            reader, args.window, stream=args.stream, cls=args.cls,
            t0=args.t0, t1=args.t1, disposition=args.disposition,
        ):
            print(f"[{b['t0']:8.2f}, {b['t1']:8.2f})  count={b['count']:<5d} "
                  f"score_max={b['score_max']:g}")
    if reader.missing:
        print(f"note: {len(reader.missing)} segment(s) rotated out of retention",
              file=sys.stderr)
    if args.replay:
        if not args.stream:
            print("error: --replay requires --stream", file=sys.stderr)
            return 2
        stream = _stream_from(args)
        result = replay_detections(
            reader, stream,
            t0=t0, t1=t1, stream_id=args.stream,
            chunk_frames=args.chunk_frames,
            memory_budget_bytes=args.budget_mb * 2**20,
            disposition=args.disposition,
        )
        st = result.clip_stats
        print(f"replayed {len(result.frames)} frame(s): peak decode memory "
              f"{st['peak_bytes'] / 2**20:.1f} MiB of "
              f"{st['memory_budget_bytes'] / 2**20:.0f} MiB budget "
              f"({st['decode_count']} chunk decode(s))")
    return 0


_COMMANDS = {
    "workloads": _cmd_workloads,
    "train": _cmd_train,
    "analyze": _cmd_analyze,
    "simulate": _cmd_simulate,
    "plan": _cmd_plan,
    "cluster": _cmd_cluster,
    "explain": _cmd_explain,
    "query": _cmd_query,
}


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
