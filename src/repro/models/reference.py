"""Reference model — the full-feature back-end detector (YOLOv2 stand-in).

The paper uses YOLOv2 (416×416 inputs, ~67 FPS raw / 56 FPS end-to-end, one
GPU to itself) both as the final high-precision stage of FFS-VA and as the
baseline system it is compared against.  It also plays oracle: Section 4.1
labels every training frame for SDD/SNM "by using YOLOv2".

Our stand-in runs the same grid-detection algorithm as T-YOLO at 4× the
grid granularity with more permissive activation, so it resolves dense
groups and partial appearances that T-YOLO misses — reproducing the
documented fidelity gap between the two models.
"""

from __future__ import annotations

import numpy as np

from .griddet import Detection, GridDetector

__all__ = ["ReferenceModel"]

#: Paper-reported reference-model characteristics for the cost model.
REFERENCE_INPUT_SIZE = 416
REFERENCE_RAW_FPS = 67.0
REFERENCE_MEMORY_BYTES = int(2.0 * 2**30)


class ReferenceModel:
    """Full-feature detector: fine grid, permissive thresholds."""

    def __init__(self, conf_threshold: float = 0.15, cell_activation: float = 0.12):
        self.detector = GridDetector(
            grid=52,
            resolution=208,
            conf_threshold=conf_threshold,
            cell_activation=cell_activation,
            name="reference",
        )

    def detect(self, frame: np.ndarray, background: np.ndarray) -> list[Detection]:
        """All detections in one frame (any class)."""
        return self.detector.detect(frame, background)

    def count(
        self, frame: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> int:
        """Detected target-object count in one frame."""
        return self.detector.count(frame, background, kind)

    def count_batch(
        self, frames: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> np.ndarray:
        """Per-frame detected counts for a batch."""
        return self.detector.count_batch(frames, background, kind)

    def label_frames(
        self, frames: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> np.ndarray:
        """Binary presence labels used to train/calibrate SDD and SNM."""
        return (self.count_batch(frames, background, kind) > 0).astype(np.int64)
