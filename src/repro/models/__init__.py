"""FFS-VA's filter models: SDD, SNM, T-YOLO, and the reference model."""

from .drift import SceneChangeMonitor
from .griddet import Detection, GridDetector, classify_kind
from .mosaic import (
    MosaicPlan,
    MosaicStats,
    Region,
    effective_regions,
    mosaic_counts,
    mosaic_detections,
    plan_mosaics,
)
from .reference import ReferenceModel
from .sdd import SDD, calibrate_sdd, mse, nrmse, sad
from .snm import SNM, SNMConfig, train_snm
from .tyolo import TYolo, count_filter_mask
from .zoo import ModelZoo, StreamModels

__all__ = [
    "Detection",
    "GridDetector",
    "classify_kind",
    "SDD",
    "calibrate_sdd",
    "mse",
    "nrmse",
    "sad",
    "SNM",
    "SNMConfig",
    "train_snm",
    "TYolo",
    "count_filter_mask",
    "MosaicPlan",
    "MosaicStats",
    "Region",
    "effective_regions",
    "mosaic_counts",
    "mosaic_detections",
    "plan_mosaics",
    "ReferenceModel",
    "ModelZoo",
    "StreamModels",
    "SceneChangeMonitor",
]
