"""Grid-cell object detection backbone shared by T-YOLO and the reference model.

The paper's third filter is Tiny-YOLO-Voc: "T-YOLO divides the input image
into a 13*13 grid cells automatically.  Each grid cell predicts 5 bounding
boxes and confidence scores for these boxes.  If the confidence score
exceeds the threshold (e.g., 0.2), one target object is considered to appear
in the image."  The reference model is full YOLOv2 — the same idea at higher
fidelity.

We reproduce both as instances of one *real* detection algorithm whose
fidelity is controlled by its working resolution and grid granularity:

1. resize the frame and the scene's reference background to
   ``resolution`` × ``resolution``,
2. correct for global lighting drift by scaling the background to the
   frame's median luminance (surveillance lighting is multiplicative), then
   take the absolute deviation as a per-pixel foreground response,
3. pool the response into ``grid`` × ``grid`` cells,
4. mark cells whose response exceeds an activation threshold, group
   connected active cells into detections (connected components play the
   role of non-maximum suppression: one detection per blob), and
5. score each detection with a confidence from its peak cell response,
   keeping those above ``conf_threshold``.

Where the real T-YOLO separates objects from background via *learned
appearance*, our substitute uses the fixed-viewpoint scene prior
(background subtraction) — the detector parameters stay generic and shared
across streams; only the per-stream scene reference differs, just as a
trained detector implicitly knows typical backgrounds.  DESIGN.md section 2
records this substitution.

The **fidelity gap** between T-YOLO (13×13 cells) and the reference model
(a much finer grid) is structural, exactly as in the paper: at 13×13, two
small objects closer than one cell merge into one detection (under-counting
dense crowds — the Section 5.3.3 person-detection error mode) and objects
barely entering the frame activate no cell strongly enough (missing partial
appearances — the other documented error mode).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from ..video.ops import block_reduce_mean, get_resize_plan, resize_bilinear

__all__ = ["Detection", "GridDetector", "classify_kind"]


def _merge_overlaps(boxes) -> np.ndarray:
    """Merge overlapping half-open boxes to a fixed point, sorted.

    Input boxes are ``(y0, x0, y1, x1)`` tuples; the result is an
    ``(R, 4)`` int64 array of pairwise-disjoint boxes whose union covers
    every input box (merging only grows boxes, so any cell covered before
    is covered after).
    """
    boxes = [tuple(int(v) for v in b) for b in boxes]
    merged = True
    while merged:
        merged = False
        out: list[tuple[int, int, int, int]] = []
        for b in boxes:
            for i, o in enumerate(out):
                if b[0] < o[2] and o[0] < b[2] and b[1] < o[3] and o[1] < b[3]:
                    out[i] = (
                        min(o[0], b[0]),
                        min(o[1], b[1]),
                        max(o[2], b[2]),
                        max(o[3], b[3]),
                    )
                    merged = True
                    break
            else:
                out.append(b)
        boxes = out
    boxes.sort()
    return np.array(boxes, dtype=np.int64).reshape(-1, 4)


@dataclass(frozen=True)
class Detection:
    """One detected object in original-frame coordinates."""

    x0: float
    y0: float
    x1: float
    y1: float
    confidence: float
    kind: str

    @property
    def width(self) -> float:
        return self.x1 - self.x0

    @property
    def height(self) -> float:
        return self.y1 - self.y0

    @property
    def center(self) -> tuple[float, float]:
        return ((self.x0 + self.x1) / 2.0, (self.y0 + self.y1) / 2.0)


def classify_kind(width: float, height: float) -> str:
    """Assign a class label from box geometry.

    Vehicles present wider-than-tall boxes, pedestrians taller-than-wide —
    the standard aspect-ratio prior.  This keeps the detector genuinely
    multi-class (the paper's T-YOLO detects 20 VOC classes; we model the two
    the evaluation uses).
    """
    if height <= 0:
        return "car"
    return "car" if width / height >= 1.0 else "person"


# Typical foreground deviation produced by an object; maps raw responses onto
# a [0, 1]-ish confidence scale compatible with the paper's conf > 0.2.
_RESPONSE_SCALE = 0.25


class GridDetector:
    """Background-deviation grid detector (see module docstring).

    Parameters
    ----------
    grid:
        Number of cells per side (13 for T-YOLO).
    resolution:
        Working resolution per side; must be a multiple of ``grid``.
    conf_threshold:
        Minimum detection confidence (paper default 0.2).
    cell_activation:
        Minimum normalized cell response for a cell to participate in a
        detection blob.
    name:
        Used in cost-model lookups and reporting.
    """

    def __init__(
        self,
        grid: int = 13,
        resolution: int = 104,
        conf_threshold: float = 0.2,
        cell_activation: float = 0.15,
        name: str = "griddet",
    ):
        if resolution % grid != 0:
            raise ValueError(f"resolution {resolution} must be a multiple of grid {grid}")
        if not 0.0 < conf_threshold < 1.0:
            raise ValueError("conf_threshold must be in (0, 1)")
        self.grid = grid
        self.resolution = resolution
        self.cell = resolution // grid
        self.conf_threshold = conf_threshold
        self.cell_activation = cell_activation
        self.name = name
        # Per-background resize cache: detect() is called frame-by-frame with
        # the same reference image, so resizing it once matters.
        self._bg_cache: tuple[np.ndarray, np.ndarray] | None = None
        self._resized: np.ndarray | None = None  # steady-state resize buffer

    # ------------------------------------------------------------------
    def _resized_background(self, background: np.ndarray) -> np.ndarray:
        # The cache holds a strong reference to the source array and matches
        # by identity: an ``id()`` key alone can collide when the previous
        # background is garbage-collected and a new array lands at the same
        # address, silently serving a stale resize.  Keeping the reference
        # alive makes address reuse impossible while cached.
        if self._bg_cache is not None and self._bg_cache[0] is background:
            return self._bg_cache[1]
        resized = resize_bilinear(
            background, (self.resolution, self.resolution), copy=True
        )
        self._bg_cache = (background, resized)
        return resized

    def response_cells(self, frames: np.ndarray, background: np.ndarray) -> np.ndarray:
        """Normalized per-cell foreground response, ``(N, grid, grid)``.

        Vectorized over the batch; this is the detector's hot path.
        """
        batch = np.asarray(frames, dtype=np.float32)
        single = batch.ndim == 2
        if single:
            batch = batch[None]
        res = self.resolution
        plan = get_resize_plan(batch.shape[1:], (res, res))
        if plan.identity:
            resized = batch
        else:
            buf = self._resized
            shape = (batch.shape[0], res, res)
            if buf is None or buf.shape != shape:
                buf = self._resized = np.empty(shape, dtype=np.float32)
            resized = plan.apply(batch, out=buf)
        bg = self._resized_background(np.asarray(background, dtype=np.float32))
        # Global multiplicative lighting correction per frame.
        bg_med = float(np.median(bg)) or 1.0
        frame_med = np.median(resized, axis=(1, 2))
        gain = (frame_med / bg_med)[:, None, None].astype(np.float32)
        resp = np.abs(resized - bg[None] * gain)
        cells = block_reduce_mean(resp, self.cell) / _RESPONSE_SCALE
        return cells[0] if single else cells

    def cell_blobs(self, cells: np.ndarray) -> list[tuple[tuple[int, int, int, int], float]]:
        """Connected active-cell blobs of one response map, above threshold.

        Returns ``((cy0, cx0, cy1, cx1), confidence)`` per blob in cell
        coordinates, keeping only blobs whose peak response clears
        ``conf_threshold``.  Works on any-shaped cell map — the detector's
        native ``grid`` × ``grid`` responses and larger mosaic canvases
        alike — because only the activation/confidence thresholds matter
        here, never the map size.
        """
        active = cells > self.cell_activation
        if not active.any():
            return []
        labels, _ = ndimage.label(active)
        blobs: list[tuple[tuple[int, int, int, int], float]] = []
        for blob_idx, slc in enumerate(ndimage.find_objects(labels), start=1):
            if slc is None:
                continue
            blob_cells = cells[slc] * (labels[slc] == blob_idx)
            confidence = float(np.clip(blob_cells.max(), 0.0, 1.0))
            if confidence < self.conf_threshold:
                continue
            y_sl, x_sl = slc
            blobs.append(((y_sl.start, x_sl.start, y_sl.stop, x_sl.stop), confidence))
        return blobs

    def propose_regions(self, cells: np.ndarray) -> list[np.ndarray] | np.ndarray:
        """Per-frame active ROIs: merged connected-blob bounding boxes.

        ``cells`` is an ``(N, grid, grid)`` batch (or one ``(grid, grid)``
        map).  Returns, per frame, an ``(R, 4)`` int array of
        ``(cy0, cx0, cy1, cx1)`` half-open cell-space boxes such that every
        active cell lies in **exactly one** box: the bounding boxes of the
        4-connected blobs, merged to a fixed point wherever they overlap.
        (Two merely touching boxes never share a blob under 4-connectivity,
        so only genuine overlap merges.)  No confidence filtering happens
        here — sub-threshold blobs are proposed too, which is what makes
        detection on a packed region *exactly* detection on the source
        frame restricted to that region.
        """
        batch = np.asarray(cells)
        single = batch.ndim == 2
        if single:
            batch = batch[None]
        n, gh, gw = batch.shape
        active = batch > self.cell_activation
        # One labeling pass for the whole batch: stack the masks with a zero
        # separator row between frames so no component spans two frames.
        stacked = np.zeros((n, gh + 1, gw), dtype=bool)
        stacked[:, :gh] = active
        labels, _ = ndimage.label(stacked.reshape(n * (gh + 1), gw))
        per_frame: list[list[tuple[int, int, int, int]]] = [[] for _ in range(n)]
        for slc in ndimage.find_objects(labels):
            if slc is None:
                continue
            y_sl, x_sl = slc
            frame = y_sl.start // (gh + 1)
            base = frame * (gh + 1)
            per_frame[frame].append(
                (y_sl.start - base, x_sl.start, y_sl.stop - base, x_sl.stop)
            )
        out = [_merge_overlaps(boxes) for boxes in per_frame]
        return out[0] if single else out

    def _detect_from_cells(
        self, cells: np.ndarray, frame_hw: tuple[int, int]
    ) -> list[Detection]:
        """Group active cells into detections for a single response map."""
        h, w = frame_hw
        sy = h / self.grid
        sx = w / self.grid
        detections: list[Detection] = []
        for (cy0, cx0, cy1, cx1), confidence in self.cell_blobs(cells):
            x0, x1 = cx0 * sx, cx1 * sx
            y0, y1 = cy0 * sy, cy1 * sy
            kind = classify_kind(x1 - x0, y1 - y0)
            detections.append(Detection(x0, y0, x1, y1, confidence, kind))
        return detections

    # ------------------------------------------------------------------
    def detect(self, frame: np.ndarray, background: np.ndarray) -> list[Detection]:
        """Detect objects in a single ``(H, W)`` frame."""
        cells = self.response_cells(frame, background)
        return self._detect_from_cells(cells, frame.shape[-2:])

    def detect_batch(
        self, frames: np.ndarray, background: np.ndarray
    ) -> list[list[Detection]]:
        """Detect objects in an ``(N, H, W)`` batch."""
        cells = self.response_cells(frames, background)
        hw = frames.shape[-2:]
        return [self._detect_from_cells(c, hw) for c in cells]

    def count(
        self, frame: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> int:
        """Number of detections (optionally restricted to ``kind``)."""
        dets = self.detect(frame, background)
        if kind is None:
            return len(dets)
        return sum(1 for d in dets if d.kind == kind)

    def count_batch(
        self, frames: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> np.ndarray:
        """Vector of per-frame detection counts for an ``(N, H, W)`` batch."""
        out = np.empty(len(frames), dtype=np.int64)
        cells = self.response_cells(frames, background)
        hw = frames.shape[-2:]
        for i, c in enumerate(cells):
            dets = self._detect_from_cells(c, hw)
            if kind is not None:
                dets = [d for d in dets if d.kind == kind]
            out[i] = len(dets)
        return out

    def count_and_regions(
        self, frames: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Per-frame counts plus proposed ROIs from one response pass.

        Trace building records both observables; computing the response
        cells once and deriving counts and :meth:`propose_regions` boxes
        from them halves the detector work versus two separate calls.
        """
        frames = np.asarray(frames)
        cells = self.response_cells(frames, background)
        counts = np.empty(len(frames), dtype=np.int64)
        hw = frames.shape[-2:]
        for i, c in enumerate(cells):
            dets = self._detect_from_cells(c, hw)
            if kind is not None:
                dets = [d for d in dets if d.kind == kind]
            counts[i] = len(dets)
        return counts, self.propose_regions(cells)
