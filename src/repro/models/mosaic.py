"""Cross-stream mosaic packing for the T-YOLO stage.

Object-level consolidation (Rivas et al., *Large-Scale Video Analytics
through Object-Level Consolidation*): instead of running the detector on
one whole frame per (stream, frame) pair, pack only the **active regions**
of many frames — proposed by :meth:`GridDetector.propose_regions` from the
already-computed background-deviation response — onto fixed-size composite
canvases, run the detector once per canvas, and project every canvas-space
detection back to its source frame.

Everything here operates in **cell space** (the detector's grid
coordinates), which is what makes the path exact rather than approximate:

* a proposed region covers every active cell of its blobs, and regions of
  one frame are pairwise disjoint (overlapping blob boxes are merged), so
  packing copies each active cell exactly once;
* placements are separated by ``gutter`` ≥ 1 cells of zeros on the canvas,
  and the detector's connected components are 4-connected, so blobs can
  never merge across placements;
* therefore blob extraction on a canvas finds exactly the blobs of each
  packed region, with identical peak confidences — mosaic counts equal
  per-frame counts, whether regions are real ROIs or the whole-frame
  fallback.

A canvas of :data:`~repro.models.tyolo.TYOLO_GRID` × k cells corresponds to
one k·32-pixel-square detector input; the default 52-cell canvas is exactly
a native 416×416 T-YOLO pass, which is what the simulator charges per
canvas.

Packing uses a deterministic shelf algorithm: regions sorted by decreasing
(height, width, arrival), placed left-to-right on shelves, opening a new
shelf when a row fills and spilling to a fresh canvas when a canvas fills.
There is no cap on regions per canvas or canvases per batch — overflow
always spills and is counted in :class:`MosaicStats`.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .griddet import Detection, GridDetector, classify_kind

__all__ = [
    "MOSAIC_COVERAGE_LIMIT",
    "Region",
    "Placement",
    "MosaicPlan",
    "MosaicStats",
    "effective_regions",
    "plan_mosaics",
    "paint_canvases",
    "owner_maps",
    "mosaic_counts",
    "mosaic_detections",
]

#: Fraction of a frame's grid area above which ROI packing stops paying for
#: itself and the whole frame is packed as one region instead.
MOSAIC_COVERAGE_LIMIT = 0.5


@dataclass(frozen=True)
class Region:
    """One active ROI of one source frame, in source cell coordinates.

    ``source`` identifies the frame within the batch being packed (callers
    map it back to a (stream, frame) pair); the box is half-open.
    """

    source: int
    cy0: int
    cx0: int
    cy1: int
    cx1: int

    @property
    def height(self) -> int:
        return self.cy1 - self.cy0

    @property
    def width(self) -> int:
        return self.cx1 - self.cx0

    @property
    def area(self) -> int:
        return self.height * self.width


@dataclass(frozen=True)
class Placement:
    """Where one region landed: canvas index plus cell-space origin."""

    region: Region
    canvas: int
    y: int
    x: int


@dataclass(frozen=True)
class MosaicPlan:
    """The pure geometry of one packed batch (no pixels involved).

    The simulator charges costs straight off a plan; the real executor
    additionally paints and detects.  ``spills`` counts regions that did
    not fit the canvas they were first tried on and opened a new one.
    """

    canvas_cells: int
    gutter: int
    placements: tuple[Placement, ...]
    n_canvases: int
    spills: int

    @property
    def n_regions(self) -> int:
        return len(self.placements)

    def occupancy(self) -> np.ndarray:
        """Per-canvas fill ratio: packed region cells / canvas area."""
        fill = np.zeros(self.n_canvases, dtype=np.float64)
        for p in self.placements:
            fill[p.canvas] += p.region.area
        return fill / float(self.canvas_cells * self.canvas_cells)


def effective_regions(
    regions: np.ndarray | None,
    grid: int,
    coverage_limit: float = MOSAIC_COVERAGE_LIMIT,
) -> np.ndarray:
    """The regions actually packed for one frame.

    ``regions`` is the proposed ``(R, 4)`` ROI array, or ``None`` when no
    proposal exists (e.g. a trace recorded before region proposal, or no
    calibrated background) — then the whole frame is one region.  High
    coverage (≥ ``coverage_limit`` of the grid area) also falls back to the
    whole frame: packing saves nothing and the single region keeps canvases
    dense.  An empty proposal stays empty — a quiet frame costs no canvas
    space at all.
    """
    whole = np.array([[0, 0, grid, grid]], dtype=np.int64)
    if regions is None:
        return whole
    regions = np.asarray(regions, dtype=np.int64).reshape(-1, 4)
    if len(regions) == 0:
        return regions
    area = int(((regions[:, 2] - regions[:, 0]) * (regions[:, 3] - regions[:, 1])).sum())
    if area >= coverage_limit * grid * grid:
        return whole
    return regions


def plan_mosaics(regions: list[Region], canvas_cells: int, gutter: int) -> MosaicPlan:
    """Deterministic shelf packing of ``regions`` onto fixed-size canvases.

    Regions are sorted by decreasing height (then width, then arrival
    order) so each shelf's height is set by its first item; within a shelf
    placements advance left-to-right with a ``gutter``-cell gap, shelves
    stack downward with the same gap, and a region that no longer fits the
    current canvas spills to a fresh one.  Raises if a region cannot fit
    even an empty canvas.
    """
    if canvas_cells < 1 or gutter < 1:
        raise ValueError("canvas_cells must be >= 1 and gutter >= 1")
    for r in regions:
        if r.height > canvas_cells or r.width > canvas_cells:
            raise ValueError(
                f"region {r} exceeds the {canvas_cells}-cell canvas"
            )
        if r.height <= 0 or r.width <= 0:
            raise ValueError(f"region {r} is empty")
    order = sorted(
        range(len(regions)),
        key=lambda i: (-regions[i].height, -regions[i].width, i),
    )
    placements: list[Placement] = []
    spills = 0
    canvas = -1  # no canvas open until the first region needs one
    x = y = shelf_h = 0
    for i in order:
        r = regions[i]
        if canvas < 0:
            canvas, x, y, shelf_h = 0, 0, 0, 0
        if x + r.width > canvas_cells:  # shelf full: open the next shelf
            y += shelf_h + gutter
            x = shelf_h = 0
        if y + r.height > canvas_cells:  # canvas full: spill
            canvas += 1
            spills += 1
            x = y = shelf_h = 0
        placements.append(Placement(r, canvas, y, x))
        x += r.width + gutter
        shelf_h = max(shelf_h, r.height)
    return MosaicPlan(
        canvas_cells=canvas_cells,
        gutter=gutter,
        placements=tuple(placements),
        n_canvases=canvas + 1,
        spills=spills,
    )


def paint_canvases(plan: MosaicPlan, cells: np.ndarray) -> np.ndarray:
    """Copy each planned region's response cells onto its canvas.

    ``cells`` is the ``(N, grid, grid)`` response batch indexed by
    ``Region.source``.  Unpacked canvas cells stay zero — below any
    activation threshold — which is what isolates placements from each
    other (together with the gutters).
    """
    c = plan.canvas_cells
    canvases = np.zeros((plan.n_canvases, c, c), dtype=np.float32)
    for p in plan.placements:
        r = p.region
        canvases[p.canvas, p.y : p.y + r.height, p.x : p.x + r.width] = cells[
            r.source, r.cy0 : r.cy1, r.cx0 : r.cx1
        ]
    return canvases


def owner_maps(plan: MosaicPlan) -> np.ndarray:
    """Per-canvas map from cell to placement index (−1 = unpacked).

    Because every canvas blob lies entirely inside one placement rectangle
    (gutters keep components from crossing), looking up a blob's top-left
    bounding-box corner resolves its owner.
    """
    c = plan.canvas_cells
    owners = np.full((plan.n_canvases, c, c), -1, dtype=np.int32)
    for i, p in enumerate(plan.placements):
        r = p.region
        owners[p.canvas, p.y : p.y + r.height, p.x : p.x + r.width] = i
    return owners


def _unmapped_blobs(
    detector: GridDetector, plan: MosaicPlan, canvases: np.ndarray
):
    """Yield ``(region, frame_cell_box, confidence)`` for every canvas blob,
    with the box translated back to source-frame cell coordinates."""
    owners = owner_maps(plan)
    for ci in range(plan.n_canvases):
        for (by0, bx0, by1, bx1), conf in detector.cell_blobs(canvases[ci]):
            owner = int(owners[ci, by0, bx0])
            p = plan.placements[owner]
            r = p.region
            box = (
                by0 - p.y + r.cy0,
                bx0 - p.x + r.cx0,
                by1 - p.y + r.cy0,
                bx1 - p.x + r.cx0,
            )
            yield r, box, conf


def mosaic_counts(
    detector: GridDetector, plan: MosaicPlan, cells: np.ndarray, n_sources: int
) -> np.ndarray:
    """Per-source detection counts via the mosaic path.

    Paints the canvases, extracts blobs with the detector's own thresholds,
    and credits each blob to its source frame.  Sources with no placed
    regions (quiet frames) count zero, exactly like the per-frame path.
    """
    counts = np.zeros(n_sources, dtype=np.int64)
    if not plan.placements:
        return counts
    canvases = paint_canvases(plan, cells)
    for r, _box, _conf in _unmapped_blobs(detector, plan, canvases):
        counts[r.source] += 1
    return counts


def mosaic_detections(
    detector: GridDetector,
    plan: MosaicPlan,
    cells: np.ndarray,
    frame_hw: tuple[int, int],
    n_sources: int,
) -> list[list[Detection]]:
    """Full per-source :class:`Detection` lists via the mosaic path.

    Canvas-space blobs are un-translated to source cell coordinates and
    scaled to original-frame pixels, so boxes, confidences, and kinds are
    directly comparable with :meth:`GridDetector.detect_batch`.
    """
    out: list[list[Detection]] = [[] for _ in range(n_sources)]
    if not plan.placements:
        return out
    canvases = paint_canvases(plan, cells)
    h, w = frame_hw
    sy = h / detector.grid
    sx = w / detector.grid
    for r, (cy0, cx0, cy1, cx1), conf in _unmapped_blobs(detector, plan, canvases):
        x0, x1 = cx0 * sx, cx1 * sx
        y0, y1 = cy0 * sy, cy1 * sy
        kind = classify_kind(x1 - x0, y1 - y0)
        out[r.source].append(Detection(x0, y0, x1, y1, conf, kind))
    return out


@dataclass
class MosaicStats:
    """Running totals over every mosaic batch of a run.

    Both runtimes keep one of these per fused T-YOLO evaluator; the
    telemetry plane samples :meth:`fill_ratio` and
    :meth:`regions_per_canvas` as gauges and the final
    :class:`~repro.core.metrics.RunMetrics` embeds :meth:`as_dict`.
    """

    batches: int = 0
    frames: int = 0
    regions: int = 0
    canvases: int = 0
    spills: int = 0
    region_cells: int = 0
    canvas_cells: int = 0

    def observe(self, plan: MosaicPlan, n_frames: int) -> None:
        self.batches += 1
        self.frames += n_frames
        self.regions += plan.n_regions
        self.canvases += plan.n_canvases
        self.spills += plan.spills
        self.region_cells += sum(p.region.area for p in plan.placements)
        self.canvas_cells += plan.n_canvases * plan.canvas_cells * plan.canvas_cells

    def fill_ratio(self) -> float:
        """Mean canvas occupancy so far (0 when nothing packed yet)."""
        return self.region_cells / self.canvas_cells if self.canvas_cells else 0.0

    def regions_per_canvas(self) -> float:
        return self.regions / self.canvases if self.canvases else 0.0

    def as_dict(self) -> dict:
        return {
            "batches": self.batches,
            "frames": self.frames,
            "regions": self.regions,
            "canvases": self.canvases,
            "spills": self.spills,
            "fill_ratio": self.fill_ratio(),
            "regions_per_canvas": self.regions_per_canvas(),
        }
