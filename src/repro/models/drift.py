"""Scene-change detection — the Section 5.5 "Scene Switch" remedy.

The specialized SDD/SNM models assume a fixed viewpoint: "when the scene
changes dramatically or the function and position of the camera have
changed, the previous specialized models will no longer work."  FFS-VA must
notice this and trigger retraining (about an hour in the paper; seconds
here).

:class:`SceneChangeMonitor` watches the statistic SDD already computes for
free — the distance of each frame to the reference background.  Under the
trained scene, *background* frames sit near the calibrated noise floor; if
the running background-distance level rises persistently far above the SDD
threshold, the reference image no longer describes the scene and the
stream's models are stale.  Periodic changes (day/night) stay below the
trip-wire because the threshold was calibrated across them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field

import numpy as np

__all__ = ["SceneChangeMonitor"]


@dataclass
class SceneChangeMonitor:
    """Flags a scene switch from sustained background-distance inflation.

    Parameters
    ----------
    sdd_threshold:
        The stream SDD's calibrated ``delta_diff``.
    trip_factor:
        How far above the threshold the *rolling minimum* distance must sit
        to count as a changed scene.  Using the window minimum (the most
        background-like recent frame) makes the monitor insensitive to
        bursts of legitimate foreground activity, which inflate the mean
        but not the minimum.
    window:
        Number of recent frames considered.
    patience:
        Consecutive tripped windows required before declaring a switch.
    """

    sdd_threshold: float
    trip_factor: float = 3.0
    window: int = 120
    patience: int = 3
    _distances: deque = field(default_factory=deque)
    _tripped_windows: int = 0
    _frames_seen: int = 0

    def observe(self, distances: np.ndarray | float) -> None:
        """Feed the SDD distances of one or more frames."""
        arr = np.atleast_1d(np.asarray(distances, dtype=np.float64))
        for d in arr:
            self._distances.append(float(d))
            if len(self._distances) > self.window:
                self._distances.popleft()
            self._frames_seen += 1
            if self._frames_seen % self.window == 0:
                self._evaluate_window()

    def _evaluate_window(self) -> None:
        floor = min(self._distances)
        if floor > self.trip_factor * self.sdd_threshold:
            self._tripped_windows += 1
        else:
            self._tripped_windows = 0

    @property
    def scene_changed(self) -> bool:
        """True once the background level has stayed inflated long enough."""
        return self._tripped_windows >= self.patience

    @property
    def background_floor(self) -> float:
        """Current rolling-minimum distance (diagnostic)."""
        return min(self._distances) if self._distances else 0.0

    def reset(self) -> None:
        """Clear state after the stream's models have been retrained."""
        self._distances.clear()
        self._tripped_windows = 0
        self._frames_seen = 0
