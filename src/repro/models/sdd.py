"""Specialized Difference Detector (SDD) — the cascade's first filter.

From Section 3.2.1: "SDD calculates the distance between the reference image
and the unlabeled frame to determine whether these two frames are identical.
...  The distance between two video frames can be characterized by Mean
Square Error (MSE), Normalized Root Mean Square Error (NRMSE), or Sum of
Absolute Differences (SAD)."  Frames whose distance stays below the
threshold ``delta_diff`` are background and are filtered out.

The threshold is stream-specific (dynamic backgrounds need a larger
``delta_diff``) and is calibrated on labelled frames so that the filter's
false-negative rate stays within budget — the paper's "relaxed filtering
conditions" (Section 3.3) correspond to a small positive ``relax_margin``.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..video.ops import get_resize_plan, resize_bilinear

__all__ = ["mse", "nrmse", "sad", "SDD", "calibrate_sdd"]

#: SDD's working input size; the paper quotes "100*100-pixel images at 100K FPS".
SDD_INPUT = (100, 100)


def _batched(frames: np.ndarray) -> np.ndarray:
    arr = np.asarray(frames, dtype=np.float32)
    return arr[None] if arr.ndim == 2 else arr


def mse(frames: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Mean squared error distance per frame."""
    batch = _batched(frames)
    d = batch - reference
    return np.mean(d * d, axis=(1, 2))


def nrmse(frames: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Root MSE normalized by the reference's dynamic range."""
    rng = float(reference.max() - reference.min())
    denom = rng if rng > 1e-9 else 1.0
    return np.sqrt(mse(frames, reference)) / denom


def sad(frames: np.ndarray, reference: np.ndarray) -> np.ndarray:
    """Mean absolute difference per frame (SAD normalized by pixel count)."""
    batch = _batched(frames)
    return np.mean(np.abs(batch - reference), axis=(1, 2))


_METRICS = {"mse": mse, "nrmse": nrmse, "sad": sad}


class SDD:
    """Per-stream background-difference filter.

    Parameters
    ----------
    reference:
        The stream's reference image (average of dozens of background
        frames), at any resolution; it is resized to :data:`SDD_INPUT`.
    threshold:
        ``delta_diff``; frames with distance <= threshold are background.
    metric:
        One of ``"mse"``, ``"nrmse"``, ``"sad"``.
    """

    def __init__(self, reference: np.ndarray, threshold: float, metric: str = "mse"):
        if metric not in _METRICS:
            raise ValueError(f"unknown metric {metric!r}; choose from {sorted(_METRICS)}")
        if threshold < 0:
            raise ValueError("threshold must be non-negative")
        self.reference = resize_bilinear(
            np.asarray(reference, dtype=np.float32), SDD_INPUT, copy=True
        )
        self.threshold = float(threshold)
        self.metric = metric
        self._metric_fn = _METRICS[metric]
        self._resized: np.ndarray | None = None  # steady-state resize buffer

    def distances(self, frames: np.ndarray) -> np.ndarray:
        """Distance of each frame to the reference (after resize).

        Runs on the cached :class:`~repro.video.ops.ResizePlan` for the
        incoming frame shape, resizing into a per-instance buffer so the
        steady state allocates nothing but the gather temporaries.
        """
        batch = _batched(frames)
        plan = get_resize_plan(batch.shape[1:], SDD_INPUT)
        if plan.identity:
            resized = batch
        else:
            buf = self._resized
            shape = (batch.shape[0], *SDD_INPUT)
            if buf is None or buf.shape != shape:
                buf = self._resized = np.empty(shape, dtype=np.float32)
            resized = plan.apply(batch, out=buf)
        return self._metric_fn(resized, self.reference)

    def passes(self, frames: np.ndarray) -> np.ndarray:
        """Boolean mask: True = content change, frame continues downstream."""
        return self.distances(frames) > self.threshold

    def filter_out(self, frames: np.ndarray) -> np.ndarray:
        """Boolean mask: True = background frame, dropped by the filter."""
        return ~self.passes(frames)


def calibrate_sdd(
    reference: np.ndarray,
    frames: np.ndarray,
    labels: np.ndarray,
    *,
    metric: str = "mse",
    fn_budget: float = 0.01,
    relax_margin: float = 0.9,
) -> SDD:
    """Pick ``delta_diff`` from labelled frames.

    The threshold is set as high as possible (maximum filtering power)
    subject to the fraction of *target* frames scored below it — false
    negatives — staying within ``fn_budget``.  The resulting threshold is
    then multiplied by ``relax_margin`` < 1, implementing the paper's advice
    to "set the real filtering threshold slightly below the target
    threshold" so later filters get a second look at borderline frames.

    Parameters
    ----------
    frames, labels:
        Labelled calibration set; ``labels`` nonzero marks target frames
        (as produced by the reference model, per Section 4.1).
    """
    labels = np.asarray(labels).astype(bool)
    if len(frames) != len(labels):
        raise ValueError("frames and labels must have equal length")
    if len(frames) == 0:
        raise ValueError("need at least one calibration frame")
    probe = SDD(reference, threshold=0.0, metric=metric)
    dist = probe.distances(frames)
    target_dist = np.sort(dist[labels])
    if len(target_dist) == 0:
        # No target frames observed: any motion is interesting; fall back to
        # a threshold just above the background-distance noise floor.
        threshold = float(np.quantile(dist, 0.95))
    else:
        # Largest threshold keeping FN rate <= budget: the fn_budget quantile
        # of target-frame distances.
        k = int(np.floor(fn_budget * len(target_dist)))
        k = min(k, len(target_dist) - 1)
        threshold = float(target_dist[k])
    threshold *= relax_margin
    return SDD(reference, threshold=threshold, metric=metric)
