"""T-YOLO — the shared small object-detection filter (third cascade stage).

Configures the :class:`~repro.models.griddet.GridDetector` backbone to the
paper's Tiny-YOLO-Voc operating point: a 13×13 grid over 416×416 inputs,
five boxes per cell collapsed into one blob detection, confidence
threshold 0.2, ~220 FPS, 1.2 GB of GPU memory, shared by all streams.

On top of raw detection this module implements the filter semantics of
Sections 3.2.3 and 4.2.2: a frame survives only if its target-object count
reaches **NumberofObjects**; a ``relax`` tolerance of one or two objects
implements the accuracy/efficiency trade-off studied in Figure 8 ("if one
or two object misjudgment can be tolerated by relaxing the filtering
threshold, the error rate will be greatly reduced").
"""

from __future__ import annotations

import numpy as np

from .griddet import Detection, GridDetector

__all__ = ["TYolo", "count_filter_mask"]

#: Paper-reported T-YOLO characteristics, used by the device cost model.
TYOLO_INPUT_SIZE = 416
TYOLO_MEMORY_BYTES = int(1.2 * 2**30)
TYOLO_RAW_FPS = 220.0
#: Grid cells per side of the detector (416 px inputs at 32 px per cell).
#: A mosaic canvas of ``TYOLO_GRID`` cells is exactly one native input.
TYOLO_GRID = 13


def count_filter_mask(
    counts: np.ndarray, number_of_objects: int, relax: int = 0
) -> np.ndarray:
    """Frames that survive the intensity filter.

    A frame passes when its detected target count is at least
    ``number_of_objects - relax`` (relaxed filtering keeps borderline frames
    so the reference model gets a second look).
    """
    if number_of_objects < 1:
        raise ValueError("NumberofObjects must be >= 1")
    if relax < 0:
        raise ValueError("relax must be >= 0")
    effective = max(1, number_of_objects - relax)
    return np.asarray(counts) >= effective


class TYolo:
    """Shared generic detector with count-based filtering."""

    def __init__(self, conf_threshold: float = 0.2, cell_activation: float = 0.15):
        self.detector = GridDetector(
            grid=TYOLO_GRID,
            resolution=104,
            conf_threshold=conf_threshold,
            cell_activation=cell_activation,
            name="tyolo",
        )

    @property
    def grid(self) -> int:
        return self.detector.grid

    def detect(self, frame: np.ndarray, background: np.ndarray) -> list[Detection]:
        """All detections in one frame (any class)."""
        return self.detector.detect(frame, background)

    def count(
        self, frame: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> int:
        """Detected target-object count in one frame."""
        return self.detector.count(frame, background, kind)

    def count_batch(
        self, frames: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> np.ndarray:
        """Per-frame detected counts for a batch."""
        return self.detector.count_batch(frames, background, kind)

    def count_and_regions(
        self, frames: np.ndarray, background: np.ndarray, kind: str | None = None
    ) -> tuple[np.ndarray, list[np.ndarray]]:
        """Per-frame counts plus proposed active-cell ROIs (one pass)."""
        return self.detector.count_and_regions(frames, background, kind)

    def passes(
        self,
        frames: np.ndarray,
        background: np.ndarray,
        *,
        kind: str | None = None,
        number_of_objects: int = 1,
        relax: int = 0,
    ) -> np.ndarray:
        """Mask of frames forwarded to the reference model."""
        counts = self.count_batch(frames, background, kind)
        return count_filter_mask(counts, number_of_objects, relax)
