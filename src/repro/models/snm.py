"""Specialized Network Model (SNM) — the cascade's second filter.

From Section 3.2.2: "SNM is a three-layer CNN (CONV, CONV, and FC)" that
predicts the probability ``c`` that the target object appears in the frame.
Two calibrated thresholds ``c_low`` and ``c_high`` bracket the uncertain
region; the operating threshold interpolates between them via the
user-facing **FilterDegree** knob (Equation 2):

    t_pre = (c_high - c_low) * FilterDegree + c_low

Frames with ``c >= t_pre`` continue to T-YOLO; the rest are filtered out.

Each SNM is trained per stream on frames labelled by the reference model
(Section 4.1), exactly like NoScope's specialized models.  Training and
inference run on the real :mod:`repro.nn` framework; the paper quotes
50*50-pixel inputs at 5K FPS and ~200 KB of GPU memory.

Being *stream-specialized*, the SNM conditions on its stream's scene: the
network input is the lighting-corrected deviation of the frame from the
stream's reference background (the same fixed-viewpoint prior the real SNM
absorbs into its learned weights).  This is what lets a three-layer CNN hit
the >95% accuracy the paper reports for specialized models.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..nn import (
    Conv2D,
    Dense,
    Flatten,
    MaxPool2D,
    ReLU,
    Sequential,
    StackedSequential,
    TrainConfig,
    softmax,
    train_classifier,
)
from ..video.ops import get_resize_plan, resize_bilinear

__all__ = ["SNMConfig", "SNM", "FusedSNM", "train_snm"]


@dataclass(frozen=True)
class SNMConfig:
    """Architecture and calibration settings for one SNM."""

    input_size: int = 50
    conv1_channels: int = 8
    conv2_channels: int = 16
    #: Quantile budgets used to place c_low / c_high on validation data:
    #: c_low has at most this fraction of target frames below it, and c_high
    #: at most this fraction of non-target frames above it.
    tail_budget: float = 0.02
    #: Softmax temperature applied at inference.  A well-separated binary
    #: classifier saturates its probabilities near 0/1, which would leave the
    #: FilterDegree knob (Eq. 2) with nothing to interpolate over; mild
    #: temperature scaling restores a usable confidence continuum without
    #: changing the ranking of frames.
    temperature: float = 2.5
    seed: int = 0


def build_snm_network(cfg: SNMConfig) -> Sequential:
    """The paper's three-layer CNN: CONV, CONV, FC."""
    rng = np.random.default_rng(cfg.seed)
    s = cfg.input_size
    # conv1: 5x5 stride 2 -> pool 2; conv2: 3x3 -> pool 2.
    c1 = (s - 5) // 2 + 1
    p1 = c1 // 2
    c2 = p1 - 3 + 1
    p2 = c2 // 2
    if p2 < 1:
        raise ValueError(f"input_size {s} too small for the SNM architecture")
    return Sequential(
        [
            Conv2D(1, cfg.conv1_channels, 5, stride=2, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Conv2D(cfg.conv1_channels, cfg.conv2_channels, 3, rng=rng),
            ReLU(),
            MaxPool2D(2),
            Flatten(),
            Dense(cfg.conv2_channels * p2 * p2, 2, rng=rng),
        ]
    )


#: Typical foreground deviation of an object; scales the difference image to
#: an O(1) input range for the network.
_DIFF_SCALE = 0.25


class SNM:
    """Per-stream binary classifier with calibrated decision thresholds."""

    def __init__(
        self,
        network: Sequential,
        config: SNMConfig | None = None,
        background: np.ndarray | None = None,
    ):
        self.config = config or SNMConfig()
        self.network = network
        self.c_low = 0.0
        self.c_high = 1.0
        #: Monotonic revision of decision-relevant state (thresholds,
        #: background, weights).  :class:`FusedSNM` keys its cached stacked
        #: tensors on the member versions, so bumping this (automatic on
        #: recalibration / background change, via :meth:`mark_retrained`
        #: after in-place weight updates) invalidates every fused cache.
        self.version = 0
        self._bg_small: np.ndarray | None = None
        self._bg_med: float = 1.0
        self._resized: np.ndarray | None = None  # steady-state resize buffer
        if background is not None:
            self.set_background(background)

    def set_background(self, background: np.ndarray) -> None:
        """Install the stream's reference background (resized once)."""
        s = self.config.input_size
        self._bg_small = resize_bilinear(
            np.asarray(background, dtype=np.float32), (s, s), copy=True
        )
        self._bg_med = float(np.median(self._bg_small)) or 1.0
        self.version += 1

    def mark_retrained(self) -> None:
        """Signal that the network's weights changed in place."""
        self.version += 1

    # ------------------------------------------------------------------
    def preprocess(self, frames: np.ndarray) -> np.ndarray:
        """Produce the network input: scaled background deviation.

        Resizes to the SNM input size, corrects global multiplicative
        lighting drift, subtracts the stream background, and scales.
        """
        if self._bg_small is None:
            raise RuntimeError("SNM background not set; call set_background() first")
        batch = np.asarray(frames, dtype=np.float32)
        if batch.ndim == 2:
            batch = batch[None]
        s = self.config.input_size
        plan = get_resize_plan(batch.shape[1:], (s, s))
        if plan.identity:
            resized = batch
        else:
            buf = self._resized
            shape = (batch.shape[0], s, s)
            if buf is None or buf.shape != shape:
                buf = self._resized = np.empty(shape, dtype=np.float32)
            resized = plan.apply(batch, out=buf)
        bg = self._bg_small
        gain = (np.median(resized, axis=(1, 2)) / self._bg_med)[:, None, None]
        diff = (resized - bg[None] * gain) / _DIFF_SCALE
        return diff[:, None, :, :]

    def predict_proba(self, frames: np.ndarray, batch_size: int = 256) -> np.ndarray:
        """Predicted probability ``c`` of the target object, per frame."""
        x = self.preprocess(frames)
        temp = max(self.config.temperature, 1e-6)
        probs = np.empty(len(x), dtype=np.float32)
        for i in range(0, len(x), batch_size):
            # Zero-alloc forward pass; the scratch logits are consumed here.
            logits = self.network.predict(x[i : i + batch_size], copy=False) / temp
            probs[i : i + batch_size] = softmax(logits)[:, 1]
        return probs

    # ------------------------------------------------------------------
    def t_pre(self, filter_degree: float) -> float:
        """Operating threshold for a FilterDegree in [0, 1] (paper Eq. 2)."""
        if not 0.0 <= filter_degree <= 1.0:
            raise ValueError(
                f"FilterDegree must be in [0, 1], got {filter_degree} "
                "(the paper excludes t_pre outside [c_low, c_high])"
            )
        return (self.c_high - self.c_low) * filter_degree + self.c_low

    def passes(self, probs: np.ndarray, filter_degree: float) -> np.ndarray:
        """Mask of frames that continue to T-YOLO (c >= t_pre)."""
        return np.asarray(probs) >= self.t_pre(filter_degree)

    def calibrate_thresholds(self, frames: np.ndarray, labels: np.ndarray) -> None:
        """Place ``c_low``/``c_high`` from a labelled validation set.

        ``c_low`` is chosen so that almost no target frames score below it
        (FilterDegree 0 keeps essentially everything interesting);
        ``c_high`` so that almost no background frames score above it
        (FilterDegree 1 output is high-credibility).
        """
        labels = np.asarray(labels).astype(bool)
        if len(frames) != len(labels):
            raise ValueError("frames and labels must have equal length")
        probs = self.predict_proba(frames)
        budget = self.config.tail_budget
        pos, neg = probs[labels], probs[~labels]
        q_pos_low = float(np.quantile(pos, budget)) if len(pos) else 0.5
        q_neg_high = float(np.quantile(neg, 1.0 - budget)) if len(neg) else 0.5
        # The uncertain band is bounded by "negatives rarely score above this"
        # and "positives rarely score below this".  With a cleanly separating
        # classifier q_neg_high < q_pos_low (the band is a margin); with an
        # overlapping one the order flips (the band is the confusion region).
        # Either way the band spans between the two quantiles.
        c_low = min(q_pos_low, q_neg_high)
        c_high = max(q_pos_low, q_neg_high)
        if c_high - c_low < 2e-3:
            mid = (c_high + c_low) / 2.0
            c_low, c_high = mid - 1e-3, mid + 1e-3
        self.c_low = float(np.clip(c_low, 0.0, 1.0))
        self.c_high = float(np.clip(c_high, self.c_low + 1e-6, 1.0))
        self.version += 1


class FusedSNM:
    """All streams' SNMs evaluated as one cross-stream mega-batch.

    The fused SNM stage (``fan_in="fused"``) pops frames from every stream's
    queue into one batch; this wrapper runs the per-stream preprocessing,
    executes the K three-layer CNNs as one weight-stacked forward pass
    (:class:`repro.nn.StackedSequential`), and applies each stream's own
    temperature and calibrated ``t_pre`` threshold.

    Per-frame results are bit-identical to calling each stream's
    :meth:`SNM.predict_proba` / :meth:`SNM.passes` on that stream's frames
    alone: preprocessing, softmax, and thresholding are per-frame
    operations, and the stacked forward pass self-checks its batched conv
    path against the grouped per-model reference (falling back to it on any
    mismatch), so batch composition can never change a verdict.

    The stacked weight tensors, the per-stream temperature vector, and the
    per-degree ``t_pre`` threshold vectors are cached keyed on the member
    SNMs' :attr:`~SNM.version` counters: recalibrating or retraining any
    member (which bumps its version) rebuilds them on next use, and
    :meth:`invalidate` forces a rebuild explicitly.
    """

    def __init__(self, snms: list[SNM]):
        if not snms:
            raise ValueError("FusedSNM needs at least one SNM")
        self.snms = list(snms)
        self._cache_key: tuple | None = None
        self._t_pre_cache: dict[tuple, np.ndarray] = {}
        self._refresh()

    def _versions(self) -> tuple:
        return tuple(s.version for s in self.snms)

    def _refresh(self) -> None:
        self._stacked = StackedSequential([s.network for s in self.snms])
        # float32(temp) is the same cast NEP-50 applies when SNM divides its
        # float32 logits by the python-float temperature.
        self._temps = np.array(
            [max(s.config.temperature, 1e-6) for s in self.snms], dtype=np.float32
        )
        self._t_pre_cache = {}
        self._cache_key = self._versions()

    def _ensure_current(self) -> None:
        if self._cache_key != self._versions():
            self._refresh()

    def invalidate(self) -> None:
        """Drop every cached tensor; the next use rebuilds from the SNMs."""
        self._cache_key = None

    @property
    def stacked(self) -> StackedSequential:
        self._ensure_current()
        return self._stacked

    @property
    def temps(self) -> np.ndarray:
        self._ensure_current()
        return self._temps

    def preprocess(self, frames: np.ndarray, stream_idx: np.ndarray) -> np.ndarray:
        """Each stream's own background-deviation preprocessing, scattered
        back into mega-batch order."""
        stream_idx = np.asarray(stream_idx)
        batch = np.asarray(frames, dtype=np.float32)
        s = self.snms[0].config.input_size
        x = np.empty((len(batch), 1, s, s), dtype=np.float32)
        for k in np.unique(stream_idx):
            sel = np.nonzero(stream_idx == k)[0]
            x[sel] = self.snms[int(k)].preprocess(batch[sel])
        return x

    def predict_proba(self, frames: np.ndarray, stream_idx: np.ndarray) -> np.ndarray:
        """Probability ``c`` per frame, each under its own stream's model."""
        stream_idx = np.asarray(stream_idx)
        x = self.preprocess(frames, stream_idx)
        logits = self.stacked.forward(x, stream_idx)
        logits /= self.temps[stream_idx][:, None]
        return softmax(logits)[:, 1].astype(np.float32, copy=False)

    def t_pre(self, filter_degree) -> np.ndarray:
        """Per-stream operating thresholds (paper Eq. 2) as a vector.

        ``filter_degree`` is either one scalar degree applied to every
        stream, or a per-stream sequence of degrees (the adaptive planner's
        case — each stream may run a different threshold).  Cached per
        degree *vector* — a tuple key, so two streams on different degrees
        can never alias one scalar's cache line — and returned read-only;
        invalidated when any member SNM recalibrates.
        """
        self._ensure_current()
        if np.ndim(filter_degree) == 0:
            key = (float(filter_degree),) * len(self.snms)
        else:
            key = tuple(float(d) for d in filter_degree)
            if len(key) != len(self.snms):
                raise ValueError(
                    f"per-stream degree vector has {len(key)} entries for "
                    f"{len(self.snms)} streams"
                )
        cached = self._t_pre_cache.get(key)
        if cached is None:
            cached = np.array([s.t_pre(d) for s, d in zip(self.snms, key)])
            cached.setflags(write=False)
            self._t_pre_cache[key] = cached
        return cached

    def passes(
        self, probs: np.ndarray, stream_idx: np.ndarray, filter_degree
    ) -> np.ndarray:
        """Mask of frames that continue to T-YOLO, per-stream thresholds.

        ``filter_degree`` may be a scalar or a per-stream degree vector
        (see :meth:`t_pre`).
        """
        return np.asarray(probs) >= self.t_pre(filter_degree)[np.asarray(stream_idx)]


def train_snm(
    frames: np.ndarray,
    labels: np.ndarray,
    background: np.ndarray,
    config: SNMConfig | None = None,
    train_config: TrainConfig | None = None,
) -> SNM:
    """Train and calibrate an SNM from labelled frames.

    Follows Section 4.1: labelled data is split into a training set and a
    test set; the model learns on the former and the thresholds
    ``c_low``/``c_high`` are selected on the latter.
    """
    cfg = config or SNMConfig()
    labels = np.asarray(labels).astype(np.int64)
    if len(frames) != len(labels):
        raise ValueError("frames and labels must have equal length")
    snm = SNM(build_snm_network(cfg), cfg, background=background)
    x = snm.preprocess(frames)
    tc = train_config or TrainConfig(epochs=10, batch_size=64, lr=0.04, seed=cfg.seed)
    # Hold out a calibration split distinct from the train/val split used
    # inside train_classifier.
    rng = np.random.default_rng(cfg.seed)
    order = rng.permutation(len(x))
    n_cal = max(1, len(x) // 5)
    cal_idx, fit_idx = order[:n_cal], order[n_cal:]
    train_classifier(snm.network, x[fit_idx], labels[fit_idx], tc)
    snm.calibrate_thresholds(frames[cal_idx], labels[cal_idx])
    return snm
