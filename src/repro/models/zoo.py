"""Per-stream model registry and training orchestration.

FFS-VA maintains, for every video stream, a specialized SDD and SNM, plus
two globally shared models (T-YOLO and the reference model).  This module
reproduces the Section 4.1 training pipeline:

1. label frames of the stream with the reference model (the paper uses
   YOLOv2 as the labelling oracle),
2. split into training and test subsets,
3. fit the SDD threshold and train the SNM on the training subset,
4. calibrate ``delta_diff``, ``c_low`` and ``c_high`` on the test subset.

It also tracks per-model memory footprints so the device layer can account
for model-switch costs (loading a different stream's SNM onto the GPU) and
the motivation for sharing one generic T-YOLO across streams: "sharing the
same model can reduce the switch overhead of loading different models
(e.g., 1.2 GB for T-YOLO)".
"""

from __future__ import annotations

import os
import zlib
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..nn import TrainConfig, load_weights, save_weights
from ..video.stream import VideoStream
from .reference import ReferenceModel
from .sdd import SDD, calibrate_sdd
from .snm import SNM, SNMConfig, build_snm_network, train_snm
from .tyolo import TYolo

__all__ = ["StreamModels", "ModelZoo", "SNM_MEMORY_BYTES"]

#: Paper-reported SNM footprint: "about 200 KB GPU memory".
SNM_MEMORY_BYTES = 200 * 1024


@dataclass
class StreamModels:
    """The specialized models and scene reference for one stream."""

    stream_id: str
    kind: str
    background: np.ndarray
    sdd: SDD
    snm: SNM
    #: Diagnostics from training, useful for reporting.
    train_info: dict = field(default_factory=dict)


class ModelZoo:
    """Holds shared detectors plus the specialized models of every stream.

    Note on class labels: the evaluation (like the paper's) assumes a single
    target-object kind per stream, so detection counting defaults to
    ``kind=None`` (count every detected object).  The per-detection ``kind``
    attribute remains available for multi-class scenarios.
    """

    def __init__(
        self,
        tyolo: TYolo | None = None,
        reference: ReferenceModel | None = None,
    ):
        self.tyolo = tyolo or TYolo()
        self.reference = reference or ReferenceModel()
        self.streams: dict[str, StreamModels] = {}

    def __contains__(self, stream_id: str) -> bool:
        return stream_id in self.streams

    def __getitem__(self, stream_id: str) -> StreamModels:
        return self.streams[stream_id]

    # ------------------------------------------------------------------
    def train_for_stream(
        self,
        stream: VideoStream,
        *,
        n_train_frames: int = 600,
        stride: int = 2,
        snm_config: SNMConfig | None = None,
        train_config: TrainConfig | None = None,
        sdd_fn_budget: float = 0.01,
    ) -> StreamModels:
        """Train and register SDD + SNM for ``stream``.

        Samples ``n_train_frames`` frames (every ``stride``-th) from the
        front of the stream, labels them with the reference model, and runs
        the two-stage fit/calibrate recipe.  Returns the registered bundle.
        """
        span = min(len(stream), n_train_frames * stride)
        ts = np.arange(0, span, stride)
        if len(ts) < 8:
            raise ValueError(
                f"stream {stream.stream_id} too short to train on ({len(stream)} frames)"
            )
        frames = stream.pixel_batch(ts)
        background = stream.reference_image()
        labels = self.reference.label_frames(frames, background)

        sdd = calibrate_sdd(
            background, frames, labels, fn_budget=sdd_fn_budget
        )
        # A stable per-stream seed (Python's str hash is salted per process).
        cfg = snm_config or SNMConfig(seed=zlib.crc32(stream.stream_id.encode()) % (2**31))
        snm = train_snm(frames, labels, background, cfg, train_config)

        bundle = StreamModels(
            stream_id=stream.stream_id,
            kind=stream.kind,
            background=background,
            sdd=sdd,
            snm=snm,
            train_info={
                "n_labelled": int(len(ts)),
                "positive_rate": float(labels.mean()),
                "sdd_threshold": sdd.threshold,
                "c_low": snm.c_low,
                "c_high": snm.c_high,
            },
        )
        self.streams[stream.stream_id] = bundle
        return bundle

    # ------------------------------------------------------------------
    # persistence (Section 5.5: reuse "saved models in the past that can
    # match the current environment" instead of retraining)
    # ------------------------------------------------------------------
    def save_stream(self, stream_id: str, directory: str | os.PathLike) -> Path:
        """Persist one stream's specialized models to ``directory``.

        Produces ``<stream_id>.snm.npz`` (network weights) and
        ``<stream_id>.meta.npz`` (background, SDD calibration, SNM
        thresholds and architecture).  Returns the metadata path.
        """
        bundle = self.streams[stream_id]
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        save_weights(bundle.snm.network, directory / f"{stream_id}.snm.npz")
        cfg = bundle.snm.config
        meta_path = directory / f"{stream_id}.meta.npz"
        np.savez(
            meta_path,
            kind=np.frombuffer(bundle.kind.encode(), dtype=np.uint8),
            background=bundle.background,
            sdd_reference=bundle.sdd.reference,
            sdd_threshold=np.float64(bundle.sdd.threshold),
            sdd_metric=np.frombuffer(bundle.sdd.metric.encode(), dtype=np.uint8),
            c_low=np.float64(bundle.snm.c_low),
            c_high=np.float64(bundle.snm.c_high),
            snm_input_size=np.int64(cfg.input_size),
            snm_conv1=np.int64(cfg.conv1_channels),
            snm_conv2=np.int64(cfg.conv2_channels),
            snm_temperature=np.float64(cfg.temperature),
        )
        return meta_path

    def load_stream(self, stream_id: str, directory: str | os.PathLike) -> StreamModels:
        """Restore a stream's specialized models saved by :meth:`save_stream`."""
        directory = Path(directory)
        meta_path = directory / f"{stream_id}.meta.npz"
        with np.load(meta_path) as z:
            kind = bytes(z["kind"].tobytes()).decode()
            background = z["background"]
            sdd = SDD(
                z["sdd_reference"],
                threshold=float(z["sdd_threshold"]),
                metric=bytes(z["sdd_metric"].tobytes()).decode(),
            )
            cfg = SNMConfig(
                input_size=int(z["snm_input_size"]),
                conv1_channels=int(z["snm_conv1"]),
                conv2_channels=int(z["snm_conv2"]),
                temperature=float(z["snm_temperature"]),
            )
            snm = SNM(build_snm_network(cfg), cfg, background=background)
            snm.c_low = float(z["c_low"])
            snm.c_high = float(z["c_high"])
        load_weights(snm.network, directory / f"{stream_id}.snm.npz")
        bundle = StreamModels(
            stream_id=stream_id,
            kind=kind,
            background=background,
            sdd=sdd,
            snm=snm,
            train_info={"restored_from": str(meta_path)},
        )
        self.streams[stream_id] = bundle
        return bundle

    # ------------------------------------------------------------------
    def memory_footprint(self) -> dict[str, int]:
        """Approximate bytes per resident model class (for device accounting)."""
        from .reference import REFERENCE_MEMORY_BYTES
        from .tyolo import TYOLO_MEMORY_BYTES

        return {
            "tyolo": TYOLO_MEMORY_BYTES,
            "reference": REFERENCE_MEMORY_BYTES,
            "snm_total": SNM_MEMORY_BYTES * len(self.streams),
        }
