"""The YOLOv2-on-everything baseline system."""

from .yolo_all import BaselineSimulator, baseline_offline, baseline_online

__all__ = ["BaselineSimulator", "baseline_offline", "baseline_online"]
