"""The YOLOv2 baseline: run the full-feature model on every frame.

This is the system FFS-VA is evaluated against throughout Section 5: "the
state-of-the-art YOLOv2 system with the same hardware environment", i.e. the
reference model spread across **both** GPUs with no prepositive filtering.
A GTX1080-class GPU sustains ~56 FPS end-to-end, so the baseline tops out
around 112 FPS aggregate — enough for roughly four live 30 FPS streams
("the mainstream cost-effective servers ... can analyze up to four-way
streams using YOLOv2 in real-time") and ~134 raw FPS offline.

The baseline shares the FFS-VA cost model and metrics, so every comparison
in the benchmark suite is apples-to-apples.
"""

from __future__ import annotations

import heapq
import itertools

from ..core.config import FFSVAConfig
from ..core.metrics import LatencyStats, RunMetrics
from ..core.pipeline import REF
from ..core.queues import SimQueue
from ..core.trace import FrameTrace
from ..devices.costs import CostModel
from ..devices.placement import Placement, baseline_placement

__all__ = ["BaselineSimulator", "baseline_offline", "baseline_online"]


class BaselineSimulator:
    """Every frame of every stream goes straight to the reference model."""

    def __init__(
        self,
        traces: list[FrameTrace],
        config: FFSVAConfig | None = None,
        cost_model: CostModel | None = None,
        placement: Placement | None = None,
        *,
        online: bool = True,
        queue_depth: int = 8,
    ):
        if not traces:
            raise ValueError("need at least one stream trace")
        self.config = config or FFSVAConfig()
        self.costs = cost_model or CostModel()
        self.placement = placement or baseline_placement()
        self.placement.reset()
        self.online = online
        self.traces = traces
        self.n_per_stream = [len(t) for t in traces]
        self.admitted = [0] * len(traces)
        self.done = [0] * len(traces)
        self.ref_q = SimQueue(queue_depth, REF)
        self._heap: list = []
        self._seq = itertools.count()
        self._busy: set[str] = set()
        self._latencies: list[float] = []
        self.metrics = RunMetrics(n_streams=len(traces))

    def _arrival(self, s: int, i: int) -> float:
        return i / self.config.stream_fps if self.online else 0.0

    def _top_up(self, now: float) -> None:
        eps = 1e-12
        for s, n in enumerate(self.n_per_stream):
            while self.admitted[s] < n and self.ref_q.has_room(1):
                if self._arrival(s, self.admitted[s]) > now + eps:
                    break
                self.ref_q.put((s, self.admitted[s]))
                self.admitted[s] += 1

    def _next_arrival(self, now: float) -> float | None:
        best = None
        for s, n in enumerate(self.n_per_stream):
            if self.admitted[s] < n:
                t = self._arrival(s, self.admitted[s])
                if t > now and (best is None or t < best):
                    best = t
        return best

    def _start_all(self, now: float) -> None:
        progress = True
        while progress:
            progress = False
            self._top_up(now)
            for name in self.placement.stage_devices[REF]:
                if name in self._busy or len(self.ref_q) == 0:
                    continue
                s, i = self.ref_q.pop()
                dt = self.costs.service_time(REF, 1)
                end = now + dt
                self.placement.devices[name].busy_time += dt
                heapq.heappush(self._heap, (end, next(self._seq), name, s, i))
                self._busy.add(name)
                progress = True

    def run(self, max_virtual_time: float | None = None) -> RunMetrics:
        now = 0.0
        inf = float("inf")
        while True:
            self._start_all(now)
            if all(d == n for d, n in zip(self.done, self.n_per_stream)):
                break
            t_heap = self._heap[0][0] if self._heap else inf
            t_arr = self._next_arrival(now)
            t_next = min(t_heap, t_arr if t_arr is not None else inf)
            if t_next == inf:
                break
            if max_virtual_time is not None and t_next > max_virtual_time:
                now = max_virtual_time
                break
            now = t_next
            while self._heap and self._heap[0][0] <= now + 1e-15:
                _, _, name, s, i = heapq.heappop(self._heap)
                self._busy.discard(name)
                self.done[s] += 1
                self._latencies.append(now - self._arrival(s, i))
        return self._finalize(now)

    def _finalize(self, now: float) -> RunMetrics:
        m = self.metrics
        m.duration = now
        m.frames_offered = sum(self.n_per_stream)
        m.frames_ingested = sum(self.admitted)
        m.frames_to_ref = sum(self.done)
        m.stages[REF].record(sum(self.done), sum(self.done))
        m.ref_latency = LatencyStats.from_samples(self._latencies)
        m.frame_latency = m.ref_latency
        m.device_utilization = {
            name: dev.utilization(m.duration)
            for name, dev in self.placement.devices.items()
        }
        m.extra["per_stream_ingested"] = list(self.admitted)
        m.extra["per_stream_done"] = list(self.done)
        return m


def baseline_offline(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
) -> RunMetrics:
    """Offline YOLOv2-on-everything across both GPUs."""
    return BaselineSimulator(traces, config, cost_model, online=False).run()


def baseline_online(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    *,
    horizon_slack: float = 2.0,
) -> RunMetrics:
    """Online YOLOv2-on-everything across both GPUs (bounded horizon)."""
    config = config or FFSVAConfig()
    sim = BaselineSimulator(traces, config, cost_model, online=True)
    n_max = max(len(t) for t in traces)
    return sim.run(max_virtual_time=n_max / config.stream_fps + horizon_slack)
