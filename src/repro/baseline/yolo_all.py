"""The YOLOv2 baseline: run the full-feature model on every frame.

This is the system FFS-VA is evaluated against throughout Section 5: "the
state-of-the-art YOLOv2 system with the same hardware environment", i.e. the
reference model spread across **both** GPUs with no prepositive filtering.
A GTX1080-class GPU sustains ~56 FPS end-to-end, so the baseline tops out
around 112 FPS aggregate — enough for roughly four live 30 FPS streams
("the mainstream cost-effective servers ... can analyze up to four-way
streams using YOLOv2 in real-time") and ~134 raw FPS offline.

The baseline shares the FFS-VA cost model, metrics, *and telemetry schema*,
so every comparison in the benchmark suite is apples-to-apples: attach a
:class:`~repro.obs.Telemetry` and the baseline emits the same six event
kinds and samples the same gauge families as both FFS-VA runtimes, which is
what lets :func:`~repro.obs.trace.overlay_chrome_trace` put a YOLOv2 run
and an FFS-VA run on one timeline.
"""

from __future__ import annotations

import heapq
import itertools

from ..core.config import FFSVAConfig
from ..core.metrics import LatencyStats, RunMetrics
from ..core.pipeline import REF
from ..core.queues import SimQueue
from ..core.trace import FrameTrace
from ..devices.costs import CostModel
from ..devices.placement import Placement, baseline_placement
from ..obs import Telemetry

__all__ = ["BaselineSimulator", "baseline_offline", "baseline_online"]


class BaselineSimulator:
    """Every frame of every stream goes straight to the reference model."""

    def __init__(
        self,
        traces: list[FrameTrace],
        config: FFSVAConfig | None = None,
        cost_model: CostModel | None = None,
        placement: Placement | None = None,
        *,
        online: bool = True,
        queue_depth: int = 8,
        telemetry: Telemetry | None = None,
    ):
        if not traces:
            raise ValueError("need at least one stream trace")
        self.config = config or FFSVAConfig()
        self.costs = cost_model or CostModel()
        self.placement = placement or baseline_placement()
        self.placement.reset()
        self.online = online
        self.traces = traces
        self.n_per_stream = [len(t) for t in traces]
        self.admitted = [0] * len(traces)
        self.done = [0] * len(traces)
        self.ref_q = SimQueue(queue_depth, REF)
        self._heap: list = []
        self._seq = itertools.count()
        self._busy: set[str] = set()
        self._latencies: list[float] = []
        self.metrics = RunMetrics(n_streams=len(traces))
        #: Attached telemetry (None = disabled).  Timestamps are virtual
        #: seconds; the schema is identical to both FFS-VA runtimes.
        self.telemetry = (
            telemetry if telemetry is not None else Telemetry.from_config(self.config)
        )
        self._prev_sample = {"t": 0.0, "done": 0, "busy": {}}
        # queue_block dedup: _top_up runs repeatedly inside fixed-point
        # loops, so a blocked head-of-line frame is reported at most once.
        self._blocked = [-1] * len(traces)

    def _arrival(self, s: int, i: int) -> float:
        return i / self.config.stream_fps if self.online else 0.0

    def _top_up(self, now: float) -> None:
        eps = 1e-12
        tel = self.telemetry
        emit = tel is not None and tel.bus.enabled
        for s, n in enumerate(self.n_per_stream):
            while self.admitted[s] < n and self.ref_q.has_room(1):
                i = self.admitted[s]
                if self._arrival(s, i) > now + eps:
                    break
                self.ref_q.put((s, i))
                if emit:
                    t_in = max(now, self._arrival(s, i))
                    tel.bus.emit("admission", t_in, REF, stream=s, frame=i)
                    tel.bus.emit("frame_enter", t_in, REF, stream=s, frame=i)
                self.admitted[s] += 1
            if (
                emit
                and self.admitted[s] < n
                and self._arrival(s, self.admitted[s]) <= now + eps
                and not self.ref_q.has_room(1)
                and self._blocked[s] != self.admitted[s]
            ):
                self._blocked[s] = self.admitted[s]
                tel.bus.emit(
                    "queue_block", now, REF,
                    stream=s, frame=self.admitted[s], n=len(self.ref_q),
                )

    def _next_arrival(self, now: float) -> float | None:
        best = None
        for s, n in enumerate(self.n_per_stream):
            if self.admitted[s] < n:
                t = self._arrival(s, self.admitted[s])
                if t > now and (best is None or t < best):
                    best = t
        return best

    def _start_all(self, now: float) -> None:
        progress = True
        while progress:
            progress = False
            self._top_up(now)
            for name in self.placement.stage_devices[REF]:
                if name in self._busy or len(self.ref_q) == 0:
                    continue
                s, i = self.ref_q.pop()
                dt = self.costs.service_time(REF, 1)
                end = now + dt
                self.placement.devices[name].busy_time += dt
                heapq.heappush(self._heap, (end, next(self._seq), name, s, i, now))
                self._busy.add(name)
                progress = True

    def run(self, max_virtual_time: float | None = None) -> RunMetrics:
        now = 0.0
        inf = float("inf")
        tel = self.telemetry
        sample = tel is not None
        while True:
            self._start_all(now)
            if sample and tel.sampler.due(now):
                self._sample(now)
            if all(d == n for d, n in zip(self.done, self.n_per_stream)):
                break
            t_heap = self._heap[0][0] if self._heap else inf
            t_arr = self._next_arrival(now)
            t_next = min(t_heap, t_arr if t_arr is not None else inf)
            if t_next == inf:
                break
            if max_virtual_time is not None and t_next > max_virtual_time:
                now = max_virtual_time
                break
            now = t_next
            while self._heap and self._heap[0][0] <= now + 1e-15:
                _, _, name, s, i, start = heapq.heappop(self._heap)
                self._busy.discard(name)
                self.done[s] += 1
                latency = now - self._arrival(s, i)
                self._latencies.append(latency)
                if tel is not None:
                    tel.observe_latency("stage_exec_seconds", now - start, stage=REF)
                    tel.observe_latency("frame_latency_seconds", latency, stage=REF)
                    if tel.bus.enabled:
                        tel.bus.emit(
                            "batch_exec", now, REF, stream=s, t_start=start, n=1
                        )
                        tel.bus.emit(
                            "frame_pass", now, REF, stream=s, frame=i, t_start=start
                        )
        return self._finalize(now)

    # ------------------------------------------------------------------
    # time-series sampling (telemetry only)
    # ------------------------------------------------------------------
    def _sample(self, now: float, *, force: bool = False) -> None:
        tel = self.telemetry
        gauges: dict[str, float] = {f"queue_depth[{REF}]": len(self.ref_q)}
        done = sum(self.done)
        busy = {name: dev.busy_time for name, dev in self.placement.devices.items()}
        prev = self._prev_sample
        dt = now - prev["t"]
        if dt > 0:
            gauges[f"stage_fps[{REF}]"] = (done - prev["done"]) / dt
            for device, b in busy.items():
                gauges[f"device_utilization[{device}]"] = min(
                    1.0, (b - prev["busy"].get(device, 0.0)) / dt
                )
        tel.sampler.observe_many(now, gauges, force=force)
        self._prev_sample = {"t": now, "done": done, "busy": busy}

    def _finalize(self, now: float) -> RunMetrics:
        m = self.metrics
        m.duration = now
        m.frames_offered = sum(self.n_per_stream)
        m.frames_ingested = sum(self.admitted)
        m.frames_to_ref = sum(self.done)
        m.stages[REF].record(sum(self.done), sum(self.done))
        m.ref_latency = LatencyStats.from_samples(self._latencies)
        m.frame_latency = m.ref_latency
        m.device_utilization = {
            name: dev.utilization(m.duration)
            for name, dev in self.placement.devices.items()
        }
        m.extra["per_stream_ingested"] = list(self.admitted)
        m.extra["per_stream_done"] = list(self.done)
        if self.telemetry is not None:
            self._sample(now, force=True)
            m.extra["telemetry"] = self.telemetry.bus.stats()
        return m


def baseline_offline(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    *,
    telemetry: Telemetry | None = None,
) -> RunMetrics:
    """Offline YOLOv2-on-everything across both GPUs."""
    return BaselineSimulator(
        traces, config, cost_model, online=False, telemetry=telemetry
    ).run()


def baseline_online(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    *,
    horizon_slack: float = 2.0,
    telemetry: Telemetry | None = None,
) -> RunMetrics:
    """Online YOLOv2-on-everything across both GPUs (bounded horizon)."""
    config = config or FFSVAConfig()
    sim = BaselineSimulator(traces, config, cost_model, online=True, telemetry=telemetry)
    n_max = max(len(t) for t in traces)
    return sim.run(max_virtual_time=n_max / config.stream_fps + horizon_slack)
