"""Video stream abstraction over the synthetic renderer.

A :class:`VideoStream` couples a scene script with a renderer and exposes
the access patterns the pipeline needs:

* sequential iteration (the online prefetch path),
* random access / batched rendering (trace building, training-set
  construction),
* ground truth without rendering (evaluation).

``VideoStream`` is deliberately cheap to construct: pixels are produced on
demand, so a 10^5-frame stream costs nothing until rendered.
"""

from __future__ import annotations

from collections.abc import Iterator

import numpy as np

from .frame import Frame
from .scene import SceneScript, make_script
from .synth import Renderer, RenderOptions

__all__ = ["VideoStream"]


class VideoStream:
    """A replayable, annotated synthetic video stream."""

    def __init__(
        self,
        script: SceneScript,
        *,
        stream_id: str = "stream-0",
        fps: float = 30.0,
        render_options: RenderOptions | None = None,
    ):
        self.script = script
        self.stream_id = stream_id
        self.fps = fps
        self.renderer = Renderer(script, render_options)

    # -- construction helpers -------------------------------------------------
    @classmethod
    def synthetic(
        cls,
        n_frames: int,
        tor: float,
        *,
        kind: str = "car",
        height: int = 100,
        width: int = 150,
        seed: int = 0,
        stream_id: str | None = None,
        fps: float = 30.0,
        **script_kwargs,
    ) -> "VideoStream":
        """Create a stream from a freshly synthesized scene script."""
        script = make_script(
            n_frames,
            tor,
            kind=kind,
            height=height,
            width=width,
            seed=seed,
            **script_kwargs,
        )
        return cls(script, stream_id=stream_id or f"stream-{seed}", fps=fps)

    # -- basic properties ------------------------------------------------------
    def __len__(self) -> int:
        return self.script.n_frames

    @property
    def kind(self) -> str:
        """Target object class this stream is specialized for."""
        return self.script.kind

    @property
    def shape(self) -> tuple[int, int]:
        return (self.script.height, self.script.width)

    # -- frame access ----------------------------------------------------------
    def frame(self, t: int) -> Frame:
        """Render frame ``t`` with annotations."""
        return self.renderer.render(t, stream_id=self.stream_id, fps=self.fps)

    def pixels(self, t: int) -> np.ndarray:
        """Render only the pixels of frame ``t``."""
        return self.renderer.render_pixels(t)

    def pixel_batch(self, ts) -> np.ndarray:
        """Render frames ``ts`` into an ``(N, H, W)`` array."""
        return self.renderer.render_batch(ts)

    def __iter__(self) -> Iterator[Frame]:
        return self.frames()

    def frames(self, start: int = 0, stop: int | None = None) -> Iterator[Frame]:
        """Iterate frames in ``[start, stop)``."""
        stop = self.script.n_frames if stop is None else min(stop, self.script.n_frames)
        for t in range(start, stop):
            yield self.frame(t)

    # -- ground truth ----------------------------------------------------------
    def gt_counts(self, min_visibility: float | None = None) -> np.ndarray:
        """Per-frame ground-truth target counts (no rendering)."""
        if min_visibility is None:
            return self.script.gt_counts()
        return self.script.gt_counts(min_visibility)

    def tor(self) -> float:
        """Empirical target-object ratio of this stream."""
        return self.script.tor()

    def scenes(self) -> list[tuple[int, int]]:
        """Ground-truth scene runs as ``(start, stop)`` with stop exclusive."""
        return self.script.scenes()

    def reference_image(self, n_samples: int = 32) -> np.ndarray:
        """SDD reference image (average of rendered background frames)."""
        return self.renderer.reference_image(n_samples)
