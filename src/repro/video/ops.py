"""Low-level image operations used throughout FFS-VA.

The original system relies on OpenCV for frame resizing before each filter
stage (the paper reports resize costs of 40/150/400 microseconds for the
SDD/SNM/T-YOLO input sizes).  This module provides the small set of
vectorized NumPy equivalents the reproduction needs: bilinear resize, block
mean-pooling, and normalization helpers.  Everything operates on grayscale
``float32`` images with values in ``[0, 1]`` shaped ``(H, W)`` or batches
shaped ``(N, H, W)``.

Resizing is the cascade's per-frame tax: every stage pays it on every frame
before any model runs.  Steady-state streams resize the same ``(in_hw,
out_hw)`` pair millions of times, so the gather indices and interpolation
weights are precomputed once into a :class:`ResizePlan` (LRU-cached per
shape pair via :func:`get_resize_plan`) and each call does only
fancy-indexed gathers plus fused multiply-adds — never index math.
"""

from __future__ import annotations

import threading
from functools import lru_cache

import numpy as np

__all__ = [
    "ResizePlan",
    "get_resize_plan",
    "resize_bilinear",
    "block_reduce_mean",
    "to_float01",
    "normalize_unit",
]


class ResizePlan:
    """Precomputed bilinear-resize gathers and weights for one shape pair.

    Sample positions follow the "half-pixel centers" convention so that up-
    and down-scaling are both well behaved at the borders.  The plan stores
    flattened gather indices for the four neighbours plus the row/column
    interpolation weights, so :meth:`apply` is a fixed sequence of four
    ``take``-style gathers and in-place FMAs over ``(N, OH*OW)`` — identical
    results to recomputing the indices per call, at a fraction of the cost.

    The index/weight tables are immutable after construction; the only
    mutable state is a *thread-local* pool of gather scratch buffers (the
    four neighbour temporaries are each ``(N, OH*OW)`` float32 and would
    otherwise be reallocated per call — at stage-batch sizes that malloc
    churn costs as much as the gathers themselves).  Thread locality keeps
    one plan safely shared across threads (the per-stream and shared-stage
    workers of the threaded runtime all hit the same LRU cache).
    """

    __slots__ = (
        "in_hw",
        "out_hw",
        "identity",
        "_i00",
        "_i01",
        "_i10",
        "_i11",
        "_wy",
        "_iwy",
        "_wx",
        "_iwx",
        "_tls",
    )

    def __init__(self, in_hw: tuple[int, int], out_hw: tuple[int, int]):
        h, w = int(in_hw[0]), int(in_hw[1])
        oh, ow = int(out_hw[0]), int(out_hw[1])
        if h <= 0 or w <= 0:
            raise ValueError(f"input size must be positive, got {in_hw}")
        if oh <= 0 or ow <= 0:
            raise ValueError(f"output size must be positive, got {out_hw}")
        self.in_hw = (h, w)
        self.out_hw = (oh, ow)
        self.identity = (oh, ow) == (h, w)
        self._tls = threading.local()
        if self.identity:
            self._i00 = self._i01 = self._i10 = self._i11 = None
            self._wy = self._iwy = self._wx = self._iwx = None
            return

        ys = (np.arange(oh, dtype=np.float32) + 0.5) * (h / oh) - 0.5
        xs = (np.arange(ow, dtype=np.float32) + 0.5) * (w / ow) - 0.5
        ys = np.clip(ys, 0.0, h - 1.0)
        xs = np.clip(xs, 0.0, w - 1.0)
        y0 = np.floor(ys).astype(np.intp)
        x0 = np.floor(xs).astype(np.intp)
        y1 = np.minimum(y0 + 1, h - 1)
        x1 = np.minimum(x0 + 1, w - 1)
        wy = (ys - y0).astype(np.float32)
        wx = (xs - x0).astype(np.float32)

        # Flattened gather indices into a row-major (H*W) image; flattened
        # weights broadcast over (OH*OW) so apply() runs on 2-D operands.
        self._i00 = (y0[:, None] * w + x0[None, :]).ravel()
        self._i01 = (y0[:, None] * w + x1[None, :]).ravel()
        self._i10 = (y1[:, None] * w + x0[None, :]).ravel()
        self._i11 = (y1[:, None] * w + x1[None, :]).ravel()
        self._wy = np.repeat(wy, ow)
        self._iwy = np.float32(1.0) - self._wy
        self._wx = np.tile(wx, oh)
        self._iwx = np.float32(1.0) - self._wx

    def apply(self, img: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        """Resize ``img`` (``(H, W)`` or ``(N, H, W)``) using this plan.

        ``out``, when given, must be a ``float32`` array of the batch output
        shape ``(N, OH, OW)`` (or ``(OH, OW)`` for a single image); the
        result is written into it and returned, so steady-state callers can
        run allocation-free apart from the gather temporaries.

        Identity plans return the input itself (as ``float32``) — see
        :func:`resize_bilinear` for the aliasing contract.
        """
        arr = np.asarray(img, dtype=np.float32)
        single = arr.ndim == 2
        if single:
            arr = arr[None]
        if arr.ndim != 3:
            raise ValueError(f"expected (H, W) or (N, H, W) image, got shape {arr.shape}")
        if arr.shape[1:] != self.in_hw:
            raise ValueError(
                f"plan built for input {self.in_hw}, got image of shape {arr.shape[1:]}"
            )
        if self.identity:
            res = arr[0] if single else arr
            if out is not None:
                np.copyto(out, res)
                return out
            return res
        n = arr.shape[0]
        oh, ow = self.out_hw
        flat = arr.reshape(n, -1)
        # Four neighbour gathers into this thread's scratch buffers (mode
        # "clip" skips the wraparound branch; the indices are in range by
        # construction).  The interpolation then runs fully in-place on the
        # scratch (same op order as the unplanned formula, so results are
        # bit-identical to recomputing indices per call).
        ia, ib, ic, id_ = self._gather_scratch(n, oh * ow)
        np.take(flat, self._i00, axis=1, out=ia, mode="clip")
        np.take(flat, self._i01, axis=1, out=ib, mode="clip")
        np.take(flat, self._i10, axis=1, out=ic, mode="clip")
        np.take(flat, self._i11, axis=1, out=id_, mode="clip")
        np.multiply(ia, self._iwx, out=ia)
        np.multiply(ib, self._wx, out=ib)
        np.add(ia, ib, out=ia)  # top row interpolation
        np.multiply(ic, self._iwx, out=ic)
        np.multiply(id_, self._wx, out=id_)
        np.add(ic, id_, out=ic)  # bottom row interpolation
        np.multiply(ia, self._iwy, out=ia)
        np.multiply(ic, self._wy, out=ic)
        if out is not None:
            target = out[None] if (single and out.ndim == 2) else out
            if target.shape != (n, oh, ow):
                raise ValueError(
                    f"out must have shape {(n, oh, ow)}, got {out.shape}"
                )
            np.add(ia, ic, out=target.reshape(n, -1))
            return out
        res = np.add(ia, ic).reshape(n, oh, ow)
        return res[0] if single else res

    def _gather_scratch(self, n: int, npix: int) -> tuple[np.ndarray, ...]:
        """This thread's four gather buffers, grown to cover ``(n, npix)``."""
        bufs = getattr(self._tls, "bufs", None)
        if bufs is None or bufs[0].shape[0] < n:
            bufs = tuple(np.empty((n, npix), dtype=np.float32) for _ in range(4))
            self._tls.bufs = bufs
        if bufs[0].shape[0] == n:
            return bufs
        return tuple(b[:n] for b in bufs)

    def __call__(self, img: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
        return self.apply(img, out=out)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ResizePlan({self.in_hw} -> {self.out_hw})"


@lru_cache(maxsize=128)
def _cached_plan(h: int, w: int, oh: int, ow: int) -> ResizePlan:
    return ResizePlan((h, w), (oh, ow))


def get_resize_plan(in_hw: tuple[int, int], out_hw: tuple[int, int]) -> ResizePlan:
    """The process-wide cached :class:`ResizePlan` for a shape pair.

    Steady-state stage preprocessing calls this per batch; after the first
    call for a ``(in_hw, out_hw)`` pair the plan lookup is a dict hit.
    """
    return _cached_plan(int(in_hw[0]), int(in_hw[1]), int(out_hw[0]), int(out_hw[1]))


def resize_bilinear(
    img: np.ndarray, out_hw: tuple[int, int], *, copy: bool = False
) -> np.ndarray:
    """Resize ``img`` to ``out_hw = (H, W)`` with bilinear interpolation.

    Accepts a single image ``(H, W)`` or a batch ``(N, H, W)``; the batch
    dimension is preserved.  Runs on the LRU-cached :class:`ResizePlan` for
    the shape pair, so repeated calls pay no index math.

    When the output size equals the input size the input is returned
    **as-is** (for ``float32`` input, an alias of ``img``; other dtypes are
    converted and therefore copied).  Pass ``copy=True`` to force an owned
    array — do so whenever the caller mutates the result or outlives the
    source buffer.
    """
    arr = np.asarray(img, dtype=np.float32)
    single = arr.ndim == 2
    batch = arr[None] if single else arr
    if batch.ndim != 3:
        raise ValueError(f"expected (H, W) or (N, H, W) image, got shape {arr.shape}")
    plan = get_resize_plan(batch.shape[1:], out_hw)
    if plan.identity:
        return arr.copy() if copy else arr
    out = plan.apply(batch)
    return out[0] if single else out


def block_reduce_mean(img: np.ndarray, factor: int) -> np.ndarray:
    """Downsample by an integer ``factor`` using non-overlapping block means.

    Trailing rows/columns that do not fill a complete block are dropped,
    mirroring the behaviour of area-interpolation decimation.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    arr = np.asarray(img, dtype=np.float32)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    n, h, w = arr.shape
    hh, ww = h // factor, w // factor
    if hh == 0 or ww == 0:
        raise ValueError(f"factor {factor} too large for image of shape {(h, w)}")
    view = arr[:, : hh * factor, : ww * factor]
    out = view.reshape(n, hh, factor, ww, factor).mean(axis=(2, 4))
    return out[0] if single else out


def to_float01(img: np.ndarray) -> np.ndarray:
    """Convert an integer image to float32 in [0, 1]; pass floats through."""
    arr = np.asarray(img)
    if np.issubdtype(arr.dtype, np.integer):
        info = np.iinfo(arr.dtype)
        return arr.astype(np.float32) / float(info.max)
    return arr.astype(np.float32, copy=False)


def normalize_unit(img: np.ndarray) -> np.ndarray:
    """Shift/scale an image (or batch) to zero mean and unit variance.

    Normalization is computed per image over its spatial axes, which is the
    standard input conditioning for the SNM classifier.  A constant image
    maps to all zeros instead of dividing by zero.
    """
    arr = np.asarray(img, dtype=np.float32)
    axes = tuple(range(arr.ndim - 2, arr.ndim))
    mean = arr.mean(axis=axes, keepdims=True)
    std = arr.std(axis=axes, keepdims=True)
    std = np.where(std < 1e-8, 1.0, std)
    return (arr - mean) / std
