"""Low-level image operations used throughout FFS-VA.

The original system relies on OpenCV for frame resizing before each filter
stage (the paper reports resize costs of 40/150/400 microseconds for the
SDD/SNM/T-YOLO input sizes).  This module provides the small set of
vectorized NumPy equivalents the reproduction needs: bilinear resize, block
mean-pooling, and normalization helpers.  Everything operates on grayscale
``float32`` images with values in ``[0, 1]`` shaped ``(H, W)`` or batches
shaped ``(N, H, W)``.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "resize_bilinear",
    "block_reduce_mean",
    "to_float01",
    "normalize_unit",
]


def resize_bilinear(img: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    """Resize ``img`` to ``out_hw = (H, W)`` with bilinear interpolation.

    Accepts a single image ``(H, W)`` or a batch ``(N, H, W)``; the batch
    dimension is preserved.  The implementation uses precomputed gather
    indices and weights so the whole batch is resized with four fancy-indexed
    reads and a weighted sum (no Python-level loop over pixels).
    """
    arr = np.asarray(img, dtype=np.float32)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    if arr.ndim != 3:
        raise ValueError(f"expected (H, W) or (N, H, W) image, got shape {arr.shape}")
    n, h, w = arr.shape
    oh, ow = int(out_hw[0]), int(out_hw[1])
    if oh <= 0 or ow <= 0:
        raise ValueError(f"output size must be positive, got {out_hw}")
    if (oh, ow) == (h, w):
        out = arr.copy()
        return out[0] if single else out

    # Sample positions follow the "half-pixel centers" convention so that
    # up- and down-scaling are both well behaved at the borders.
    ys = (np.arange(oh, dtype=np.float32) + 0.5) * (h / oh) - 0.5
    xs = (np.arange(ow, dtype=np.float32) + 0.5) * (w / ow) - 0.5
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).astype(np.float32)
    wx = (xs - x0).astype(np.float32)

    # Gather the four neighbours; broadcasting builds (N, oh, ow) directly.
    ia = arr[:, y0[:, None], x0[None, :]]
    ib = arr[:, y0[:, None], x1[None, :]]
    ic = arr[:, y1[:, None], x0[None, :]]
    id_ = arr[:, y1[:, None], x1[None, :]]
    wy_ = wy[None, :, None]
    wx_ = wx[None, None, :]
    top = ia * (1.0 - wx_) + ib * wx_
    bot = ic * (1.0 - wx_) + id_ * wx_
    out = top * (1.0 - wy_) + bot * wy_
    return out[0] if single else out


def block_reduce_mean(img: np.ndarray, factor: int) -> np.ndarray:
    """Downsample by an integer ``factor`` using non-overlapping block means.

    Trailing rows/columns that do not fill a complete block are dropped,
    mirroring the behaviour of area-interpolation decimation.
    """
    if factor < 1:
        raise ValueError("factor must be >= 1")
    arr = np.asarray(img, dtype=np.float32)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    n, h, w = arr.shape
    hh, ww = h // factor, w // factor
    if hh == 0 or ww == 0:
        raise ValueError(f"factor {factor} too large for image of shape {(h, w)}")
    view = arr[:, : hh * factor, : ww * factor]
    out = view.reshape(n, hh, factor, ww, factor).mean(axis=(2, 4))
    return out[0] if single else out


def to_float01(img: np.ndarray) -> np.ndarray:
    """Convert an integer image to float32 in [0, 1]; pass floats through."""
    arr = np.asarray(img)
    if np.issubdtype(arr.dtype, np.integer):
        info = np.iinfo(arr.dtype)
        return arr.astype(np.float32) / float(info.max)
    return arr.astype(np.float32, copy=False)


def normalize_unit(img: np.ndarray) -> np.ndarray:
    """Shift/scale an image (or batch) to zero mean and unit variance.

    Normalization is computed per image over its spatial axes, which is the
    standard input conditioning for the SNM classifier.  A constant image
    maps to all zeros instead of dividing by zero.
    """
    arr = np.asarray(img, dtype=np.float32)
    axes = tuple(range(arr.ndim - 2, arr.ndim))
    mean = arr.mean(axis=axes, keepdims=True)
    std = arr.std(axis=axes, keepdims=True)
    std = np.where(std < 1e-8, 1.0, std)
    return (arr - mean) / std
