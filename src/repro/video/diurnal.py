"""Day-long workloads with a diurnal activity profile.

The paper's motivation leans on daily rhythms: "the target-object
occurrence rate in a day is only 8%" for real webcams, yet Figure 5 shows
the filters behaving very differently across "different time periods,
weather, video contents, illumination".  A day-long clip is therefore not a
constant-TOR process — it is quiet at night, busy at rush hours.

:func:`make_day_script` builds such a clip by concatenating hour-long
segments whose TORs follow a configurable 24-hour profile, so experiments
can study TOR fluctuation (sliding-TOR analytics, admission churn) on one
continuous stream.
"""

from __future__ import annotations

import numpy as np

from .scene import ObjectTrack, SceneScript, make_script
from .stream import VideoStream

__all__ = ["DEFAULT_PROFILE", "make_day_script", "day_stream"]

#: Hourly TOR multipliers for a city intersection: near-dead at night, two
#: rush-hour peaks.  Scaled so a ``base_tor`` of 0.08 yields the webcam
#: statistic the paper cites for a whole day.
DEFAULT_PROFILE = np.array(
    [
        0.05, 0.03, 0.02, 0.02, 0.04, 0.15,  # 00-05
        0.60, 1.80, 2.40, 1.40, 1.00, 1.10,  # 06-11
        1.30, 1.10, 1.00, 1.10, 1.50, 2.20,  # 12-17
        2.60, 1.70, 1.00, 0.60, 0.30, 0.12,  # 18-23
    ]
)


def make_day_script(
    *,
    base_tor: float = 0.08,
    frames_per_hour: int = 600,
    profile: np.ndarray | None = None,
    kind: str = "car",
    height: int = 100,
    width: int = 150,
    seed: int = 0,
    **script_kwargs,
) -> SceneScript:
    """A 24-hour scene script whose hourly TOR follows ``profile``.

    The profile is normalized so the whole day's average TOR equals
    ``base_tor`` (clipped at 0.95 per hour).  Each hour is generated as an
    independent segment and its tracks are shifted onto the day timeline.
    """
    prof = DEFAULT_PROFILE if profile is None else np.asarray(profile, dtype=float)
    if len(prof) != 24:
        raise ValueError("profile must have 24 hourly entries")
    if frames_per_hour < 50:
        raise ValueError("frames_per_hour must be >= 50")
    hourly_tor = np.clip(base_tor * prof / prof.mean(), 0.0, 0.95)

    tracks: list[ObjectTrack] = []
    for hour, tor in enumerate(hourly_tor):
        segment = make_script(
            frames_per_hour,
            float(tor),
            kind=kind,
            height=height,
            width=width,
            seed=seed * 1009 + hour,
            **script_kwargs,
        )
        offset = hour * frames_per_hour
        for tr in segment.tracks:
            tracks.append(
                ObjectTrack(
                    kind=tr.kind,
                    t_enter=tr.t_enter + offset,
                    duration=tr.duration,
                    x0=tr.x0,
                    y0=tr.y0,
                    x1=tr.x1,
                    y1=tr.y1,
                    w=tr.w,
                    h=tr.h,
                    intensity=tr.intensity,
                    wobble=tr.wobble,
                    phase=tr.phase,
                )
            )
    return SceneScript(
        n_frames=24 * frames_per_hour,
        height=height,
        width=width,
        kind=kind,
        tracks=tuple(tracks),
        background_seed=seed,
    )


def day_stream(
    *,
    base_tor: float = 0.08,
    frames_per_hour: int = 600,
    seed: int = 0,
    stream_id: str | None = None,
    **kwargs,
) -> VideoStream:
    """A :class:`VideoStream` over a full synthetic day."""
    script = make_day_script(
        base_tor=base_tor, frames_per_hour=frames_per_hour, seed=seed, **kwargs
    )
    return VideoStream(script, stream_id=stream_id or f"day-{seed}")
