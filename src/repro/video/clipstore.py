"""Stored-video access with bounded memory: the offline-analysis substrate.

Section 5.2 notes that "for a 55 GB video file, the entire system uses less
than 8 GB CPU memory, which implies greatly increased support capacity for
long-time high-definition video files."  The property behind that claim is
streaming decode: offline analysis never materializes the whole file, it
decodes fixed-size chunks ahead of the pipeline and recycles them.

:class:`ClipStore` reproduces that access pattern over the synthetic
renderer: frames are decoded (rendered) in chunks, kept in a small LRU
cache, and evicted under a configurable memory budget.  The bookkeeping
(`peak_bytes`, `decode_count`) lets tests assert the memory bound and the
benchmark record the paper's claim structurally.
"""

from __future__ import annotations

from collections import OrderedDict

import numpy as np

from .stream import VideoStream

__all__ = ["ClipStore"]


class ClipStore:
    """Chunked, memory-bounded random access over a stream's frames."""

    def __init__(
        self,
        stream: VideoStream,
        *,
        chunk_frames: int = 64,
        memory_budget_bytes: int = 64 * 2**20,
    ):
        if chunk_frames < 1:
            raise ValueError("chunk_frames must be >= 1")
        h, w = stream.shape
        self._chunk_bytes = chunk_frames * h * w * 4  # float32 frames
        if memory_budget_bytes < self._chunk_bytes:
            raise ValueError(
                f"memory budget {memory_budget_bytes} below one chunk "
                f"({self._chunk_bytes} bytes); raise the budget or shrink chunks"
            )
        self.stream = stream
        self.chunk_frames = chunk_frames
        self.memory_budget_bytes = memory_budget_bytes
        self._cache: OrderedDict[int, np.ndarray] = OrderedDict()
        self._cached_bytes = 0
        self.peak_bytes = 0
        self.decode_count = 0  # chunks rendered
        self.hit_count = 0
        self.miss_count = 0

    def __len__(self) -> int:
        return len(self.stream)

    @property
    def total_video_bytes(self) -> int:
        """Size of the fully-decoded video (what naive loading would cost)."""
        h, w = self.stream.shape
        return len(self.stream) * h * w * 4

    # ------------------------------------------------------------------
    def _chunk_of(self, t: int) -> int:
        return t // self.chunk_frames

    def _load_chunk(self, chunk: int) -> np.ndarray:
        cached = self._cache.get(chunk)
        if cached is not None:
            self._cache.move_to_end(chunk)
            self.hit_count += 1
            return cached
        self.miss_count += 1
        start = chunk * self.chunk_frames
        stop = min(start + self.chunk_frames, len(self.stream))
        data = self.stream.pixel_batch(np.arange(start, stop))
        self.decode_count += 1
        self._cache[chunk] = data
        self._cached_bytes += data.nbytes
        while self._cached_bytes > self.memory_budget_bytes and len(self._cache) > 1:
            _, evicted = self._cache.popitem(last=False)
            self._cached_bytes -= evicted.nbytes
        self.peak_bytes = max(self.peak_bytes, self._cached_bytes)
        return data

    # ------------------------------------------------------------------
    def pixels(self, t: int) -> np.ndarray:
        """Frame ``t``'s pixels (decoded through the chunk cache)."""
        if not 0 <= t < len(self.stream):
            raise IndexError(f"frame {t} out of range [0, {len(self.stream)})")
        chunk = self._load_chunk(self._chunk_of(t))
        return chunk[t - self._chunk_of(t) * self.chunk_frames]

    def pixel_batch(self, ts) -> np.ndarray:
        """Frames ``ts`` as an ``(N, H, W)`` array (chunk-cache backed)."""
        ts = np.asarray(ts, dtype=np.int64)
        h, w = self.stream.shape
        out = np.empty((len(ts), h, w), dtype=np.float32)
        for i, t in enumerate(ts):
            out[i] = self.pixels(int(t))
        return out

    def iter_chunks(self):
        """Iterate ``(start_index, frames)`` over the whole clip in order.

        This is the offline pipeline's sequential scan: one chunk resident
        at a time regardless of clip length.
        """
        for chunk in range((len(self.stream) + self.chunk_frames - 1) // self.chunk_frames):
            data = self._load_chunk(chunk)
            yield chunk * self.chunk_frames, data

    def stats(self) -> dict:
        """Cache statistics for reporting."""
        return {
            "peak_bytes": self.peak_bytes,
            "total_video_bytes": self.total_video_bytes,
            "memory_budget_bytes": self.memory_budget_bytes,
            "decode_count": self.decode_count,
            "hit_count": self.hit_count,
            "miss_count": self.miss_count,
        }
