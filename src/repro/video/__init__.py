"""Synthetic video substrate: frames, scenes, rendering, and workloads.

This package is the reproduction's stand-in for the surveillance footage
used in the paper's evaluation (Jackson / Coral webcams).  See DESIGN.md
section 2 for why a parameterized synthetic generator preserves the
behaviour FFS-VA's filters depend on.
"""

from .clipstore import ClipStore
from .diurnal import day_stream, make_day_script
from .frame import Frame, FrameDescriptor, GroundTruthObject, SharedFramePlane
from .ops import block_reduce_mean, normalize_unit, resize_bilinear, to_float01
from .scene import ObjectTrack, SceneScript, make_script, scenes_from_counts
from .stream import VideoStream
from .synth import Renderer, RenderOptions
from .workloads import WorkloadSpec, coral, jackson, make_stream, make_streams

__all__ = [
    "Frame",
    "GroundTruthObject",
    "FrameDescriptor",
    "SharedFramePlane",
    "ObjectTrack",
    "SceneScript",
    "make_script",
    "scenes_from_counts",
    "VideoStream",
    "Renderer",
    "RenderOptions",
    "WorkloadSpec",
    "jackson",
    "coral",
    "make_stream",
    "make_streams",
    "resize_bilinear",
    "block_reduce_mean",
    "to_float01",
    "normalize_unit",
    "ClipStore",
    "day_stream",
    "make_day_script",
]
