"""Evaluation workload presets mirroring the paper's Table 1.

The paper evaluates on two public webcam recordings:

=========  ==========  =======  ======  ====
Video      Resolution  Object   FPS     TOR
=========  ==========  =======  ======  ====
Jackson    600*400     Car      30 FPS  8%
Coral      1280*720    Person   30 FPS  50%
=========  ==========  =======  ======  ====

We reproduce both as synthetic-workload *specifications*: Jackson-like
scenes contain a few large, boxy objects (vehicles crossing an
intersection); Coral-like scenes contain many small, slender objects
(people drifting past an aquarium tank) and run at a much higher base TOR.

Frames are rendered at a configurable fraction of the paper resolution —
pixel count only affects the real-compute runtime's wall-clock, never the
simulated cost model, which is calibrated against the paper's reported
per-filter speeds regardless of our render size.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from .stream import VideoStream

__all__ = ["WorkloadSpec", "jackson", "coral", "make_stream", "make_streams"]


@dataclass(frozen=True)
class WorkloadSpec:
    """Parameters defining a synthetic evaluation workload."""

    name: str
    kind: str
    paper_resolution: tuple[int, int]  # (width, height) as listed in Table 1
    render_height: int
    render_width: int
    fps: float
    base_tor: float
    max_objects: int
    intensity: float
    mean_scene_len: int

    def with_tor(self, tor: float) -> "WorkloadSpec":
        """A copy of this spec with a different target TOR."""
        return replace(self, base_tor=tor)


def jackson(render_scale: float = 0.25) -> WorkloadSpec:
    """Jackson-Hole-town-square-like workload: cars at a crossroad, TOR 8%."""
    return WorkloadSpec(
        name="jackson",
        kind="car",
        paper_resolution=(600, 400),
        render_height=max(32, int(400 * render_scale)),
        render_width=max(32, int(600 * render_scale)),
        fps=30.0,
        base_tor=0.08,
        max_objects=3,
        intensity=0.35,
        mean_scene_len=90,
    )


def coral(render_scale: float = 0.125) -> WorkloadSpec:
    """Coral-reef-aquarium-like workload: people watching fish, TOR 50%."""
    return WorkloadSpec(
        name="coral",
        kind="person",
        paper_resolution=(1280, 720),
        render_height=max(32, int(720 * render_scale)),
        render_width=max(32, int(1280 * render_scale)),
        fps=30.0,
        base_tor=0.50,
        max_objects=8,
        intensity=-0.30,
        mean_scene_len=150,
    )


def make_stream(
    spec: WorkloadSpec,
    n_frames: int,
    *,
    tor: float | None = None,
    seed: int = 0,
    stream_id: str | None = None,
) -> VideoStream:
    """Materialize one clip of ``spec`` with the requested TOR."""
    return VideoStream.synthetic(
        n_frames,
        spec.base_tor if tor is None else tor,
        kind=spec.kind,
        height=spec.render_height,
        width=spec.render_width,
        seed=seed,
        stream_id=stream_id or f"{spec.name}-{seed}",
        fps=spec.fps,
        max_objects=spec.max_objects,
        intensity=spec.intensity,
        mean_scene_len=spec.mean_scene_len,
    )


def make_streams(
    spec: WorkloadSpec,
    n_streams: int,
    n_frames: int,
    *,
    tor: float | None = None,
    seed: int = 0,
) -> list[VideoStream]:
    """Materialize ``n_streams`` non-overlapping clips (distinct seeds).

    Mirrors the paper's methodology of extracting "typical non-overlapping
    video clips from each video file to simulate multiple video streams".
    """
    return [
        make_stream(spec, n_frames, tor=tor, seed=seed + 1000 * i, stream_id=f"{spec.name}-{i}")
        for i in range(n_streams)
    ]
