"""Scene scripting: object tracks, scene bursts, and TOR targeting.

The FFS-VA evaluation is driven by the *target object ratio* (TOR): the
fraction of frames in a clip that contain at least one target object
(Equation 1 in the paper).  Real surveillance footage alternates between
long idle stretches and bursts of activity ("scenes").  A
:class:`SceneScript` models a clip as a set of :class:`ObjectTrack` objects
— each a target object that enters the view, moves along a linear path, and
leaves — and :func:`make_script` synthesizes scripts whose empirical TOR
matches a requested value.

The renderer (:mod:`repro.video.synth`) turns a script into pixels; the
analytic helpers here (:meth:`SceneScript.gt_counts`,
:meth:`SceneScript.scenes`) expose ground truth without rendering, which the
evaluation harness uses heavily.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

from .frame import GroundTruthObject

__all__ = ["ObjectTrack", "SceneScript", "make_script", "scenes_from_counts"]

#: An object must have at least this fraction of its box inside the frame to
#: count as "present" for TOR / ground-truth purposes.  Objects below this
#: are the paper's "partial appearances".
PRESENCE_VISIBILITY = 0.25


@dataclass(frozen=True)
class ObjectTrack:
    """A single object moving through the camera view on a linear path.

    The object's center travels from ``(x0, y0)`` at frame ``t_enter`` to
    ``(x1, y1)`` at frame ``t_enter + duration``.  Endpoints typically lie
    slightly outside the frame so the object slides in and out, producing
    partial appearances at the edges of its lifetime.
    """

    kind: str
    t_enter: int
    duration: int
    x0: float
    y0: float
    x1: float
    y1: float
    w: float
    h: float
    intensity: float  # pixel offset added over the background, may be negative
    wobble: float = 0.0  # amplitude of sinusoidal cross-path wobble, pixels
    phase: float = 0.0

    def position(self, t: int) -> tuple[float, float] | None:
        """Center position at frame ``t``, or None if the track is inactive."""
        if t < self.t_enter or t > self.t_enter + self.duration:
            return None
        if self.duration == 0:
            frac = 0.0
        else:
            frac = (t - self.t_enter) / self.duration
        cx = self.x0 + (self.x1 - self.x0) * frac
        cy = self.y0 + (self.y1 - self.y0) * frac
        if self.wobble:
            # Wobble perpendicular to the motion direction.
            dx, dy = self.x1 - self.x0, self.y1 - self.y0
            norm = math.hypot(dx, dy) or 1.0
            off = self.wobble * math.sin(2.0 * math.pi * frac * 3.0 + self.phase)
            cx += -dy / norm * off
            cy += dx / norm * off
        return cx, cy

    def annotation(self, t: int, height: int, width: int) -> GroundTruthObject | None:
        """Ground-truth annotation at frame ``t`` (None when inactive/out)."""
        pos = self.position(t)
        if pos is None:
            return None
        cx, cy = pos
        x0, y0 = cx - self.w / 2.0, cy - self.h / 2.0
        x1, y1 = cx + self.w / 2.0, cy + self.h / 2.0
        vis_w = max(0.0, min(float(width), x1) - max(0.0, x0))
        vis_h = max(0.0, min(float(height), y1) - max(0.0, y0))
        visibility = (vis_w * vis_h) / (self.w * self.h) if self.w * self.h > 0 else 0.0
        if visibility <= 0.0:
            return None
        return GroundTruthObject(self.kind, cx, cy, self.w, self.h, visibility)


@dataclass
class SceneScript:
    """Everything needed to deterministically render and annotate a clip."""

    n_frames: int
    height: int
    width: int
    kind: str
    tracks: tuple[ObjectTrack, ...] = field(default_factory=tuple)
    background_seed: int = 0

    def annotations(self, t: int) -> tuple[GroundTruthObject, ...]:
        """All active ground-truth objects at frame ``t``."""
        anns = []
        for track in self.tracks:
            ann = track.annotation(t, self.height, self.width)
            if ann is not None:
                anns.append(ann)
        return tuple(anns)

    def gt_counts(self, min_visibility: float = PRESENCE_VISIBILITY) -> np.ndarray:
        """Vector of per-frame target-object counts (no rendering).

        Computed fully vectorized over tracks so 10^5-frame scripts remain
        cheap to analyze.
        """
        counts = np.zeros(self.n_frames, dtype=np.int64)
        for tr in self.tracks:
            t0 = max(0, tr.t_enter)
            t1 = min(self.n_frames - 1, tr.t_enter + tr.duration)
            if t1 < t0:
                continue
            ts = np.arange(t0, t1 + 1)
            frac = (ts - tr.t_enter) / max(tr.duration, 1)
            cx = tr.x0 + (tr.x1 - tr.x0) * frac
            cy = tr.y0 + (tr.y1 - tr.y0) * frac
            if tr.wobble:
                dx, dy = tr.x1 - tr.x0, tr.y1 - tr.y0
                norm = math.hypot(dx, dy) or 1.0
                off = tr.wobble * np.sin(2.0 * np.pi * frac * 3.0 + tr.phase)
                cx = cx + (-dy / norm) * off
                cy = cy + (dx / norm) * off
            x0, x1 = cx - tr.w / 2.0, cx + tr.w / 2.0
            y0, y1 = cy - tr.h / 2.0, cy + tr.h / 2.0
            vis_w = np.clip(np.minimum(self.width, x1) - np.maximum(0.0, x0), 0.0, None)
            vis_h = np.clip(np.minimum(self.height, y1) - np.maximum(0.0, y0), 0.0, None)
            vis = (vis_w * vis_h) / (tr.w * tr.h)
            counts[t0 : t1 + 1] += (vis >= min_visibility).astype(np.int64)
        return counts

    def tor(self, min_visibility: float = PRESENCE_VISIBILITY) -> float:
        """Empirical target-object ratio of this script (paper Eq. 1)."""
        if self.n_frames == 0:
            return 0.0
        return float((self.gt_counts(min_visibility) > 0).mean())

    def scenes(self, min_visibility: float = PRESENCE_VISIBILITY) -> list[tuple[int, int]]:
        """Maximal runs of consecutive target frames as ``(start, stop)``.

        ``stop`` is exclusive.  Scene-level accuracy (paper Section 3.3) is
        defined over these runs: a scene counts as detected if at least one
        of its frames survives the cascade.
        """
        return scenes_from_counts(self.gt_counts(min_visibility))


def scenes_from_counts(counts: np.ndarray) -> list[tuple[int, int]]:
    """Segment a per-frame count vector into maximal positive runs."""
    present = np.asarray(counts) > 0
    if present.size == 0:
        return []
    padded = np.concatenate(([False], present, [False]))
    diff = np.diff(padded.astype(np.int8))
    starts = np.flatnonzero(diff == 1)
    stops = np.flatnonzero(diff == -1)
    return list(zip(starts.tolist(), stops.tolist()))


def _spawn_burst(
    rng: np.random.Generator,
    *,
    kind: str,
    start: int,
    length: int,
    height: int,
    width: int,
    max_objects: int,
    obj_w: float,
    obj_h: float,
    intensity: float,
    speed_frames: tuple[int, int],
    overlap: float = 1.0,
) -> list[ObjectTrack]:
    """Create the tracks of one activity burst covering ``[start, start+length)``.

    Individual crossings are chained until the burst window is covered, with
    1..max_objects concurrent objects at the start of each crossing.  An
    ``overlap`` < 1 advances the cursor by only that fraction of a crossing,
    producing overlapping crossings with no idle frames in between — needed
    to reach TOR values near 1.0.
    """
    tracks: list[ObjectTrack] = []
    # Lead the first crossing in early enough that its entry ramp (object
    # sliding into view) completes near the burst window start, so bursts are
    # covered from their first frame.
    t = start - speed_frames[0] // 3
    while t < start + length:
        n_obj = int(rng.integers(1, max_objects + 1))
        crossing = int(rng.integers(speed_frames[0], speed_frames[1] + 1))
        crossing = min(crossing, start + length - t)
        crossing = max(crossing, 8)
        entry_slack = max(1, int(crossing * 0.15))
        # Person bursts form tight groups half the time: small objects moving
        # close together (a crowd), which coarse-grid detectors merge into a
        # single detection — the paper's dense-small-target error mode.
        grouped = kind == "person" and rng.random() < 0.5
        group_y = float(rng.uniform(0.3, 0.7) * height)
        group_dir = rng.random() < 0.5
        for _ in range(n_obj):
            horizontal = rng.random() < 0.7 or grouped
            jitter = float(rng.uniform(-0.15, 0.15))
            inten = intensity * float(rng.uniform(0.8, 1.2)) * (1 if rng.random() < 0.85 else -1)
            if horizontal:
                if grouped:
                    y = group_y + float(rng.uniform(-0.08, 0.08) * height)
                else:
                    y = float(rng.uniform(0.25, 0.75) * height)
                left_to_right = group_dir if grouped else rng.random() < 0.5
                x0 = -obj_w if left_to_right else width + obj_w
                x1 = width + obj_w if left_to_right else -obj_w
                tracks.append(
                    ObjectTrack(
                        kind=kind,
                        t_enter=t + int(rng.integers(0, entry_slack)),
                        duration=crossing,
                        x0=x0,
                        y0=y * (1 + jitter),
                        x1=x1,
                        y1=y * (1 - jitter),
                        w=obj_w,
                        h=obj_h,
                        intensity=inten,
                        wobble=float(rng.uniform(0.0, 1.5)),
                        phase=float(rng.uniform(0, 2 * math.pi)),
                    )
                )
            else:
                x = float(rng.uniform(0.25, 0.75) * width)
                top_to_bottom = rng.random() < 0.5
                y0 = -obj_h if top_to_bottom else height + obj_h
                y1 = height + obj_h if top_to_bottom else -obj_h
                tracks.append(
                    ObjectTrack(
                        kind=kind,
                        t_enter=t + int(rng.integers(0, entry_slack)),
                        duration=crossing,
                        x0=x * (1 + jitter),
                        y0=y0,
                        x1=x * (1 - jitter),
                        y1=y1,
                        w=obj_w,
                        h=obj_h,
                        intensity=inten,
                        wobble=float(rng.uniform(0.0, 1.5)),
                        phase=float(rng.uniform(0, 2 * math.pi)),
                    )
                )
        t += max(1, int(crossing * overlap))
    return tracks


def make_script(
    n_frames: int,
    tor: float,
    *,
    kind: str = "car",
    height: int = 100,
    width: int = 150,
    seed: int = 0,
    max_objects: int = 3,
    obj_size: tuple[float, float] | None = None,
    intensity: float = 0.35,
    mean_scene_len: int = 90,
    speed_frames: tuple[int, int] = (40, 120),
) -> SceneScript:
    """Synthesize a scene script with empirical TOR close to ``tor``.

    The generator first lays out a busy/idle mask whose busy fraction equals
    the requested TOR (busy runs have geometric-ish lengths around
    ``mean_scene_len``), then fills each busy run with a burst of object
    crossings.  The result is deterministic in ``seed``.

    Parameters mirror the knobs the paper's evaluation varies: the clip
    length, the TOR, and the object kind/intensity (cars are large and
    sparse; persons are small and may be dense).
    """
    if not 0.0 <= tor <= 1.0:
        raise ValueError(f"tor must be in [0, 1], got {tor}")
    if n_frames <= 0:
        raise ValueError("n_frames must be positive")
    if obj_size is None:
        obj_size = (width * 0.22, height * 0.28) if kind == "car" else (width * 0.07, height * 0.22)
    obj_w, obj_h = obj_size

    def generate(tor_eff: float, overlap: float, sub_seed: int) -> SceneScript:
        rng = np.random.default_rng((seed, sub_seed))
        tracks: list[ObjectTrack] = []
        if tor_eff > 0.0:
            busy_target = tor_eff * n_frames
            busy_done = 0.0
            cursor = 0
            # Expected idle gap that yields the right duty cycle.
            mean_gap = mean_scene_len * max(0.0, 1.0 - tor_eff) / max(tor_eff, 1e-6)
            first = True
            while busy_done < busy_target and cursor < n_frames:
                if tor_eff < 1.0:
                    gap = rng.exponential(mean_gap) * (0.5 if first else 1.0)
                    cursor += int(gap)
                    first = False
                if cursor >= n_frames:
                    break
                burst = int(rng.uniform(0.5, 1.5) * mean_scene_len)
                burst = min(burst, n_frames - cursor)
                burst = min(burst, int(math.ceil(busy_target - busy_done)) + 16)
                if burst <= 0:
                    break
                tracks.extend(
                    _spawn_burst(
                        rng,
                        kind=kind,
                        start=cursor,
                        length=burst,
                        height=height,
                        width=width,
                        max_objects=max_objects,
                        obj_w=obj_w,
                        obj_h=obj_h,
                        intensity=intensity,
                        speed_frames=speed_frames,
                        overlap=overlap,
                    )
                )
                cursor += burst
                busy_done += burst
        return SceneScript(
            n_frames=n_frames,
            height=height,
            width=width,
            kind=kind,
            tracks=tuple(tracks),
            background_seed=seed,
        )

    # Objects are only "present" (visibility >= threshold) for part of each
    # crossing, so the busy-mask duty cycle underestimates the achieved TOR.
    # A short calibration loop corrects the effective duty-cycle target; at
    # high TOR it additionally overlaps consecutive crossings so no idle
    # frames remain inside bursts.
    tor_eff = tor
    best: SceneScript | None = None
    best_err = float("inf")
    for attempt in range(8):
        # Overlap ramps in smoothly as the duty cycle saturates, avoiding a
        # discontinuity the proportional controller would oscillate around.
        overlap = float(np.clip(1.0 - (tor_eff - 0.7) * 2.0, 0.35, 1.0))
        script = generate(min(tor_eff, 1.0), overlap, attempt)
        measured = script.tor()
        err = abs(measured - tor)
        if err < best_err:
            best, best_err = script, err
        if err <= max(0.015, 0.04 * tor):
            break
        # Damped proportional correction of the duty-cycle target.
        scale = (tor / max(measured, 1e-3)) ** 0.7
        tor_eff = min(tor_eff * scale, 1.0)
    assert best is not None
    return best
