"""Synthetic fixed-viewpoint surveillance video renderer.

This is the reproduction's stand-in for the Jackson Hole / Coral Reef
webcams used by the paper.  A :class:`Renderer` deterministically turns a
:class:`~repro.video.scene.SceneScript` into grayscale frames consisting of:

* a static textured **background** (the fixed camera viewpoint),
* a slow multiplicative **lighting drift** (time-of-day / weather effects,
  which the paper notes inflate SDD's difference threshold),
* per-frame **sensor noise**, and
* the script's moving **objects**, rendered as soft-edged elliptical patches
  with an interior texture so they have non-trivial learned features.

Rendering is random-access: ``render(t)`` depends only on the script, the
seed, and ``t``, so streams can be replayed, sliced, and processed in
vectorized batches without storing pixels.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import ndimage

from .frame import Frame
from .scene import SceneScript

__all__ = ["RenderOptions", "Renderer"]


@dataclass(frozen=True)
class RenderOptions:
    """Tunable photometric properties of the synthetic camera."""

    noise_sigma: float = 0.012
    lighting_amplitude: float = 0.06
    lighting_period: float = 3000.0  # frames per full day-night style cycle
    background_smoothness: float = 4.0
    background_low: float = 0.30
    background_high: float = 0.60


class Renderer:
    """Deterministic renderer for one scene script."""

    def __init__(self, script: SceneScript, options: RenderOptions | None = None):
        self.script = script
        self.options = options or RenderOptions()
        self._background = self._make_background()

    # ------------------------------------------------------------------
    # background
    # ------------------------------------------------------------------
    def _make_background(self) -> np.ndarray:
        """Static textured background derived from the script's seed."""
        opt = self.options
        rng = np.random.default_rng(self.script.background_seed)
        h, w = self.script.height, self.script.width
        field = rng.random((h, w)).astype(np.float32)
        field = ndimage.gaussian_filter(field, sigma=opt.background_smoothness)
        lo, hi = field.min(), field.max()
        if hi - lo < 1e-9:
            field = np.full((h, w), 0.5, dtype=np.float32)
        else:
            field = (field - lo) / (hi - lo)
        # A horizontal luminance gradient mimics road/sky structure.
        grad = np.linspace(0.0, 1.0, h, dtype=np.float32)[:, None]
        field = 0.8 * field + 0.2 * grad
        return (opt.background_low + field * (opt.background_high - opt.background_low)).astype(
            np.float32
        )

    @property
    def background(self) -> np.ndarray:
        """The clean background image (a copy; callers may mutate)."""
        return self._background.copy()

    def reference_image(self, n_samples: int = 32) -> np.ndarray:
        """Average of ``n_samples`` rendered background-only frames.

        This follows the paper's SDD setup: "the reference image is usually
        computed as the average of dozens of background frames".  Averaging
        rendered frames (not the clean background) bakes typical lighting and
        noise levels into the reference.
        """
        acc = np.zeros_like(self._background, dtype=np.float64)
        for i in range(n_samples):
            acc += self._compose(t=i, draw_objects=False)
        return (acc / n_samples).astype(np.float32)

    # ------------------------------------------------------------------
    # per-frame composition
    # ------------------------------------------------------------------
    def _lighting(self, t: int) -> float:
        opt = self.options
        return 1.0 + opt.lighting_amplitude * np.sin(2.0 * np.pi * t / opt.lighting_period)

    def _compose(self, t: int, draw_objects: bool = True) -> np.ndarray:
        opt = self.options
        h, w = self.script.height, self.script.width
        img = self._background * np.float32(self._lighting(t))
        if draw_objects:
            for track in self.script.tracks:
                pos = track.position(t)
                if pos is None:
                    continue
                self._draw_object(img, pos, track)
        rng = np.random.default_rng((self.script.background_seed, 0x5EED, t))
        img = img + rng.normal(0.0, opt.noise_sigma, size=(h, w)).astype(np.float32)
        np.clip(img, 0.0, 1.0, out=img)
        return img

    def _draw_object(self, img: np.ndarray, pos: tuple[float, float], track) -> None:
        """Composite one object: soft elliptical patch plus interior texture."""
        h, w = img.shape
        cx, cy = pos
        ox0 = int(np.floor(cx - track.w / 2.0))
        oy0 = int(np.floor(cy - track.h / 2.0))
        ox1 = int(np.ceil(cx + track.w / 2.0))
        oy1 = int(np.ceil(cy + track.h / 2.0))
        x0, y0 = max(0, ox0), max(0, oy0)
        x1, y1 = min(w, ox1), min(h, oy1)
        if x1 <= x0 or y1 <= y0:
            return
        ys = np.arange(y0, y1, dtype=np.float32)[:, None]
        xs = np.arange(x0, x1, dtype=np.float32)[None, :]
        # Normalized distance from center; super-ellipse gives a boxy car
        # silhouette, a plain ellipse a person silhouette.
        nx = (xs - cx) / (track.w / 2.0 + 1e-6)
        ny = (ys - cy) / (track.h / 2.0 + 1e-6)
        power = 4.0 if track.kind == "car" else 2.0
        dist = np.abs(nx) ** power + np.abs(ny) ** power
        mask = np.clip(1.2 - dist, 0.0, 1.0)
        mask = np.minimum(mask, 1.0)
        # Interior texture: deterministic stripes tied to the track geometry,
        # so SNM has something richer than a flat blob to learn.
        texture = 0.12 * np.sin(0.8 * (xs - cx) + 1.3 * (ys - cy) + track.phase)
        patch = track.intensity * (0.85 + texture)
        img[y0:y1, x0:x1] += (mask * patch).astype(np.float32)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def render(self, t: int, stream_id: str = "stream-0", fps: float = 30.0) -> Frame:
        """Render frame ``t`` with its ground-truth annotations."""
        if not 0 <= t < self.script.n_frames:
            raise IndexError(f"frame {t} out of range [0, {self.script.n_frames})")
        pixels = self._compose(t)
        return Frame(
            stream_id=stream_id,
            index=t,
            timestamp=t / fps,
            pixels=pixels,
            annotations=self.script.annotations(t),
        )

    def render_pixels(self, t: int) -> np.ndarray:
        """Render only the pixel array of frame ``t`` (no Frame wrapper)."""
        if not 0 <= t < self.script.n_frames:
            raise IndexError(f"frame {t} out of range [0, {self.script.n_frames})")
        return self._compose(t)

    def render_batch(self, ts: np.ndarray | list[int]) -> np.ndarray:
        """Render several frames into a single ``(N, H, W)`` array."""
        ts = np.asarray(ts, dtype=np.int64)
        out = np.empty((len(ts), self.script.height, self.script.width), dtype=np.float32)
        for i, t in enumerate(ts):
            out[i] = self._compose(int(t))
        return out
