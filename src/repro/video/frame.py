"""Frame and ground-truth annotation types.

A :class:`Frame` is the unit of work flowing through the FFS-VA pipeline: a
grayscale pixel array plus bookkeeping (stream id, frame index, capture
timestamp).  Synthetic frames additionally carry ground-truth annotations
(:class:`GroundTruthObject`), which the evaluation harness uses to compute
TOR, accuracy, and error statistics — they are *never* consulted by the
filters themselves.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GroundTruthObject", "Frame"]


@dataclass(frozen=True)
class GroundTruthObject:
    """One target object instance present in a frame.

    Attributes
    ----------
    kind:
        Object class, e.g. ``"car"`` or ``"person"``.
    cx, cy:
        Center of the object's full bounding box in pixels.  May lie outside
        the frame when the object is entering or leaving the view.
    w, h:
        Full bounding-box width/height in pixels.
    visibility:
        Fraction of the bounding box that is inside the frame, in ``[0, 1]``.
        The paper's "partial appearance" false-negative analysis (Section
        5.3.3) keys off objects with low visibility.
    """

    kind: str
    cx: float
    cy: float
    w: float
    h: float
    visibility: float = 1.0

    def bbox(self) -> tuple[float, float, float, float]:
        """Return the full box as ``(x0, y0, x1, y1)``."""
        return (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )

    def clipped_bbox(self, height: int, width: int) -> tuple[float, float, float, float]:
        """Return the box intersected with the frame bounds."""
        x0, y0, x1, y1 = self.bbox()
        return (
            max(0.0, x0),
            max(0.0, y0),
            min(float(width), x1),
            min(float(height), y1),
        )


@dataclass
class Frame:
    """A single video frame with optional ground-truth annotations."""

    stream_id: str
    index: int
    timestamp: float
    pixels: np.ndarray
    annotations: tuple[GroundTruthObject, ...] = field(default_factory=tuple)

    @property
    def shape(self) -> tuple[int, int]:
        """Frame resolution as ``(height, width)``."""
        return (int(self.pixels.shape[0]), int(self.pixels.shape[1]))

    def count(self, kind: str, min_visibility: float = 0.0) -> int:
        """Number of ground-truth objects of ``kind`` with enough visibility."""
        return sum(
            1
            for a in self.annotations
            if a.kind == kind and a.visibility >= min_visibility
        )

    def has_target(self, kind: str, min_visibility: float = 0.25) -> bool:
        """True if at least one sufficiently visible target object is present."""
        return self.count(kind, min_visibility) > 0
