"""Frame and ground-truth annotation types.

A :class:`Frame` is the unit of work flowing through the FFS-VA pipeline: a
grayscale pixel array plus bookkeeping (stream id, frame index, capture
timestamp).  Synthetic frames additionally carry ground-truth annotations
(:class:`GroundTruthObject`), which the evaluation harness uses to compute
TOR, accuracy, and error statistics — they are *never* consulted by the
filters themselves.
"""

from __future__ import annotations

import json
import socket
import struct
import threading
from collections import deque
from dataclasses import dataclass, field
from multiprocessing import shared_memory

import numpy as np

__all__ = [
    "GroundTruthObject",
    "Frame",
    "FrameDescriptor",
    "SharedFramePlane",
    "DescriptorChannel",
]


@dataclass(frozen=True)
class GroundTruthObject:
    """One target object instance present in a frame.

    Attributes
    ----------
    kind:
        Object class, e.g. ``"car"`` or ``"person"``.
    cx, cy:
        Center of the object's full bounding box in pixels.  May lie outside
        the frame when the object is entering or leaving the view.
    w, h:
        Full bounding-box width/height in pixels.
    visibility:
        Fraction of the bounding box that is inside the frame, in ``[0, 1]``.
        The paper's "partial appearance" false-negative analysis (Section
        5.3.3) keys off objects with low visibility.
    """

    kind: str
    cx: float
    cy: float
    w: float
    h: float
    visibility: float = 1.0

    def bbox(self) -> tuple[float, float, float, float]:
        """Return the full box as ``(x0, y0, x1, y1)``."""
        return (
            self.cx - self.w / 2.0,
            self.cy - self.h / 2.0,
            self.cx + self.w / 2.0,
            self.cy + self.h / 2.0,
        )

    def clipped_bbox(self, height: int, width: int) -> tuple[float, float, float, float]:
        """Return the box intersected with the frame bounds."""
        x0, y0, x1, y1 = self.bbox()
        return (
            max(0.0, x0),
            max(0.0, y0),
            min(float(width), x1),
            min(float(height), y1),
        )


@dataclass
class Frame:
    """A single video frame with optional ground-truth annotations."""

    stream_id: str
    index: int
    timestamp: float
    pixels: np.ndarray
    annotations: tuple[GroundTruthObject, ...] = field(default_factory=tuple)

    @property
    def shape(self) -> tuple[int, int]:
        """Frame resolution as ``(height, width)``."""
        return (int(self.pixels.shape[0]), int(self.pixels.shape[1]))

    def count(self, kind: str, min_visibility: float = 0.0) -> int:
        """Number of ground-truth objects of ``kind`` with enough visibility."""
        return sum(
            1
            for a in self.annotations
            if a.kind == kind and a.visibility >= min_visibility
        )

    def has_target(self, kind: str, min_visibility: float = 0.25) -> bool:
        """True if at least one sufficiently visible target object is present."""
        return self.count(kind, min_visibility) > 0


# ---------------------------------------------------------------------------
# Shared-memory frame plane
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FrameDescriptor:
    """Zero-copy handle to pixel data living in a shared-memory slab.

    This is what actually crosses a process boundary when a stage runs on
    the process-pool executor: a few bytes of metadata instead of the pixel
    payload.  The worker materializes a NumPy view with
    :meth:`SharedFramePlane.view`.

    Attributes
    ----------
    slab:
        OS name of the ``multiprocessing.shared_memory`` segment.
    slot:
        Ring-allocator slot index (identifies the reservation to release).
    offset:
        Byte offset of the payload within the slab.
    shape, dtype:
        NumPy reconstruction metadata; ``dtype`` is the dtype's string name
        so the descriptor pickles as plain data.
    """

    slab: str
    slot: int
    offset: int
    shape: tuple[int, ...]
    dtype: str

    @property
    def nbytes(self) -> int:
        return int(np.prod(self.shape, dtype=np.int64)) * np.dtype(self.dtype).itemsize


class SharedFramePlane:
    """A ring of fixed-size shared-memory slots for frame batches.

    Ownership rules (see DESIGN.md §9):

    * The **parent** process creates the plane, owns slot lifecycle
      (:meth:`acquire` / :meth:`release`), and is the only side that ever
      calls :meth:`unlink`.  A slot is acquired before dispatching a batch
      and released only after the result (or the crash requeue) for that
      batch has been resolved — workers never free slots.
    * **Workers** attach by slab name and only ever map read-only-by-
      convention views; they must not resize, release, or unlink.

    ``slot_bytes`` bounds the largest single batch payload; :meth:`acquire`
    blocks (FIFO over a condition variable) when every slot is in flight,
    which back-pressures dispatch exactly like a bounded queue.
    """

    def __init__(self, slots: int, slot_bytes: int, *, name: str | None = None):
        if slots < 1 or slot_bytes < 1:
            raise ValueError("slots and slot_bytes must be >= 1")
        self.slots = int(slots)
        self.slot_bytes = int(slot_bytes)
        self._shm = shared_memory.SharedMemory(
            create=True, size=self.slots * self.slot_bytes, name=name
        )
        self._free: deque[int] = deque(range(self.slots))
        self._cond = threading.Condition()
        self._closed = False

    # -- parent side ----------------------------------------------------
    @property
    def name(self) -> str:
        return self._shm.name

    def acquire(self, nbytes: int, timeout: float | None = None) -> int:
        """Reserve a slot for a payload of ``nbytes``; blocks when full.

        Returns the slot index.  Raises ``ValueError`` for payloads larger
        than a slot and ``TimeoutError`` if no slot frees up in time.
        """
        if nbytes > self.slot_bytes:
            raise ValueError(
                f"payload of {nbytes} bytes exceeds slot size {self.slot_bytes}"
            )
        with self._cond:
            while not self._free:
                if self._closed:
                    raise RuntimeError("frame plane is closed")
                if not self._cond.wait(timeout):
                    raise TimeoutError("timed out waiting for a free frame-plane slot")
            return self._free.popleft()

    def release(self, slot: int) -> None:
        """Return a slot to the ring once its batch result is resolved."""
        if not 0 <= slot < self.slots:
            raise ValueError(f"slot {slot} out of range")
        with self._cond:
            self._free.append(slot)
            self._cond.notify()

    def write(self, slot: int, array: np.ndarray) -> FrameDescriptor:
        """Copy ``array`` into ``slot`` and return its descriptor."""
        array = np.ascontiguousarray(array)
        offset = slot * self.slot_bytes
        if array.nbytes > self.slot_bytes:
            raise ValueError("array does not fit in one slot")
        dst = np.ndarray(array.shape, array.dtype, buffer=self._shm.buf, offset=offset)
        np.copyto(dst, array)
        return FrameDescriptor(
            slab=self._shm.name,
            slot=slot,
            offset=offset,
            shape=tuple(array.shape),
            dtype=array.dtype.name,
        )

    def view(self, desc: FrameDescriptor) -> np.ndarray:
        """Zero-copy NumPy view of a descriptor's payload in this slab."""
        if desc.slab != self._shm.name:
            raise ValueError(f"descriptor is for slab {desc.slab!r}, not {self.name!r}")
        return np.ndarray(
            desc.shape, np.dtype(desc.dtype), buffer=self._shm.buf, offset=desc.offset
        )

    def close(self) -> None:
        """Unmap this process's view (wakes any blocked acquirers)."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()
        self._shm.close()

    def unlink(self) -> None:
        """Destroy the segment; parent-only, after every worker detached."""
        self._shm.unlink()

    # -- worker side ----------------------------------------------------
    @classmethod
    def attach(cls, name: str) -> "_AttachedPlane":
        """Worker-side handle: maps the slab for :meth:`view` only."""
        return _AttachedPlane(name)


class DescriptorChannel:
    """Socket control channel for shipping frame descriptors across
    instance boundaries.

    The cluster supervisor and each pipeline-instance process hold one end
    of a connected TCP socket; the payload pixels themselves stay in a
    :class:`SharedFramePlane` slab, so what crosses the wire during a
    stream handoff is a :class:`FrameDescriptor` (slab name + geometry),
    never re-encoded frames.

    Wire format: a 4-byte big-endian length prefix followed by one JSON
    object.  ``send`` is lock-protected so control threads can interleave;
    ``recv`` returns ``None`` on clean EOF and raises ``TimeoutError`` when
    the peer stays silent past ``timeout``.
    """

    _HDR = struct.Struct(">I")

    def __init__(self, sock: socket.socket):
        self._sock = sock
        self._send_lock = threading.Lock()
        self._buf = b""

    def send(self, msg: dict) -> None:
        payload = json.dumps(msg, separators=(",", ":")).encode()
        with self._send_lock:
            self._sock.sendall(self._HDR.pack(len(payload)) + payload)

    def recv(self, timeout: float | None = None) -> dict | None:
        self._sock.settimeout(timeout)
        try:
            hdr = self._read_exact(self._HDR.size)
            if hdr is None:
                return None
            (length,) = self._HDR.unpack(hdr)
            payload = self._read_exact(length)
            if payload is None:
                raise ConnectionError("peer closed mid-message")
            return json.loads(payload)
        except socket.timeout as exc:
            raise TimeoutError("descriptor channel recv timed out") from exc

    def _read_exact(self, n: int) -> bytes | None:
        while len(self._buf) < n:
            chunk = self._sock.recv(65536)
            if not chunk:
                return None
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def close(self) -> None:
        try:
            self._sock.shutdown(socket.SHUT_RDWR)
        except OSError:
            pass
        self._sock.close()

    # -- descriptor (de)serialization -----------------------------------
    @staticmethod
    def pack_descriptor(desc: FrameDescriptor) -> dict:
        """JSON-safe dict form of a descriptor for :meth:`send`."""
        return {
            "slab": desc.slab,
            "slot": desc.slot,
            "offset": desc.offset,
            "shape": list(desc.shape),
            "dtype": desc.dtype,
        }

    @staticmethod
    def unpack_descriptor(d: dict) -> FrameDescriptor:
        return FrameDescriptor(
            slab=d["slab"],
            slot=int(d["slot"]),
            offset=int(d["offset"]),
            shape=tuple(int(x) for x in d["shape"]),
            dtype=d["dtype"],
        )


class _AttachedPlane:
    """Worker-process view of a :class:`SharedFramePlane` slab.

    Never allocates, releases, or unlinks — the parent owns the ring.
    Attaches with ``track=False`` where available (3.13+); on older builds
    the plain attach re-registers the name with the resource tracker, which
    is shared with the parent under every multiprocessing start method, so
    the set-typed cache dedupes it and the parent's :meth:`unlink` clears
    the single entry.
    """

    def __init__(self, name: str):
        try:
            self._shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:  # pragma: no cover - Python < 3.13 fallback
            self._shm = shared_memory.SharedMemory(name=name)

    @property
    def name(self) -> str:
        return self._shm.name

    def view(self, desc: FrameDescriptor) -> np.ndarray:
        if desc.slab != self._shm.name:
            raise ValueError(f"descriptor is for slab {desc.slab!r}, not {self.name!r}")
        return np.ndarray(
            desc.shape, np.dtype(desc.dtype), buffer=self._shm.buf, offset=desc.offset
        )

    def close(self) -> None:
        self._shm.close()
