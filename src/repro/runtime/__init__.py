"""Threaded FFS-VA runtime with real model inference."""

from .engine import FrameOutcome, ThreadedPipeline
from .procpool import PoolStats, ProcPool

__all__ = ["ThreadedPipeline", "FrameOutcome", "ProcPool", "PoolStats"]
