"""Threaded FFS-VA runtime with real model inference."""

from .engine import FrameOutcome, ThreadedPipeline

__all__ = ["ThreadedPipeline", "FrameOutcome"]
