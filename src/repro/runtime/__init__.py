"""Threaded FFS-VA runtime with real model inference."""

from .cluster import ClusterResult, ClusterSupervisor
from .engine import FrameOutcome, ThreadedPipeline
from .procpool import PoolStats, ProcPool
from .router import InstanceReport, StreamRouter

__all__ = [
    "ThreadedPipeline",
    "FrameOutcome",
    "ProcPool",
    "PoolStats",
    "StreamRouter",
    "InstanceReport",
    "ClusterSupervisor",
    "ClusterResult",
]
