"""Cluster serving plane: N pipeline-instance processes behind one router.

:class:`ClusterSupervisor` is the actuation half of the cluster design
(the decision half is :mod:`repro.runtime.router` over the pure policy in
:mod:`repro.core.admission`):

* it **forks** ``config.cluster_instances`` processes *before creating any
  thread of its own* (fork-with-threads is unsound), each running
  :func:`_instance_main` — a full :class:`~repro.runtime.engine.ThreadedPipeline`
  over that instance's round-robin share of the streams, with
  ``cluster_reserve_slots`` spare slots so a stream can be re-forwarded
  *to* it mid-run;
* each instance keeps a :class:`~repro.video.frame.DescriptorChannel`
  control socket back to the supervisor and serves its own ``/metrics``;
* every ``router_epoch`` seconds the supervisor polls all instances
  (admission state, EWMA headroom, live per-stream costs) and lets the
  :class:`~repro.runtime.router.StreamRouter` pick at most one
  shed/re-forward move, which is actuated as::

      detach(src)  ->  frame boundary k
      attach(dst, stream, start=k)   # leading frames via shared memory
      release(src)                   # handoff plane unlinked

  The shedding instance renders up to ``cluster_handoff_window`` frames
  after the boundary into a :class:`~repro.video.frame.SharedFramePlane`
  and ships one descriptor over the channel, so the receiving instance
  starts without re-rendering the frames that were in flight — frames
  cross the instance boundary without re-encoding.

**Frame conservation across a handoff** (the invariant the cluster tests
assert): ``detach`` returns ``k = start + offered``, the first index never
offered on the source; the target attaches at exactly ``k``.  The source's
``frames_offered`` drops by its unoffered remainder and the target's rises
by the same amount, so per instance ``frames_offered == len(outcomes)``
holds at the end and globally every frame has exactly one outcome.

The supervisor also aggregates every instance's ``/metrics`` into one
labeled exposition via :class:`~repro.obs.export.MetricsAggregator`.
"""

from __future__ import annotations

import multiprocessing
import os
import socket
import threading
import time
from multiprocessing import resource_tracker
from dataclasses import dataclass, field

import numpy as np

from ..core.admission import estimate_headroom
from ..core.config import FFSVAConfig
from ..core.metrics import RunMetrics
from ..core.pipeline import StageGraph
from ..models.zoo import ModelZoo
from ..obs import Telemetry
from ..obs.export import ClusterMetricsServer, MetricsAggregator
from ..video.frame import DescriptorChannel, SharedFramePlane
from ..video.stream import VideoStream
from .engine import ThreadedPipeline
from .router import InstanceReport, StreamRouter

__all__ = ["ClusterSupervisor", "ClusterResult"]


def _planned(stream: VideoStream, n_frames: int | None) -> int:
    return len(stream) if n_frames is None else min(n_frames, len(stream))


# ---------------------------------------------------------------------------
# instance process
# ---------------------------------------------------------------------------


def _instance_main(
    instance_id: int,
    addr: tuple[str, int],
    assigned: list[VideoStream],
    roster: list[VideoStream],
    zoo: ModelZoo,
    config: FFSVAConfig,
    graph: StageGraph | None,
    n_frames: int | None,
    online: bool,
    paced_fps: float | None,
    trace_dir: str | None,
) -> None:
    """One pipeline instance: engine + telemetry endpoint + control loop.

    Runs in a forked child.  ``assigned`` is the initial stream share;
    ``roster`` is every cluster stream, so an ``attach`` command can
    resolve any re-forwarded stream id without pickling stream objects
    over the wire (fork shares them).
    """
    sock = socket.create_connection(addr)
    chan = DescriptorChannel(sock)
    tel = Telemetry(sample_interval=config.telemetry_sample_interval)
    if config.result_store_dir is not None:
        # Each instance persists into its own store under the configured
        # parent; open_store() on the parent merges them at query time.
        config = config.with_(
            result_store_dir=os.path.join(
                config.result_store_dir, f"instance-{instance_id}"
            )
        )
    pipeline = ThreadedPipeline(
        assigned,
        zoo,
        config,
        graph=graph,
        telemetry=tel,
        reserve_slots=config.cluster_reserve_slots,
    )
    server = tel.serve(
        lambda: pipeline.metrics, port=0, trace_dir=trace_dir, store=pipeline.store,
        lineage=pipeline.lineage_context,
    )
    by_id = {s.stream_id: s for s in roster}
    ends = {s.stream_id: _planned(s, n_frames) for s in roster}

    result: dict = {}

    def _run():
        result["metrics"] = pipeline.run(n_frames, online=online, paced_fps=paced_fps)

    runner = threading.Thread(target=_run, name=f"instance-{instance_id}", daemon=True)
    runner.start()
    chan.send({"cmd": "hello", "instance": instance_id, "metrics_url": server.url})

    handoff_plane: SharedFramePlane | None = None
    try:
        while True:
            msg = chan.recv(timeout=60.0)
            if msg is None:
                break
            cmd = msg["cmd"]
            if cmd == "poll":
                adm = pipeline.admission
                chan.send(
                    {
                        "state": adm.state,
                        "headroom": estimate_headroom(
                            adm.reader, config, adm.rate_series
                        ),
                        "costs": pipeline.stream_costs(),
                        "free_slots": pipeline.free_slots(),
                        "outcomes": pipeline.outcome_count(),
                        "offered": pipeline.metrics.frames_offered,
                        "done": not runner.is_alive(),
                    }
                )
            elif cmd == "detach":
                sid = msg["stream"]
                slot = pipeline.active_streams()[sid]
                nxt = pipeline.detach_stream(slot)
                end = ends[sid]
                desc = None
                window = min(config.cluster_handoff_window, max(0, end - nxt))
                if window > 0:
                    stream = by_id[sid]
                    block = np.stack(
                        [stream.pixels(i) for i in range(nxt, nxt + window)]
                    )
                    handoff_plane = SharedFramePlane(1, block.nbytes)
                    slot_idx = handoff_plane.acquire(block.nbytes)
                    desc = DescriptorChannel.pack_descriptor(
                        handoff_plane.write(slot_idx, block)
                    )
                chan.send({"next": nxt, "end": end, "desc": desc})
            elif cmd == "attach":
                sid = msg["stream"]
                preloaded = None
                if msg.get("desc") is not None:
                    desc = DescriptorChannel.unpack_descriptor(msg["desc"])
                    plane = SharedFramePlane.attach(desc.slab)
                    block = plane.view(desc)
                    preloaded = [np.array(block[k]) for k in range(block.shape[0])]
                    plane.close()
                slot = pipeline.attach_stream(
                    by_id[sid],
                    start=int(msg["start"]),
                    n_frames=int(msg["end"]),
                    preloaded=preloaded,
                )
                chan.send({"slot": slot})
            elif cmd == "release":
                if handoff_plane is not None:
                    handoff_plane.close()
                    handoff_plane.unlink()
                    handoff_plane = None
                chan.send({"ok": True})
            elif cmd == "seal":
                pipeline.seal()
                chan.send({"ok": True})
            elif cmd == "finish":
                runner.join(timeout=120.0)
                metrics = result.get("metrics")
                if trace_dir is not None and tel is not None:
                    tel.dump_rotating_trace(trace_dir, label=f"instance-{instance_id}")
                chan.send(
                    {
                        "metrics": None if metrics is None else metrics.to_dict(),
                        "outcomes": [
                            [o.stream_id, o.index, o.stage]
                            for o in pipeline.outcomes
                        ],
                        "admission": pipeline.admission.summary(),
                    }
                )
            elif cmd == "stop":
                chan.send({"ok": True})
                break
            else:  # pragma: no cover - protocol defense
                chan.send({"error": f"unknown command {cmd!r}"})
    finally:
        if handoff_plane is not None:
            handoff_plane.close()
            handoff_plane.unlink()
        server.stop()
        chan.close()


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------


@dataclass
class ClusterResult:
    """Everything one cluster run produced, per instance and aggregated."""

    instances: list[RunMetrics]
    outcomes: list[list[tuple[str, int, str]]]  # per instance: (stream, idx, stage)
    admission: list[dict]
    router_log: list[dict] = field(default_factory=list)
    moves: list[tuple[str, int, int]] = field(default_factory=list)
    aggregated_metrics: str = ""
    metrics_urls: list[str] = field(default_factory=list)

    @property
    def total_offered(self) -> int:
        return sum(m.frames_offered for m in self.instances)

    @property
    def total_outcomes(self) -> int:
        return sum(len(o) for o in self.outcomes)


class ClusterSupervisor:
    """Launch N pipeline instances and route streams between them live."""

    def __init__(
        self,
        streams: list[VideoStream],
        zoo: ModelZoo,
        config: FFSVAConfig | None = None,
        *,
        graph: StageGraph | None = None,
        trace_dir: str | None = None,
    ):
        if not streams:
            raise ValueError("need at least one stream")
        self.config = config or FFSVAConfig()
        self.streams = list(streams)
        self.zoo = zoo
        self.graph = graph
        self.trace_dir = trace_dir
        n = self.config.cluster_instances
        #: Initial placement: the same round-robin rule InstanceGroup.assign
        #: uses, so offline and live partitions agree.
        self.partition: list[list[VideoStream]] = [[] for _ in range(n)]
        for i, s in enumerate(self.streams):
            self.partition[i % n].append(s)
        self.router = StreamRouter()
        #: Applied handoffs with their frame boundary — everything the
        #: cluster ``/lineage`` endpoint needs to label which side of a
        #: migration a frame ran on.  (``router.moves()`` knows src/dst but
        #: not the boundary; that is only decided at detach time.)
        self.handoffs: list[dict] = []

    # -- control-channel RPC -------------------------------------------
    @staticmethod
    def _rpc(chan: DescriptorChannel, msg: dict, timeout: float = 60.0) -> dict:
        chan.send(msg)
        reply = chan.recv(timeout=timeout)
        if reply is None:
            raise ConnectionError(f"instance closed channel during {msg['cmd']!r}")
        return reply

    def run(
        self,
        n_frames: int | None = None,
        *,
        online: bool = True,
        paced_fps: float | None = None,
        max_wall: float | None = None,
    ) -> ClusterResult:
        """Run every stream to completion across the instance fleet."""
        cfg = self.config
        n_inst = cfg.cluster_instances
        total_planned = sum(_planned(s, n_frames) for s in self.streams)
        listener = socket.create_server(("127.0.0.1", cfg.router_port or 0))
        listener.listen(n_inst)

        # Fork every instance before the supervisor creates any thread of
        # its own (HTTP servers, aggregator scrapes) — a multi-threaded
        # parent and the "fork" start method don't mix.
        #
        # Start the resource tracker first so every instance inherits the
        # same tracker: on Python < 3.13 attaching a handoff slab registers
        # its name too, and only a shared tracker dedupes that against the
        # shedding side's unlink (separate per-child trackers would warn
        # about a "leaked" segment the source already destroyed).
        resource_tracker.ensure_running()
        ctx = multiprocessing.get_context("fork")
        procs = []
        for i in range(n_inst):
            inst_trace = (
                None
                if self.trace_dir is None
                else os.path.join(self.trace_dir, f"instance-{i}")
            )
            p = ctx.Process(
                target=_instance_main,
                args=(
                    i,
                    listener.getsockname(),
                    self.partition[i],
                    self.streams,
                    self.zoo,
                    cfg,
                    self.graph,
                    n_frames,
                    online,
                    paced_fps,
                    inst_trace,
                ),
                daemon=True,
            )
            p.start()
            procs.append(p)

        chans: dict[int, DescriptorChannel] = {}
        urls: dict[int, str] = {}
        aggregator = None
        agg_server = None
        try:
            listener.settimeout(30.0)
            while len(chans) < n_inst:
                conn, _ = listener.accept()
                chan = DescriptorChannel(conn)
                hello = chan.recv(timeout=30.0)
                chans[hello["instance"]] = chan
                urls[hello["instance"]] = hello["metrics_url"]
            metrics_urls = [urls[i] for i in range(n_inst)]
            aggregator = MetricsAggregator(
                {f"{i}": url for i, url in enumerate(metrics_urls)}
            )
            store_dirs = None
            if cfg.result_store_dir is not None:
                store_dirs = {
                    f"{i}": os.path.join(cfg.result_store_dir, f"instance-{i}")
                    for i in range(n_inst)
                }
            agg_server = ClusterMetricsServer(
                aggregator,
                port=0,
                store_dirs=store_dirs,
                handoffs=lambda: list(self.handoffs),
            ).start()

            if online:
                fps = paced_fps or cfg.stream_fps
                longest = max(_planned(s, n_frames) for s in self.streams)
                horizon = longest / fps * 4.0 + 30.0
            else:
                horizon = 120.0
            if max_wall is not None:
                horizon = max_wall

            t0 = time.monotonic()
            while True:
                time.sleep(cfg.router_epoch)
                reports = []
                for i in range(n_inst):
                    r = self._rpc(chans[i], {"cmd": "poll"})
                    reports.append(
                        InstanceReport(
                            state=r["state"],
                            headroom=float(r["headroom"]),
                            costs={k: float(v) for k, v in r["costs"].items()},
                            free_slots=int(r["free_slots"]),
                            outcomes=int(r["outcomes"]),
                            offered=int(r["offered"]),
                        )
                    )
                if sum(r.outcomes for r in reports) >= total_planned:
                    break
                if time.monotonic() - t0 > horizon:
                    raise RuntimeError(
                        f"cluster run exceeded its {horizon:.0f}s horizon "
                        f"({sum(r.outcomes for r in reports)}/{total_planned} outcomes)"
                    )
                move = self.router.step(reports)
                if move is not None:
                    self._actuate(chans, move)
            for i in range(n_inst):
                self._rpc(chans[i], {"cmd": "seal"})
            aggregated = aggregator.render()
            finals = [self._rpc(chans[i], {"cmd": "finish"}, timeout=180.0) for i in range(n_inst)]
            for i in range(n_inst):
                self._rpc(chans[i], {"cmd": "stop"})
            result = ClusterResult(
                instances=[RunMetrics.from_dict(f["metrics"]) for f in finals],
                outcomes=[
                    [(s, int(i_), st) for s, i_, st in f["outcomes"]] for f in finals
                ],
                admission=[f["admission"] for f in finals],
                router_log=self.router.log,
                moves=self.router.moves(),
                aggregated_metrics=aggregated,
                metrics_urls=metrics_urls,
            )
            for p in procs:
                p.join(timeout=30.0)
            return result
        finally:
            for chan in chans.values():
                chan.close()
            if agg_server is not None:
                agg_server.stop()
            listener.close()
            for p in procs:
                if p.is_alive():
                    p.terminate()
                p.join(timeout=5.0)

    def _actuate(self, chans: dict[int, DescriptorChannel], move) -> None:
        """Apply one router move: detach at a boundary, re-forward, release."""
        src, dst = chans[move.src], chans[move.dst]
        handoff = self._rpc(src, {"cmd": "detach", "stream": move.stream})
        self.handoffs.append(
            {
                "stream": move.stream,
                "src": move.src,
                "dst": move.dst,
                "boundary": int(handoff["next"]),
            }
        )
        try:
            if handoff["next"] < handoff["end"]:
                self._rpc(
                    dst,
                    {
                        "cmd": "attach",
                        "stream": move.stream,
                        "start": handoff["next"],
                        "end": handoff["end"],
                        "desc": handoff["desc"],
                    },
                )
        finally:
            self._rpc(src, {"cmd": "release"})
