"""Live stream router for the cluster serving plane.

The router is the *actuation-free* half of cluster load balancing: every
epoch it receives one :class:`InstanceReport` per pipeline instance (state
from that instance's :class:`~repro.core.admission.AdmissionController`,
EWMA-smoothed headroom, live per-stream costs) and asks the pure policy
core :func:`~repro.core.admission.pick_move` for at most one shed /
re-forward move.  Whether the move is applied to threads
(:mod:`repro.runtime.cluster`) or to virtual clocks
(:mod:`repro.sim.cluster`) is the caller's business — which is exactly why
the decision log replays deterministically across both runtimes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.admission import InstanceView, Move, pick_move

__all__ = ["InstanceReport", "StreamRouter"]


@dataclass(frozen=True)
class InstanceReport:
    """One instance's health snapshot for a router epoch.

    ``state`` is the instance admission controller's latest poll outcome
    (``"admit"`` / ``"hold"`` / ``"shed"``); ``headroom`` its EWMA headroom
    estimate in frames/s (see :func:`~repro.core.admission.estimate_headroom`);
    ``costs`` maps each *re-forwardable* stream to its live cost.  The
    remaining fields are actuation context the policy itself never reads:
    ``free_slots`` gates whether a chosen target can actually accept,
    ``outcomes``/``offered`` feed the supervisor's termination check.
    """

    state: str
    headroom: float
    costs: dict[str, float]
    free_slots: int = 0
    outcomes: int = 0
    offered: int = 0

    def view(self) -> InstanceView:
        return InstanceView(state=self.state, headroom=self.headroom, costs=self.costs)


@dataclass
class StreamRouter:
    """Epoch-driven shed/re-forward decisions with a replayable log.

    ``step`` is a pure function of the reports it is handed: the full
    report set is recorded next to the decision, so :meth:`replay` can feed
    the log back through a fresh router and must reproduce the identical
    move sequence — the determinism contract the cluster tests (threaded
    vs simulated) assert.
    """

    log: list[dict] = field(default_factory=list)

    def step(self, reports: list[InstanceReport]) -> Move | None:
        """Decide at most one move for this epoch and record it."""
        move = pick_move([r.view() for r in reports])
        if move is not None and reports[move.dst].free_slots <= 0:
            # The policy wants the move but the target has no spare slot
            # to actuate it into; record the veto so replays agree.
            vetoed, move = move, None
        else:
            vetoed = None
        self.log.append(
            {
                "epoch": len(self.log),
                "reports": [
                    {
                        "state": r.state,
                        "headroom": r.headroom,
                        "costs": dict(r.costs),
                        "free_slots": r.free_slots,
                        "outcomes": r.outcomes,
                        "offered": r.offered,
                    }
                    for r in reports
                ],
                "move": None
                if move is None
                else {"stream": move.stream, "src": move.src, "dst": move.dst},
                "vetoed": None
                if vetoed is None
                else {"stream": vetoed.stream, "src": vetoed.src, "dst": vetoed.dst},
            }
        )
        return move

    def moves(self) -> list[tuple[str, int, int]]:
        """The applied moves as ``(stream_id, src, dst)`` labels."""
        return [
            (e["move"]["stream"], e["move"]["src"], e["move"]["dst"])
            for e in self.log
            if e["move"] is not None
        ]

    def summary(self) -> dict:
        return {
            "epochs": len(self.log),
            "moves": [list(m) for m in self.moves()],
            "vetoed": sum(1 for e in self.log if e["vetoed"] is not None),
        }

    @classmethod
    def replay(cls, log: list[dict]) -> "StreamRouter":
        """Re-derive every decision from the recorded reports.

        Returns a fresh router whose :meth:`moves` must equal the original
        run's — any divergence means the policy consulted state outside the
        reports, which would break threaded/simulated equivalence.
        """
        router = cls()
        for entry in log:
            router.step(
                [
                    InstanceReport(
                        state=r["state"],
                        headroom=r["headroom"],
                        costs=dict(r["costs"]),
                        free_slots=r.get("free_slots", 0),
                        outcomes=r.get("outcomes", 0),
                        offered=r.get("offered", 0),
                    )
                    for r in entry["reports"]
                ]
            )
        return router
