"""Threaded FFS-VA runtime: real models, real queues, real threads.

This is the functional counterpart of the discrete-event simulator: every
stage is an independent thread (Section 3.1.2's "through the parallel and
pipelined structure of multiple threads"), connected by the bounded
:class:`~repro.core.queues.FeedbackQueue` instances that implement the
global feedback mechanism.

The cascade topology is not hard-coded here: workers and queues are
constructed from a :class:`~repro.core.pipeline.StageGraph` (the shared
control plane, by default the config's cascade).  Per stream there is a
prefetcher plus one worker per ``per_stream`` stage; each ``shared_rr``
stage gets a single worker that round-robins over the per-stream queues,
and each ``merged`` stage a single worker draining one merged queue.

Device placement is honoured with locks: stages hosted on a GPU acquire
that device's lock around inference (SNM and T-YOLO share ``gpu0`` in the
paper, the reference model owns ``gpu1``); CPU stages run lock-free.  On a
CPU-only host this costs nothing but keeps the execution structure
faithful.

The runtime is meant for functional validation and moderate scales; the
paper-scale experiments use :mod:`repro.sim` with the calibrated cost model
— both execute the same graph and emit the same per-stage counters, so the
two can be cross-checked with
:func:`repro.core.metrics.assert_stage_counts_equal`.
"""

from __future__ import annotations

import threading
import time
from contextlib import nullcontext
from dataclasses import dataclass

import numpy as np

from ..core.admission import AdmissionController
from ..core.batching import decide_fused_batch, fused_pop_order
from ..core.config import FFSVAConfig
from ..core.metrics import LatencyStats, RunMetrics, StageCounters
from ..core.pipeline import (
    ABORTED,
    DROPPED,
    FUSED,
    MERGED,
    PER_STREAM,
    SHARED_RR,
    SNM,
    StageGraph,
    StageSpec,
    cascade,
)
from ..core.qplan import QueryPlanner
from ..core.queues import FeedbackQueue, QueueClosed
from ..devices.placement import Placement, ffs_va_placement
from ..models.zoo import ModelZoo
from ..obs import Telemetry
from ..obs.lineage import lineage_section
from ..store.detstore import DetectionRecord, DetStore
from .procpool import ProcPool
from ..video.stream import VideoStream

__all__ = ["FrameOutcome", "ThreadedPipeline"]


@dataclass(frozen=True)
class FrameOutcome:
    """Where one frame's journey through the cascade ended."""

    stream_id: str
    index: int
    #: The stage that dropped the frame; the terminal stage's name means the
    #: frame was fully analyzed; ``"aborted"`` means the pipeline shut down
    #: while the frame was still in flight.
    stage: str
    ref_count: int | None  # terminal-stage object count (analyzed frames only)
    latency: float  # seconds from prefetch to final disposition


@dataclass
class _Work:
    """A frame in flight between stages."""

    stream_idx: int
    index: int
    pixels: np.ndarray
    t_start: float
    #: When the frame last landed in a stage's input queue (run-relative
    #: clock; stamped only when telemetry is attached).  Service time minus
    #: this is the hop's wait, feeding ``stage_wait_seconds``.
    t_enter: float = 0.0


@dataclass
class _StreamCtx:
    stream: VideoStream | None
    bundle: object | None


@dataclass
class _Feed:
    """Control block for one stream slot's prefetcher.

    ``start``/``count`` bound the frame range this slot offers (global
    stream indices ``[start, start + count)``); ``offered`` counts frames
    that actually received a disposition path (admitted, dropped, or
    aborted).  Setting ``stop`` asks the prefetcher to halt at the next
    frame boundary; ``boundary`` is set once the prefetcher has left its
    loop, at which point ``start + offered`` is the exact handoff index —
    no frame before it can ever be offered elsewhere, no frame at or after
    it was offered here.
    """

    start: int
    count: int
    preloaded: list | None = None  # handoff-window pixels for leading frames
    offered: int = 0
    stop: threading.Event = None  # type: ignore[assignment]
    boundary: threading.Event = None  # type: ignore[assignment]

    def __post_init__(self):
        self.stop = threading.Event()
        self.boundary = threading.Event()

    @property
    def active(self) -> bool:
        """Still offering frames here (re-forwardable)."""
        return not self.stop.is_set() and self.offered < self.count


class ThreadedPipeline:
    """Run a stage graph end-to-end with real inference on a set of streams.

    With ``reserve_slots > 0`` the pipeline becomes a *cluster instance*:
    it pre-builds that many extra single-use stream slots (queues and
    per-stream workers must exist before any thread starts), so a stream
    can be attached mid-run via :meth:`attach_stream` after another
    instance detached it at a frame boundary with :meth:`detach_stream`.
    In that mode :meth:`run` does not return until :meth:`seal` closes the
    never-used slots — the supervisor seals once every frame in the cluster
    has an outcome.
    """

    def __init__(
        self,
        streams: list[VideoStream],
        zoo: ModelZoo,
        config: FFSVAConfig | None = None,
        placement: Placement | None = None,
        graph: StageGraph | str | None = None,
        telemetry: Telemetry | None = None,
        *,
        reserve_slots: int = 0,
        store: DetStore | None = None,
        plan_catalog=None,
    ):
        if not streams and reserve_slots <= 0:
            raise ValueError("need at least one stream")
        for s in streams:
            if s.stream_id not in zoo:
                raise ValueError(
                    f"stream {s.stream_id} has no trained models; call "
                    "zoo.train_for_stream() first"
                )
        self.config = cfg = config or FFSVAConfig()
        self.graph = cascade(graph) if graph is not None else cfg.graph()
        self.zoo = zoo
        self.placement = placement or ffs_va_placement()
        if reserve_slots:
            # Process pools and fused evaluators capture the bundle roster at
            # fork/build time, before a mid-run attach could fill a slot.
            if any(spec.executor == "process" for spec in self.graph):
                raise ValueError("reserve_slots is incompatible with executor='process'")
            if any(spec.fan_in == FUSED for spec in self.graph):
                raise ValueError("reserve_slots is incompatible with fused stages")
            if cfg.plan == "adaptive":
                # The planner's chunk accounting and the terminal
                # producer-count bookkeeping assume a fixed stream roster.
                raise ValueError("reserve_slots is incompatible with plan='adaptive'")
        if cfg.plan == "adaptive" and len(self.graph) > 2:
            if self.graph.terminal.fan_in != MERGED:
                raise ValueError(
                    "adaptive depth planning needs a merged terminal stage "
                    "(early exits route straight to its queue)"
                )
        self.ctxs = [_StreamCtx(stream=s, bundle=zoo[s.stream_id]) for s in streams]
        self.ctxs += [_StreamCtx(stream=None, bundle=None) for _ in range(reserve_slots)]
        n = len(self.ctxs)

        #: Per-stage input queues: one per stream for per_stream/shared_rr
        #: stages, a single merged queue otherwise.
        self.stage_queues: dict[str, list[FeedbackQueue]] = {}
        self.merged_queues: dict[str, FeedbackQueue] = {}
        for spec in self.graph:
            depth = self._depth_for(spec)
            if spec.fan_in == MERGED:
                self.merged_queues[spec.name] = FeedbackQueue(depth, spec.name)
            else:
                self.stage_queues[spec.name] = [
                    FeedbackQueue(depth, f"{spec.name}[{i}]") for i in range(n)
                ]

        # Idle shared/fused workers park on these instead of spin-polling;
        # producers set the event on every put into (or close of) one of
        # the stage's per-stream queues.
        self._wake = {
            spec.name: threading.Event()
            for spec in self.graph
            if spec.fan_in in (SHARED_RR, FUSED)
        }
        #: Adaptive depth planning makes every non-terminal worker a
        #: potential producer of the merged terminal queue (early exits
        #: skip straight to it); the close protocol must account for that.
        self._plan_routing = (
            cfg.plan == "adaptive"
            and sum(1 for s in self.graph if not s.terminal) > 1
        )
        # A merged queue is closed by the *last* of its producers.
        self._producers_left = {
            spec.name: self._producer_count(spec)
            for spec in self.graph
            if spec.fan_in == MERGED
        }
        self._producers_lock = threading.Lock()

        self._locks = {spec.name: self._device_lock(spec) for spec in self.graph}
        self._devnames = {spec.name: self._device_name(spec) for spec in self.graph}
        #: Attached telemetry (None = disabled; every emission site guards
        #: on that with a single branch).
        self.telemetry = telemetry if telemetry is not None else Telemetry.from_config(cfg)
        #: Closed-loop admission: decisions are read off the telemetry
        #: sampler's series (None when telemetry is disabled).
        self.admission = (
            AdmissionController(cfg, sampler=self.telemetry.sampler, graph=self.graph)
            if self.telemetry is not None
            else None
        )
        #: Content-adaptive query planner (None when plan="static").  It
        #: shares the telemetry sampler when one exists so its activity
        #: series ride the same export plane; otherwise it runs a private
        #: sampler — planning works with telemetry off.
        self._planner = (
            QueryPlanner(
                cfg,
                graph=self.graph,
                sampler=self.telemetry.sampler if self.telemetry is not None else None,
                catalog=plan_catalog,
            )
            if cfg.plan == "adaptive"
            else None
        )
        if self._planner is not None:
            for i, s in enumerate(streams):
                self._planner.register(i, s.stream_id)
        #: Persistent detection store (None = no persistence).  An injected
        #: store is used as-is; otherwise config.result_store_dir builds one.
        self.store = (
            store
            if store is not None
            else DetStore.from_config(cfg, terminal=self.graph.terminal.name)
        )
        self._t0 = 0.0  # run-start monotonic reference for telemetry stamps
        self._busy: dict[str, float] = {}  # per-device lock-held seconds
        self.outcomes: list[FrameOutcome] = []
        self._outcome_lock = threading.Lock()
        self.metrics = RunMetrics(
            n_streams=len(streams),
            stages={spec.name: StageCounters() for spec in self.graph},
        )
        #: Per-slot prefetch control blocks (None = reserve slot, unused).
        self._feeds: list[_Feed | None] = [None] * n
        self._feed_lock = threading.Lock()
        self._dyn_threads: list[threading.Thread] = []
        self._sealed = reserve_slots == 0
        self._paced_fps: float | None = None
        self._running = False
        #: Per-slot frames that passed the first stage — the live "cost"
        #: signal the router ranks streams by when choosing what to shed
        #: (the simulator counts the identical quantity in ``_complete``).
        self._first_pass = [0] * n
        self._stage_lock = threading.Lock()
        self._errors: list[BaseException] = []
        self._abort = threading.Event()
        #: Process pools keyed by stage name, built in run() *before* any
        #: runtime thread starts (fork-with-threads safety) for specs with
        #: executor="process".
        self._pools: dict[str, ProcPool] = {}
        #: Cross-stream evaluators keyed by stage name for fused stages
        #: whose logic provides build_fused; fused stages without one fall
        #: back to grouping each mega-batch by stream.
        self._fused_eval: dict = {}
        #: Per-degree config clones for plan-driven SNM thresholds, keyed by
        #: filter degree (built lazily; the planner's degree set is small).
        self._degree_cfgs: dict[float, FFSVAConfig] = {}

    # ------------------------------------------------------------------
    # graph-driven construction helpers
    # ------------------------------------------------------------------
    def _depth_for(self, spec: StageSpec) -> int | None:
        cfg = self.config
        if not cfg.bounded_queues:
            return None  # static batching runs without the feedback mechanism
        if spec.terminal and cfg.ref_overflow_to_storage:
            return None  # Section 5.5: terminal overflow goes to storage
        return cfg.queue_depth(spec.depth_key)

    def _producer_count(self, spec: StageSpec) -> int:
        """How many worker threads feed ``spec``'s merged queue."""
        upstream = self.graph.upstream(spec.name)
        if not upstream:
            return len(self.ctxs)  # fed directly by the prefetchers
        if self._plan_routing and spec.terminal:
            # Early exits let *every* non-terminal stage's workers route
            # passers straight here, so the queue only closes once all of
            # them are done (each decrements once per worker on finish).
            return sum(
                len(self.ctxs) if s.fan_in == PER_STREAM else 1
                for s in self.graph
                if not s.terminal
            )
        prev = upstream[-1]
        return len(self.ctxs) if prev.fan_in == PER_STREAM else 1

    def _device_name(self, spec: StageSpec) -> str:
        names = self.placement.stage_devices.get(spec.name) or [spec.device]
        return names[0]

    def _device_lock(self, spec: StageSpec):
        device = self.placement.devices.get(self._device_name(spec))
        if device is not None and device.kind == "gpu":
            return device.lock
        return nullcontext()

    def _input_queue(self, spec: StageSpec, stream_idx: int) -> FeedbackQueue:
        if spec.fan_in == MERGED:
            return self.merged_queues[spec.name]
        return self.stage_queues[spec.name][stream_idx]

    def _batch_bounds(self, spec: StageSpec) -> tuple[int, int]:
        """(max_n, min_n) for a per-stream or merged worker's pop_batch."""
        cfg = self.config
        rule = spec.batch
        if rule.kind == "config":
            min_n = 1
            if cfg.batch_policy in ("static", "feedback"):
                min_n = cfg.batch_size
                if cfg.batch_policy == "feedback":
                    min_n = min(min_n, cfg.queue_depth(spec.depth_key))
            return cfg.batch_size, min_n
        if rule.kind == "rr_cap":
            return cfg.num_t_yolo, 1
        return rule.size, 1

    def _adaptive_batch_stage(self, spec: StageSpec) -> bool:
        """True when the planner drives this stage's batch target live."""
        return (
            self._planner is not None
            and self._planner.adaptive_batching
            and spec.batch.kind == "config"
        )

    def _shared_cap(self, spec: StageSpec) -> int:
        """Frames a shared_rr worker takes from one stream per visit."""
        if spec.batch.kind == "rr_cap":
            return self.config.num_t_yolo
        if spec.batch.kind == "config":
            return self.config.batch_size
        return spec.batch.size

    # ------------------------------------------------------------------
    # bookkeeping
    # ------------------------------------------------------------------
    def _record(self, work: _Work, stage: str, ref_count=None) -> None:
        outcome = FrameOutcome(
            stream_id=self.ctxs[work.stream_idx].stream.stream_id,
            index=work.index,
            stage=stage,
            ref_count=ref_count,
            latency=time.monotonic() - work.t_start,
        )
        with self._outcome_lock:
            self.outcomes.append(outcome)
        if self.store is not None:
            # Stream time (index / fps), not the wall clock: the simulator
            # stamps the identical value, which is what makes threaded and
            # simulated stores row-for-row comparable.
            ctx = self.ctxs[work.stream_idx]
            self.store.append(
                DetectionRecord(
                    stream=outcome.stream_id,
                    frame=work.index,
                    t=work.index / ctx.stream.fps,
                    cls=ctx.stream.kind,
                    box=None,
                    score=float(ref_count) if ref_count is not None else 0.0,
                    disposition=stage,
                )
            )
        tel = self.telemetry
        if tel is not None:
            tel.observe_latency("frame_latency_seconds", outcome.latency, stage=stage)

    def _count(self, stage: str, n_in: int, n_pass: int, busy: float = 0.0) -> None:
        with self._stage_lock:
            self.metrics.stages[stage].record(n_in, n_pass)
            if busy:
                device = self._devnames[stage]
                self._busy[device] = self._busy.get(device, 0.0) + busy

    def _fail(self, exc: BaseException) -> None:
        self._errors.append(exc)
        self._abort.set()

    def _now(self) -> float:
        """Seconds since run start — the telemetry timestamp base (so the
        threaded timeline is comparable with the simulator's virtual one)."""
        return time.monotonic() - self._t0

    def _put(self, spec: StageSpec, queue: FeedbackQueue, work: _Work) -> str:
        """Blocking put into ``spec``'s input: ``"ok"``, ``"dropped"``, or
        ``"abort"``.

        Gives up on abort (a worker dying downstream must not leave its
        producer blocked forever on a full feedback queue).  With
        ``config.queue_put_timeout`` set, a put that stays blocked past the
        deadline — or that finds the downstream queue already closed —
        reports ``"dropped"`` so the caller can give the frame a terminal
        disposition instead of losing it silently.
        """
        tel = self.telemetry
        timeout = self.config.queue_put_timeout
        deadline = None if timeout is None else time.monotonic() + timeout
        while not self._abort.is_set():
            try:
                if queue.put(work, timeout=0.1):
                    if spec.fan_in in (SHARED_RR, FUSED):
                        self._wake[spec.name].set()
                    if tel is not None:
                        work.t_enter = t_enter = self._now()
                        if tel.bus.enabled:
                            tel.bus.emit(
                                "frame_enter", t_enter, spec.name,
                                stream=work.stream_idx, frame=work.index,
                            )
                    return "ok"
            except QueueClosed:
                if tel is not None and tel.bus.enabled:
                    tel.bus.emit(
                        "queue_block", self._now(), spec.name,
                        stream=work.stream_idx, frame=work.index, n=len(queue),
                    )
                return "dropped"
            # Timed out against a full queue: one observed back-pressure stall.
            if tel is not None and tel.bus.enabled:
                tel.bus.emit(
                    "queue_block", self._now(), spec.name,
                    stream=work.stream_idx, frame=work.index, n=len(queue),
                )
            if deadline is not None and time.monotonic() >= deadline:
                return "dropped"
        return "abort"

    # ------------------------------------------------------------------
    # close protocol
    # ------------------------------------------------------------------
    def _close_input(self, spec: StageSpec, stream_idx: int | None) -> None:
        """A producer finished feeding ``spec`` (for one stream, or all)."""
        if spec.fan_in == MERGED:
            with self._producers_lock:
                self._producers_left[spec.name] -= 1
                last = self._producers_left[spec.name] <= 0
            if last:
                self.merged_queues[spec.name].close()
            return
        queues = self.stage_queues[spec.name]
        targets = queues if stream_idx is None else [queues[stream_idx]]
        for q in targets:
            q.close()
        if spec.fan_in in (SHARED_RR, FUSED):
            self._wake[spec.name].set()

    def _downstream_done(self, spec: StageSpec, stream_idx: int | None) -> None:
        nxt = self.graph.next(spec.name)
        if nxt is not None:
            self._close_input(nxt, stream_idx)
        if self._plan_routing and not spec.terminal and nxt is not None and not nxt.terminal:
            # Under adaptive depth planning this worker was also a potential
            # producer of the terminal queue (early exits); release its
            # share of that producer count.  When ``nxt`` *is* the terminal
            # the decrement above already covered it.
            self._close_input(self.graph.terminal, stream_idx)

    # ------------------------------------------------------------------
    # stage service
    # ------------------------------------------------------------------
    def _stacked_pixels(self, works: list[_Work], scratch: dict | None) -> np.ndarray:
        """Batch pixel tensor for ``works``, reusing the worker's buffer.

        Buffers are preallocated per worker thread (grown once to the
        stage's batch cap) and overwritten on every batch; stage logic
        treats its input as read-only and never retains it past
        ``evaluate``.  They are keyed by frame shape/dtype so a shared
        stage round-robining over streams of different resolutions keeps
        one steady-state buffer per resolution instead of reallocating
        every time consecutive cycles alternate shapes.
        """
        first = works[0].pixels
        if scratch is None:
            return np.stack([w.pixels for w in works])
        n = len(works)
        key = ("pixels", first.shape, first.dtype.str)
        buf = scratch.get(key)
        if buf is None or buf.shape[0] < n:
            cap = max(n, int(scratch.get("cap", 0)))
            buf = scratch[key] = np.empty((cap, *first.shape), dtype=first.dtype)
        out = buf[:n]
        np.stack([w.pixels for w in works], out=out)
        return out

    def _serve(self, spec: StageSpec, works: list[_Work], scratch: dict | None = None) -> bool:
        """Evaluate one batch and route each frame; False aborts the worker.

        Under adaptive planning the SNM batch is split so that every
        stream's frames within a group share one plan chunk (and therefore
        one FilterDegree); splits only occur at the rare chunk-boundary
        crossings, so the steady state stays a single full batch.
        """
        planner = self._planner
        if planner is None or not planner.active or spec.name != SNM:
            return self._serve_one(spec, works, scratch)
        epoch = planner.epoch
        groups: list[list[_Work]] = []
        cur: list[_Work] = []
        seen: dict[int, int] = {}
        for w in works:
            c = w.index // epoch
            if cur and seen.get(w.stream_idx, c) != c:
                groups.append(cur)
                cur, seen = [], {}
            cur.append(w)
            seen[w.stream_idx] = c
        groups.append(cur)
        for group in groups:
            if not self._serve_one(spec, group, scratch):
                return False
        return True

    def _cfg_for_degree(self, degree: float) -> FFSVAConfig:
        cfg = self._degree_cfgs.get(degree)
        if cfg is None:
            cfg = self._degree_cfgs[degree] = self.config.with_(filter_degree=degree)
        return cfg

    def _serve_one(
        self, spec: StageSpec, works: list[_Work], scratch: dict | None = None
    ) -> bool:
        """Evaluate one plan-homogeneous batch and route each frame.

        Every frame of the batch reaches a terminal record or the next
        stage's queue — on failure or abort the leftovers are recorded as
        ``"aborted"`` so no outcome is ever silently lost.
        """
        done = 0
        tel = self.telemetry
        bus = tel.bus if tel is not None else None
        planner = self._planner
        cfg = self.config
        deg_vec = None  # per-stream degree vector for the fused SNM path
        if planner is not None and planner.active and spec.name == SNM:
            if spec.fan_in == FUSED:
                deg_vec = np.full(len(self.ctxs), cfg.filter_degree)
                for w in works:
                    deg_vec[w.stream_idx] = planner.degree_for(w.stream_idx, w.index)
            else:
                d = planner.degree_for(works[0].stream_idx, works[0].index)
                if d != cfg.filter_degree:
                    cfg = self._cfg_for_degree(d)
        try:
            n = len(works)
            if n == 1:
                # Singleton batches are the threaded runtime's common case at
                # low load: a (1, H, W) view costs nothing, np.stack copies.
                pixels = works[0].pixels[None]
            else:
                pixels = self._stacked_pixels(works, scratch)
            pool = self._pools.get(spec.name)
            if pool is not None:
                # Process-pool path: the batch travels as a shared-memory
                # descriptor; no device lock (pools host CPU stages) and no
                # GIL contention — the busy time is the worker's own clock.
                t_exec = self._now()
                passes, info, busy = pool.run_batch(
                    pixels, [w.stream_idx for w in works], self._abort
                )
                t_done = self._now()
                if self._abort.is_set():
                    for w in works:
                        self._record(w, ABORTED)
                    return False
            elif spec.fan_in == FUSED:
                sidx = np.fromiter((w.stream_idx for w in works), dtype=np.intp, count=n)
                fused_fn = self._fused_eval.get(spec.name)
                with self._locks[spec.name]:
                    t_exec = self._now()
                    if fused_fn is not None:
                        if deg_vec is not None:
                            passes, info = fused_fn(pixels, sidx, degrees=deg_vec)
                        else:
                            passes, info = fused_fn(pixels, sidx)
                    else:
                        # Generic fused fallback: evaluate the mega-batch
                        # grouped per stream (same results, no weight fusion).
                        passes = np.empty(n, dtype=bool)
                        info = None
                        for k in np.unique(sidx):
                            sel = np.nonzero(sidx == k)[0]
                            kcfg = cfg
                            if deg_vec is not None:
                                kcfg = self._cfg_for_degree(float(deg_vec[int(k)]))
                            p, _ = spec.logic.evaluate(
                                pixels[sel],
                                [self.ctxs[int(k)].bundle] * len(sel),
                                self.zoo,
                                kcfg,
                            )
                            passes[sel] = np.asarray(p, dtype=bool)
                    t_done = self._now()
                busy = t_done - t_exec
            else:
                if spec.fan_in == MERGED:
                    ctxs = self.ctxs
                    bundles = [ctxs[w.stream_idx].bundle for w in works]
                else:
                    # per_stream / shared_rr batches always come from one
                    # stream's queue: one bundle lookup serves the whole batch.
                    bundles = [self.ctxs[works[0].stream_idx].bundle] * n
                with self._locks[spec.name]:
                    t_exec = self._now()
                    passes, info = spec.logic.evaluate(pixels, bundles, self.zoo, cfg)
                    t_done = self._now()
                busy = t_done - t_exec
            passes = np.asarray(passes, dtype=bool)
            self._count(spec.name, n, int(passes.sum()), busy=busy)
            if spec.name == self.graph.first.name:
                with self._stage_lock:
                    for k, w in enumerate(works):
                        if passes[k]:
                            self._first_pass[w.stream_idx] += 1
                if planner is not None and planner.active:
                    # Feed the planner the first-stage verdicts in frame
                    # order per stream, *before* routing: a chunk boundary
                    # inside this batch decides the next chunk's plan here,
                    # so the plan exists before any of its frames moves on.
                    by_stream: dict[int, tuple[list, list]] = {}
                    for k, w in enumerate(works):
                        fs, ps = by_stream.setdefault(w.stream_idx, ([], []))
                        fs.append(w.index)
                        ps.append(bool(passes[k]))
                    for si in by_stream:
                        planner.observe_first(si, *by_stream[si])
            if tel is not None:
                tel.observe_latency("stage_exec_seconds", busy, stage=spec.name)
                # Per-frame wait/service attribution: the hop's queue wait
                # is service start minus the frame's last enqueue stamp
                # (clock races can make it slightly negative; the histogram
                # clamps and counts those as skew).  Service is the batch's
                # busy window, charged to every frame it covered.
                for w in works:
                    tel.observe_latency(
                        "stage_wait_seconds", t_exec - w.t_enter, stage=spec.name
                    )
                    tel.observe_latency(
                        "stage_service_seconds", busy, stage=spec.name
                    )
            if bus is not None and bus.enabled:
                if bus.wants("batch_exec"):
                    bus.emit(
                        "batch_exec", t_done, spec.name,
                        stream=works[0].stream_idx
                        if spec.fan_in not in (MERGED, FUSED)
                        else None,
                        t_start=t_exec, n=n,
                    )
                # Hoisted per-kind check: a bus sampling only batch_exec
                # skips the whole per-frame emission loop (emit itself also
                # drops unwanted kinds, so this is purely a fast path).
                if bus.wants("frame_pass") or bus.wants("frame_filter"):
                    for k, work in enumerate(works):
                        bus.emit(
                            "frame_pass" if (spec.terminal or passes[k]) else "frame_filter",
                            t_done, spec.name,
                            stream=work.stream_idx, frame=work.index, t_start=t_exec,
                        )
            nxt = self.graph.next(spec.name)
            for k, work in enumerate(works):
                if spec.terminal:
                    detail = None if info is None else int(info[k])
                    self._record(work, spec.name, ref_count=detail)
                elif passes[k]:
                    tgt = nxt
                    if self._plan_routing and planner.exits_at(
                        spec.name, work.stream_idx, work.index
                    ):
                        # Plan says this stream's chunk stops filtering here:
                        # skip the remaining filters, go straight to the
                        # merged terminal stage.
                        tgt = self.graph.terminal
                    target = self._input_queue(tgt, work.stream_idx)
                    status = self._put(tgt, target, work)
                    if status == "abort":
                        for w in works[k:]:
                            self._record(w, ABORTED)
                        return False
                    if status == "dropped":
                        self._record(work, DROPPED)
                else:
                    self._record(work, spec.name)
                done = k + 1
            return True
        except BaseException:
            for w in works[done:]:
                self._record(w, ABORTED)
            raise

    # ------------------------------------------------------------------
    # workers
    # ------------------------------------------------------------------
    def _prefetch_worker(self, idx: int):
        ctx = self.ctxs[idx]
        feed = self._feeds[idx]
        first = self.graph.first
        target = self._input_queue(first, idx)
        tel = self.telemetry
        paced_fps = self._paced_fps
        t0 = time.monotonic()
        try:
            for j in range(feed.count):
                if feed.stop.is_set():
                    # Detach request: halt at the frame boundary.  Frames
                    # [start + offered, start + count) were never offered
                    # here and belong to whichever instance attaches next.
                    return
                i = feed.start + j
                if paced_fps is not None:
                    delay = t0 + j / paced_fps - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                if feed.preloaded is not None and j < len(feed.preloaded):
                    pixels = feed.preloaded[j]
                else:
                    pixels = ctx.stream.pixels(i)
                work = _Work(idx, i, pixels, time.monotonic())
                status = self._put(first, target, work)
                if status == "dropped":
                    feed.offered = j + 1
                    self._record(work, DROPPED)
                    continue
                if status != "ok":
                    # The pipeline is aborting: frames never admitted still
                    # get a terminal disposition.
                    now = time.monotonic()
                    for jj in range(j, feed.count):
                        self._record(_Work(idx, feed.start + jj, pixels, now), ABORTED)
                    feed.offered = feed.count
                    return
                feed.offered = j + 1
                if tel is not None and tel.bus.enabled:
                    tel.bus.emit(
                        "admission", self._now(), first.name, stream=idx, frame=i
                    )
        except BaseException as exc:  # pragma: no cover - defensive
            self._fail(exc)
        finally:
            feed.boundary.set()
            self._close_input(first, idx)

    def _stream_worker(self, spec: StageSpec, idx: int):
        """Worker for one stream of a ``per_stream`` stage."""
        q = self.stage_queues[spec.name][idx]
        max_n, min_n = self._batch_bounds(spec)
        adaptive = self._adaptive_batch_stage(spec)
        scratch = {"cap": max_n}  # per-worker batch pixel buffer
        try:
            while True:
                if adaptive:
                    # The planner's EWMA batch target caps (and relaxes the
                    # floor of) the configured batch size each iteration.
                    cap = self._planner.batch_target
                    take, floor = min(max_n, cap), min(min_n, cap)
                else:
                    take, floor = max_n, min_n
                batch = q.pop_batch(take, min_n=floor, timeout=0.05)
                if not batch:
                    if self._abort.is_set() or (q.closed and len(q) == 0):
                        break
                    continue
                if not self._serve(spec, batch, scratch):
                    return
        except BaseException as exc:
            self._fail(exc)
        finally:
            self._downstream_done(spec, idx)

    def _shared_worker(self, spec: StageSpec):
        """Single worker round-robining over a ``shared_rr`` stage's queues."""
        queues = self.stage_queues[spec.name]
        wake = self._wake[spec.name]
        cap = self._shared_cap(spec)
        scratch = {"cap": cap}  # per-worker batch pixel buffer
        try:
            while True:
                all_done = True
                any_served = False
                for q in queues:
                    if not (q.closed and len(q) == 0):
                        all_done = False
                    batch = q.pop_batch(cap, min_n=1, timeout=0.0)
                    if not batch:
                        continue
                    any_served = True
                    if not self._serve(spec, batch, scratch):
                        return
                if all_done or self._abort.is_set():
                    break
                if not any_served:
                    # Park until a producer signals new work (or close);
                    # the timeout is only a safety net, not a poll interval.
                    wake.wait(timeout=0.05)
                    wake.clear()
        except BaseException as exc:
            self._fail(exc)
        finally:
            self._downstream_done(spec, None)

    def _merged_worker(self, spec: StageSpec):
        """Single worker draining a ``merged`` stage's one queue."""
        q = self.merged_queues[spec.name]
        max_n, min_n = self._batch_bounds(spec)
        adaptive = self._adaptive_batch_stage(spec)
        scratch = {"cap": max_n}  # per-worker batch pixel buffer
        try:
            while True:
                if adaptive:
                    cap = self._planner.batch_target
                    take, floor = min(max_n, cap), min(min_n, cap)
                else:
                    take, floor = max_n, min_n
                batch = q.pop_batch(take, min_n=floor, timeout=0.05)
                if not batch:
                    if self._abort.is_set() or (q.closed and len(q) == 0):
                        break
                    continue
                if not self._serve(spec, batch, scratch):
                    return
        except BaseException as exc:
            self._fail(exc)
        finally:
            self._downstream_done(spec, None)

    def _fused_worker(self, spec: StageSpec):
        """Single worker pooling all streams' queues into mega-batches.

        Batch formation is the shared :func:`decide_fused_batch` policy:
        the configured BatchSize satisfied from the aggregate of the
        per-stream queues, distributed round-robin so no stream can
        monopolize a mega-batch.  The simulator's fused branch runs the
        identical decision function over the identical queue state.
        """
        queues = self.stage_queues[spec.name]
        wake = self._wake[spec.name]
        cfg = self.config
        depth = self._depth_for(spec)
        scratch = {"cap": cfg.batch_size}
        rr = 0
        try:
            while True:
                # Only this worker pops these queues, so the observed
                # lengths are lower bounds that cannot shrink under us.
                eof = all(q.closed for q in queues)
                lens = [len(q) for q in queues]
                size = cfg.batch_size
                if self._adaptive_batch_stage(spec):
                    size = min(size, self._planner.batch_target)
                takes = decide_fused_batch(
                    cfg.batch_policy, lens, size, depth, eof=eof, start=rr
                )
                if sum(takes) == 0:
                    if self._abort.is_set() or (eof and sum(lens) == 0):
                        break
                    wake.wait(timeout=0.05)
                    wake.clear()
                    continue
                works: list[_Work] = []
                for si in fused_pop_order(takes, rr):
                    works.extend(queues[si].pop_batch(takes[si], min_n=1, timeout=0.0))
                rr = (rr + 1) % len(queues)
                # Streams can differ in resolution; a mega-batch tensor
                # needs one shape, so serve one contiguous group per shape
                # (single group in the homogeneous common case).
                groups: dict[tuple, list[_Work]] = {}
                for w in works:
                    groups.setdefault(w.pixels.shape, []).append(w)
                for group in groups.values():
                    if not self._serve(spec, group, scratch):
                        return
        except BaseException as exc:
            self._fail(exc)
        finally:
            self._downstream_done(spec, None)

    # ------------------------------------------------------------------
    # time-series sampling (telemetry only)
    # ------------------------------------------------------------------
    def _all_queues(self):
        for queues in self.stage_queues.values():
            yield from queues
        yield from self.merged_queues.values()

    def _sample(self, t: float, prev: dict, *, force: bool = False) -> dict:
        """Record one gauge sweep; returns the snapshot for the next delta."""
        tel = self.telemetry
        gauges: dict[str, float] = {}
        for q in self._all_queues():
            gauges[f"queue_depth[{q.name}]"] = len(q)
        with self._stage_lock:
            entered = {s: c.entered for s, c in self.metrics.stages.items()}
            busy = dict(self._busy)
        dt = t - prev["t"]
        if dt > 0:
            for stage, n in entered.items():
                gauges[f"stage_fps[{stage}]"] = (
                    (n - prev["entered"].get(stage, 0)) / dt
                )
            for device, b in busy.items():
                gauges[f"device_utilization[{device}]"] = min(
                    1.0, (b - prev["busy"].get(device, 0.0)) / dt
                )
        for name, fn in self._fused_eval.items():
            stats = getattr(fn, "mosaic_stats", None)
            if stats is not None:
                gauges[f"mosaic_fill_ratio[{name}]"] = stats.fill_ratio()
                gauges[f"mosaic_regions_per_canvas[{name}]"] = (
                    stats.regions_per_canvas()
                )
        tel.sampler.observe_many(t, gauges, force=force)
        return {"t": t, "entered": entered, "busy": busy}

    def _sampler_loop(self, stop: threading.Event) -> None:
        interval = self.telemetry.sampler.interval
        prev = {"t": 0.0, "entered": {}, "busy": {}}
        while not stop.wait(interval):
            t = self._now()
            prev = self._sample(t, prev)
            self.admission.poll(t)
            if self._planner is not None:
                self._planner.poll(t)
        t = self._now()
        self._sample(t, prev, force=True)
        self.admission.poll(t)
        if self._planner is not None:
            self._planner.poll(t)

    def _planner_loop(self, stop: threading.Event) -> None:
        """Feed queue-depth gauges to a telemetry-less adaptive planner.

        When telemetry is attached the planner shares its sampler and
        ``_sampler_loop`` polls it; this thread exists only so
        ``adaptive_batching`` keeps working with telemetry disabled.
        """
        planner = self._planner
        interval = planner.sampler.interval
        while not stop.wait(interval):
            t = self._now()
            planner.sampler.observe_many(
                t, {f"queue_depth[{q.name}]": len(q) for q in self._all_queues()}
            )
            planner.poll(t)

    # ------------------------------------------------------------------
    # cluster-instance control (attach / detach / seal)
    # ------------------------------------------------------------------
    def free_slots(self) -> int:
        """Reserve slots still able to accept a re-forwarded stream."""
        with self._feed_lock:
            if self._sealed:
                return 0
            return sum(
                1
                for i, c in enumerate(self.ctxs)
                if c.stream is None and self._feeds[i] is None
            )

    def active_streams(self) -> dict[str, int]:
        """stream_id -> slot for streams still offering frames here."""
        with self._feed_lock:
            return {
                self.ctxs[i].stream.stream_id: i
                for i, f in enumerate(self._feeds)
                if f is not None and f.active and self.ctxs[i].stream is not None
            }

    def stream_costs(self) -> dict[str, int]:
        """stream_id -> frames past the first stage, for active streams only.

        This is the live analogue of the position-cost the offline
        :class:`~repro.core.admission.InstanceGroup` ranks by: the stream
        that has pushed the most work into the cascade is the most
        expensive one to keep.
        """
        with self._stage_lock:
            first_pass = list(self._first_pass)
        with self._feed_lock:
            return {
                self.ctxs[i].stream.stream_id: first_pass[i]
                for i, f in enumerate(self._feeds)
                if f is not None and f.active and self.ctxs[i].stream is not None
            }

    def outcome_count(self) -> int:
        with self._outcome_lock:
            return len(self.outcomes)

    def attach_stream(
        self,
        stream: VideoStream,
        *,
        start: int = 0,
        n_frames: int | None = None,
        preloaded: list | None = None,
    ) -> int:
        """Attach a re-forwarded stream to a free reserve slot mid-run.

        Offers frames ``[start, end)`` where ``end`` is ``len(stream)``
        capped by ``n_frames``; ``preloaded`` optionally supplies pixel
        arrays for the leading frames (the shared-memory handoff window) so
        the first offers need no re-render.  Returns the slot index.
        """
        if stream.stream_id not in self.zoo:
            raise ValueError(f"stream {stream.stream_id} has no trained models")
        end = len(stream) if n_frames is None else min(n_frames, len(stream))
        if start >= end:
            raise ValueError(f"attach range [{start}, {end}) is empty")
        with self._feed_lock:
            if self._abort.is_set():
                raise RuntimeError("pipeline is aborting")
            if not self._running:
                raise RuntimeError("attach_stream requires a running pipeline")
            if self._sealed:
                raise RuntimeError("pipeline is sealed")
            slot = next(
                (
                    i
                    for i, c in enumerate(self.ctxs)
                    if c.stream is None and self._feeds[i] is None
                ),
                None,
            )
            if slot is None:
                raise RuntimeError("no free reserve slot")
            # Context first, then feed, then thread: the prefetcher and
            # stage workers read ctx/bundle through the slot index.
            self.ctxs[slot] = _StreamCtx(stream=stream, bundle=self.zoo[stream.stream_id])
            self._feeds[slot] = _Feed(start=start, count=end - start, preloaded=preloaded)
            self.metrics.frames_offered += end - start
            self.metrics.n_streams += 1
            t = threading.Thread(
                target=self._prefetch_worker, args=(slot,),
                name=f"prefetch-attach-{slot}", daemon=True,
            )
            self._dyn_threads.append(t)
        t.start()
        return slot

    def detach_stream(self, slot: int, timeout: float = 10.0) -> int:
        """Stop offering a stream's frames at the next frame boundary.

        Returns the first frame index *not* offered here — the exact index
        the receiving instance must attach at.  Frames already offered keep
        their in-flight path to an outcome on this instance; the unoffered
        remainder is subtracted from ``frames_offered`` so the
        per-instance invariant ``frames_offered == len(outcomes)`` holds on
        both sides of the handoff.
        """
        feed = self._feeds[slot]
        if feed is None:
            raise ValueError(f"slot {slot} has no active feed")
        feed.stop.set()
        if not feed.boundary.wait(timeout):
            raise RuntimeError(f"slot {slot} prefetcher missed the frame boundary")
        with self._feed_lock:
            self.metrics.frames_offered -= feed.count - feed.offered
        return feed.start + feed.offered

    def seal(self) -> None:
        """Close every never-used reserve slot; no further attach is
        possible and :meth:`run` can complete once in-flight work drains."""
        with self._feed_lock:
            if self._sealed:
                return
            self._sealed = True
            unused = [i for i, f in enumerate(self._feeds) if f is None]
        first = self.graph.first
        for i in unused:
            self._close_input(first, i)

    # ------------------------------------------------------------------
    def _drain_unfinished(self) -> None:
        """After an abort, give every still-queued frame a terminal record."""
        leftovers: list[_Work] = []
        for queues in self.stage_queues.values():
            for q in queues:
                leftovers.extend(q.drain())
        for q in self.merged_queues.values():
            leftovers.extend(q.drain())
        for work in leftovers:
            self._record(work, ABORTED)

    def run(
        self,
        n_frames: int | None = None,
        *,
        online: bool = False,
        paced_fps: float | None = None,
    ) -> RunMetrics:
        """Process every stream to completion and return metrics.

        ``online=True`` paces each prefetcher at ``paced_fps`` (default the
        config's ``stream_fps``); offline mode renders as fast as possible.
        """
        fps = (paced_fps or self.config.stream_fps) if online else None
        self._paced_fps = fps
        counts = [
            0
            if ctx.stream is None
            else (len(ctx.stream) if n_frames is None else min(n_frames, len(ctx.stream)))
            for ctx in self.ctxs
        ]
        self.metrics.frames_offered = sum(counts)
        for i, ctx in enumerate(self.ctxs):
            if ctx.stream is not None:
                self._feeds[i] = _Feed(start=0, count=counts[i])

        bundles = [ctx.bundle for ctx in self.ctxs]
        for spec in self.graph:
            if spec.fan_in == FUSED and spec.logic.build_fused is not None:
                self._fused_eval[spec.name] = spec.logic.build_fused(
                    bundles, self.zoo, self.config
                )
        # Worker processes must fork before any runtime thread exists (a
        # multi-threaded parent and the "fork" start method don't mix).
        for spec in self.graph:
            if spec.executor != "process":
                continue
            max_n, _ = self._batch_bounds(spec)
            # 8 bytes/px accommodates float64 frames; synthetic streams
            # render float32, so slabs are typically half-used.
            slot_bytes = (
                max_n
                * max(
                    h * w
                    for h, w in (c.stream.shape for c in self.ctxs if c.stream is not None)
                )
                * 8
            )
            self._pools[spec.name] = ProcPool(
                spec.name,
                spec.logic.evaluate,
                bundles,
                self.zoo,
                self.config,
                self.config.num_sdd_procs,
                slot_bytes=slot_bytes,
            )

        threads = []
        for i in range(len(self.ctxs)):
            if self._feeds[i] is None:
                continue  # reserve slot: its queue closes at attach-exhaust or seal()
            threads.append(
                threading.Thread(target=self._prefetch_worker, args=(i,), daemon=True)
            )
        for spec in self.graph:
            if spec.fan_in == PER_STREAM:
                for i in range(len(self.ctxs)):
                    threads.append(
                        threading.Thread(
                            target=self._stream_worker, args=(spec, i), daemon=True
                        )
                    )
            elif spec.fan_in == SHARED_RR:
                threads.append(
                    threading.Thread(target=self._shared_worker, args=(spec,), daemon=True)
                )
            elif spec.fan_in == FUSED:
                threads.append(
                    threading.Thread(target=self._fused_worker, args=(spec,), daemon=True)
                )
            else:
                threads.append(
                    threading.Thread(target=self._merged_worker, args=(spec,), daemon=True)
                )

        self._t0 = t0 = time.monotonic()
        self._running = True
        sampler_stop = None
        if self.telemetry is not None:
            sampler_stop = threading.Event()
            sampler = threading.Thread(
                target=self._sampler_loop, args=(sampler_stop,),
                name="telemetry-sampler", daemon=True,
            )
            sampler.start()
        planner_stop = None
        if (
            self.telemetry is None
            and self._planner is not None
            and self._planner.adaptive_batching
        ):
            planner_stop = threading.Event()
            planner_thread = threading.Thread(
                target=self._planner_loop, args=(planner_stop,),
                name="qplan-sampler", daemon=True,
            )
            planner_thread.start()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # Prefetchers spawned by attach_stream() after the static set was
        # launched.  Stage workers only exit once *every* first-stage queue
        # has closed (including reserve slots, closed by attach-exhaust or
        # seal()), so by now no further dynamic thread can appear.
        for t in list(self._dyn_threads):
            t.join()
        self._running = False
        duration = time.monotonic() - t0
        if sampler_stop is not None:
            sampler_stop.set()
            sampler.join(timeout=2.0)
        if planner_stop is not None:
            planner_stop.set()
            planner_thread.join(timeout=2.0)
        pool_stats = {
            name: pool.shutdown().as_dict() for name, pool in self._pools.items()
        }
        self._pools.clear()
        if self._abort.is_set():
            self._drain_unfinished()
        if self.store is not None:
            # After the drain, so aborted-frame rows persist too; before the
            # error raise, so a failed run still leaves a sealed store.
            self.store.close()
        if self._errors:
            raise RuntimeError(
                f"pipeline worker failed: {self._errors[0]!r}"
            ) from self._errors[0]

        terminal = self.graph.terminal.name
        m = self.metrics
        m.duration = duration
        # frames_offered is adjusted live by attach (+count) and detach
        # (-unoffered), so its final value is exactly the frames this
        # instance gave a disposition path; without attach/detach it equals
        # the static sum(counts).
        m.frames_ingested = self.metrics.frames_offered
        m.frames_to_ref = sum(1 for o in self.outcomes if o.stage == terminal)
        ref_lat = [o.latency for o in self.outcomes if o.stage == terminal]
        m.ref_latency = LatencyStats.from_samples(ref_lat)
        m.frame_latency = LatencyStats.from_samples([o.latency for o in self.outcomes])
        m.queue_high_water = {
            **{
                q.name: q.high_water
                for queues in self.stage_queues.values()
                for q in queues
            },
            **{q.name: q.high_water for q in self.merged_queues.values()},
        }
        if duration > 0 and self._busy:
            m.device_utilization = {
                dev: min(1.0, b / duration) for dev, b in self._busy.items()
            }
        if pool_stats:
            m.extra["procpool"] = pool_stats
        for fn in self._fused_eval.values():
            stats = getattr(fn, "mosaic_stats", None)
            if stats is not None:
                m.extra["mosaic"] = stats.as_dict()
        if self.telemetry is not None:
            m.extra["telemetry"] = self.telemetry.bus.stats()
            m.extra["admission"] = self.admission.summary()
            m.extra["queue_put_timeouts"] = {
                q.name: q.put_timeouts for q in self._all_queues()
            }
            m.extra["lineage"] = lineage_section(self.telemetry, terminal=terminal)
        if self._planner is not None:
            m.extra["qplan"] = self._planner.summary()
        return m

    def lineage_context(self) -> dict:
        """Stream-resolution context for the ``/lineage`` endpoint.

        The threaded runtime offers global frame indices (an attached
        stream keeps its ``[start, end)`` numbering), so every stream's
        offset is zero; the map covers every slot that ever carried a
        stream, including finished ones, so lineage stays queryable after
        a stream drains.
        """
        streams = {
            ctx.stream.stream_id: {"index": i, "offset": 0}
            for i, ctx in enumerate(self.ctxs)
            if ctx.stream is not None
        }
        return {
            "terminal": self.graph.terminal.name,
            "streams": streams,
            "qplan": (
                self._planner.summary() if self._planner is not None else None
            ),
        }
