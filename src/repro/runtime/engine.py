"""Threaded FFS-VA runtime: real models, real queues, real threads.

This is the functional counterpart of the discrete-event simulator: every
stage is an independent thread (Section 3.1.2's "through the parallel and
pipelined structure of multiple threads"), connected by the bounded
:class:`~repro.core.queues.FeedbackQueue` instances that implement the
global feedback mechanism.  Per stream there is a prefetcher, an SDD worker,
and an SNM worker; one shared T-YOLO worker round-robins over all streams
and one shared reference worker drains the final queue.

Device placement is honoured with locks: SNM and T-YOLO inference both
acquire the ``gpu0`` lock (they share a GPU in the paper), the reference
model acquires ``gpu1``.  On a CPU-only host this costs nothing but keeps
the execution structure faithful.

The runtime is meant for functional validation and moderate scales; the
paper-scale experiments use :mod:`repro.sim` with the calibrated cost model.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..core.batching import decide_batch
from ..core.config import FFSVAConfig
from ..core.metrics import LatencyStats, RunMetrics
from ..core.queues import FeedbackQueue
from ..devices.placement import Placement, ffs_va_placement
from ..models.zoo import ModelZoo
from ..video.stream import VideoStream

__all__ = ["FrameOutcome", "ThreadedPipeline"]


@dataclass(frozen=True)
class FrameOutcome:
    """Where one frame's journey through the cascade ended."""

    stream_id: str
    index: int
    stage: str  # "sdd" | "snm" | "tyolo" = dropped there; "ref" = analyzed
    ref_count: int | None  # reference-model object count (ref frames only)
    latency: float  # seconds from prefetch to final disposition


@dataclass
class _Work:
    """A frame in flight between stages."""

    stream_idx: int
    index: int
    pixels: np.ndarray
    t_start: float


@dataclass
class _StreamCtx:
    stream: VideoStream
    bundle: object
    sdd_q: FeedbackQueue = field(default=None)  # type: ignore[assignment]
    snm_q: FeedbackQueue = field(default=None)  # type: ignore[assignment]
    tyolo_q: FeedbackQueue = field(default=None)  # type: ignore[assignment]


class ThreadedPipeline:
    """Run FFS-VA end-to-end with real inference on a set of streams."""

    def __init__(
        self,
        streams: list[VideoStream],
        zoo: ModelZoo,
        config: FFSVAConfig | None = None,
        placement: Placement | None = None,
    ):
        if not streams:
            raise ValueError("need at least one stream")
        for s in streams:
            if s.stream_id not in zoo:
                raise ValueError(
                    f"stream {s.stream_id} has no trained models; call "
                    "zoo.train_for_stream() first"
                )
        self.config = config or FFSVAConfig()
        self.zoo = zoo
        self.placement = placement or ffs_va_placement()
        cfg = self.config
        depth = (
            (lambda s: cfg.queue_depth(s)) if cfg.bounded_queues else (lambda s: None)
        )
        self.ctxs = [
            _StreamCtx(
                stream=s,
                bundle=zoo[s.stream_id],
                sdd_q=FeedbackQueue(depth("sdd"), f"sdd[{i}]"),
                snm_q=FeedbackQueue(depth("snm"), f"snm[{i}]"),
                tyolo_q=FeedbackQueue(depth("tyolo"), f"tyolo[{i}]"),
            )
            for i, s in enumerate(streams)
        ]
        ref_depth = None if cfg.ref_overflow_to_storage else depth("ref")
        self.ref_q = FeedbackQueue(ref_depth, "ref")
        self.outcomes: list[FrameOutcome] = []
        self._outcome_lock = threading.Lock()
        self.metrics = RunMetrics(n_streams=len(streams))
        self._stage_lock = threading.Lock()
        self._gpu0 = self.placement.devices["gpu0"].lock
        self._gpu1 = self.placement.devices["gpu1"].lock
        self._errors: list[BaseException] = []
        self._abort = threading.Event()

    # ------------------------------------------------------------------
    def _record(self, ctx: _StreamCtx, work: _Work, stage: str, ref_count=None):
        outcome = FrameOutcome(
            stream_id=ctx.stream.stream_id,
            index=work.index,
            stage=stage,
            ref_count=ref_count,
            latency=time.monotonic() - work.t_start,
        )
        with self._outcome_lock:
            self.outcomes.append(outcome)

    def _count(self, stage: str, n_in: int, n_pass: int) -> None:
        with self._stage_lock:
            self.metrics.stages[stage].record(n_in, n_pass)

    def _put(self, queue: FeedbackQueue, item) -> bool:
        """Blocking put that gives up when the pipeline is aborting.

        Without this, a worker dying downstream would leave its producer
        blocked forever on a full feedback queue.
        """
        while not self._abort.is_set():
            if queue.put(item, timeout=0.1):
                return True
        return False

    # ------------------------------------------------------------------
    # stage workers
    # ------------------------------------------------------------------
    def _prefetch_worker(self, idx: int, n_frames: int, paced_fps: float | None):
        ctx = self.ctxs[idx]
        t0 = time.monotonic()
        try:
            for i in range(n_frames):
                if paced_fps is not None:
                    target = t0 + i / paced_fps
                    delay = target - time.monotonic()
                    if delay > 0:
                        time.sleep(delay)
                pixels = ctx.stream.pixels(i)
                if not self._put(ctx.sdd_q, _Work(idx, i, pixels, time.monotonic())):
                    return
        except BaseException as exc:  # pragma: no cover - defensive
            self._errors.append(exc)
            self._abort.set()
        finally:
            ctx.sdd_q.close()

    def _sdd_worker(self, idx: int):
        ctx = self.ctxs[idx]
        sdd = ctx.bundle.sdd
        try:
            while True:
                batch = ctx.sdd_q.pop_batch(16, timeout=0.05)
                if not batch:
                    if self._abort.is_set() or (
                        ctx.sdd_q.closed and len(ctx.sdd_q) == 0
                    ):
                        break
                    continue
                pixels = np.stack([w.pixels for w in batch])
                passes = sdd.passes(pixels)
                self._count("sdd", len(batch), int(passes.sum()))
                for work, ok in zip(batch, passes):
                    if ok:
                        if not self._put(ctx.snm_q, work):
                            return
                    else:
                        self._record(ctx, work, "sdd")
        except BaseException as exc:
            self._errors.append(exc)
            self._abort.set()
        finally:
            ctx.snm_q.close()

    def _snm_worker(self, idx: int):
        ctx = self.ctxs[idx]
        snm = ctx.bundle.snm
        cfg = self.config
        min_n = 1
        if cfg.batch_policy in ("static", "feedback"):
            min_n = cfg.batch_size
            if cfg.batch_policy == "feedback":
                min_n = min(min_n, cfg.queue_depth("snm"))
        try:
            while True:
                batch = ctx.snm_q.pop_batch(cfg.batch_size, min_n=min_n, timeout=0.05)
                if not batch:
                    if self._abort.is_set() or (
                        ctx.snm_q.closed and len(ctx.snm_q) == 0
                    ):
                        break
                    continue
                pixels = np.stack([w.pixels for w in batch])
                with self._gpu0:
                    probs = snm.predict_proba(pixels)
                passes = snm.passes(probs, cfg.filter_degree)
                self._count("snm", len(batch), int(passes.sum()))
                for work, ok in zip(batch, passes):
                    if ok:
                        if not self._put(ctx.tyolo_q, work):
                            return
                    else:
                        self._record(ctx, work, "snm")
        except BaseException as exc:
            self._errors.append(exc)
            self._abort.set()
        finally:
            ctx.tyolo_q.close()

    def _tyolo_worker(self):
        cfg = self.config
        tyolo = self.zoo.tyolo
        try:
            while True:
                all_done = True
                any_served = False
                for ctx in self.ctxs:
                    if not (ctx.tyolo_q.closed and len(ctx.tyolo_q) == 0):
                        all_done = False
                    batch = ctx.tyolo_q.pop_batch(
                        cfg.num_t_yolo, min_n=1, timeout=0.0
                    )
                    if not batch:
                        continue
                    any_served = True
                    pixels = np.stack([w.pixels for w in batch])
                    with self._gpu0:
                        counts = tyolo.count_batch(pixels, ctx.bundle.background)
                    effective = max(1, cfg.number_of_objects - cfg.relax)
                    passes = counts >= effective
                    self._count("tyolo", len(batch), int(passes.sum()))
                    for work, ok in zip(batch, passes):
                        if ok:
                            if not self._put(self.ref_q, work):
                                return
                        else:
                            self._record(ctx, work, "tyolo")
                if all_done or self._abort.is_set():
                    break
                if not any_served:
                    time.sleep(0.002)
        except BaseException as exc:
            self._errors.append(exc)
            self._abort.set()
        finally:
            self.ref_q.close()

    def _ref_worker(self):
        ref = self.zoo.reference
        try:
            while True:
                batch = self.ref_q.pop_batch(1, timeout=0.05)
                if not batch:
                    if self._abort.is_set() or (
                        self.ref_q.closed and len(self.ref_q) == 0
                    ):
                        break
                    continue
                work = batch[0]
                ctx = self.ctxs[work.stream_idx]
                with self._gpu1:
                    count = ref.count(work.pixels, ctx.bundle.background)
                self._count("ref", 1, 1)
                self._record(ctx, work, "ref", ref_count=int(count))
        except BaseException as exc:
            self._errors.append(exc)
            self._abort.set()

    # ------------------------------------------------------------------
    def run(
        self,
        n_frames: int | None = None,
        *,
        online: bool = False,
        paced_fps: float | None = None,
    ) -> RunMetrics:
        """Process every stream to completion and return metrics.

        ``online=True`` paces each prefetcher at ``paced_fps`` (default the
        config's ``stream_fps``); offline mode renders as fast as possible.
        """
        fps = (paced_fps or self.config.stream_fps) if online else None
        counts = [
            len(ctx.stream) if n_frames is None else min(n_frames, len(ctx.stream))
            for ctx in self.ctxs
        ]
        threads = []
        for i, ctx in enumerate(self.ctxs):
            threads.append(
                threading.Thread(
                    target=self._prefetch_worker, args=(i, counts[i], fps), daemon=True
                )
            )
            threads.append(threading.Thread(target=self._sdd_worker, args=(i,), daemon=True))
            threads.append(threading.Thread(target=self._snm_worker, args=(i,), daemon=True))
        threads.append(threading.Thread(target=self._tyolo_worker, daemon=True))
        threads.append(threading.Thread(target=self._ref_worker, daemon=True))

        t0 = time.monotonic()
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        duration = time.monotonic() - t0
        if self._errors:
            raise RuntimeError(f"pipeline worker failed: {self._errors[0]!r}") from self._errors[0]

        m = self.metrics
        m.duration = duration
        m.frames_offered = sum(counts)
        m.frames_ingested = sum(counts)
        m.frames_to_ref = sum(1 for o in self.outcomes if o.stage == "ref")
        ref_lat = [o.latency for o in self.outcomes if o.stage == "ref"]
        m.ref_latency = LatencyStats.from_samples(ref_lat)
        m.frame_latency = LatencyStats.from_samples([o.latency for o in self.outcomes])
        m.queue_high_water = {
            **{f"sdd[{i}]": c.sdd_q.high_water for i, c in enumerate(self.ctxs)},
            **{f"snm[{i}]": c.snm_q.high_water for i, c in enumerate(self.ctxs)},
            **{f"tyolo[{i}]": c.tyolo_q.high_water for i, c in enumerate(self.ctxs)},
            "ref": self.ref_q.high_water,
        }
        return m
