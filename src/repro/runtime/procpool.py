"""Process-pool stage executor over the shared-memory frame plane.

The threaded runtime is GIL-bound: per-stream SDD workers serialize on the
interpreter, so adding streams adds contention instead of throughput.
Stages that opt in with ``StageSpec.executor = "process"`` (SDD is the
flagship — the paper runs it on CPU at ~20K FPS) dispatch their batches to
a :class:`ProcPool` of worker processes instead of evaluating inline.

Pixel payloads never cross the process boundary: the dispatching thread
copies the stacked batch into a :class:`~repro.video.frame.SharedFramePlane`
slot and sends only a :class:`~repro.video.frame.FrameDescriptor` (slab
name, slot, offset, shape, dtype); the worker maps a zero-copy view and
returns just the boolean pass mask.

Lifecycle and fault model
-------------------------
* Workers are started once per run, before the runtime's own threads (so a
  ``fork`` start method never forks a multi-threaded parent), and stopped
  with ``None`` sentinels on :meth:`ProcPool.shutdown`.
* Each worker has its *own* task queue.  That makes crash recovery exact: a
  monitor thread polls liveness, and when a worker dies its in-flight tasks
  — known precisely because results resolve them — are requeued onto the
  surviving workers.  A batch is lost only when every worker is gone, which
  surfaces as a pipeline error, never a hang.
* The parent owns frame-plane slots end-to-end: a slot is acquired before
  dispatch and released when the batch's future resolves (result, requeue
  included, or failure).  Workers never free slots, so a crash cannot leak
  or double-free one.

Per-worker execution counters (batches, frames, busy seconds) are collected
with the results and merged into ``RunMetrics.extra["procpool"]``.
"""

from __future__ import annotations

import multiprocessing as mp
import threading
import time
from dataclasses import dataclass, field

import numpy as np

from ..video.frame import SharedFramePlane

__all__ = ["ProcPool", "PoolStats"]

#: Poll interval for future waits and worker liveness checks (seconds).
_POLL = 0.05


@dataclass
class PoolStats:
    """Aggregated execution counters for one pool."""

    workers: int = 0
    tasks: int = 0
    frames: int = 0
    exec_seconds: float = 0.0
    crashed_workers: int = 0
    requeued_tasks: int = 0
    lost_tasks: int = 0
    per_worker: dict = field(default_factory=dict)

    def as_dict(self) -> dict:
        return {
            "workers": self.workers,
            "tasks": self.tasks,
            "frames": self.frames,
            "exec_seconds": self.exec_seconds,
            "crashed_workers": self.crashed_workers,
            "requeued_tasks": self.requeued_tasks,
            "lost_tasks": self.lost_tasks,
            "per_worker": dict(self.per_worker),
        }


class _Future:
    __slots__ = ("event", "passes", "info", "exec_seconds", "error")

    def __init__(self):
        self.event = threading.Event()
        self.passes = None
        self.info = None
        self.exec_seconds = 0.0
        self.error: str | None = None


def _worker_main(worker_id, slab_name, task_q, result_q, evaluate, bundles, zoo, config):
    """Worker-process loop: view the batch, evaluate, send the mask back."""
    plane = SharedFramePlane.attach(slab_name)
    try:
        while True:
            item = task_q.get()
            if item is None:
                break
            task_id, desc, stream_idx = item
            try:
                pixels = plane.view(desc)
                batch_bundles = [bundles[i] for i in stream_idx]
                t0 = time.perf_counter()
                passes, info = evaluate(pixels, batch_bundles, zoo, config)
                dt = time.perf_counter() - t0
                passes = np.asarray(passes, dtype=bool)
                info = None if info is None else np.asarray(info)
                result_q.put((task_id, worker_id, passes, info, dt, None))
            except BaseException as exc:
                result_q.put((task_id, worker_id, None, None, 0.0, repr(exc)))
    finally:
        plane.close()


class ProcPool:
    """N worker processes executing one stage's batches off-thread.

    Parameters
    ----------
    evaluate:
        The stage's ``StageLogic.evaluate`` (a module-level function, so it
        pickles under the ``spawn`` start method too).
    bundles:
        Per-stream model bundles, indexed by stream index.
    slot_bytes:
        Size of one frame-plane slot — must hold the largest stacked batch
        the stage can dispatch.
    """

    def __init__(
        self,
        name: str,
        evaluate,
        bundles: list,
        zoo,
        config,
        n_workers: int,
        *,
        slot_bytes: int,
        slots: int | None = None,
        start_method: str | None = None,
    ):
        if n_workers < 1:
            raise ValueError("n_workers must be >= 1")
        self.name = name
        methods = mp.get_all_start_methods()
        if start_method is None:
            start_method = "fork" if "fork" in methods else "spawn"
        ctx = mp.get_context(start_method)
        # Enough slots that every worker can hold one batch while the
        # dispatchers stage the next ones; acquire() blocking is the
        # back-pressure path, not the steady state.
        self.plane = SharedFramePlane(slots or max(2 * n_workers, 4), slot_bytes)
        self._result_q = ctx.Queue()
        self._task_qs = []
        self._procs = []
        for wid in range(n_workers):
            tq = ctx.Queue()
            proc = ctx.Process(
                target=_worker_main,
                args=(wid, self.plane.name, tq, self._result_q, evaluate, bundles, zoo, config),
                name=f"{name}-pool-{wid}",
                daemon=True,
            )
            self._task_qs.append(tq)
            self._procs.append(proc)
        for proc in self._procs:
            proc.start()

        self.stats = PoolStats(workers=n_workers)
        self._lock = threading.Lock()
        self._futures: dict[int, _Future] = {}
        #: worker id -> {task_id: task tuple} — exactly what a crashed
        #: worker might have dropped on the floor.
        self._inflight: dict[int, dict[int, tuple]] = {wid: {} for wid in range(n_workers)}
        self._dead: set[int] = set()
        self._next_task = 0
        self._rr = 0
        self._stopping = threading.Event()
        self._collector = threading.Thread(
            target=self._collect_loop, name=f"{name}-pool-collect", daemon=True
        )
        self._monitor = threading.Thread(
            target=self._monitor_loop, name=f"{name}-pool-monitor", daemon=True
        )
        self._collector.start()
        self._monitor.start()

    # ------------------------------------------------------------------
    def run_batch(
        self,
        pixels: np.ndarray,
        stream_idx: list[int],
        abort: threading.Event | None = None,
    ) -> tuple[np.ndarray, np.ndarray | None, float]:
        """Execute one stacked batch on a worker; blocks until resolved.

        Returns ``(passes, info, exec_seconds)`` — the same contract as
        calling the stage logic inline.  Raises ``RuntimeError`` if the
        batch failed in (or outlived) every worker, and returns a
        conservative all-``False`` mask only on abort, where the caller is
        about to record the frames as aborted anyway.
        """
        pixels = np.ascontiguousarray(pixels)
        while True:
            try:
                slot = self.plane.acquire(pixels.nbytes, timeout=_POLL)
                break
            except TimeoutError:
                if abort is not None and abort.is_set():
                    return np.zeros(len(pixels), dtype=bool), None, 0.0
        try:
            desc = self.plane.write(slot, pixels)
            fut = _Future()
            with self._lock:
                task_id = self._next_task
                self._next_task += 1
                self._futures[task_id] = fut
                task = (task_id, desc, tuple(int(i) for i in stream_idx))
                wid = self._pick_worker_locked()
                if wid is None:
                    self._futures.pop(task_id, None)
                    raise RuntimeError(f"{self.name} pool has no live workers")
                self._inflight[wid][task_id] = task
            self._task_qs[wid].put(task)
            while not fut.event.wait(_POLL):
                if abort is not None and abort.is_set():
                    with self._lock:
                        self._futures.pop(task_id, None)
                        for inflight in self._inflight.values():
                            inflight.pop(task_id, None)
                    return np.zeros(len(pixels), dtype=bool), None, 0.0
            if fut.error is not None:
                raise RuntimeError(f"{self.name} pool batch failed: {fut.error}")
            return fut.passes, fut.info, fut.exec_seconds
        finally:
            self.plane.release(slot)

    def _pick_worker_locked(self) -> int | None:
        n = len(self._procs)
        for off in range(n):
            wid = (self._rr + off) % n
            if wid not in self._dead:
                self._rr = (wid + 1) % n
                return wid
        return None

    # ------------------------------------------------------------------
    def _collect_loop(self) -> None:
        import queue as _queue

        while not (self._stopping.is_set() and not self._futures):
            try:
                task_id, wid, passes, info, dt, error = self._result_q.get(timeout=_POLL)
            except _queue.Empty:
                continue
            except (EOFError, OSError):  # pragma: no cover - queue torn down
                break
            with self._lock:
                for inflight in self._inflight.values():
                    inflight.pop(task_id, None)
                fut = self._futures.pop(task_id, None)
                stats = self.stats
                w = stats.per_worker.setdefault(
                    wid, {"tasks": 0, "frames": 0, "exec_seconds": 0.0}
                )
                if error is None:
                    stats.tasks += 1
                    stats.frames += len(passes)
                    stats.exec_seconds += dt
                    w["tasks"] += 1
                    w["frames"] += len(passes)
                    w["exec_seconds"] += dt
            if fut is not None:
                # A requeued task can resolve twice; first result wins and
                # later duplicates find no future (results are deterministic
                # either way).
                fut.passes, fut.info = passes, info
                fut.exec_seconds, fut.error = dt, error
                fut.event.set()

    def _monitor_loop(self) -> None:
        while not self._stopping.wait(_POLL * 2):
            for wid, proc in enumerate(self._procs):
                if wid in self._dead or proc.is_alive():
                    continue
                self._on_worker_death(wid)

    def _on_worker_death(self, wid: int) -> None:
        with self._lock:
            if wid in self._dead:
                return
            self._dead.add(wid)
            self.stats.crashed_workers += 1
            orphans = list(self._inflight[wid].values())
            self._inflight[wid].clear()
            redispatch = []
            for task in orphans:
                new_wid = self._pick_worker_locked()
                if new_wid is None:
                    fut = self._futures.pop(task[0], None)
                    if fut is not None:
                        self.stats.lost_tasks += 1
                        fut.error = f"worker {wid} crashed with no survivors"
                        fut.event.set()
                    continue
                self.stats.requeued_tasks += 1
                self._inflight[new_wid][task[0]] = task
                redispatch.append((new_wid, task))
        for new_wid, task in redispatch:
            self._task_qs[new_wid].put(task)

    # ------------------------------------------------------------------
    def shutdown(self, timeout: float = 5.0) -> PoolStats:
        """Stop workers (sentinel, then terminate stragglers) and reap."""
        for wid, tq in enumerate(self._task_qs):
            if wid not in self._dead:
                try:
                    tq.put(None)
                except (ValueError, OSError):  # pragma: no cover
                    pass
        deadline = time.monotonic() + timeout
        for proc in self._procs:
            proc.join(timeout=max(0.0, deadline - time.monotonic()))
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._stopping.set()
        # Fail any future still unresolved so no dispatcher hangs.
        with self._lock:
            for task_id, fut in list(self._futures.items()):
                fut.error = "pool shut down with task unresolved"
                fut.event.set()
                self._futures.pop(task_id, None)
        self._collector.join(timeout=2.0)
        self._monitor.join(timeout=2.0)
        for tq in self._task_qs:
            tq.close()
            tq.cancel_join_thread()
        self._result_q.close()
        self._result_q.cancel_join_thread()
        self.plane.close()
        try:
            self.plane.unlink()
        except FileNotFoundError:  # pragma: no cover
            pass
        return self.stats
