"""Evaluation analytics: TOR, accuracy, and error statistics."""

from .accuracy import (
    ErrorRunStats,
    SceneAccuracy,
    error_rate,
    error_run_stats,
    false_negative_mask,
    oracle_positive,
    scene_accuracy,
)
from .detection_eval import (
    average_precision,
    evaluate_map,
    iou,
    match_detections,
    precision_recall,
)
from .tor import sliding_tor, tor_of_counts, tor_of_trace

__all__ = [
    "oracle_positive",
    "false_negative_mask",
    "error_rate",
    "SceneAccuracy",
    "scene_accuracy",
    "ErrorRunStats",
    "error_run_stats",
    "tor_of_counts",
    "tor_of_trace",
    "sliding_tor",
    "iou",
    "match_detections",
    "precision_recall",
    "average_precision",
    "evaluate_map",
]
