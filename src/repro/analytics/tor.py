"""Target-object-ratio (TOR) utilities — Equation 1 of the paper.

``TOR = num_target_object_frames / num_all_frames`` over a window of
frames.  TOR "is primarily determined by both video contents and filtering
conditions": the same clip has different TORs for different
``NumberofObjects`` thresholds, and different TORs over time.
"""

from __future__ import annotations

import numpy as np

from ..core.pipeline import REF, TYOLO
from ..core.trace import FrameTrace

__all__ = ["tor_of_counts", "tor_of_trace", "sliding_tor"]


def tor_of_counts(counts: np.ndarray, number_of_objects: int = 1) -> float:
    """TOR of a per-frame count vector at an intensity threshold."""
    counts = np.asarray(counts)
    if counts.size == 0:
        return 0.0
    return float((counts >= number_of_objects).mean())


def tor_of_trace(
    trace: FrameTrace,
    *,
    number_of_objects: int = 1,
    source: str = "gt",
) -> float:
    """TOR of a trace, from ground truth (``"gt"``), the reference model
    (``"ref"``), or T-YOLO (``"tyolo"``) counts."""
    if source == "gt":
        counts = trace.gt_count
    elif source == REF:
        if trace.ref_count is None:
            raise ValueError("trace has no reference counts")
        counts = trace.ref_count
    elif source == TYOLO:
        counts = trace.tyolo_count
    else:
        raise ValueError(f"unknown source {source!r}")
    return tor_of_counts(counts, number_of_objects)


def sliding_tor(
    counts: np.ndarray, window: int, number_of_objects: int = 1
) -> np.ndarray:
    """TOR over a sliding window (how TOR fluctuates through the day).

    Returns one value per full window position (length ``n - window + 1``),
    computed with a cumulative sum so large traces stay cheap.
    """
    counts = np.asarray(counts)
    if window < 1:
        raise ValueError("window must be >= 1")
    if counts.size < window:
        return np.empty(0, dtype=np.float64)
    hits = (counts >= number_of_objects).astype(np.float64)
    csum = np.concatenate(([0.0], np.cumsum(hits)))
    return (csum[window:] - csum[:-window]) / window
