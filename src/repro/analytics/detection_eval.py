"""Detection-quality evaluation: IoU matching, precision/recall, AP/mAP.

Section 2.2 frames the whole design space in mAP terms (R-CNN 53.7% ...
YOLOv2 76.8% on PASCAL VOC).  This module provides the standard evaluation
machinery so the reproduction's detectors can be scored the same way
against the synthetic ground truth: greedy IoU matching per frame, a
precision-recall sweep over confidence thresholds, 11-point interpolated
average precision (the VOC metric), and mAP across classes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..models.griddet import Detection
from ..video.frame import GroundTruthObject

__all__ = [
    "iou",
    "match_detections",
    "PRPoint",
    "precision_recall",
    "average_precision",
    "evaluate_map",
    "evaluate_map_from_store",
]


def iou(box_a: tuple[float, float, float, float], box_b: tuple[float, float, float, float]) -> float:
    """Intersection-over-union of two ``(x0, y0, x1, y1)`` boxes."""
    ax0, ay0, ax1, ay1 = box_a
    bx0, by0, bx1, by1 = box_b
    ix0, iy0 = max(ax0, bx0), max(ay0, by0)
    ix1, iy1 = min(ax1, bx1), min(ay1, by1)
    iw, ih = max(0.0, ix1 - ix0), max(0.0, iy1 - iy0)
    inter = iw * ih
    area_a = max(0.0, ax1 - ax0) * max(0.0, ay1 - ay0)
    area_b = max(0.0, bx1 - bx0) * max(0.0, by1 - by0)
    union = area_a + area_b - inter
    return inter / union if union > 0 else 0.0


def match_detections(
    detections: list[Detection],
    truths: list[GroundTruthObject],
    *,
    iou_threshold: float = 0.5,
    frame_hw: tuple[int, int] | None = None,
) -> tuple[list[bool], int]:
    """Greedy confidence-ordered matching of detections to ground truth.

    Returns ``(is_true_positive per detection, number of ground truths)``.
    Each truth matches at most one detection (the standard VOC protocol).
    Ground-truth boxes are clipped to the frame when ``frame_hw`` is given,
    since detectors can only see the visible part of an entering object.
    """
    if frame_hw is not None:
        h, w = frame_hw
        gt_boxes = [t.clipped_bbox(h, w) for t in truths]
    else:
        gt_boxes = [t.bbox() for t in truths]
    used = [False] * len(gt_boxes)
    order = sorted(range(len(detections)), key=lambda i: -detections[i].confidence)
    tp = [False] * len(detections)
    for i in order:
        d = detections[i]
        best_j, best_iou = -1, iou_threshold
        for j, gt in enumerate(gt_boxes):
            if used[j]:
                continue
            value = iou((d.x0, d.y0, d.x1, d.y1), gt)
            if value >= best_iou:
                best_j, best_iou = j, value
    # The paper's detectors box loosely at 13x13 granularity; greedy best
    # match is taken, ties by confidence order.
        if best_j >= 0:
            used[best_j] = True
            tp[i] = True
    return tp, len(gt_boxes)


@dataclass(frozen=True)
class PRPoint:
    """One precision/recall point."""

    precision: float
    recall: float
    confidence: float


def precision_recall(
    scored: list[tuple[float, bool]], n_truth: int
) -> list[PRPoint]:
    """PR curve from ``(confidence, is_tp)`` pairs over a whole dataset."""
    if n_truth <= 0:
        return []
    ordered = sorted(scored, key=lambda p: -p[0])
    points = []
    tp = fp = 0
    for conf, is_tp in ordered:
        if is_tp:
            tp += 1
        else:
            fp += 1
        points.append(
            PRPoint(
                precision=tp / (tp + fp),
                recall=tp / n_truth,
                confidence=conf,
            )
        )
    return points


def average_precision(points: list[PRPoint]) -> float:
    """11-point interpolated AP (the PASCAL VOC metric the paper quotes)."""
    if not points:
        return 0.0
    ap = 0.0
    for r in np.linspace(0.0, 1.0, 11):
        precisions = [p.precision for p in points if p.recall >= r]
        ap += max(precisions) if precisions else 0.0
    return ap / 11.0


def evaluate_map(
    detector,
    stream,
    frame_indices,
    *,
    iou_threshold: float = 0.4,
    min_visibility: float = 0.25,
) -> dict:
    """Score a detector against a stream's ground truth.

    Runs ``detector.detect(pixels, background)`` over the given frames and
    returns per-class AP plus the mean (mAP), the VOC-style summary the
    paper uses to compare model tiers.  ``iou_threshold`` defaults below
    the photographic 0.5 because grid detectors box at cell granularity.
    """
    background = stream.reference_image()
    per_class: dict[str, list[tuple[float, bool]]] = {}
    truth_counts: dict[str, int] = {}
    for t in frame_indices:
        frame = stream.frame(int(t))
        truths = [a for a in frame.annotations if a.visibility >= min_visibility]
        detections = detector.detect(frame.pixels, background)
        # Single-target streams: compare boxes irrespective of predicted
        # class label (the zoo's counting convention), but bucket by the
        # stream's kind for reporting.
        tp, n_truth = match_detections(
            detections, truths, iou_threshold=iou_threshold, frame_hw=frame.shape
        )
        kind = stream.kind
        bucket = per_class.setdefault(kind, [])
        truth_counts[kind] = truth_counts.get(kind, 0) + n_truth
        for d, is_tp in zip(detections, tp):
            bucket.append((d.confidence, is_tp))

    aps = {
        kind: average_precision(precision_recall(scored, truth_counts.get(kind, 0)))
        for kind, scored in per_class.items()
    }
    return {
        "per_class_ap": aps,
        "map": float(np.mean(list(aps.values()))) if aps else 0.0,
        "n_truth": truth_counts,
    }


def evaluate_map_from_store(
    detector,
    stream,
    reader,
    *,
    stream_id: str | None = None,
    t0: float = float("-inf"),
    t1: float = float("inf"),
    disposition: str = "detected",
    iou_threshold: float = 0.4,
    min_visibility: float = 0.25,
) -> dict:
    """:func:`evaluate_map`, but the frame set comes from a persisted run.

    Instead of an in-memory index list, the frames to score are the ones a
    detection-store query matches — so a run persisted with
    ``result_store_dir`` can be evaluated after the fact (or remotely) with
    no pipeline state.  ``reader`` is any store reader from
    :mod:`repro.store`; ``stream_id`` defaults to the stream's own id.
    """
    from ..store.query import detected_frames

    if stream_id is None:
        stream_id = stream.stream_id
    frames = detected_frames(
        reader, stream_id, t0=t0, t1=t1, disposition=disposition
    )
    frames = [f for f in frames if 0 <= f < len(stream)]
    result = evaluate_map(
        detector,
        stream,
        frames,
        iou_threshold=iou_threshold,
        min_visibility=min_visibility,
    )
    result["n_frames"] = len(frames)
    return result
