"""Accuracy analytics: error rate, scene-level accuracy, Table 2 statistics.

The paper's accuracy methodology (Sections 3.3 and 5.3.3):

* The oracle is the reference model run over **every** frame: "To verify the
  accuracy of FFS-VA, all the filtered frames by FFS-VA are completely
  detected by the reference model YOLOv2."
* A **false negative** is a frame the oracle flags as target-positive that
  some prepositive filter dropped; the **error rate** is "the number of all
  false-negative frames divided by the number of all input frames".
* Users care about **scenes**, not frames: a scene (a maximal run of
  consecutive target frames) counts as detected if at least one of its
  frames survives the cascade.  Only scenes losing *all* their frames are
  real misses.
* Table 2 categorizes false-negative frames by run length: isolated single
  frames, 2-3 frame runs, runs shorter than 30 frames, and runs of 30+
  frames (the only category that threatens whole scenes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..core.config import FFSVAConfig
from ..core.trace import FrameTrace
from ..video.scene import scenes_from_counts

__all__ = [
    "oracle_positive",
    "false_negative_mask",
    "error_rate",
    "SceneAccuracy",
    "scene_accuracy",
    "ErrorRunStats",
    "error_run_stats",
]


def oracle_positive(trace: FrameTrace, number_of_objects: int = 1) -> np.ndarray:
    """Frames the reference model would report as matching the event."""
    if trace.ref_count is None:
        raise ValueError(
            "trace has no reference-model counts; rebuild with with_ref=True"
        )
    return trace.ref_count >= number_of_objects


def false_negative_mask(trace: FrameTrace, config: FFSVAConfig) -> np.ndarray:
    """Oracle-positive frames that the prepositive filters dropped."""
    survived = trace.cascade_pass(
        config.filter_degree, config.number_of_objects, config.relax
    )
    return oracle_positive(trace, config.number_of_objects) & ~survived


def error_rate(trace: FrameTrace, config: FFSVAConfig) -> float:
    """False-negative frames / all input frames (the paper's definition)."""
    if len(trace) == 0:
        return 0.0
    return float(false_negative_mask(trace, config).mean())


@dataclass(frozen=True)
class SceneAccuracy:
    """Scene-level detection outcome."""

    n_scenes: int
    n_detected: int
    n_lost: int
    lost_frames: int  # frames belonging to fully-lost scenes
    total_frames: int

    @property
    def scene_loss_rate(self) -> float:
        return self.n_lost / self.n_scenes if self.n_scenes else 0.0

    @property
    def detection_rate(self) -> float:
        return self.n_detected / self.n_scenes if self.n_scenes else 1.0

    @property
    def lost_frame_rate(self) -> float:
        """Fraction of all frames inside fully-lost scenes (the <2% claim)."""
        return self.lost_frames / self.total_frames if self.total_frames else 0.0


def scene_accuracy(
    trace: FrameTrace,
    config: FFSVAConfig,
    *,
    use_oracle_scenes: bool = True,
) -> SceneAccuracy:
    """Scene-level accuracy of the cascade against the oracle.

    Scenes are maximal runs of consecutive positive frames, taken from the
    reference-model oracle by default (ground truth with
    ``use_oracle_scenes=False``).  A scene is detected iff any of its frames
    survives all three filters.
    """
    if use_oracle_scenes:
        counts = np.asarray(
            oracle_positive(trace, config.number_of_objects), dtype=np.int64
        )
    else:
        counts = (trace.gt_count >= config.number_of_objects).astype(np.int64)
    survived = trace.cascade_pass(
        config.filter_degree, config.number_of_objects, config.relax
    )
    scenes = scenes_from_counts(counts)
    detected = 0
    lost_frames = 0
    for start, stop in scenes:
        if survived[start:stop].any():
            detected += 1
        else:
            lost_frames += stop - start
    return SceneAccuracy(
        n_scenes=len(scenes),
        n_detected=detected,
        n_lost=len(scenes) - detected,
        lost_frames=lost_frames,
        total_frames=len(trace),
    )


@dataclass(frozen=True)
class ErrorRunStats:
    """Table 2: false-negative frames grouped by run length (frame counts)."""

    isolated_single: int  # runs of exactly 1 frame
    isolated_short: int  # runs of 2-3 frames
    continuous_short: int  # runs of 4-29 frames
    continuous_long: int  # runs of >= 30 frames

    @property
    def total(self) -> int:
        return (
            self.isolated_single
            + self.isolated_short
            + self.continuous_short
            + self.continuous_long
        )

    def as_rows(self) -> list[tuple[str, int]]:
        """Rows in the paper's Table 2 order."""
        return [
            ("An isolated single error frame", self.isolated_single),
            ("2-3 isolated-continuous error frames", self.isolated_short),
            ("Continuously-error frames less than 30", self.continuous_short),
            ("Continuously-error frames more than 30", self.continuous_long),
        ]


def error_run_stats(trace: FrameTrace, config: FFSVAConfig) -> ErrorRunStats:
    """Categorize false-negative frames by consecutive-run length."""
    fn = false_negative_mask(trace, config)
    single = short = mid = long_ = 0
    for start, stop in scenes_from_counts(fn.astype(np.int64)):
        run = stop - start
        if run == 1:
            single += run
        elif run <= 3:
            short += run
        elif run < 30:
            mid += run
        else:
            long_ += run
    return ErrorRunStats(single, short, mid, long_)
