"""Simulated heterogeneous server: devices, cost model, placements."""

from .costs import STAGES, CostModel
from .device import Device, standard_server
from .placement import Placement, baseline_placement, ffs_va_placement

__all__ = [
    "CostModel",
    "STAGES",
    "Device",
    "standard_server",
    "Placement",
    "ffs_va_placement",
    "baseline_placement",
]
