"""Simulated heterogeneous server: devices, cost model, placements."""

from .costs import CostModel
from .device import Device, standard_server
from .placement import Placement, baseline_placement, ffs_va_placement

__all__ = [
    "CostModel",
    "STAGES",
    "Device",
    "standard_server",
    "Placement",
    "ffs_va_placement",
    "baseline_placement",
]


def __getattr__(name: str):
    # Lazy back-compat re-export; the canonical names live in core.pipeline.
    if name == "STAGES":
        from ..core.pipeline import STAGES

        return STAGES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
