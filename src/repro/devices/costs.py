"""Calibrated service-time model for the heterogeneous server.

The evaluation platform in the paper is a commodity server with two NVIDIA
GTX1080 GPUs and dual Xeon E5-2683v3 CPUs.  We reproduce its *timing
behaviour* with a cost model calibrated against every number the paper
reports:

===========  =======================  =============================
Quantity      Paper figure             Where stated
===========  =======================  =============================
SDD           100K FPS raw (100x100)   Section 3.2.1
SDD resize    40 us / frame            Section 4.1
SDD e2e       ~20K FPS                 Figure 5 caption
SNM           5K FPS raw (50x50)       Section 3.2.2
SNM resize    150 us / frame           Section 4.1
SNM e2e       ~2K FPS (batched)        Figure 5 caption
T-YOLO        220 FPS raw (416x416)    Section 3.2.3
T-YOLO resize 400 us / frame           Section 4.1
T-YOLO e2e    ~200 FPS                 Figure 5 caption
YOLOv2        67 FPS raw               Sections 1/2.2
YOLOv2 e2e    ~56 FPS                  Figure 5 caption
===========  =======================  =============================

The batched SNM service time is ``overhead + n * per_frame``: the overhead
term models loading the stream's model weights onto the GPU plus host-device
transfer, which is exactly what the paper's dynamic-batch mechanism
amortizes ("when the batch size is 30, the frequency of model loads is
reduced by 30x").  With the defaults below the effective SNM rate crosses
2K FPS at batch sizes around 10, matching the Figure 5 caption.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

__all__ = ["CostModel", "Stage", "STAGES"]

Stage = str


def __getattr__(name: str):
    # Backwards-compatible re-export: the canonical stage names now live in
    # the stage-graph control plane.  Resolved lazily because the devices
    # layer is imported *by* repro.core at module-load time.
    if name == "STAGES":
        from ..core.pipeline import STAGES

        return STAGES
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


@dataclass(frozen=True)
class CostModel:
    """Per-stage timing parameters, in seconds."""

    # Raw per-frame inference times.
    sdd_infer: float = 1.0 / 100_000
    snm_infer: float = 1.0 / 5_000
    tyolo_infer: float = 1.0 / 220
    ref_infer: float = 1.0 / 67

    # Per-frame resize (performed before each filter, Section 4.1).
    sdd_resize: float = 40e-6
    snm_resize: float = 150e-6
    tyolo_resize: float = 400e-6
    ref_resize: float = 400e-6

    # Per-batch fixed overhead: model (re)load + kernel launch + host<->device
    # transfer setup.  SNM pays the most because every stream has its own
    # weights; T-YOLO and the reference model stay resident.
    snm_batch_overhead: float = 3.0e-3
    tyolo_batch_overhead: float = 0.6e-3
    ref_batch_overhead: float = 2.0e-3

    # Per-frame host->device pixel transfer.
    transfer_per_frame: float = 20e-6

    # SDD end-to-end per-frame extras beyond resize (decode/copy bookkeeping);
    # chosen so SDD lands at the ~20K FPS end-to-end figure.
    sdd_overhead: float = 0.0

    # Mosaic T-YOLO consolidation: CPU-side cost of copying one active
    # region onto a composite canvas (a few-KB memcpy plus packer
    # bookkeeping).  The detector itself then runs once per canvas at the
    # full ``tyolo_infer`` rate — a canvas is exactly one native 416x416
    # input — which is where the consolidation speedup comes from.
    mosaic_pack_per_region: float = 30e-6

    @lru_cache(maxsize=None)
    def _stage_params(self) -> dict:
        """Stage -> (per-batch overhead, per-frame time).

        Deferred import: the devices layer loads before the core package
        that owns the canonical stage names.
        """
        from ..core.pipeline import REF, SDD, SNM, TYOLO

        return {
            SDD: (0.0, self.sdd_infer + self.sdd_resize + self.sdd_overhead),
            SNM: (
                self.snm_batch_overhead,
                self.snm_infer + self.snm_resize + self.transfer_per_frame,
            ),
            TYOLO: (
                self.tyolo_batch_overhead,
                self.tyolo_infer + self.tyolo_resize + self.transfer_per_frame,
            ),
            REF: (
                self.ref_batch_overhead,
                self.ref_infer + self.ref_resize + self.transfer_per_frame,
            ),
        }

    def mosaic_service_time(
        self, n_frames: int, n_regions: int, n_canvases: int
    ) -> float:
        """Busy time for one fused mosaic T-YOLO batch.

        Every frame is still resized and transferred (the response signal
        that proposes regions needs the pixels), every region pays the
        packing copy, but the detector network runs **per canvas** instead
        of per frame.  With zero canvases (an all-quiet batch) only the
        CPU-side work remains.
        """
        if n_frames < 1:
            raise ValueError("n_frames must be >= 1")
        return (
            self.tyolo_batch_overhead
            + n_frames * (self.tyolo_resize + self.transfer_per_frame)
            + n_regions * self.mosaic_pack_per_region
            + n_canvases * self.tyolo_infer
        )

    def service_time(self, stage: Stage, batch_size: int = 1) -> float:
        """Busy time a device spends on one batch at ``stage``."""
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        try:
            overhead, per_frame = self._stage_params()[stage]
        except KeyError:
            raise ValueError(f"unknown stage {stage!r}") from None
        return overhead + batch_size * per_frame

    def per_frame_time(self, stage: Stage, batch_size: int = 1) -> float:
        """Amortized per-frame service time at the given batch size."""
        return self.service_time(stage, batch_size) / batch_size

    def effective_fps(self, stage: Stage, batch_size: int = 1) -> float:
        """Amortized frames per second at the given batch size."""
        return 1.0 / self.per_frame_time(stage, batch_size)
