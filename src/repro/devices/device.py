"""Device abstractions for the simulated heterogeneous server.

A :class:`Device` is a serial execution resource (one GPU, or the CPU pool
treated as one aggregate server for the lightweight SDD work).  The
discrete-event simulator advances each device's ``busy_until`` clock; the
threaded runtime uses the same objects merely as placement tags plus a lock
to serialize access (mirroring CUDA stream serialization per device).
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field

__all__ = ["Device", "DeviceKind", "standard_server"]

DeviceKind = str  # "cpu" | "gpu"


@dataclass
class Device:
    """One serial compute resource."""

    name: str
    kind: DeviceKind
    memory_bytes: int = 8 * 2**30

    # -- simulation state ---------------------------------------------------
    busy_until: float = 0.0
    busy_time: float = 0.0  # accumulated service time, for utilization

    # -- threaded-runtime state ----------------------------------------------
    lock: threading.Lock = field(default_factory=threading.Lock, repr=False, compare=False)

    def reset(self) -> None:
        """Clear simulation accounting."""
        self.busy_until = 0.0
        self.busy_time = 0.0

    def run(self, now: float, service_time: float) -> float:
        """Schedule one service starting no earlier than ``now``.

        Returns the completion time and advances the device clock.  Used by
        the discrete-event simulator only.
        """
        if service_time < 0:
            raise ValueError("service_time must be non-negative")
        start = max(now, self.busy_until)
        end = start + service_time
        self.busy_until = end
        self.busy_time += service_time
        return end

    def utilization(self, horizon: float) -> float:
        """Fraction of ``[0, horizon]`` this device spent busy."""
        if horizon <= 0:
            return 0.0
        return min(1.0, self.busy_time / horizon)


def standard_server() -> dict[str, Device]:
    """The paper's evaluation platform: dual-CPU + two GTX1080 GPUs.

    The dual 14-core Xeons are aggregated into one CPU device because the
    only CPU-resident stage (SDD) is ~300x faster than the pipeline
    bottleneck and never binds.
    """
    return {
        "cpu0": Device("cpu0", "cpu", memory_bytes=128 * 2**30),
        "gpu0": Device("gpu0", "gpu", memory_bytes=8 * 2**30),
        "gpu1": Device("gpu1", "gpu", memory_bytes=8 * 2**30),
    }
