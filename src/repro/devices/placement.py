"""Stage-to-device placement policies.

Section 3.1.2 fixes the paper's placement: "SDDs are executed on the CPUs,
and SNMs and T-YOLO are executed on a single GPU.  The powerful full-feature
model uses another GPU alone."  The baseline YOLOv2 system instead spreads
the reference model across both GPUs.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .device import Device, standard_server

__all__ = ["Placement", "ffs_va_placement", "baseline_placement"]


@dataclass
class Placement:
    """Maps each pipeline stage to the devices allowed to run it."""

    devices: dict[str, Device]
    stage_devices: dict[str, list[str]] = field(default_factory=dict)
    #: Stage names considered valid; None accepts the canonical set plus
    #: any custom stage a :class:`~repro.core.pipeline.StageGraph` declares.
    known_stages: tuple | None = None

    def __post_init__(self) -> None:
        if self.known_stages is None:
            # Deferred import: the devices layer loads before the core
            # package that owns the canonical stage names.
            from ..core.pipeline import STAGES

            self.known_stages = STAGES
        for stage, names in self.stage_devices.items():
            if stage not in self.known_stages:
                raise ValueError(f"unknown stage {stage!r}")
            for name in names:
                if name not in self.devices:
                    raise ValueError(f"stage {stage!r} mapped to unknown device {name!r}")
            if not names:
                raise ValueError(f"stage {stage!r} has no devices")

    def devices_for(self, stage: str) -> list[Device]:
        """All devices allowed to execute ``stage``."""
        return [self.devices[n] for n in self.stage_devices[stage]]

    def device_for(self, stage: str) -> Device:
        """The primary device of ``stage`` (first in its list)."""
        return self.devices[self.stage_devices[stage][0]]

    def reset(self) -> None:
        for dev in self.devices.values():
            dev.reset()


def ffs_va_placement(devices: dict[str, Device] | None = None) -> Placement:
    """The paper's FFS-VA placement on the standard two-GPU server.

    Built from the default stage graph's device hints, so the placement and
    the cascade definition cannot drift apart.
    """
    from ..core.pipeline import ffs_va_graph

    devices = devices or standard_server()
    return Placement(
        devices=devices,
        stage_devices=ffs_va_graph().default_placement_map(),
    )


def baseline_placement(devices: dict[str, Device] | None = None) -> Placement:
    """The YOLOv2 baseline: the full-feature model on both GPUs."""
    from ..core.pipeline import REF

    devices = devices or standard_server()
    return Placement(
        devices=devices,
        stage_devices={REF: ["gpu0", "gpu1"]},
    )
