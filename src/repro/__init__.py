"""FFS-VA: A Fast Filtering System for Large-scale Video Analytics.

A complete reproduction of Zhang et al., ICPP 2018: a pipelined multi-stage
filtering system that interposes two stream-specialized filters (SDD, SNM)
and a shared small detector (T-YOLO) in front of a full-feature reference
model, with a global feedback-queue mechanism and dynamic batching.

Public entry points
-------------------
:class:`FFSVA`
    High-level facade: train per-stream models, analyze offline, serve
    online, and run paper-scale simulations.
:class:`FFSVAConfig`
    All system knobs (FilterDegree, NumberofObjects, batch policy, queue
    depths, ...).
:func:`jackson` / :func:`coral` / :func:`make_stream`
    The evaluation workloads (Table 1 stand-ins).

See DESIGN.md for the system inventory and EXPERIMENTS.md for the
paper-versus-measured record of every table and figure.
"""

from .analytics import error_rate, scene_accuracy
from .api import AnalysisReport, FFSVA
from .baseline import baseline_offline, baseline_online
from .core import (
    FFSVAConfig,
    FrameTrace,
    RunMetrics,
    build_trace,
    workload_trace,
)
from .devices import CostModel
from .models import ModelZoo
from .obs import Telemetry, TelemetryServer
from .sim import simulate_offline, simulate_online
from .store import (
    DetectionRecord,
    DetStore,
    DetStoreReader,
    count_detections,
    open_store,
    replay_detections,
    top_k_streams,
    window_aggregate,
)
from .video import VideoStream, coral, jackson, make_stream, make_streams

__version__ = "1.0.0"

__all__ = [
    "FFSVA",
    "AnalysisReport",
    "FFSVAConfig",
    "ModelZoo",
    "CostModel",
    "FrameTrace",
    "RunMetrics",
    "build_trace",
    "workload_trace",
    "simulate_offline",
    "simulate_online",
    "Telemetry",
    "TelemetryServer",
    "DetectionRecord",
    "DetStore",
    "DetStoreReader",
    "count_detections",
    "open_store",
    "replay_detections",
    "top_k_streams",
    "window_aggregate",
    "baseline_offline",
    "baseline_online",
    "error_rate",
    "scene_accuracy",
    "VideoStream",
    "jackson",
    "coral",
    "make_stream",
    "make_streams",
    "__version__",
]
