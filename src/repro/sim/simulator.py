"""Discrete-event simulator of the FFS-VA pipeline on a two-GPU server.

The simulator replays precomputed :class:`~repro.core.trace.FrameTrace`
filter decisions through the full pipeline mechanics — bounded feedback
queues, batch policies, the shared T-YOLO round-robin, and the
stage-to-device placement — against the calibrated
:class:`~repro.devices.costs.CostModel`.  It produces the same
:class:`~repro.core.metrics.RunMetrics` the threaded runtime does, but at
paper scale (tens of streams, thousands of frames each) on a virtual clock.

Semantics reproduced from the paper:

* Each stage is a logically independent worker thread; stages sharing a
  device (SNM and T-YOLO on GPU 0) interleave their service there
  (Section 3.1.2).
* A stage pushing to a full downstream queue **blocks**: completed
  survivors wait in the worker's hands (an out-buffer) and the worker takes
  no new batch until they are delivered.  Frames the stage *filters out*
  never need downstream room, so a fully-filtered batch proceeds even while
  the next stage is saturated — the paper's "bypass" (Section 4.3.1).
* T-YOLO visits the per-stream queues round-robin, taking at most
  ``num_t_yolo`` frames per stream per visit (Sections 3.2.3, 4.3.1).
* Batch formation at SNM follows the static / feedback / dynamic policies
  of Section 4.3.2 via :func:`repro.core.batching.decide_batch`; the static
  policy runs with unbounded queues (no feedback mechanism).
* Online sources deliver frames at ``stream_fps``; a run is real-time when
  ingest keeps pace with arrivals (Section 4.3.1's 30 FPS criterion).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass

import numpy as np

from ..core.batching import decide_batch
from ..core.config import FFSVAConfig
from ..core.metrics import LatencyStats, RunMetrics
from ..core.queues import SimQueue
from ..core.trace import FrameTrace
from ..devices.costs import CostModel
from ..devices.placement import Placement, ffs_va_placement

__all__ = ["PipelineSimulator", "simulate_offline", "simulate_online"]

#: SDD frames processed per service event (SDD is ~300x faster than the
#: bottleneck; batching its events only coarsens simulator bookkeeping).
_SDD_EVENT_BATCH = 16


@dataclass
class _StreamState:
    """Mutable per-stream simulation state."""

    trace: FrameTrace
    sdd_pass: np.ndarray
    snm_pass: np.ndarray
    tyolo_pass: np.ndarray
    n: int
    admitted: int = 0  # frames pushed into the SDD queue
    dropped: int = 0  # frames filtered out at some stage
    ref_done: int = 0  # frames fully analyzed by the reference model
    finish_time: float = 0.0  # virtual time the last frame was disposed of
    sdd_q: SimQueue = None  # type: ignore[assignment]
    snm_q: SimQueue = None  # type: ignore[assignment]
    tyolo_q: SimQueue = None  # type: ignore[assignment]
    # Out-buffers: survivors a blocked worker is holding for this stream.
    sdd_out: deque = None  # type: ignore[assignment]
    snm_out: deque = None  # type: ignore[assignment]
    ingest_time: np.ndarray = None  # type: ignore[assignment]
    in_flight_sdd: int = 0
    in_flight_snm: int = 0

    @property
    def finished(self) -> bool:
        return self.dropped + self.ref_done == self.n

    def source_drained(self) -> bool:
        """All frames admitted and none left before the SNM stage."""
        return (
            self.admitted == self.n
            and len(self.sdd_q) == 0
            and self.in_flight_sdd == 0
            and not self.sdd_out
        )


@dataclass
class _Service:
    stage: str
    stream_idx: int | None
    frames: list  # [(stream_idx, frame_idx), ...]
    passes: list  # bool per frame
    start: float
    end: float


class PipelineSimulator:
    """One FFS-VA instance processing a fixed set of stream traces."""

    def __init__(
        self,
        traces: list[FrameTrace],
        config: FFSVAConfig | None = None,
        cost_model: CostModel | None = None,
        placement: Placement | None = None,
        *,
        online: bool = True,
        record_events: bool = False,
    ):
        if not traces:
            raise ValueError("need at least one stream trace")
        self.config = config or FFSVAConfig()
        self.costs = cost_model or CostModel()
        self.placement = placement or ffs_va_placement()
        self.placement.reset()
        self.online = online
        cfg = self.config

        bounded = cfg.bounded_queues
        depth = (lambda s: cfg.queue_depth(s)) if bounded else (lambda s: None)
        self.streams: list[_StreamState] = []
        for idx, trace in enumerate(traces):
            st = _StreamState(
                trace=trace,
                sdd_pass=trace.sdd_pass(),
                snm_pass=trace.snm_pass(cfg.filter_degree),
                tyolo_pass=trace.tyolo_pass(cfg.number_of_objects, cfg.relax),
                n=len(trace),
            )
            st.sdd_q = SimQueue(depth("sdd"), f"sdd[{idx}]")
            st.snm_q = SimQueue(depth("snm"), f"snm[{idx}]")
            st.tyolo_q = SimQueue(depth("tyolo"), f"tyolo[{idx}]")
            st.sdd_out = deque()
            st.snm_out = deque()
            st.ingest_time = np.full(st.n, np.nan)
            self.streams.append(st)
        ref_depth = None if cfg.ref_overflow_to_storage else depth("ref")
        self.ref_q = SimQueue(ref_depth, "ref")
        # Each device hosting T-YOLO has its own worker, hence its own
        # out-buffer of survivors held while the reference queue is full.
        self._tyolo_out: dict[str, deque] = {
            name: deque() for name in self.placement.stage_devices.get("tyolo", [])
        }

        self._heap: list = []
        self._seq = itertools.count()
        self._in_service: dict[str, _Service] = {}
        self._rr_tyolo = 0
        self._rr_snm = 0
        self._rr_sdd = 0
        self._rr_ref_dev = 0
        self._dev_last: dict[str, str] = {}
        self._batch_events = {"sdd": 0, "snm": 0, "tyolo": 0, "ref": 0}
        self.metrics = RunMetrics(n_streams=len(traces))
        self._ref_latencies: list[float] = []
        self._drop_latencies: list[float] = []
        self._tyolo_frames_done = 0
        self.record_events = record_events
        #: When enabled: (start, end, device, stage, stream_idx, n, n_pass)
        #: per service, in completion order — a Gantt chart of the run.
        self.events: list[tuple] = []

    # ------------------------------------------------------------------
    # arrival model
    # ------------------------------------------------------------------
    def _arrival_time(self, stream: _StreamState, frame_idx: int) -> float:
        if not self.online:
            return 0.0
        return frame_idx / self.config.stream_fps

    def _top_up_arrivals(self, now: float) -> bool:
        """Admit arrived frames into each SDD queue while room remains."""
        eps = 1e-12
        progress = False
        for st in self.streams:
            while st.admitted < st.n and st.sdd_q.has_room(1):
                if self._arrival_time(st, st.admitted) > now + eps:
                    break
                st.sdd_q.put(st.admitted)
                st.ingest_time[st.admitted] = max(
                    now, self._arrival_time(st, st.admitted)
                )
                st.admitted += 1
                progress = True
        return progress

    def _next_pending_arrival(self, now: float) -> float | None:
        """Earliest future arrival that could enter an SDD queue."""
        best = None
        for st in self.streams:
            if st.admitted < st.n:
                t = self._arrival_time(st, st.admitted)
                if t > now and (best is None or t < best):
                    best = t
        return best

    # ------------------------------------------------------------------
    # out-buffer draining (blocked workers delivering held survivors)
    # ------------------------------------------------------------------
    def _drain_out_buffers(self) -> bool:
        progress = False
        for st in self.streams:
            while st.sdd_out and st.snm_q.has_room(1):
                st.snm_q.put(st.sdd_out.popleft())
                progress = True
            while st.snm_out and st.tyolo_q.has_room(1):
                st.tyolo_q.put(st.snm_out.popleft())
                progress = True
        for out in self._tyolo_out.values():
            while out and self.ref_q.has_room(1):
                self.ref_q.put(out.popleft())
                progress = True
        return progress

    # ------------------------------------------------------------------
    # work starting
    # ------------------------------------------------------------------
    def _device_idle(self, name: str) -> bool:
        return name not in self._in_service

    def _start(self, device_name: str, service: _Service) -> None:
        self._in_service[device_name] = service
        device = self.placement.devices[device_name]
        device.busy_time += service.end - service.start
        self._batch_events[service.stage] += 1
        heapq.heappush(self._heap, (service.end, next(self._seq), device_name))

    def _try_start_sdd(self, now: float) -> bool:
        name = self.placement.stage_devices["sdd"][0]
        if not self._device_idle(name):
            return False
        n_streams = len(self.streams)
        for off in range(n_streams):
            idx = (self._rr_sdd + off) % n_streams
            st = self.streams[idx]
            if st.sdd_out or len(st.sdd_q) == 0:
                continue  # worker still blocked, or nothing to do
            n_take = min(len(st.sdd_q), _SDD_EVENT_BATCH)
            frames = [(idx, st.sdd_q.pop()) for _ in range(n_take)]
            passes = [bool(st.sdd_pass[fi]) for _, fi in frames]
            st.in_flight_sdd += n_take
            dt = self.costs.service_time("sdd", n_take)
            self._start(name, _Service("sdd", idx, frames, passes, now, now + dt))
            self._rr_sdd = (idx + 1) % n_streams
            return True
        return False

    def _try_start_snm(self, now: float, name: str) -> bool:
        if not self._device_idle(name):
            return False
        cfg = self.config
        n_streams = len(self.streams)
        for off in range(n_streams):
            idx = (self._rr_snm + off) % n_streams
            st = self.streams[idx]
            if st.snm_out:
                continue  # this stream's SNM worker is blocked on T-YOLO
            n_take = decide_batch(
                cfg.batch_policy,
                len(st.snm_q),
                cfg.batch_size,
                st.snm_q.depth,
                eof=st.source_drained(),
            )
            if n_take == 0:
                continue
            frames = [(idx, st.snm_q.pop()) for _ in range(n_take)]
            passes = [bool(st.snm_pass[fi]) for _, fi in frames]
            st.in_flight_snm += n_take
            dt = self.costs.service_time("snm", n_take)
            self._start(name, _Service("snm", idx, frames, passes, now, now + dt))
            self._rr_snm = (idx + 1) % n_streams
            return True
        return False

    def _try_start_tyolo(self, now: float, name: str) -> bool:
        if not self._device_idle(name):
            return False
        if self._tyolo_out[name]:
            return False  # this T-YOLO worker is blocked on the ref queue
        cfg = self.config
        n_streams = len(self.streams)
        for off in range(n_streams):
            idx = (self._rr_tyolo + off) % n_streams
            st = self.streams[idx]
            if len(st.tyolo_q) == 0:
                continue
            n_take = min(len(st.tyolo_q), cfg.num_t_yolo)
            frames = [(idx, st.tyolo_q.pop()) for _ in range(n_take)]
            passes = [bool(st.tyolo_pass[fi]) for _, fi in frames]
            dt = self.costs.service_time("tyolo", n_take)
            self._start(name, _Service("tyolo", idx, frames, passes, now, now + dt))
            self._rr_tyolo = (idx + 1) % n_streams
            return True
        return False

    def _try_start_ref(self, now: float) -> bool:
        started = False
        devices = self.placement.stage_devices["ref"]
        n_dev = len(devices)
        for off in range(n_dev):
            name = devices[(self._rr_ref_dev + off) % n_dev]
            if not self._device_idle(name) or len(self.ref_q) == 0:
                continue
            item = self.ref_q.pop()
            dt = self.costs.service_time("ref", 1)
            self._start(name, _Service("ref", None, [item], [True], now, now + dt))
            started = True
        if started:
            self._rr_ref_dev = (self._rr_ref_dev + 1) % n_dev
        return started

    def _filter_order(self, name: str) -> tuple[str, str]:
        """Service order for a device hosting both SNM and T-YOLO.

        The two worker threads share the GPU through the driver, which
        time-slices them roughly in proportion to their pending work.  We
        approximate that by serving whichever stage has more queued
        service-time, falling back to strict alternation on ties — without
        this, a long unbounded SNM backlog (static batching) would starve
        T-YOLO and stall the reference stage behind it.
        """
        snm_pf = self.costs.per_frame_time("snm", max(self.config.batch_size, 1))
        ty_pf = self.costs.per_frame_time("tyolo", self.config.num_t_yolo)
        snm_work = sum(len(st.snm_q) for st in self.streams) * snm_pf
        ty_work = sum(len(st.tyolo_q) for st in self.streams) * ty_pf
        if abs(snm_work - ty_work) < 1e-12:
            last = self._dev_last.get(name, "snm")
            return ("snm", "tyolo") if last == "tyolo" else ("tyolo", "snm")
        return ("snm", "tyolo") if snm_work > ty_work else ("tyolo", "snm")

    def _try_start_filters(self, now: float) -> bool:
        """Start SNM / T-YOLO work on each device hosting them.

        With the paper's placement both run on GPU 0; placements may also
        spread them over several GPUs (the Section 4.3.2 scale-out note),
        in which case every such device arbitrates independently."""
        snm_devs = self.placement.stage_devices.get("snm", [])
        tyolo_devs = self.placement.stage_devices.get("tyolo", [])
        any_started = False
        for name in dict.fromkeys([*snm_devs, *tyolo_devs]):
            order = self._filter_order(name)
            for kind in order:
                if kind == "snm" and name in snm_devs:
                    started = self._try_start_snm(now, name)
                elif kind == "tyolo" and name in tyolo_devs:
                    started = self._try_start_tyolo(now, name)
                else:
                    started = False
                if started:
                    self._dev_last[name] = kind
                    any_started = True
                    break
        return any_started

    def _start_all(self, now: float) -> None:
        """Keep admitting, draining, and starting until a fixed point."""
        progress = True
        while progress:
            progress = False
            progress |= self._top_up_arrivals(now)
            progress |= self._drain_out_buffers()
            progress |= self._try_start_sdd(now)
            progress |= self._try_start_ref(now)
            progress |= self._try_start_filters(now)

    # ------------------------------------------------------------------
    # completion handling
    # ------------------------------------------------------------------
    def _complete(self, device_name: str, now: float) -> None:
        svc = self._in_service.pop(device_name)
        stage = svc.stage
        n_in = len(svc.frames)
        n_pass = int(sum(svc.passes))
        self.metrics.stages[stage].record(n_in, n_pass)
        if self.record_events:
            self.events.append(
                (svc.start, svc.end, device_name, stage, svc.stream_idx, n_in, n_pass)
            )

        for (s_idx, f_idx), ok in zip(svc.frames, svc.passes):
            st = self.streams[s_idx]
            if stage == "sdd":
                st.in_flight_sdd -= 1
                if ok:
                    if st.snm_q.has_room(1) and not st.sdd_out:
                        st.snm_q.put(f_idx)
                    else:
                        st.sdd_out.append(f_idx)
                else:
                    self._drop_frame(st, f_idx, now)
            elif stage == "snm":
                st.in_flight_snm -= 1
                if ok:
                    if st.tyolo_q.has_room(1) and not st.snm_out:
                        st.tyolo_q.put(f_idx)
                    else:
                        st.snm_out.append(f_idx)
                else:
                    self._drop_frame(st, f_idx, now)
            elif stage == "tyolo":
                self._tyolo_frames_done += 1
                if ok:
                    out = self._tyolo_out[device_name]
                    if self.ref_q.has_room(1) and not out:
                        self.ref_q.put((s_idx, f_idx))
                    else:
                        out.append((s_idx, f_idx))
                else:
                    self._drop_frame(st, f_idx, now)
            elif stage == "ref":
                st.ref_done += 1
                st.finish_time = max(st.finish_time, now)
                self.metrics.frames_to_ref += 1
                self._ref_latencies.append(now - self._latency_base(st, f_idx))

    def _latency_base(self, st: _StreamState, f_idx: int) -> float:
        """Reference point for latency: arrival when online (the user's
        clock starts when the camera captured the frame), ingest when
        offline (all frames 'arrive' at t=0, which would make latency grow
        linearly with the run instead of measuring pipeline residence)."""
        if self.online:
            return self._arrival_time(st, f_idx)
        return float(st.ingest_time[f_idx])

    def _drop_frame(self, st: _StreamState, f_idx: int, now: float) -> None:
        st.dropped += 1
        st.finish_time = max(st.finish_time, now)
        self._drop_latencies.append(now - self._latency_base(st, f_idx))

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def run(self, max_virtual_time: float | None = None) -> RunMetrics:
        """Simulate until all frames are processed (or the horizon ends)."""
        now = 0.0
        inf = float("inf")
        while True:
            self._start_all(now)
            if all(st.finished for st in self.streams):
                break
            t_heap = self._heap[0][0] if self._heap else inf
            t_arr = self._next_pending_arrival(now)
            t_next = min(t_heap, t_arr if t_arr is not None else inf)
            if t_next == inf:
                # No pending completions and no future arrivals: remaining
                # frames are unreachable (should not happen) — stop.
                break
            if max_virtual_time is not None and t_next > max_virtual_time:
                now = max_virtual_time
                break
            now = t_next
            while self._heap and self._heap[0][0] <= now + 1e-15:
                _, _, dev = heapq.heappop(self._heap)
                self._complete(dev, now)

        return self._finalize(now, max_virtual_time)

    def _finalize(self, now: float, max_virtual_time: float | None) -> RunMetrics:
        m = self.metrics
        m.duration = now
        m.frames_offered = sum(st.n for st in self.streams)
        m.frames_ingested = sum(st.admitted for st in self.streams)
        m.ref_latency = LatencyStats.from_samples(self._ref_latencies)
        m.frame_latency = LatencyStats.from_samples(
            self._drop_latencies + self._ref_latencies
        )
        m.device_utilization = {
            name: dev.utilization(m.duration)
            for name, dev in self.placement.devices.items()
        }
        qhw: dict[str, int] = {"ref": self.ref_q.high_water}
        for i, st in enumerate(self.streams):
            qhw[f"sdd[{i}]"] = st.sdd_q.high_water
            qhw[f"snm[{i}]"] = st.snm_q.high_water
            qhw[f"tyolo[{i}]"] = st.tyolo_q.high_water
        m.queue_high_water = qhw
        m.extra["per_stream_ingested"] = [st.admitted for st in self.streams]
        m.extra["per_stream_done"] = [st.dropped + st.ref_done for st in self.streams]
        m.extra["per_stream_finish_time"] = [st.finish_time for st in self.streams]
        m.extra["tyolo_fps"] = (
            self._tyolo_frames_done / m.duration if m.duration > 0 else 0.0
        )
        for stage, events in self._batch_events.items():
            if events:
                m.extra[f"mean_{stage}_batch"] = m.stages[stage].entered / events
        m.extra["truncated"] = (
            max_virtual_time is not None
            and not all(st.finished for st in self.streams)
        )
        return m


def simulate_offline(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    placement: Placement | None = None,
) -> RunMetrics:
    """Offline analysis: all frames available immediately, run to drain."""
    sim = PipelineSimulator(traces, config, cost_model, placement, online=False)
    return sim.run()


def simulate_online(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    placement: Placement | None = None,
    *,
    horizon_slack: float = 2.0,
) -> RunMetrics:
    """Online analysis: frames arrive at ``stream_fps``, bounded horizon.

    The horizon is the nominal clip duration plus ``horizon_slack`` seconds;
    a system that keeps up ingests everything well inside it, an overloaded
    one shows depressed ingest (and fails :meth:`RunMetrics.realtime`).
    """
    config = config or FFSVAConfig()
    sim = PipelineSimulator(traces, config, cost_model, placement, online=True)
    n_max = max(len(t) for t in traces)
    horizon = n_max / config.stream_fps + horizon_slack
    return sim.run(max_virtual_time=horizon)
