"""Discrete-event simulator of the FFS-VA pipeline on a two-GPU server.

The simulator replays precomputed :class:`~repro.core.trace.FrameTrace`
filter decisions through the full pipeline mechanics — bounded feedback
queues, batch policies, the shared T-YOLO round-robin, and the
stage-to-device placement — against the calibrated
:class:`~repro.devices.costs.CostModel`.  It produces the same
:class:`~repro.core.metrics.RunMetrics` the threaded runtime does, but at
paper scale (tens of streams, thousands of frames each) on a virtual clock.

Like the threaded runtime, the simulator executes a
:class:`~repro.core.pipeline.StageGraph`: the event-loop's stage table —
which queues exist, how batches form, which streams a worker may serve,
where survivors flow — is derived from the graph, and each stage's verdict
comes from its spec's ``logic.trace_mask``.  Nothing here hard-codes the
SDD → SNM → T-YOLO → ref chain.

Semantics reproduced from the paper:

* Each stage is a logically independent worker thread; stages sharing a
  device (SNM and T-YOLO on GPU 0) interleave their service there
  (Section 3.1.2).
* A stage pushing to a full downstream queue **blocks**: completed
  survivors wait in the worker's hands (an out-buffer) and the worker takes
  no new batch until they are delivered.  Frames the stage *filters out*
  never need downstream room, so a fully-filtered batch proceeds even while
  the next stage is saturated — the paper's "bypass" (Section 4.3.1).
* ``shared_rr`` stages visit the per-stream queues round-robin, taking at
  most ``num_t_yolo`` frames per stream per visit (Sections 3.2.3, 4.3.1).
* ``config``-batched stages follow the static / feedback / dynamic policies
  of Section 4.3.2 via :func:`repro.core.batching.decide_batch`; the static
  policy runs with unbounded queues (no feedback mechanism).
* Online sources deliver frames at ``stream_fps``; a run is real-time when
  ingest keeps pace with arrivals (Section 4.3.1's 30 FPS criterion).
"""

from __future__ import annotations

import heapq
import itertools
from collections import deque
from dataclasses import dataclass, field

import numpy as np

from ..core.admission import AdmissionController
from ..core.batching import decide_batch, decide_fused_batch, fused_pop_order
from ..core.config import FFSVAConfig
from ..core.metrics import LatencyStats, RunMetrics, StageCounters
from ..core.pipeline import (
    FUSED,
    MERGED,
    PER_STREAM,
    SHARED_RR,
    SNM,
    StageGraph,
    StageSpec,
    arbitration_batch,
    cascade,
    stage_per_frame_time,
    stage_service_time,
)
from ..core.qplan import QueryPlanner
from ..core.queues import SimQueue
from ..core.trace import FrameTrace
from ..devices.costs import CostModel
from ..devices.placement import Placement, ffs_va_placement
from ..models.mosaic import MosaicStats, Region, effective_regions, plan_mosaics
from ..models.tyolo import TYOLO_GRID
from ..obs import Telemetry
from ..obs.lineage import lineage_section
from ..store.detstore import DetectionRecord, DetStore

__all__ = ["PipelineSimulator", "simulate_offline", "simulate_online"]


@dataclass
class _StreamState:
    """Mutable per-stream simulation state.

    ``arrival_offset`` shifts the arrival clock for a stream attached
    mid-run via :meth:`PipelineSimulator.attach_stream`: local frame ``j``
    of a re-forwarded tail trace arrives when *global* frame
    ``arrival_offset + j`` of the original stream would have — the same
    frame-boundary contract the threaded cluster's handoff keeps.
    """

    trace: FrameTrace
    n: int
    admitted: int = 0  # frames pushed into the first stage's queue
    dropped: int = 0  # frames filtered out at some stage
    analyzed: int = 0  # frames fully processed by the terminal stage
    finish_time: float = 0.0  # virtual time the last frame was disposed of
    arrival_offset: int = 0  # global index of local frame 0
    ingest_time: np.ndarray = None  # type: ignore[assignment]

    @property
    def finished(self) -> bool:
        return self.dropped + self.analyzed == self.n

    @property
    def active(self) -> bool:
        """Still has frames to offer (re-forwardable)."""
        return self.admitted < self.n


@dataclass
class _SimStage:
    """Event-loop state of one graph stage.

    Frames are identified as ``(stream_idx, frame_idx)`` everywhere; the
    pass verdict for every frame of every stream is precomputed from the
    spec's ``trace_mask``.
    """

    spec: StageSpec
    passes: list  # ndarray[bool] per stream
    queues: list = field(default_factory=list)  # per-stream (empty if merged)
    merged_q: SimQueue | None = None
    #: Survivors a blocked worker holds: keyed by stream index for
    #: ``per_stream`` stages (each stream has its own worker), by device
    #: name otherwise (one worker per hosting device).
    out: dict = field(default_factory=dict)
    in_flight: list = field(default_factory=list)  # per-stream counts
    rr: int = 0  # round-robin cursor over streams
    frames_done: int = 0
    batch_events: int = 0
    #: Mosaic stages only: per-stream ``regions_by_frame()`` lists (``None``
    #: for a trace without recorded regions — whole-frame fallback) and the
    #: running consolidation statistics.
    regions: list | None = None
    mosaic_stats: MosaicStats | None = None
    #: Telemetry only: (stream_idx, frame_idx) -> virtual enqueue time,
    #: popped at service completion to split wait from service per frame.
    enter_t: dict = field(default_factory=dict)

    def queued(self) -> int:
        if self.merged_q is not None:
            return len(self.merged_q)
        return sum(len(q) for q in self.queues)


@dataclass
class _Service:
    stage: str
    stream_idx: int | None
    frames: list  # [(stream_idx, frame_idx), ...]
    passes: list  # bool per frame
    start: float
    end: float


class PipelineSimulator:
    """One FFS-VA instance processing a fixed set of stream traces."""

    def __init__(
        self,
        traces: list[FrameTrace],
        config: FFSVAConfig | None = None,
        cost_model: CostModel | None = None,
        placement: Placement | None = None,
        *,
        online: bool = True,
        record_events: bool = False,
        graph: StageGraph | str | None = None,
        telemetry: Telemetry | None = None,
        store=None,
        plan_catalog=None,
    ):
        if not traces:
            raise ValueError("need at least one stream trace")
        self.config = cfg = config or FFSVAConfig()
        self.graph = cascade(graph) if graph is not None else cfg.graph()
        self.costs = cost_model or CostModel()
        self.placement = placement or ffs_va_placement()
        self.placement.reset()
        self.online = online
        if cfg.plan == "adaptive" and len(self.graph) > 2:
            if self.graph.terminal.fan_in != MERGED:
                raise ValueError(
                    "adaptive depth planning needs a merged terminal stage "
                    "(early exits route straight to its queue)"
                )

        self.streams: list[_StreamState] = []
        for trace in traces:
            st = _StreamState(trace=trace, n=len(trace))
            st.ingest_time = np.full(st.n, np.nan)
            self.streams.append(st)
        n_streams = len(traces)

        self._stages: dict[str, _SimStage] = {}
        for spec in self.graph:
            stg = _SimStage(
                spec=spec,
                passes=[
                    np.asarray(spec.logic.trace_mask(t, cfg), dtype=bool)
                    for t in traces
                ],
                in_flight=[0] * n_streams,
            )
            depth = self._depth_for(spec)
            if spec.fan_in == MERGED:
                stg.merged_q = SimQueue(depth, spec.name)
            else:
                stg.queues = [
                    SimQueue(depth, f"{spec.name}[{i}]") for i in range(n_streams)
                ]
            if spec.mosaic:
                stg.regions = [t.regions_by_frame() for t in traces]
                stg.mosaic_stats = MosaicStats()
            self._stages[spec.name] = stg

        # Device -> stages hosted there (graph order), honouring placement
        # overrides; a stage absent from the placement runs on its spec's
        # default device.
        self._dev_stages: dict[str, list[StageSpec]] = {}
        for spec in self.graph:
            for name in self._devices_for(spec):
                self._dev_stages.setdefault(name, []).append(spec)

        self._heap: list = []
        self._seq = itertools.count()
        self._in_service: dict[str, _Service] = {}
        self._dev_last: dict[str, str] = {}
        self._now = 0.0
        #: Per-stream frames past the first stage — the same live "cost"
        #: signal the threaded engine's ``stream_costs`` reports.
        self._first_pass: list[int] = [0] * n_streams
        self.metrics = RunMetrics(
            n_streams=n_streams,
            stages={spec.name: StageCounters() for spec in self.graph},
        )
        self._ref_latencies: list[float] = []
        self._drop_latencies: list[float] = []
        self.record_events = record_events
        #: When enabled: (start, end, device, stage, stream_idx, n, n_pass)
        #: per service, in completion order — a Gantt chart of the run.
        self.events: list[tuple] = []
        #: Attached telemetry (None = disabled).  Event timestamps are
        #: *virtual* seconds — the same schema the threaded runtime emits.
        self.telemetry = telemetry if telemetry is not None else Telemetry.from_config(cfg)
        #: Closed-loop admission: reads the same sampled series the threaded
        #: runtime reads, on this runtime's virtual clock.
        self.admission = (
            AdmissionController(cfg, sampler=self.telemetry.sampler, graph=self.graph)
            if self.telemetry is not None
            else None
        )
        #: Content-adaptive query planner — the *identical* decision code the
        #: threaded engine runs, driven here by the virtual clock.  It shares
        #: the telemetry sampler when one exists, else runs a private one.
        self._planner = (
            QueryPlanner(
                cfg,
                graph=self.graph,
                sampler=self.telemetry.sampler if self.telemetry is not None else None,
                catalog=plan_catalog,
            )
            if cfg.plan == "adaptive"
            else None
        )
        if self._planner is not None:
            for i, t in enumerate(traces):
                self._planner.register(i, t.stream_id)
        self._plan_routing = (
            self._planner is not None
            and self._planner.active
            and sum(1 for s in self.graph if not s.terminal) > 1
        )
        #: Lazy per-(stage, stream, degree) verdict masks for plan-driven
        #: FilterDegree switches (the static-config mask in ``_SimStage``
        #: covers the common degree).
        self._degree_masks: dict[tuple, np.ndarray] = {}
        #: Persistent detection store (None = no persistence).  Rows are
        #: stamped with *stream time* on global frame indices, so they are
        #: byte-identical to the threaded runtime's for the same workload.
        self.store = (
            store
            if store is not None
            else DetStore.from_config(cfg, terminal=self.graph.terminal.name)
        )
        self._prev_sample = {"t": 0.0, "done": {}, "busy": {}}

    # ------------------------------------------------------------------
    # graph-driven construction helpers
    # ------------------------------------------------------------------
    def _depth_for(self, spec: StageSpec) -> int | None:
        cfg = self.config
        if not cfg.bounded_queues:
            return None  # static batching runs without the feedback mechanism
        if spec.terminal and cfg.ref_overflow_to_storage:
            return None  # Section 5.5: terminal overflow goes to storage
        return cfg.queue_depth(spec.depth_key)

    def _devices_for(self, spec: StageSpec) -> list[str]:
        return self.placement.stage_devices.get(spec.name) or [spec.device]

    # ------------------------------------------------------------------
    # arrival model
    # ------------------------------------------------------------------
    def _arrival_time(self, stream: _StreamState, frame_idx: int) -> float:
        if not self.online:
            return 0.0
        return (stream.arrival_offset + frame_idx) / self.config.stream_fps

    def _top_up_arrivals(self, now: float) -> bool:
        """Admit arrived frames into the first stage while room remains."""
        eps = 1e-12
        progress = False
        tel = self.telemetry
        first_name = self.graph.first.name
        first = self._stages[first_name]
        for idx, st in enumerate(self.streams):
            q = first.merged_q if first.merged_q is not None else first.queues[idx]
            while st.admitted < st.n and q.has_room(1):
                if self._arrival_time(st, st.admitted) > now + eps:
                    break
                q.put((idx, st.admitted))
                t_in = max(now, self._arrival_time(st, st.admitted))
                st.ingest_time[st.admitted] = t_in
                if tel is not None:
                    first.enter_t[(idx, st.admitted)] = t_in
                    if tel.bus.enabled:
                        tel.bus.emit(
                            "admission", t_in, first_name, stream=idx, frame=st.admitted
                        )
                        tel.bus.emit(
                            "frame_enter", t_in, first_name, stream=idx, frame=st.admitted
                        )
                st.admitted += 1
                progress = True
        return progress

    def _next_pending_arrival(self, now: float) -> float | None:
        """Earliest future arrival that could enter the pipeline."""
        best = None
        for st in self.streams:
            if st.admitted < st.n:
                t = self._arrival_time(st, st.admitted)
                if t > now and (best is None or t < best):
                    best = t
        return best

    # ------------------------------------------------------------------
    # out-buffer draining (blocked workers delivering held survivors)
    # ------------------------------------------------------------------
    def _route(self, spec: StageSpec, stream_idx: int, frame_idx: int):
        """(queue, stage name) a survivor of ``spec`` flows into.

        Under adaptive depth planning a frame whose stream's plan exits the
        cascade at ``spec`` skips the remaining filters and goes straight to
        the merged terminal queue — the same per-frame lookup the threaded
        engine's routing loop makes.
        """
        nxt = self.graph.next(spec.name)
        if self._plan_routing and self._planner.exits_at(
            spec.name, stream_idx, frame_idx
        ):
            nxt = self.graph.terminal
        stg = self._stages[nxt.name]
        q = stg.merged_q if stg.merged_q is not None else stg.queues[stream_idx]
        return q, nxt.name

    def _drain_out_buffers(self, now: float) -> bool:
        progress = False
        tel = self.telemetry
        for spec in self.graph.specs[:-1]:
            stg = self._stages[spec.name]
            for dq in stg.out.values():
                while dq:
                    s_idx, f_idx = dq[0]
                    target, tname = self._route(spec, s_idx, f_idx)
                    if not target.has_room(1):
                        break  # the worker delivers FIFO; head blocks the rest
                    target.put(dq.popleft())
                    if tel is not None:
                        self._stages[tname].enter_t[(s_idx, f_idx)] = now
                        if tel.bus.enabled:
                            tel.bus.emit(
                                "frame_enter", now, tname,
                                stream=s_idx, frame=f_idx,
                            )
                    progress = True
        return progress

    # ------------------------------------------------------------------
    # work starting
    # ------------------------------------------------------------------
    def _device_idle(self, name: str) -> bool:
        return name not in self._in_service

    def _start(self, device_name: str, service: _Service) -> None:
        self._in_service[device_name] = service
        device = self.placement.devices[device_name]
        device.busy_time += service.end - service.start
        self._stages[service.stage].batch_events += 1
        heapq.heappush(self._heap, (service.end, next(self._seq), device_name))

    def _upstream_drained(self, spec: StageSpec, stream_idx: int) -> bool:
        """No frame of ``stream_idx`` can ever reach ``spec`` again."""
        st = self.streams[stream_idx]
        if st.admitted < st.n:
            return False
        for up in self.graph.upstream(spec.name):
            ustg = self._stages[up.name]
            if ustg.in_flight[stream_idx]:
                return False
            if ustg.merged_q is not None:
                if any(s == stream_idx for s, _ in ustg.merged_q):
                    return False
            elif len(ustg.queues[stream_idx]):
                return False
            if up.fan_in == PER_STREAM:
                if ustg.out.get(stream_idx):
                    return False
            else:
                for dq in ustg.out.values():
                    if any(s == stream_idx for s, _ in dq):
                        return False
        return True

    def _n_take(self, spec: StageSpec, q: SimQueue, stream_idx: int | None) -> int:
        """Batch size a worker takes from ``q`` right now (0 = skip)."""
        cfg = self.config
        rule = spec.batch
        if rule.kind == "rr_cap":
            return min(len(q), cfg.num_t_yolo)
        if rule.kind == "config":
            if stream_idx is None:
                eof = all(
                    self._upstream_drained(spec, i) for i in range(len(self.streams))
                )
            else:
                eof = self._upstream_drained(spec, stream_idx)
            return decide_batch(
                cfg.batch_policy, len(q), self._batch_size_now(), q.depth, eof=eof
            )
        return min(len(q), rule.size)

    def _batch_size_now(self) -> int:
        """Configured batch size, capped by the planner's live target."""
        planner = self._planner
        size = self.config.batch_size
        if planner is not None and planner.adaptive_batching:
            size = min(size, planner.batch_target)
        return size

    def _begin(
        self,
        device_name: str,
        spec: StageSpec,
        stream_idx: int | None,
        frames: list,
        now: float,
    ) -> None:
        stg = self._stages[spec.name]
        planner = self._planner
        if planner is None or not planner.active:
            passes = [bool(stg.passes[s][f]) for s, f in frames]
        else:
            # Verdicts under the plan's FilterDegree, observed frame-by-frame
            # in FIFO order *at evaluation time* — the same contract the
            # threaded engine keeps (observe after evaluate, before routing),
            # so a chunk boundary inside this batch decides the next chunk's
            # plan before any later frame's degree is looked up.
            is_first = spec.name == self.graph.first.name
            passes = []
            for s, f in frames:
                if spec.name == SNM:
                    ok = bool(self._degree_mask(spec, stg, s, planner.degree_for(s, f))[f])
                else:
                    ok = bool(stg.passes[s][f])
                if is_first:
                    planner.observe_first(s, [f], [ok])
                passes.append(ok)
        for s, _ in frames:
            stg.in_flight[s] += 1
        # Process-pool stages are modeled as idealized linear scaling across
        # the configured worker processes (timing only; counters and
        # verdicts are executor-independent).
        parallelism = (
            self.config.num_sdd_procs if spec.executor == "process" else 1
        )
        if spec.mosaic:
            dt = self._mosaic_service_time(stg, frames)
        else:
            dt = stage_service_time(
                spec, self.costs, len(frames), parallelism=parallelism
            )
        self._start(
            device_name, _Service(spec.name, stream_idx, frames, passes, now, now + dt)
        )

    def _degree_mask(
        self, spec: StageSpec, stg: _SimStage, s_idx: int, degree: float
    ) -> np.ndarray:
        """Verdict mask of ``spec`` for one stream at one FilterDegree."""
        if degree == self.config.filter_degree:
            return stg.passes[s_idx]
        key = (spec.name, s_idx, degree)
        mask = self._degree_masks.get(key)
        if mask is None:
            cfg = self.config.with_(filter_degree=degree)
            mask = np.asarray(
                spec.logic.trace_mask(self.streams[s_idx].trace, cfg), dtype=bool
            )
            self._degree_masks[key] = mask
        return mask

    def _mosaic_service_time(self, stg: _SimStage, frames: list) -> float:
        """Per-canvas charge for one fused mosaic batch.

        Runs the *same* deterministic packer the threaded engine's fused
        evaluator runs, over the per-frame ROIs recorded in the traces
        (whole-frame fallback for traces that predate region recording), so
        the virtual canvas count is the real canvas count for the same
        batch composition.
        """
        cfg = self.config
        regions: list[Region] = []
        for i, (s, f) in enumerate(frames):
            by_frame = stg.regions[s]
            proposed = None if by_frame is None else by_frame[f]
            for cy0, cx0, cy1, cx1 in effective_regions(proposed, TYOLO_GRID):
                regions.append(Region(i, int(cy0), int(cx0), int(cy1), int(cx1)))
        plan = plan_mosaics(regions, cfg.mosaic_canvas, cfg.mosaic_gutter)
        stg.mosaic_stats.observe(plan, len(frames))
        return self.costs.mosaic_service_time(
            len(frames), plan.n_regions, plan.n_canvases
        )

    def _try_start_stage(self, device_name: str, spec: StageSpec, now: float) -> bool:
        """Start one batch of ``spec`` on ``device_name`` if possible."""
        stg = self._stages[spec.name]
        if spec.fan_in == MERGED:
            if not spec.terminal and stg.out.get(device_name):
                return False  # this worker is blocked downstream
            q = stg.merged_q
            if len(q) == 0:
                return False
            n_take = self._n_take(spec, q, None)
            if n_take == 0:
                return False
            frames = [q.pop() for _ in range(n_take)]
            self._begin(device_name, spec, None, frames, now)
            return True

        if spec.fan_in == FUSED:
            if stg.out.get(device_name):
                return False  # the fused worker is blocked downstream
            lens = [len(q) for q in stg.queues]
            eof = all(
                self._upstream_drained(spec, i) for i in range(len(self.streams))
            )
            takes = decide_fused_batch(
                self.config.batch_policy,
                lens,
                self._batch_size_now(),
                stg.queues[0].depth,
                eof=eof,
                start=stg.rr,
            )
            if sum(takes) == 0:
                return False
            frames = []
            for si in fused_pop_order(takes, stg.rr):
                frames.extend(stg.queues[si].pop() for _ in range(takes[si]))
            stg.rr = (stg.rr + 1) % len(self.streams)
            self._begin(device_name, spec, None, frames, now)
            return True

        if spec.fan_in == SHARED_RR and stg.out.get(device_name):
            return False  # the shared worker is blocked downstream
        n_streams = len(self.streams)
        for off in range(n_streams):
            idx = (stg.rr + off) % n_streams
            if spec.fan_in == PER_STREAM and stg.out.get(idx):
                continue  # this stream's worker is blocked downstream
            q = stg.queues[idx]
            if len(q) == 0:
                continue
            n_take = self._n_take(spec, q, idx)
            if n_take == 0:
                continue
            frames = [q.pop() for _ in range(n_take)]
            self._begin(device_name, spec, idx, frames, now)
            stg.rr = (idx + 1) % n_streams
            return True
        return False

    def _stage_order(self, device_name: str, specs: list[StageSpec]) -> list[StageSpec]:
        """Service order for a device hosting several stages.

        The worker threads share the device through the driver, which
        time-slices them roughly in proportion to their pending work.  We
        approximate that by serving whichever stage has more queued
        service-time, falling back to strict alternation on ties — without
        this, a long unbounded SNM backlog (static batching) would starve
        T-YOLO and stall the reference stage behind it.
        """
        if len(specs) == 1:
            return specs
        works = [
            self._stages[sp.name].queued()
            * stage_per_frame_time(sp, self.costs, arbitration_batch(sp, self.config))
            for sp in specs
        ]
        if all(abs(w - works[0]) < 1e-12 for w in works):
            last = self._dev_last.get(device_name, specs[0].name)
            names = [sp.name for sp in specs]
            if last in names:
                i = names.index(last)
                return list(specs[i + 1 :]) + list(specs[: i + 1])
            return list(specs)
        ranked = sorted(range(len(specs)), key=lambda i: (-works[i], i))
        return [specs[i] for i in ranked]

    def _try_start_devices(self, now: float) -> bool:
        """Start at most one service per idle device, per fixed-point pass."""
        any_started = False
        for device_name, specs in self._dev_stages.items():
            if not self._device_idle(device_name):
                continue
            for spec in self._stage_order(device_name, specs):
                if self._try_start_stage(device_name, spec, now):
                    self._dev_last[device_name] = spec.name
                    any_started = True
                    break
        return any_started

    def _start_all(self, now: float) -> None:
        """Keep admitting, draining, and starting until a fixed point."""
        progress = True
        while progress:
            progress = False
            progress |= self._top_up_arrivals(now)
            progress |= self._drain_out_buffers(now)
            progress |= self._try_start_devices(now)

    # ------------------------------------------------------------------
    # completion handling
    # ------------------------------------------------------------------
    def _complete(self, device_name: str, now: float) -> None:
        svc = self._in_service.pop(device_name)
        spec = self.graph[svc.stage]
        stg = self._stages[svc.stage]
        n_in = len(svc.frames)
        n_pass = int(sum(svc.passes))
        self.metrics.stages[svc.stage].record(n_in, n_pass)
        stg.frames_done += n_in
        if self.record_events:
            self.events.append(
                (svc.start, svc.end, device_name, svc.stage, svc.stream_idx, n_in, n_pass)
            )
        tel = self.telemetry
        emit = tel is not None and tel.bus.enabled
        if tel is not None:
            tel.observe_latency(
                "stage_exec_seconds", svc.end - svc.start, stage=svc.stage
            )
            # Per-frame wait/service attribution on the virtual clock — the
            # exact twin of the threaded runtime's stage_wait_seconds /
            # stage_service_seconds observations.
            service = svc.end - svc.start
            for key in svc.frames:
                t_en = stg.enter_t.pop(key, svc.start)
                tel.observe_latency(
                    "stage_wait_seconds", svc.start - t_en, stage=svc.stage
                )
                tel.observe_latency(
                    "stage_service_seconds", service, stage=svc.stage
                )
        if emit:
            tel.bus.emit(
                "batch_exec", now, svc.stage,
                stream=svc.stream_idx, t_start=svc.start, n=n_in,
            )

        out_key = svc.stream_idx if spec.fan_in == PER_STREAM else device_name
        is_first = svc.stage == self.graph.first.name
        for (s_idx, f_idx), ok in zip(svc.frames, svc.passes):
            st = self.streams[s_idx]
            stg.in_flight[s_idx] -= 1
            if is_first and ok:
                self._first_pass[s_idx] += 1
            if emit:
                tel.bus.emit(
                    "frame_pass" if (spec.terminal or ok) else "frame_filter",
                    now, svc.stage, stream=s_idx, frame=f_idx, t_start=svc.start,
                )
            if spec.terminal:
                st.analyzed += 1
                st.finish_time = max(st.finish_time, now)
                self.metrics.frames_to_ref += 1
                latency = now - self._latency_base(st, f_idx)
                self._ref_latencies.append(latency)
                if self.store is not None:
                    self._store_row(st, f_idx, svc.stage)
                if tel is not None:
                    tel.observe_latency(
                        "frame_latency_seconds", latency, stage=svc.stage
                    )
            elif ok:
                target, tname = self._route(spec, s_idx, f_idx)
                held = stg.out.get(out_key)
                if target.has_room(1) and not held:
                    target.put((s_idx, f_idx))
                    if tel is not None:
                        self._stages[tname].enter_t[(s_idx, f_idx)] = now
                        if emit:
                            tel.bus.emit(
                                "frame_enter", now, tname, stream=s_idx, frame=f_idx
                            )
                else:
                    # The worker is blocked on a full downstream queue and
                    # holds the survivor in its out-buffer.
                    if emit:
                        tel.bus.emit(
                            "queue_block", now, tname,
                            stream=s_idx, frame=f_idx, n=len(target),
                        )
                    stg.out.setdefault(out_key, deque()).append((s_idx, f_idx))
            else:
                self._drop_frame(st, f_idx, now, stage=svc.stage)

    def _latency_base(self, st: _StreamState, f_idx: int) -> float:
        """Reference point for latency: arrival when online (the user's
        clock starts when the camera captured the frame), ingest when
        offline (all frames 'arrive' at t=0, which would make latency grow
        linearly with the run instead of measuring pipeline residence)."""
        if self.online:
            return self._arrival_time(st, f_idx)
        return float(st.ingest_time[f_idx])

    def _store_row(self, st: _StreamState, f_idx: int, stage: str) -> None:
        """One durable row per frame outcome — the virtual-clock twin of the
        threaded engine's sink.  Time is *stream time* on the global frame
        index (``arrival_offset`` restores it for handed-off tails), and the
        terminal score is the trace's precomputed reference count, so both
        runtimes write identical rows for the same workload."""
        tr = st.trace
        g = st.arrival_offset + f_idx
        is_terminal = stage == self.graph.terminal.name
        score = 0.0
        if is_terminal and tr.ref_count is not None:
            score = float(tr.ref_count[f_idx])
        self.store.append(
            DetectionRecord(
                stream=tr.stream_id,
                frame=g,
                t=g / tr.fps,
                cls=tr.kind,
                box=None,
                score=score,
                disposition=stage,
            )
        )

    def _drop_frame(
        self, st: _StreamState, f_idx: int, now: float, stage: str = "dropped"
    ) -> None:
        st.dropped += 1
        st.finish_time = max(st.finish_time, now)
        latency = now - self._latency_base(st, f_idx)
        self._drop_latencies.append(latency)
        if self.store is not None:
            self._store_row(st, f_idx, stage)
        tel = self.telemetry
        if tel is not None:
            tel.observe_latency("frame_latency_seconds", latency, stage=stage)

    # ------------------------------------------------------------------
    # time-series sampling (telemetry only)
    # ------------------------------------------------------------------
    def _sample(self, now: float, *, force: bool = False) -> None:
        tel = self.telemetry
        gauges: dict[str, float] = {}
        done: dict[str, int] = {}
        for spec in self.graph:
            stg = self._stages[spec.name]
            done[spec.name] = stg.frames_done
            if stg.merged_q is not None:
                gauges[f"queue_depth[{spec.name}]"] = len(stg.merged_q)
            else:
                for i, q in enumerate(stg.queues):
                    gauges[f"queue_depth[{spec.name}[{i}]]"] = len(q)
            if stg.mosaic_stats is not None:
                gauges[f"mosaic_fill_ratio[{spec.name}]"] = stg.mosaic_stats.fill_ratio()
                gauges[f"mosaic_regions_per_canvas[{spec.name}]"] = (
                    stg.mosaic_stats.regions_per_canvas()
                )
        busy = {name: dev.busy_time for name, dev in self.placement.devices.items()}
        prev = self._prev_sample
        dt = now - prev["t"]
        if dt > 0:
            for stage, n in done.items():
                gauges[f"stage_fps[{stage}]"] = (n - prev["done"].get(stage, 0)) / dt
            for device, b in busy.items():
                gauges[f"device_utilization[{device}]"] = min(
                    1.0, (b - prev["busy"].get(device, 0.0)) / dt
                )
        tel.sampler.observe_many(now, gauges, force=force)
        self._prev_sample = {"t": now, "done": done, "busy": busy}

    def _observe_planner_queues(self, now: float) -> None:
        gauges: dict[str, float] = {}
        for spec in self.graph:
            stg = self._stages[spec.name]
            if stg.merged_q is not None:
                gauges[f"queue_depth[{spec.name}]"] = len(stg.merged_q)
            else:
                for i, q in enumerate(stg.queues):
                    gauges[f"queue_depth[{spec.name}[{i}]]"] = len(q)
        self._planner.sampler.observe_many(now, gauges)

    # ------------------------------------------------------------------
    # cluster-instance control (attach / detach)
    # ------------------------------------------------------------------
    def attach_stream(self, trace: FrameTrace, *, arrival_offset: int = 0) -> int:
        """Attach a (tail) trace mid-run; returns its stream index.

        Mirrors the threaded engine's ``attach_stream``: the new stream
        gets its own queues, pass masks, and in-flight counters, and its
        frames arrive on the *original* stream's clock via
        ``arrival_offset`` (global index of the trace's first frame).
        """
        if self._planner is not None:
            # The planner's chunk accounting assumes a fixed stream roster
            # (the threaded engine rejects reserve_slots for the same reason).
            raise ValueError("attach_stream is incompatible with plan='adaptive'")
        idx = len(self.streams)
        st = _StreamState(trace=trace, n=len(trace), arrival_offset=arrival_offset)
        st.ingest_time = np.full(st.n, np.nan)
        self.streams.append(st)
        for spec in self.graph:
            stg = self._stages[spec.name]
            stg.passes.append(
                np.asarray(spec.logic.trace_mask(trace, self.config), dtype=bool)
            )
            stg.in_flight.append(0)
            if stg.merged_q is None:
                stg.queues.append(SimQueue(self._depth_for(spec), f"{spec.name}[{idx}]"))
            if spec.mosaic:
                stg.regions.append(trace.regions_by_frame())
        self._first_pass.append(0)
        self.metrics.n_streams += 1
        return idx

    def detach_stream(self, idx: int) -> int:
        """Stop offering stream ``idx``'s frames; returns the global index
        of the first frame *not* admitted here (the attach point for the
        receiving instance).  Frames already admitted keep their in-flight
        path to a disposition, exactly like the threaded detach."""
        st = self.streams[idx]
        st.n = st.admitted
        return st.arrival_offset + st.admitted

    def stream_costs(self) -> dict[str, int]:
        """stream_id -> frames past the first stage, active streams only."""
        return {
            st.trace.stream_id: self._first_pass[i]
            for i, st in enumerate(self.streams)
            if st.active
        }

    # ------------------------------------------------------------------
    # main loop
    # ------------------------------------------------------------------
    def advance(self, until: float | None = None) -> float:
        """Run the event loop up to virtual time ``until`` (or to drain).

        Resumable: the cluster simulator calls this once per router epoch,
        applies attach/detach between calls, and finishes with
        :meth:`finalize`.  Returns the current virtual time.
        """
        now = self._now
        inf = float("inf")
        sample = self.telemetry is not None
        planner = self._planner
        batching = planner is not None and planner.adaptive_batching
        while True:
            self._start_all(now)
            if sample and self.telemetry.sampler.due(now):
                self._sample(now)
                self.admission.poll(now)
                if planner is not None:
                    planner.poll(now)
            elif batching and planner.sampler.due(now):
                # Telemetry off: feed the planner's private sampler the same
                # queue-depth gauges the telemetry sweep would have recorded.
                self._observe_planner_queues(now)
                planner.poll(now)
            if all(st.finished for st in self.streams):
                break
            t_heap = self._heap[0][0] if self._heap else inf
            t_arr = self._next_pending_arrival(now)
            t_next = min(t_heap, t_arr if t_arr is not None else inf)
            if t_next == inf:
                # No pending completions and no future arrivals: remaining
                # frames are unreachable (should not happen) — stop.
                break
            if until is not None and t_next > until:
                now = until
                break
            now = t_next
            while self._heap and self._heap[0][0] <= now + 1e-15:
                _, _, dev = heapq.heappop(self._heap)
                self._complete(dev, now)
        self._now = now
        return now

    def finalize(self, max_virtual_time: float | None = None) -> RunMetrics:
        """Close out an :meth:`advance`-driven run and return metrics."""
        return self._finalize(self._now, max_virtual_time)

    def run(self, max_virtual_time: float | None = None) -> RunMetrics:
        """Simulate until all frames are processed (or the horizon ends)."""
        self.advance(max_virtual_time)
        return self._finalize(self._now, max_virtual_time)

    def _finalize(self, now: float, max_virtual_time: float | None) -> RunMetrics:
        if self.store is not None:
            self.store.close()  # idempotent: advance()/finalize() may repeat
        m = self.metrics
        m.duration = now
        m.frames_offered = sum(st.n for st in self.streams)
        m.frames_ingested = sum(st.admitted for st in self.streams)
        m.ref_latency = LatencyStats.from_samples(self._ref_latencies)
        m.frame_latency = LatencyStats.from_samples(
            self._drop_latencies + self._ref_latencies
        )
        m.device_utilization = {
            name: dev.utilization(m.duration)
            for name, dev in self.placement.devices.items()
        }
        qhw: dict[str, int] = {}
        for spec in self.graph:
            stg = self._stages[spec.name]
            if stg.merged_q is not None:
                qhw[spec.name] = stg.merged_q.high_water
            else:
                for i, q in enumerate(stg.queues):
                    qhw[f"{spec.name}[{i}]"] = q.high_water
        m.queue_high_water = qhw
        m.extra["per_stream_ingested"] = [st.admitted for st in self.streams]
        m.extra["per_stream_done"] = [st.dropped + st.analyzed for st in self.streams]
        m.extra["per_stream_finish_time"] = [st.finish_time for st in self.streams]
        for spec in self.graph:
            stg = self._stages[spec.name]
            m.extra[f"{spec.name}_fps"] = (
                stg.frames_done / m.duration if m.duration > 0 else 0.0
            )
            if stg.batch_events:
                m.extra[f"mean_{spec.name}_batch"] = (
                    m.stages[spec.name].entered / stg.batch_events
                )
            if stg.mosaic_stats is not None:
                m.extra["mosaic"] = stg.mosaic_stats.as_dict()
        m.extra["truncated"] = (
            max_virtual_time is not None
            and not all(st.finished for st in self.streams)
        )
        if self.telemetry is not None:
            self._sample(now, force=True)
            self.admission.poll(now)
            m.extra["telemetry"] = self.telemetry.bus.stats()
            m.extra["admission"] = self.admission.summary()
            m.extra["lineage"] = lineage_section(
                self.telemetry, terminal=self.graph.terminal.name
            )
        if self._planner is not None:
            self._planner.poll(now)
            m.extra["qplan"] = self._planner.summary()
        return m

    def lineage_context(self) -> dict:
        """Stream-resolution context for the ``/lineage`` endpoint.

        Simulator events carry *local* frame indices; a stream attached
        mid-run (cluster handoff twin) reports its ``arrival_offset`` so the
        endpoint can translate a global frame number into the local index
        its events use.
        """
        streams = {
            st.trace.stream_id: {"index": i, "offset": st.arrival_offset}
            for i, st in enumerate(self.streams)
        }
        return {
            "terminal": self.graph.terminal.name,
            "streams": streams,
            "qplan": (
                self._planner.summary() if self._planner is not None else None
            ),
        }


def simulate_offline(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    placement: Placement | None = None,
    *,
    telemetry: Telemetry | None = None,
) -> RunMetrics:
    """Offline analysis: all frames available immediately, run to drain."""
    sim = PipelineSimulator(
        traces, config, cost_model, placement, online=False, telemetry=telemetry
    )
    return sim.run()


def simulate_online(
    traces: list[FrameTrace],
    config: FFSVAConfig | None = None,
    cost_model: CostModel | None = None,
    placement: Placement | None = None,
    *,
    horizon_slack: float = 2.0,
    telemetry: Telemetry | None = None,
) -> RunMetrics:
    """Online analysis: frames arrive at ``stream_fps``, bounded horizon.

    The horizon is the nominal clip duration plus ``horizon_slack`` seconds;
    a system that keeps up ingests everything well inside it, an overloaded
    one shows depressed ingest (and fails :meth:`RunMetrics.realtime`).
    """
    config = config or FFSVAConfig()
    sim = PipelineSimulator(
        traces, config, cost_model, placement, online=True, telemetry=telemetry
    )
    n_max = max(len(t) for t in traces)
    horizon = n_max / config.stream_fps + horizon_slack
    return sim.run(max_virtual_time=horizon)
