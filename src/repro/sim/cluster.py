"""Simulated cluster serving plane: the router policy over virtual clocks.

:class:`ClusterSimulator` is the discrete-event twin of
:class:`~repro.runtime.cluster.ClusterSupervisor`: N
:class:`~repro.sim.simulator.PipelineSimulator` instances advance in
lock-step to each router epoch boundary, report the *same* signals the
threaded instances report (admission state, EWMA headroom from the sampled
rate series, live per-stream first-stage costs), and the *same*
:class:`~repro.runtime.router.StreamRouter` picks at most one
shed/re-forward move per epoch.  A move is actuated with the same
frame-boundary contract: ``detach_stream`` yields the first global index
never admitted at the source, and the destination attaches the trace tail
from exactly that index (``FrameTrace.sliced``) on the original arrival
clock.

Because decisions flow through the identical pure policy
(:func:`~repro.core.admission.pick_move`) fed by the identical report
schema, a threaded cluster and a simulated cluster that observe equivalent
sampled series produce equivalent shed/re-forward logs — the cluster-layer
extension of the repo's cross-runtime guarantees, and what
``StreamRouter.replay`` lets tests check offline.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field

from ..core.admission import estimate_headroom
from ..core.config import FFSVAConfig
from ..core.metrics import RunMetrics
from ..core.trace import FrameTrace
from ..devices.costs import CostModel
from ..obs import Telemetry
from ..runtime.router import InstanceReport, StreamRouter
from .simulator import PipelineSimulator

__all__ = ["ClusterSimulator", "ClusterSimResult"]


@dataclass
class ClusterSimResult:
    """Per-instance metrics plus the router's decision record."""

    instances: list[RunMetrics]
    router_log: list[dict] = field(default_factory=list)
    moves: list[tuple[str, int, int]] = field(default_factory=list)
    handoffs: list[dict] = field(default_factory=list)
    virtual_time: float = 0.0

    @property
    def total_offered(self) -> int:
        return sum(m.frames_offered for m in self.instances)


class ClusterSimulator:
    """N simulated pipeline instances behind one epoch-driven router."""

    def __init__(
        self,
        traces: list[FrameTrace],
        config: FFSVAConfig | None = None,
        cost_model: CostModel | None = None,
        *,
        online: bool = True,
        graph=None,
    ):
        if not traces:
            raise ValueError("need at least one stream trace")
        self.config = cfg = config or FFSVAConfig()
        n = cfg.cluster_instances
        #: Initial placement: the same round-robin rule the live supervisor
        #: (and InstanceGroup.assign) uses.
        self.partition: list[list[FrameTrace]] = [[] for _ in range(n)]
        for i, tr in enumerate(traces):
            self.partition[i % n].append(tr)
        if any(not part for part in self.partition):
            raise ValueError(
                f"{n} instances need at least {n} streams (got {len(traces)})"
            )
        self.traces = list(traces)
        self._ends = {tr.stream_id: len(tr) for tr in traces}
        self._by_id = {tr.stream_id: tr for tr in traces}
        self.instances = []
        for i, part in enumerate(self.partition):
            inst_cfg = cfg
            if cfg.result_store_dir is not None:
                # Same layout the live supervisor writes: one store per
                # instance under the configured parent directory.
                inst_cfg = cfg.with_(
                    result_store_dir=os.path.join(
                        cfg.result_store_dir, f"instance-{i}"
                    )
                )
            self.instances.append(
                PipelineSimulator(
                    part,
                    inst_cfg,
                    cost_model,
                    online=online,
                    graph=graph,
                    telemetry=Telemetry(sample_interval=cfg.telemetry_sample_interval),
                )
            )
        self.router = StreamRouter()
        self._attaches_used = [0] * n
        #: Applied handoffs with their frame boundary, the same record the
        #: live supervisor keeps for cluster lineage stitching.
        self.handoffs: list[dict] = []

    def _report(self, inst: PipelineSimulator, i: int) -> InstanceReport:
        adm = inst.admission
        return InstanceReport(
            state=adm.state,
            headroom=estimate_headroom(adm.reader, self.config, adm.rate_series),
            costs={k: float(v) for k, v in inst.stream_costs().items()},
            free_slots=self.config.cluster_reserve_slots - self._attaches_used[i],
            outcomes=sum(st.dropped + st.analyzed for st in inst.streams),
            offered=sum(st.n for st in inst.streams),
        )

    def _actuate(self, move) -> None:
        src = self.instances[move.src]
        dst = self.instances[move.dst]
        idx = next(
            i
            for i, st in enumerate(src.streams)
            if st.trace.stream_id == move.stream and st.active
        )
        k = src.detach_stream(idx)
        self.handoffs.append(
            {
                "stream": move.stream,
                "src": move.src,
                "dst": move.dst,
                "boundary": int(k),
            }
        )
        end = self._ends[move.stream]
        if k < end:
            tail = self._by_id[move.stream].sliced(k, end)
            dst.attach_stream(tail, arrival_offset=k)
            self._attaches_used[move.dst] += 1

    def run(self, max_virtual_time: float | None = None) -> ClusterSimResult:
        """Epoch-step every instance to drain (or to the horizon)."""
        cfg = self.config
        total_planned = sum(self._ends.values())
        if max_virtual_time is None:
            longest = max(self._ends.values())
            max_virtual_time = longest / cfg.stream_fps * 4.0 + 30.0
        t = 0.0
        while True:
            t += cfg.router_epoch
            for inst in self.instances:
                inst.advance(t)
                # Epoch-boundary control sweep, mirroring the threaded
                # sampler thread's periodic poll of the admission machine.
                inst.admission.poll(t)
            reports = [
                self._report(inst, i) for i, inst in enumerate(self.instances)
            ]
            if sum(r.outcomes for r in reports) >= total_planned:
                break
            if t > max_virtual_time:
                break
            move = self.router.step(reports)
            if move is not None:
                self._actuate(move)
        metrics = [inst.finalize(max_virtual_time) for inst in self.instances]
        return ClusterSimResult(
            instances=metrics,
            router_log=self.router.log,
            moves=self.router.moves(),
            handoffs=list(self.handoffs),
            virtual_time=t,
        )
