"""Discrete-event simulation of FFS-VA at paper scale."""

from .cluster import ClusterSimResult, ClusterSimulator
from .simulator import PipelineSimulator, simulate_offline, simulate_online

__all__ = [
    "PipelineSimulator",
    "simulate_offline",
    "simulate_online",
    "ClusterSimulator",
    "ClusterSimResult",
]
