"""Telemetry subsystem shared by the threaded runtime and the simulator.

The observability story the paper's own evaluation needs — queue depths
over time (Figure 9's feedback dynamics), per-filter execution ratios
(Figure 5), and where individual frames stall — lives here, split into four
small planes:

* :mod:`repro.obs.bus` — the structured event transport (a non-blocking,
  drop-counting ring both executors publish to);
* :mod:`repro.obs.trace` — per-frame span reconstruction and Chrome
  ``trace_event`` export;
* :mod:`repro.obs.sampler` — bounded time-series reservoirs for queue
  depth, device utilization, and per-stage throughput;
* :mod:`repro.obs.export` — Prometheus/JSON rendering plus the optional
  stdlib HTTP endpoint (``/metrics``, ``/snapshot``).

A :class:`Telemetry` object bundles one bus and one sampler and is attached
to a pipeline (``ThreadedPipeline(..., telemetry=...)``,
``PipelineSimulator(..., telemetry=...)``, or transparently via
``FFSVAConfig(telemetry=True)``).  When no telemetry is attached the hot
path pays a single ``is None`` branch per emission site.
"""

from __future__ import annotations

import threading as _threading

from .bus import EVENT_KINDS, NULL_BUS, EventBus, NullBus, TelemetryEvent
from .control import Hysteresis, SignalReader
from .export import (
    METRIC_FAMILIES,
    ClusterMetricsServer,
    MetricsAggregator,
    TelemetryServer,
    parse_prometheus,
    render_prometheus,
    snapshot_json,
)
from .hist import DEFAULT_BUCKETS, LatencyHistogram
from .lineage import (
    FrameLineage,
    LineageHop,
    build_all_lineages,
    build_lineage,
    critical_path_summary,
    lineage_section,
    lineage_to_dict,
)
from .sampler import Series, TimeSeriesSampler
from .trace import (
    FrameSpan,
    RotatingTraceWriter,
    build_spans,
    chrome_trace,
    dump_chrome_trace,
    dump_rotating_trace,
    overlay_chrome_trace,
)

__all__ = [
    "EVENT_KINDS",
    "TelemetryEvent",
    "EventBus",
    "NullBus",
    "NULL_BUS",
    "DEFAULT_BUCKETS",
    "LatencyHistogram",
    "Series",
    "TimeSeriesSampler",
    "SignalReader",
    "Hysteresis",
    "FrameSpan",
    "FrameLineage",
    "LineageHop",
    "build_lineage",
    "build_all_lineages",
    "critical_path_summary",
    "lineage_section",
    "lineage_to_dict",
    "build_spans",
    "chrome_trace",
    "dump_chrome_trace",
    "overlay_chrome_trace",
    "RotatingTraceWriter",
    "dump_rotating_trace",
    "METRIC_FAMILIES",
    "render_prometheus",
    "snapshot_json",
    "parse_prometheus",
    "TelemetryServer",
    "MetricsAggregator",
    "ClusterMetricsServer",
    "Telemetry",
]


class Telemetry:
    """One run's telemetry: an event bus plus a time-series sampler."""

    def __init__(
        self,
        *,
        capacity: int = 65536,
        sample_interval: float = 0.05,
        series_capacity: int = 512,
        events: tuple[str, ...] | None = None,
    ):
        self.bus = EventBus(capacity, kinds=events)
        self.sampler = TimeSeriesSampler(sample_interval, series_capacity)
        #: Classic histograms: family name -> {sorted label tuple -> hist}.
        self.histograms: dict[str, dict[tuple, LatencyHistogram]] = {}
        self._hist_lock = _threading.Lock()

    def observe_latency(self, family: str, value: float, **labels) -> None:
        """Record one observation into a labelled histogram family.

        Families are created on first observation (bounds from
        :data:`~repro.obs.hist.DEFAULT_BUCKETS`); one short lock serializes
        concurrent stage workers.
        """
        key = tuple(sorted(labels.items()))
        with self._hist_lock:
            series = self.histograms.setdefault(family, {})
            hist = series.get(key)
            if hist is None:
                hist = series[key] = LatencyHistogram()
            hist.observe(value)

    @classmethod
    def from_config(cls, config) -> "Telemetry | None":
        """The telemetry a config asks for (None when disabled)."""
        if not getattr(config, "telemetry", False):
            return None
        return cls(sample_interval=config.telemetry_sample_interval)

    # -- trace plane ---------------------------------------------------
    def spans(self, *, terminal: str | None = None) -> list[FrameSpan]:
        """Per-frame spans reconstructed from the retained events."""
        return build_spans(self.bus.events(), terminal=terminal)

    def chrome_trace(self, *, terminal: str | None = None) -> dict:
        """Chrome ``trace_event`` JSON object for chrome://tracing."""
        return chrome_trace(self.spans(terminal=terminal))

    def dump_chrome_trace(self, path, *, terminal: str | None = None) -> None:
        dump_chrome_trace(path, self.spans(terminal=terminal))

    def dump_rotating_trace(
        self,
        directory,
        *,
        terminal: str | None = None,
        max_bytes: int = 1_000_000,
        max_span: float | None = None,
        max_segments: int | None = None,
        label: str | None = None,
    ) -> dict:
        """Segmented trace export for long runs; returns the manifest."""
        return dump_rotating_trace(
            directory,
            self.spans(terminal=terminal),
            max_bytes=max_bytes,
            max_span=max_span,
            max_segments=max_segments,
            label=label,
        )

    # -- export plane --------------------------------------------------
    def prometheus(self, metrics=None) -> str:
        return render_prometheus(metrics, self)

    def snapshot(self, metrics=None) -> dict:
        return snapshot_json(metrics, self)

    def serve(
        self,
        metrics_provider,
        port: int = 0,
        *,
        trace_dir: str | None = None,
        store=None,
        store_dir: str | None = None,
        lineage=None,
    ) -> TelemetryServer:
        """Start an HTTP endpoint exposing this telemetry (caller stops it).

        ``metrics_provider`` is a zero-argument callable returning the
        current :class:`~repro.core.metrics.RunMetrics` (or None).  With
        ``trace_dir``, the endpoint also serves that directory's rotating
        trace segments under ``/traces``; with a live detection ``store``
        (or a ``store_dir`` to read), ``/query`` and ``/subscribe`` serve
        the persisted results.  ``lineage`` is a zero-arg callable returning
        the pipeline's lineage context (``pipeline.lineage_context``) so
        ``/lineage`` can resolve stream ids and attach the in-effect plan.
        """
        return TelemetryServer(
            lambda: (metrics_provider(), self),
            port=port,
            trace_dir=trace_dir,
            store=store,
            store_dir=store_dir,
            context=lineage,
        ).start()
