"""Per-frame lineage reconstruction and critical-path latency attribution.

The cascade's end-to-end latency is dominated by *waiting* — in stage
queues, in batch formation, and across handoffs — but the event stream
only records points in time.  This module folds the six-kind event stream
(:data:`~repro.obs.bus.EVENT_KINDS`) into a per-frame :class:`FrameLineage`:
an ordered list of :class:`LineageHop` records, one per stage visit, each
decomposed into

* ``batch_wait`` — the share of the enter→service window attributable to
  batch formation: the frame sat in the queue while later co-batched
  frames were still arriving (``t_enter`` → ``t_ready``, where ``t_ready``
  is the last observed enter among the frames served in the same batch);
* ``queue_wait`` — the residual wait of the fully-formed batch for the
  device (``t_ready`` → ``t_start``);
* ``service``    — the busy window covering this frame (``t_start`` → ``t_end``);
* ``gap``        — the transfer gap since the previous hop's disposition
  (out-buffer holds in the simulator, thread handoff in the runtime).

so that ``gap + batch_wait + queue_wait + service`` summed over hops equals
the frame's recorded end-to-end latency on frames with complete lineage.

**Incompleteness contract.**  The event bus is a bounded ring: under
pressure it evicts oldest-first and counts the evictions.  Reconstruction
never fabricates waits from missing data — a hop whose ``frame_enter`` was
evicted reports ``complete=False`` with zero waits (only its service window
is known), and the lineage reports ``incomplete=True``.  When *some*
co-batched enters survive, ``t_ready`` is the max of the survivors — a
lower bound that keeps the decomposition a true partition of the observed
window while attributing conservatively to ``batch_wait``.

Both runtimes emit the same event schema (wall clocks in the threaded
runtime, virtual clocks in the simulator), so lineage is runtime-agnostic
and — because the simulator is deterministic — byte-stable there.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .bus import TelemetryEvent

__all__ = [
    "LineageHop",
    "FrameLineage",
    "build_lineage",
    "build_all_lineages",
    "critical_path_summary",
    "lineage_section",
    "lineage_to_dict",
]

#: Clock-noise floor for the structural ``waited`` flag: threaded runs pay
#: a few microseconds of scheduler latency on every queue hop, which must
#: not read as "this frame waited" when the simulator's virtual clock says
#: zero.  Real queue/batch waits in both runtimes are >= model-cost scale
#: (milliseconds).
WAIT_RESOLUTION = 1e-3

#: Hop components in render order.
COMPONENTS = ("gap", "batch_wait", "queue_wait", "service")


@dataclass(frozen=True)
class LineageHop:
    """One frame's visit to one stage, decomposed.

    ``t_enter`` is ``None`` when the hop's ``frame_enter`` event was
    evicted from the ring — waits are then reported as zero and
    ``complete`` is ``False`` (never fabricated).  ``t_ready`` is the
    batch-complete time: the latest *observed* enter among the frames
    served in the same batch, clamped into ``[t_enter, t_start]``.
    """

    stage: str
    t_enter: float | None
    t_ready: float | None
    t_start: float
    t_end: float
    disposition: str  # "pass" | "filtered" | "analyzed"
    gap: float  # since the previous hop's disposition (0.0 on the first hop)
    batch_size: int | None  # from the covering batch_exec (None if evicted)
    batch_id: int | None  # ordinal of that batch at this stage (canvas identity)
    blocked: int  # queue_block events this frame hit entering the stage
    complete: bool  # the enter event survived: waits below are real

    @property
    def batch_wait(self) -> float:
        """Seconds waiting for the batch to finish forming."""
        if not self.complete:
            return 0.0
        return max(0.0, self.t_ready - self.t_enter)

    @property
    def queue_wait(self) -> float:
        """Seconds the formed batch waited for the device."""
        if not self.complete:
            return 0.0
        return max(0.0, self.t_start - max(self.t_ready, self.t_enter))

    @property
    def service(self) -> float:
        """Seconds of (batched) service covering this frame."""
        return max(0.0, self.t_end - self.t_start)

    @property
    def waited(self) -> bool:
        """Whether this hop waited beyond the clock-noise floor."""
        return (self.batch_wait + self.queue_wait + self.gap) > WAIT_RESOLUTION

    def components(self) -> dict[str, float]:
        return {
            "gap": self.gap,
            "batch_wait": self.batch_wait,
            "queue_wait": self.queue_wait,
            "service": self.service,
        }

    def to_dict(self) -> dict:
        return {
            "stage": self.stage,
            "t_enter": self.t_enter,
            "t_ready": self.t_ready,
            "t_start": self.t_start,
            "t_end": self.t_end,
            "disposition": self.disposition,
            "gap": self.gap,
            "batch_wait": self.batch_wait,
            "queue_wait": self.queue_wait,
            "service": self.service,
            "batch_size": self.batch_size,
            "batch_id": self.batch_id,
            "blocked": self.blocked,
            "complete": self.complete,
        }


@dataclass
class FrameLineage:
    """One frame's reconstructed story through the cascade."""

    stream: int
    frame: int
    hops: list[LineageHop] = field(default_factory=list)
    #: Any events for this frame survived in the ring at all.
    found: bool = False
    #: Some of this frame's story was evicted (missing admission or a hop
    #: with no surviving enter) — waits are partial, never fabricated.
    incomplete: bool = False
    #: Bus eviction counter at reconstruction time (context for readers).
    dropped_events: int = 0
    #: Admission time into the first stage (None if evicted).
    t_admitted: float | None = None
    #: The in-effect query-planner decision, when a qplan summary was given.
    plan: dict | None = None

    @property
    def disposition(self) -> str | None:
        """How the frame's journey ended (last observed hop)."""
        return self.hops[-1].disposition if self.hops else None

    @property
    def total_latency(self) -> float:
        """End-to-end seconds from first observed time to last disposition."""
        if not self.hops:
            return 0.0
        t0 = self.t_admitted
        if t0 is None:
            first = self.hops[0]
            t0 = first.t_enter if first.t_enter is not None else first.t_start
        return max(0.0, self.hops[-1].t_end - t0)

    def totals(self) -> dict[str, float]:
        """Per-component seconds summed over hops (partition of the total)."""
        out = {c: 0.0 for c in COMPONENTS}
        for hop in self.hops:
            for c, v in hop.components().items():
                out[c] += v
        out["total"] = sum(out[c] for c in COMPONENTS)
        return out

    def structure(self) -> list[tuple[str, str, bool]]:
        """Clock-free structural identity: (stage, disposition, waited) per
        hop — what threaded and simulated lineages of the same workload must
        agree on even though wall times differ."""
        return [(h.stage, h.disposition, h.waited) for h in self.hops]


def lineage_to_dict(lineage: FrameLineage) -> dict:
    """JSON-compatible rendering (the ``/lineage`` endpoint's body)."""
    return {
        "stream": lineage.stream,
        "frame": lineage.frame,
        "found": lineage.found,
        "incomplete": lineage.incomplete,
        "dropped_events": lineage.dropped_events,
        "t_admitted": lineage.t_admitted,
        "disposition": lineage.disposition,
        "plan": lineage.plan,
        "total_latency": lineage.total_latency,
        "totals": lineage.totals(),
        "hops": [h.to_dict() for h in lineage.hops],
    }


# ---------------------------------------------------------------------------
# event folding
# ---------------------------------------------------------------------------


class _Folded:
    """One pass over the event stream, indexed for lineage assembly."""

    __slots__ = ("enters", "admissions", "blocks", "dispositions", "batches", "ready")

    def __init__(self, events: list[TelemetryEvent]):
        #: (stream, frame, stage) -> first observed enter ts
        self.enters: dict[tuple, float] = {}
        #: (stream, frame) -> admission ts
        self.admissions: dict[tuple, float] = {}
        #: (stream, frame, stage) -> queue_block count
        self.blocks: dict[tuple, int] = {}
        #: (stream, frame) -> [disposition events, ts order]
        self.dispositions: dict[tuple, list[TelemetryEvent]] = {}
        #: (stage, t_start, ts) -> (batch ordinal at stage, n)
        self.batches: dict[tuple, tuple[int, int | None]] = {}
        #: (stage, t_start, ts) -> latest observed member enter ts
        self.ready: dict[tuple, float] = {}
        per_stage_seq: dict[str, int] = {}
        for ev in sorted(events, key=lambda e: e.ts):
            if ev.kind == "batch_exec":
                key = (ev.stage, ev.t_start, ev.ts)
                if key not in self.batches:
                    seq = per_stage_seq.get(ev.stage, 0)
                    per_stage_seq[ev.stage] = seq + 1
                    self.batches[key] = (seq, ev.n)
                continue
            if ev.stream is None or ev.frame is None:
                continue
            fkey = (ev.stream, ev.frame)
            skey = (ev.stream, ev.frame, ev.stage)
            if ev.kind == "admission":
                self.admissions.setdefault(fkey, ev.ts)
            elif ev.kind == "frame_enter":
                self.enters.setdefault(skey, ev.ts)
            elif ev.kind == "queue_block":
                self.blocks[skey] = self.blocks.get(skey, 0) + 1
            elif ev.kind in ("frame_pass", "frame_filter"):
                self.dispositions.setdefault(fkey, []).append(ev)
                t_start = ev.t_start if ev.t_start is not None else ev.ts
                bkey = (ev.stage, t_start, ev.ts)
                t_enter = self.enters.get(skey)
                if t_enter is not None:
                    prev = self.ready.get(bkey)
                    self.ready[bkey] = (
                        t_enter if prev is None else max(prev, t_enter)
                    )

    def assemble(
        self, stream: int, frame: int, *, terminal: str | None, dropped: int,
        plan: dict | None = None,
    ) -> FrameLineage:
        fkey = (stream, frame)
        lineage = FrameLineage(
            stream=stream, frame=frame, dropped_events=dropped, plan=plan,
            t_admitted=self.admissions.get(fkey),
        )
        prev_end: float | None = None
        for ev in self.dispositions.get(fkey, []):
            t_start = ev.t_start if ev.t_start is not None else ev.ts
            skey = (stream, frame, ev.stage)
            bkey = (ev.stage, t_start, ev.ts)
            t_enter = self.enters.get(skey)
            complete = t_enter is not None
            t_ready = None
            if complete:
                # Lower-bound batch-complete time from the surviving
                # co-member enters, clamped into [t_enter, t_start]; enter
                # events race service start in the threaded runtime, so the
                # clamp also absorbs enter-after-start stamps.
                t_ready = min(max(self.ready.get(bkey, t_enter), t_enter), t_start)
                t_enter = min(t_enter, t_start)
            batch = self.batches.get(bkey)
            if ev.kind == "frame_filter":
                disposition = "filtered"
            elif terminal is not None and ev.stage == terminal:
                disposition = "analyzed"
            else:
                disposition = "pass"
            anchor = t_enter if complete else t_start
            gap = 0.0 if prev_end is None else max(0.0, anchor - prev_end)
            lineage.hops.append(
                LineageHop(
                    stage=ev.stage,
                    t_enter=t_enter,
                    t_ready=t_ready,
                    t_start=t_start,
                    t_end=ev.ts,
                    disposition=disposition,
                    gap=gap,
                    batch_size=batch[1] if batch else None,
                    batch_id=batch[0] if batch else None,
                    blocked=self.blocks.get(skey, 0),
                    complete=complete,
                )
            )
            prev_end = ev.ts
        lineage.found = bool(lineage.hops) or fkey in self.admissions
        lineage.incomplete = bool(lineage.hops) and (
            lineage.t_admitted is None
            or any(not h.complete for h in lineage.hops)
        )
        return lineage


def _plan_for(qplan: dict | None, stream: int, frame: int) -> dict | None:
    """The in-effect planner decision for (stream, frame), if any.

    ``qplan`` is the ``RunMetrics.extra["qplan"]`` summary: decisions are
    per-chunk re-plans; the one in effect is the latest whose chunk starts
    at or before the frame's chunk.
    """
    if not qplan:
        return None
    epoch = qplan.get("epoch") or 0
    if epoch <= 0:
        return None
    chunk = frame // epoch
    in_effect = None
    for d in qplan.get("decisions", []):
        if d.get("stream") == stream and d.get("chunk", 0) <= chunk:
            if in_effect is None or d["chunk"] >= in_effect["chunk"]:
                in_effect = d
    return dict(in_effect) if in_effect is not None else None


def build_lineage(
    events: list[TelemetryEvent],
    stream: int,
    frame: int,
    *,
    terminal: str | None = None,
    dropped: int = 0,
    qplan: dict | None = None,
) -> FrameLineage:
    """Reconstruct one frame's lineage from a bus's event snapshot."""
    folded = _Folded(events)
    return folded.assemble(
        stream, frame, terminal=terminal, dropped=dropped,
        plan=_plan_for(qplan, stream, frame),
    )


def build_all_lineages(
    events: list[TelemetryEvent],
    *,
    terminal: str | None = None,
    dropped: int = 0,
) -> list[FrameLineage]:
    """Every observed frame's lineage, ordered by (stream, frame)."""
    folded = _Folded(events)
    keys = set(folded.dispositions) | set(folded.admissions)
    return [
        folded.assemble(s, f, terminal=terminal, dropped=dropped)
        for s, f in sorted(keys)
    ]


# ---------------------------------------------------------------------------
# critical-path attribution
# ---------------------------------------------------------------------------


def _quantile_frame(ordered: list[FrameLineage], q: float) -> FrameLineage:
    """Nearest-rank quantile over lineages already sorted by total latency."""
    idx = min(len(ordered) - 1, max(0, int(round(q * (len(ordered) - 1)))))
    return ordered[idx]


def _breakdown(lineage: FrameLineage) -> dict[str, float]:
    """Seconds per ``stage/component`` pair for one frame."""
    out: dict[str, float] = {}
    for hop in lineage.hops:
        for comp, v in hop.components().items():
            if v > 0.0:
                key = f"{hop.stage}/{comp}"
                out[key] = out.get(key, 0.0) + v
    return out


def critical_path_summary(
    events: list[TelemetryEvent],
    *,
    terminal: str | None = None,
    dropped: int = 0,
) -> dict:
    """Attribute end-to-end latency to (stage, component) pairs.

    Only frames with *complete* lineage participate (the incompleteness
    contract: evicted events must not skew attribution); their counts are
    reported so a reader can judge coverage.  For each of p50/p95/p99 the
    nearest-rank frame's full decomposition is reported along with its top
    contributor — "where does the tail live" as one key.
    """
    lineages = build_all_lineages(events, terminal=terminal, dropped=dropped)
    complete = [
        lin for lin in lineages if lin.hops and not lin.incomplete
    ]
    summary: dict = {
        "frames": len(lineages),
        "complete": len(complete),
        "incomplete": len(lineages) - len(complete),
        "dropped_events": dropped,
        "quantiles": {},
        "components": {},
    }
    if not complete:
        return summary
    agg: dict[str, float] = {}
    grand = 0.0
    for lin in complete:
        for key, v in _breakdown(lin).items():
            agg[key] = agg.get(key, 0.0) + v
            grand += v
    summary["components"] = {
        key: {
            "seconds": agg[key],
            "share": agg[key] / grand if grand > 0 else 0.0,
        }
        for key in sorted(agg, key=lambda k: -agg[k])
    }
    ordered = sorted(
        complete, key=lambda lin: (lin.total_latency, lin.stream, lin.frame)
    )
    for name, q in (("p50", 0.50), ("p95", 0.95), ("p99", 0.99)):
        lin = _quantile_frame(ordered, q)
        breakdown = _breakdown(lin)
        top = max(breakdown, key=breakdown.get) if breakdown else None
        summary["quantiles"][name] = {
            "stream": lin.stream,
            "frame": lin.frame,
            "latency_s": lin.total_latency,
            "top": top,
            "breakdown": dict(
                sorted(breakdown.items(), key=lambda kv: -kv[1])
            ),
        }
    return summary


def lineage_section(telemetry, *, terminal: str | None = None) -> dict:
    """The ``RunMetrics.extra["lineage"]`` bottleneck-attribution section."""
    bus = telemetry.bus
    return critical_path_summary(
        bus.events(), terminal=terminal, dropped=bus.dropped
    )
