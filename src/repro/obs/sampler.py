"""Time-series sampling into fixed-size decimating reservoirs.

The sampler answers the questions the end-of-run ``RunMetrics`` snapshot
cannot: *what was the SNM queue depth at t=3.2s*, *how did gpu0 utilization
evolve*, *when did T-YOLO throughput collapse*.  Each named series holds at
most ``capacity`` ``(t, value)`` points; when a series fills up, every
other point is discarded and the series' effective sampling interval
doubles, so arbitrarily long runs keep a bounded, uniformly-thinned record
(the classic decimating reservoir).

Both runtimes drive one sampler: the threaded runtime from a background
poller thread on the wall clock, the simulator from its event loop on the
virtual clock.  ``observe`` is cheap and thread-safe.
"""

from __future__ import annotations

import threading

__all__ = ["Series", "TimeSeriesSampler"]


class Series:
    """One named time-series with bounded, self-decimating storage."""

    def __init__(self, capacity: int = 512, min_interval: float = 0.0):
        if capacity < 4:
            raise ValueError("series capacity must be >= 4")
        self.capacity = capacity
        #: Current minimum spacing between retained points; doubles on
        #: every decimation.
        self.min_interval = min_interval
        self.t: list[float] = []
        self.v: list[float] = []

    def __len__(self) -> int:
        return len(self.t)

    def add(self, t: float, value: float, *, force: bool = False) -> bool:
        """Record ``(t, value)`` if it is due; returns True when retained."""
        if not force and self.t and t - self.t[-1] < self.min_interval:
            return False
        self.t.append(float(t))
        self.v.append(float(value))
        if len(self.t) > self.capacity:
            # Keep every other point (always the newest) and halve density.
            # Length here is capacity+1 (odd), so the even indices include
            # both endpoints.
            self.t = self.t[::2]
            self.v = self.v[::2]
            self.min_interval = max(self.min_interval * 2, 1e-9)
        return True

    def last(self) -> tuple[float, float] | None:
        if not self.t:
            return None
        return self.t[-1], self.v[-1]

    def to_dict(self) -> dict:
        return {"t": list(self.t), "v": list(self.v)}


class TimeSeriesSampler:
    """A keyed collection of :class:`Series` sharing one base interval."""

    def __init__(self, interval: float = 0.05, capacity: int = 512):
        if interval <= 0:
            raise ValueError("sampling interval must be positive")
        self.interval = interval
        self.capacity = capacity
        self._series: dict[str, Series] = {}
        self._lock = threading.Lock()
        self._last_sweep = float("-inf")

    def __contains__(self, name: str) -> bool:
        with self._lock:
            return name in self._series

    @property
    def names(self) -> list[str]:
        with self._lock:
            return sorted(self._series)

    def due(self, t: float) -> bool:
        """Has at least one base interval elapsed since the last sweep?"""
        return t - self._last_sweep >= self.interval

    def observe(self, name: str, t: float, value: float, *, force: bool = False) -> bool:
        with self._lock:
            series = self._series.get(name)
            if series is None:
                series = self._series[name] = Series(
                    self.capacity, min_interval=self.interval
                )
            return series.add(t, value, force=force)

    def observe_many(self, t: float, values: dict, *, force: bool = False) -> None:
        """One synchronized sweep over many gauges; advances the due clock."""
        self._last_sweep = t
        for name, value in values.items():
            self.observe(name, t, value, force=force)

    def series(self, name: str) -> Series:
        with self._lock:
            return self._series[name]

    def points(self, name: str) -> list[tuple[float, float]]:
        """Copied ``(t, value)`` points of one series ([] if never sampled).

        The copy is taken under the lock so readers (e.g. the admission
        controller's :class:`~repro.obs.control.SignalReader`) never see a
        series mid-decimation.
        """
        with self._lock:
            series = self._series.get(name)
            if series is None:
                return []
            return list(zip(series.t, series.v))

    def latest(self) -> dict[str, float]:
        """Most recent value of every series (for gauge export)."""
        with self._lock:
            out = {}
            for name, series in self._series.items():
                point = series.last()
                if point is not None:
                    out[name] = point[1]
            return out

    def to_dict(self) -> dict:
        with self._lock:
            return {name: s.to_dict() for name, s in sorted(self._series.items())}
