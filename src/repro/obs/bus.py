"""Telemetry event bus: a non-blocking, drop-counting ring buffer.

Both executors publish the same structured :class:`TelemetryEvent` stream —
the threaded runtime stamps wall-clock times, the discrete-event simulator
stamps virtual times — so everything downstream (span reconstruction,
Chrome traces, the export plane) is runtime-agnostic.

The bus never blocks a pipeline worker: ``publish`` appends to a bounded
ring and, when the ring is full, evicts the oldest event and counts the
eviction in :attr:`EventBus.dropped`.  A disabled pipeline uses
:data:`NULL_BUS` and pays exactly one ``enabled`` branch per would-be event.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass

__all__ = ["EVENT_KINDS", "TelemetryEvent", "EventBus", "NullBus", "NULL_BUS"]

#: The closed event vocabulary shared by both runtimes.
#:
#: * ``frame_enter``  — a frame landed in a stage's input queue.
#: * ``frame_pass``   — a stage's verdict let the frame through (terminal
#:   stages emit this for every frame they analyze).
#: * ``frame_filter`` — a stage's verdict dropped the frame.
#: * ``batch_exec``   — one service of a batch on a device (``n`` frames,
#:   ``t_start``..``ts`` busy window).
#: * ``queue_block``  — a producer found the downstream queue full (put
#:   timeout in the threaded runtime, out-buffer hold in the simulator) or
#:   gave up on a closed/ saturated queue.
#: * ``admission``    — a source frame was admitted into the first stage.
EVENT_KINDS = (
    "frame_enter",
    "frame_pass",
    "frame_filter",
    "batch_exec",
    "queue_block",
    "admission",
)


@dataclass(frozen=True)
class TelemetryEvent:
    """One structured pipeline event.

    ``ts`` is the event's completion time (wall seconds in the threaded
    runtime, virtual seconds in the simulator).  Execution events
    (``frame_pass``/``frame_filter``/``batch_exec``) also carry ``t_start``,
    the service-start time, so consumers can recover the busy window.
    ``n`` is the event's magnitude: batch size for ``batch_exec``, observed
    queue length for ``queue_block``.
    """

    ts: float
    kind: str
    stage: str
    stream: int | None = None
    frame: int | None = None
    t_start: float | None = None
    n: int | None = None


class EventBus:
    """Bounded multi-producer event ring with drop accounting.

    ``kinds`` restricts the bus to a subset of :data:`EVENT_KINDS` — e.g.
    ``kinds=("batch_exec",)`` samples only device busy windows.  Unwanted
    kinds are rejected at :meth:`emit` time, and hot paths can skip event
    construction entirely by checking :meth:`wants` once per batch.
    """

    enabled = True

    def __init__(self, capacity: int = 65536, kinds: tuple[str, ...] | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if kinds is not None:
            unknown = set(kinds) - set(EVENT_KINDS)
            if unknown:
                raise ValueError(f"unknown event kinds {sorted(unknown)}; known: {EVENT_KINDS}")
        self.capacity = capacity
        self.kinds = frozenset(EVENT_KINDS if kinds is None else kinds)
        self._ring: deque[TelemetryEvent] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self.published = 0
        self.dropped = 0
        self.counts: dict[str, int] = {k: 0 for k in EVENT_KINDS}

    def __len__(self) -> int:
        with self._lock:
            return len(self._ring)

    def wants(self, kind: str) -> bool:
        """Whether this bus records ``kind`` (cheap hot-path pre-check)."""
        return kind in self.kinds

    def emit(
        self,
        kind: str,
        ts: float,
        stage: str,
        *,
        stream: int | None = None,
        frame: int | None = None,
        t_start: float | None = None,
        n: int | None = None,
    ) -> None:
        """Build and publish one event (never blocks, never raises on full)."""
        if kind not in EVENT_KINDS:
            raise ValueError(f"unknown event kind {kind!r}; known: {EVENT_KINDS}")
        if kind not in self.kinds:
            return
        self.publish(
            TelemetryEvent(
                ts=ts, kind=kind, stage=stage, stream=stream, frame=frame,
                t_start=t_start, n=n,
            )
        )

    def publish(self, event: TelemetryEvent) -> None:
        with self._lock:
            if len(self._ring) == self.capacity:
                self.dropped += 1
            self._ring.append(event)
            self.published += 1
            self.counts[event.kind] = self.counts.get(event.kind, 0) + 1

    def events(self) -> list[TelemetryEvent]:
        """Snapshot of the retained events, oldest first."""
        with self._lock:
            return list(self._ring)

    def drain(self) -> list[TelemetryEvent]:
        """Remove and return everything currently retained."""
        with self._lock:
            out = list(self._ring)
            self._ring.clear()
            return out

    def stats(self) -> dict:
        with self._lock:
            return {
                "capacity": self.capacity,
                "retained": len(self._ring),
                "published": self.published,
                "dropped": self.dropped,
                "counts": dict(self.counts),
            }


class NullBus:
    """The disabled bus: one attribute check, no event construction."""

    enabled = False
    published = 0
    dropped = 0
    counts: dict[str, int] = {}
    kinds: frozenset = frozenset()

    def wants(self, kind: str) -> bool:
        return False

    def __len__(self) -> int:
        return 0

    def emit(self, *args, **kwargs) -> None:  # pragma: no cover - trivial
        pass

    def publish(self, event) -> None:  # pragma: no cover - trivial
        pass

    def events(self) -> list:
        return []

    def drain(self) -> list:
        return []

    def stats(self) -> dict:
        return {"capacity": 0, "retained": 0, "published": 0, "dropped": 0, "counts": {}}


#: Shared do-nothing bus for telemetry-off pipelines.
NULL_BUS = NullBus()
