"""Telemetry export plane: Prometheus text format, JSON snapshots, HTTP.

Rendering is pull-based and side-effect free: :func:`render_prometheus` and
:func:`snapshot_json` take whatever :class:`~repro.core.metrics.RunMetrics`
and :class:`~repro.obs.Telemetry` currently hold — both are updated live by
the runtimes, so scraping *during* a run observes the run in progress.

:class:`TelemetryServer` serves both renderings from a stdlib
``ThreadingHTTPServer`` on a daemon thread:

* ``GET /metrics``  — Prometheus text format 0.0.4;
* ``GET /snapshot`` — the full JSON snapshot (metrics, time-series, bus
  statistics).

No third-party client library is required on either side.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

__all__ = [
    "METRIC_FAMILIES",
    "family_names",
    "render_prometheus",
    "snapshot_json",
    "TelemetryServer",
]

_PREFIX = "ffsva"

#: The live metric-family registry: every family the export plane can emit,
#: with its Prometheus type, help text, and label keys.  ``render_prometheus``
#: reads HELP/TYPE lines from here, so the registry cannot drift from the
#: exposition — and the dashboard plane (``repro.obs.dashboard``) validates
#: its panel queries against exactly this catalog.
METRIC_FAMILIES: dict[str, dict] = {
    "stage_frames_entered_total": {
        "kind": "counter", "labels": ("stage",),
        "help": "Frames entering each stage.",
    },
    "stage_frames_passed_total": {
        "kind": "counter", "labels": ("stage",),
        "help": "Frames passing each stage.",
    },
    "stage_frames_filtered_total": {
        "kind": "counter", "labels": ("stage",),
        "help": "Frames filtered at each stage.",
    },
    "frames_offered_total": {
        "kind": "counter", "labels": (),
        "help": "Frames produced by the sources.",
    },
    "frames_ingested_total": {
        "kind": "counter", "labels": (),
        "help": "Frames admitted into the pipeline.",
    },
    "frames_to_ref_total": {
        "kind": "counter", "labels": (),
        "help": "Frames reaching the reference model.",
    },
    "run_duration_seconds": {
        "kind": "gauge", "labels": (),
        "help": "Run makespan (wall or virtual).",
    },
    "throughput_fps": {
        "kind": "gauge", "labels": (),
        "help": "Aggregate processed frames per second.",
    },
    "queue_high_water": {
        "kind": "gauge", "labels": ("queue",),
        "help": "Highest observed depth per queue.",
    },
    "device_utilization": {
        "kind": "gauge", "labels": ("device",),
        "help": "Busy fraction per device.",
    },
    "frame_latency_seconds": {
        "kind": "summary", "labels": ("quantile",),
        "help": "Per-frame latency summary.",
    },
    "ref_latency_seconds": {
        "kind": "summary", "labels": ("quantile",),
        "help": "Per-frame latency summary.",
    },
    "frame_latency_seconds_hist": {
        "kind": "histogram", "labels": ("stage",),
        "help": "Explicit-bucket histogram of frame_latency_seconds.",
    },
    "stage_exec_seconds_hist": {
        "kind": "histogram", "labels": ("stage",),
        "help": "Explicit-bucket histogram of stage_exec_seconds.",
    },
    "telemetry_events_total": {
        "kind": "counter", "labels": ("kind",),
        "help": "Events published per kind.",
    },
    "telemetry_events_dropped_total": {
        "kind": "counter", "labels": (),
        "help": "Events evicted from the full ring buffer.",
    },
    "sample_gauge": {
        "kind": "gauge", "labels": ("series",),
        "help": "Latest value of each sampled time-series.",
    },
}


def family_names(*, prefixed: bool = True) -> list[str]:
    """All registered family names (``ffsva_``-prefixed by default)."""
    names = sorted(METRIC_FAMILIES)
    return [f"{_PREFIX}_{n}" for n in names] if prefixed else names


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _line(name: str, value, labels: dict | None = None) -> str:
    if labels:
        inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
        return f"{_PREFIX}_{name}{{{inner}}} {value}"
    return f"{_PREFIX}_{name} {value}"


def _head(name: str) -> list[str]:
    """HELP/TYPE preamble for one registered family."""
    fam = METRIC_FAMILIES[name]
    return [
        f"# HELP {_PREFIX}_{name} {fam['help']}",
        f"# TYPE {_PREFIX}_{name} {fam['kind']}",
    ]


def render_prometheus(metrics=None, telemetry=None) -> str:
    """Render a run's state in Prometheus text exposition format 0.0.4.

    The per-stage counter families mirror ``RunMetrics.stages`` exactly —
    one ``{stage=...}`` sample per stage for entered/passed/filtered — so a
    scrape and the end-of-run snapshot can be cross-checked 1:1.
    """
    lines: list[str] = []
    if metrics is not None:
        lines += _head("stage_frames_entered_total")
        for stage, c in metrics.stages.items():
            lines.append(_line("stage_frames_entered_total", c.entered, {"stage": stage}))
        lines += _head("stage_frames_passed_total")
        for stage, c in metrics.stages.items():
            lines.append(_line("stage_frames_passed_total", c.passed, {"stage": stage}))
        lines += _head("stage_frames_filtered_total")
        for stage, c in metrics.stages.items():
            lines.append(_line("stage_frames_filtered_total", c.filtered, {"stage": stage}))

        lines += _head("frames_offered_total")
        lines.append(_line("frames_offered_total", metrics.frames_offered))
        lines += _head("frames_ingested_total")
        lines.append(_line("frames_ingested_total", metrics.frames_ingested))
        lines += _head("frames_to_ref_total")
        lines.append(_line("frames_to_ref_total", metrics.frames_to_ref))
        lines += _head("run_duration_seconds")
        lines.append(_line("run_duration_seconds", metrics.duration))
        lines += _head("throughput_fps")
        lines.append(_line("throughput_fps", metrics.throughput_fps))

        lines += _head("queue_high_water")
        for queue, depth in sorted(metrics.queue_high_water.items()):
            lines.append(_line("queue_high_water", depth, {"queue": queue}))
        lines += _head("device_utilization")
        for device, util in sorted(metrics.device_utilization.items()):
            lines.append(_line("device_utilization", util, {"device": device}))

        for family, stats in (
            ("frame_latency_seconds", metrics.frame_latency),
            ("ref_latency_seconds", metrics.ref_latency),
        ):
            lines += _head(family)
            for q, v in (("0.5", stats.p50), ("0.95", stats.p95), ("0.99", stats.p99)):
                lines.append(_line(family, v, {"quantile": q}))
            lines.append(_line(f"{family}_sum", stats.mean * stats.count))
            lines.append(_line(f"{family}_count", stats.count))

    if telemetry is not None:
        # Classic histogram families (explicit buckets) complement the
        # end-of-run summary quantiles above: buckets are cumulative
        # counters, so they aggregate across runs and scrape incrementally —
        # including per-stage exec latency for process-pool stages, whose
        # busy time is measured inside the worker process.
        with telemetry._hist_lock:
            families = {
                family: {key: hist.to_dict() for key, hist in series.items()}
                for family, series in telemetry.histograms.items()
            }
        for family in sorted(families):
            hist_name = f"{family}_hist"
            if hist_name in METRIC_FAMILIES:
                lines += _head(hist_name)
            else:  # ad-hoc family observed at runtime but not registered
                lines += [
                    f"# HELP {_PREFIX}_{hist_name} Explicit-bucket histogram of {family}.",
                    f"# TYPE {_PREFIX}_{hist_name} histogram",
                ]
            for key in sorted(families[family]):
                hist = families[family][key]
                labels = dict(key)
                running = 0
                for bound, n in zip(hist["bounds"], hist["counts"]):
                    running += n
                    lines.append(
                        _line(
                            f"{family}_hist_bucket",
                            running,
                            {**labels, "le": format(bound, "g")},
                        )
                    )
                lines.append(
                    _line(f"{family}_hist_bucket", hist["count"], {**labels, "le": "+Inf"})
                )
                lines.append(_line(f"{family}_hist_sum", hist["sum"], labels))
                lines.append(_line(f"{family}_hist_count", hist["count"], labels))
        bus = telemetry.bus
        lines += _head("telemetry_events_total")
        for kind, count in sorted(bus.counts.items()):
            lines.append(_line("telemetry_events_total", count, {"kind": kind}))
        lines += _head("telemetry_events_dropped_total")
        lines.append(_line("telemetry_events_dropped_total", bus.dropped))
        lines += _head("sample_gauge")
        for name, value in sorted(telemetry.sampler.latest().items()):
            lines.append(_line("sample_gauge", value, {"series": name}))
    return "\n".join(lines) + "\n"


def snapshot_json(metrics=None, telemetry=None) -> dict:
    """A JSON-compatible snapshot of everything the export plane knows."""
    snap: dict = {}
    if metrics is not None:
        snap["metrics"] = metrics.to_dict()
    if telemetry is not None:
        snap["bus"] = telemetry.bus.stats()
        snap["series"] = telemetry.sampler.to_dict()
        with telemetry._hist_lock:
            snap["histograms"] = {
                family: [
                    {"labels": dict(key), **hist.to_dict()}
                    for key, hist in sorted(series.items())
                ]
                for family, series in telemetry.histograms.items()
            }
    return snap


class TelemetryServer:
    """Stdlib HTTP endpoint exposing ``/metrics`` and ``/snapshot``.

    ``provider`` is a zero-argument callable returning the current
    ``(metrics, telemetry)`` pair; it is invoked per request so scrapes see
    live state.  ``port=0`` binds an ephemeral port (see :attr:`port`).
    """

    def __init__(self, provider, port: int = 0, host: str = "127.0.0.1"):
        self._provider = provider
        self._requested = (host, port)
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "TelemetryServer":
        provider = self._provider

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # keep scrapes silent
                pass

            def _send(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                metrics, telemetry = provider()
                if self.path.split("?")[0] == "/metrics":
                    body = render_prometheus(metrics, telemetry).encode()
                    self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
                elif self.path.split("?")[0] == "/snapshot":
                    body = json.dumps(snapshot_json(metrics, telemetry)).encode()
                    self._send(200, "application/json", body)
                else:
                    self._send(404, "text/plain", b"try /metrics or /snapshot\n")

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="telemetry-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- addressing ----------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, _ = self._requested
        return f"http://{host}:{self.port}"
