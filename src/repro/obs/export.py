"""Telemetry export plane: Prometheus text format, JSON snapshots, HTTP.

Rendering is pull-based and side-effect free: :func:`render_prometheus` and
:func:`snapshot_json` take whatever :class:`~repro.core.metrics.RunMetrics`
and :class:`~repro.obs.Telemetry` currently hold — both are updated live by
the runtimes, so scraping *during* a run observes the run in progress.

:class:`TelemetryServer` serves both renderings from a stdlib
``ThreadingHTTPServer`` on a daemon thread:

* ``GET /metrics``  — Prometheus text format 0.0.4;
* ``GET /snapshot`` — the full JSON snapshot (metrics, time-series, bus
  statistics);
* ``GET /traces``   — with ``trace_dir`` set, rotating-trace segments by
  time range (retention-aware: the ``manifest.json`` is re-read per
  request, so rotated-out segments disappear from listings).

The cluster layer adds a second surface: :class:`MetricsAggregator`
scrapes several instances' ``/metrics`` and :class:`ClusterMetricsServer`
re-exposes them as **one** exposition where every sample carries an
``instance`` label plus ``ffsva_cluster_*`` sums over the registered
counter families.  :func:`parse_prometheus` is the (own-format) text
parser both the aggregator and the smoke checks use.

No third-party client library is required on either side.
"""

from __future__ import annotations

import json
import os
import threading
import time
import urllib.error
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from queue import Empty
from urllib.parse import parse_qs, urlparse

__all__ = [
    "METRIC_FAMILIES",
    "family_names",
    "render_prometheus",
    "snapshot_json",
    "parse_prometheus",
    "TelemetryServer",
    "MetricsAggregator",
    "ClusterMetricsServer",
]

_PREFIX = "ffsva"

#: The live metric-family registry: every family the export plane can emit,
#: with its Prometheus type, help text, and label keys.  ``render_prometheus``
#: reads HELP/TYPE lines from here, so the registry cannot drift from the
#: exposition — and the dashboard plane (``repro.obs.dashboard``) validates
#: its panel queries against exactly this catalog.
METRIC_FAMILIES: dict[str, dict] = {
    "stage_frames_entered_total": {
        "kind": "counter", "labels": ("stage",),
        "help": "Frames entering each stage.",
    },
    "stage_frames_passed_total": {
        "kind": "counter", "labels": ("stage",),
        "help": "Frames passing each stage.",
    },
    "stage_frames_filtered_total": {
        "kind": "counter", "labels": ("stage",),
        "help": "Frames filtered at each stage.",
    },
    "frames_offered_total": {
        "kind": "counter", "labels": (),
        "help": "Frames produced by the sources.",
    },
    "frames_ingested_total": {
        "kind": "counter", "labels": (),
        "help": "Frames admitted into the pipeline.",
    },
    "frames_to_ref_total": {
        "kind": "counter", "labels": (),
        "help": "Frames reaching the reference model.",
    },
    "run_duration_seconds": {
        "kind": "gauge", "labels": (),
        "help": "Run makespan (wall or virtual).",
    },
    "throughput_fps": {
        "kind": "gauge", "labels": (),
        "help": "Aggregate processed frames per second.",
    },
    "queue_high_water": {
        "kind": "gauge", "labels": ("queue",),
        "help": "Highest observed depth per queue.",
    },
    "device_utilization": {
        "kind": "gauge", "labels": ("device",),
        "help": "Busy fraction per device.",
    },
    "frame_latency_seconds": {
        "kind": "summary", "labels": ("quantile",),
        "help": "Per-frame latency summary.",
    },
    "ref_latency_seconds": {
        "kind": "summary", "labels": ("quantile",),
        "help": "Per-frame latency summary.",
    },
    "frame_latency_seconds_hist": {
        "kind": "histogram", "labels": ("stage",),
        "help": "Explicit-bucket histogram of frame_latency_seconds.",
    },
    "stage_exec_seconds_hist": {
        "kind": "histogram", "labels": ("stage",),
        "help": "Explicit-bucket histogram of stage_exec_seconds.",
    },
    "stage_wait_seconds_hist": {
        "kind": "histogram", "labels": ("stage",),
        "help": "Per-frame wait (enter to service start) per stage.",
    },
    "stage_service_seconds_hist": {
        "kind": "histogram", "labels": ("stage",),
        "help": "Per-frame service window (batch busy time) per stage.",
    },
    "mosaic_fill_ratio": {
        "kind": "gauge", "labels": (),
        "help": "Mean mosaic canvas occupancy (packed region cells / canvas cells).",
    },
    "mosaic_regions_per_canvas": {
        "kind": "gauge", "labels": (),
        "help": "Mean packed regions per mosaic canvas.",
    },
    "mosaic_spills_total": {
        "kind": "counter", "labels": (),
        "help": "Regions that opened an additional canvas because the current one was full.",
    },
    "plan_depth": {
        "kind": "gauge", "labels": ("stream",),
        "help": "Query-planner cascade exit depth per stream (stage count; 0 = static plan).",
    },
    "plan_filter_degree": {
        "kind": "gauge", "labels": ("stream",),
        "help": "Query-planner SNM FilterDegree per stream.",
    },
    "telemetry_events_total": {
        "kind": "counter", "labels": ("kind",),
        "help": "Events published per kind.",
    },
    "telemetry_events_dropped_total": {
        "kind": "counter", "labels": (),
        "help": "Events evicted from the full ring buffer.",
    },
    "sample_gauge": {
        "kind": "gauge", "labels": ("series",),
        "help": "Latest value of each sampled time-series.",
    },
}


def family_names(*, prefixed: bool = True) -> list[str]:
    """All registered family names (``ffsva_``-prefixed by default)."""
    names = sorted(METRIC_FAMILIES)
    return [f"{_PREFIX}_{n}" for n in names] if prefixed else names


def _escape(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _line(name: str, value, labels: dict | None = None) -> str:
    if labels:
        inner = ",".join(f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items()))
        return f"{_PREFIX}_{name}{{{inner}}} {value}"
    return f"{_PREFIX}_{name} {value}"


def _head(name: str) -> list[str]:
    """HELP/TYPE preamble for one registered family."""
    fam = METRIC_FAMILIES[name]
    return [
        f"# HELP {_PREFIX}_{name} {fam['help']}",
        f"# TYPE {_PREFIX}_{name} {fam['kind']}",
    ]


def render_prometheus(metrics=None, telemetry=None) -> str:
    """Render a run's state in Prometheus text exposition format 0.0.4.

    The per-stage counter families mirror ``RunMetrics.stages`` exactly —
    one ``{stage=...}`` sample per stage for entered/passed/filtered — so a
    scrape and the end-of-run snapshot can be cross-checked 1:1.
    """
    lines: list[str] = []
    if metrics is not None:
        lines += _head("stage_frames_entered_total")
        for stage, c in metrics.stages.items():
            lines.append(_line("stage_frames_entered_total", c.entered, {"stage": stage}))
        lines += _head("stage_frames_passed_total")
        for stage, c in metrics.stages.items():
            lines.append(_line("stage_frames_passed_total", c.passed, {"stage": stage}))
        lines += _head("stage_frames_filtered_total")
        for stage, c in metrics.stages.items():
            lines.append(_line("stage_frames_filtered_total", c.filtered, {"stage": stage}))

        lines += _head("frames_offered_total")
        lines.append(_line("frames_offered_total", metrics.frames_offered))
        lines += _head("frames_ingested_total")
        lines.append(_line("frames_ingested_total", metrics.frames_ingested))
        lines += _head("frames_to_ref_total")
        lines.append(_line("frames_to_ref_total", metrics.frames_to_ref))
        lines += _head("run_duration_seconds")
        lines.append(_line("run_duration_seconds", metrics.duration))
        lines += _head("throughput_fps")
        lines.append(_line("throughput_fps", metrics.throughput_fps))

        lines += _head("queue_high_water")
        for queue, depth in sorted(metrics.queue_high_water.items()):
            lines.append(_line("queue_high_water", depth, {"queue": queue}))
        lines += _head("device_utilization")
        for device, util in sorted(metrics.device_utilization.items()):
            lines.append(_line("device_utilization", util, {"device": device}))

        # Mosaic consolidation gauges.  Rendered unconditionally (zeros when
        # the fused mosaic path is off) so dashboard queries against these
        # families resolve on every run.
        mosaic = getattr(metrics, "extra", {}).get("mosaic", {})
        lines += _head("mosaic_fill_ratio")
        lines.append(_line("mosaic_fill_ratio", mosaic.get("fill_ratio", 0.0)))
        lines += _head("mosaic_regions_per_canvas")
        lines.append(_line("mosaic_regions_per_canvas", mosaic.get("regions_per_canvas", 0.0)))
        lines += _head("mosaic_spills_total")
        lines.append(_line("mosaic_spills_total", mosaic.get("spills", 0)))

        # Query-planner gauges.  Same contract as the mosaic families:
        # rendered unconditionally (zeros under the static plan) so
        # dashboard queries against them resolve on every run.
        qstreams = getattr(metrics, "extra", {}).get("qplan", {}).get("streams", {})
        lines += _head("plan_depth")
        if qstreams:
            for sid, info in sorted(qstreams.items()):
                lines.append(
                    _line("plan_depth", info.get("depth_index", 0), {"stream": sid})
                )
        else:
            lines.append(_line("plan_depth", 0, {"stream": "-"}))
        lines += _head("plan_filter_degree")
        if qstreams:
            for sid, info in sorted(qstreams.items()):
                lines.append(
                    _line("plan_filter_degree", info.get("degree", 0.0), {"stream": sid})
                )
        else:
            lines.append(_line("plan_filter_degree", 0.0, {"stream": "-"}))

        for family, stats in (
            ("frame_latency_seconds", metrics.frame_latency),
            ("ref_latency_seconds", metrics.ref_latency),
        ):
            lines += _head(family)
            for q, v in (("0.5", stats.p50), ("0.95", stats.p95), ("0.99", stats.p99)):
                lines.append(_line(family, v, {"quantile": q}))
            lines.append(_line(f"{family}_sum", stats.mean * stats.count))
            lines.append(_line(f"{family}_count", stats.count))

    if telemetry is not None:
        # Classic histogram families (explicit buckets) complement the
        # end-of-run summary quantiles above: buckets are cumulative
        # counters, so they aggregate across runs and scrape incrementally —
        # including per-stage exec latency for process-pool stages, whose
        # busy time is measured inside the worker process.
        with telemetry._hist_lock:
            families = {
                family: {key: hist.to_dict() for key, hist in series.items()}
                for family, series in telemetry.histograms.items()
            }
        for family in sorted(families):
            hist_name = f"{family}_hist"
            if hist_name in METRIC_FAMILIES:
                lines += _head(hist_name)
            else:  # ad-hoc family observed at runtime but not registered
                lines += [
                    f"# HELP {_PREFIX}_{hist_name} Explicit-bucket histogram of {family}.",
                    f"# TYPE {_PREFIX}_{hist_name} histogram",
                ]
            for key in sorted(families[family]):
                hist = families[family][key]
                labels = dict(key)
                running = 0
                for bound, n in zip(hist["bounds"], hist["counts"]):
                    running += n
                    lines.append(
                        _line(
                            f"{family}_hist_bucket",
                            running,
                            {**labels, "le": format(bound, "g")},
                        )
                    )
                lines.append(
                    _line(f"{family}_hist_bucket", hist["count"], {**labels, "le": "+Inf"})
                )
                lines.append(_line(f"{family}_hist_sum", hist["sum"], labels))
                lines.append(_line(f"{family}_hist_count", hist["count"], labels))
        bus = telemetry.bus
        lines += _head("telemetry_events_total")
        for kind, count in sorted(bus.counts.items()):
            lines.append(_line("telemetry_events_total", count, {"kind": kind}))
        lines += _head("telemetry_events_dropped_total")
        lines.append(_line("telemetry_events_dropped_total", bus.dropped))
        lines += _head("sample_gauge")
        for name, value in sorted(telemetry.sampler.latest().items()):
            lines.append(_line("sample_gauge", value, {"series": name}))
    return "\n".join(lines) + "\n"


def snapshot_json(metrics=None, telemetry=None) -> dict:
    """A JSON-compatible snapshot of everything the export plane knows."""
    snap: dict = {}
    if metrics is not None:
        snap["metrics"] = metrics.to_dict()
    if telemetry is not None:
        snap["bus"] = telemetry.bus.stats()
        snap["series"] = telemetry.sampler.to_dict()
        with telemetry._hist_lock:
            snap["histograms"] = {
                family: [
                    {"labels": dict(key), **hist.to_dict()}
                    for key, hist in sorted(series.items())
                ]
                for family, series in telemetry.histograms.items()
            }
    return snap


def parse_prometheus(text: str) -> list[tuple[str, dict, float]]:
    """Parse *our own* exposition format back into ``(name, labels, value)``.

    Deliberately minimal — it round-trips what :func:`render_prometheus`
    (and :class:`MetricsAggregator`) emit, which is all the aggregator and
    the smoke checks need.  Comment lines are skipped; labels come back as
    a plain dict.
    """
    samples: list[tuple[str, dict, float]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, _, value = line.rpartition(" ")
        labels: dict = {}
        if head.endswith("}"):
            name, _, inner = head.partition("{")
            for part in _split_labels(inner[:-1]):
                k, _, v = part.partition("=")
                labels[k] = v.strip('"').replace('\\"', '"').replace("\\\\", "\\")
        else:
            name = head
        samples.append((name, labels, float(value)))
    return samples


def _split_labels(inner: str) -> list[str]:
    """Split ``k1="v1",k2="v2"`` on commas outside quoted values."""
    parts, buf, quoted, prev = [], [], False, ""
    for ch in inner:
        if ch == '"' and prev != "\\":
            quoted = not quoted
        if ch == "," and not quoted:
            parts.append("".join(buf))
            buf = []
        else:
            buf.append(ch)
        prev = ch
    if buf:
        parts.append("".join(buf))
    return [p for p in parts if p]


def _load_manifest(trace_dir: str) -> dict | None:
    path = os.path.join(trace_dir, "manifest.json")
    try:
        with open(path) as fh:
            return json.load(fh)
    except (OSError, ValueError):
        return None


def _traces_reply(trace_dir: str, query: dict) -> tuple[int, str, bytes]:
    """Build the ``/traces`` response: manifest or time-ranged segment set.

    ``?t0=&t1=`` selects segments overlapping ``[t0, t1]``; segments named
    in the manifest but already rotated off disk are reported under
    ``"missing"`` instead of erroring (retention-aware).  ``&merge=1``
    additionally concatenates the surviving segments' ``traceEvents`` into
    one trace object.
    """
    manifest = _load_manifest(trace_dir)
    if manifest is None:
        return 404, "application/json", b'{"error": "no trace manifest"}'
    if "t0" not in query and "t1" not in query:
        return 200, "application/json", json.dumps(manifest).encode()
    t0 = float(query.get("t0", ["-inf"])[0])
    t1 = float(query.get("t1", ["inf"])[0])
    selected = [
        seg
        for seg in manifest.get("segments", [])
        if seg["t_end"] >= t0 and seg["t_start"] <= t1
    ]
    out: dict = {"t0": t0, "t1": t1, "segments": [], "missing": []}
    merged: list = []
    for seg in selected:
        path = os.path.join(trace_dir, seg["file"])
        if not os.path.exists(path):
            out["missing"].append(seg["file"])
            continue
        out["segments"].append(seg)
        if query.get("merge", ["0"])[0] == "1":
            try:
                with open(path) as fh:
                    merged.extend(json.load(fh).get("traceEvents", []))
            except (OSError, ValueError):
                out["missing"].append(seg["file"])
    if query.get("merge", ["0"])[0] == "1":
        out["traceEvents"] = merged
    return 200, "application/json", json.dumps(out).encode()


def _trace_segment_reply(trace_dir: str, filename: str) -> tuple[int, str, bytes]:
    """Serve one raw segment, but only names the manifest vouches for."""
    manifest = _load_manifest(trace_dir)
    known = (
        {seg["file"] for seg in manifest.get("segments", [])} if manifest else set()
    )
    if filename not in known:
        return 404, "application/json", b'{"error": "unknown segment"}'
    path = os.path.join(trace_dir, filename)
    try:
        with open(path, "rb") as fh:
            return 200, "application/json", fh.read()
    except OSError:
        return 410, "application/json", b'{"error": "segment rotated out"}'


def _lineage_reply(telemetry, context: dict | None, query: dict) -> tuple[int, str, bytes]:
    """Build the ``/lineage`` response: one frame's story, or the summary.

    ``?stream=&frame=`` reconstructs that frame's lineage from the live
    event ring (``stream`` accepts a stream id from the pipeline's lineage
    context or a raw stream index; ``frame`` is the global frame number —
    the context's per-stream offset translates it to the local index the
    simulator's events use).  Without ``frame``, the critical-path summary
    over every observed frame is returned instead.  When the ring has
    evicted events, the reply carries an explicit ``warning`` — waits are
    never fabricated from missing data.
    """
    from .lineage import (
        build_lineage,
        critical_path_summary,
        lineage_to_dict,
    )

    if telemetry is None:
        return 404, "application/json", b'{"error": "no telemetry attached"}'
    ctx = context() if context is not None else None
    ctx = ctx or {}
    terminal = ctx.get("terminal")
    dropped = telemetry.bus.dropped
    events = telemetry.bus.events()
    frame_q = query.get("frame", [None])[0]
    stream_q = query.get("stream", [None])[0]
    if frame_q is None or stream_q is None:
        body = critical_path_summary(events, terminal=terminal, dropped=dropped)
        if dropped > 0:
            body["warning"] = (
                f"event ring evicted {dropped} events; attribution covers "
                "surviving frames only"
            )
        return 200, "application/json", json.dumps(body).encode()
    info = ctx.get("streams", {}).get(stream_q)
    offset = 0
    if info is not None:
        index, offset = info["index"], info.get("offset", 0)
    else:
        try:
            index = int(stream_q)
        except ValueError:
            return 404, "application/json", json.dumps(
                {"error": f"unknown stream {stream_q!r}",
                 "streams": sorted(ctx.get("streams", {}))}
            ).encode()
    try:
        frame = int(frame_q)
    except ValueError:
        return 400, "application/json", b'{"error": "frame must be an integer"}'
    lineage = build_lineage(
        events, index, frame - offset,
        terminal=terminal, dropped=dropped, qplan=ctx.get("qplan"),
    )
    body = lineage_to_dict(lineage)
    body["stream"] = stream_q
    body["stream_index"] = index
    body["frame"] = frame
    body["frame_local"] = frame - offset
    if dropped > 0:
        body["warning"] = (
            f"event ring evicted {dropped} events; this lineage may be "
            "missing hops or waits"
        )
    status = 200 if lineage.found else 404
    return status, "application/json", json.dumps(body).encode()


class TelemetryServer:
    """Stdlib HTTP endpoint exposing ``/metrics``, ``/snapshot``, ``/traces``.

    ``provider`` is a zero-argument callable returning the current
    ``(metrics, telemetry)`` pair; it is invoked per request so scrapes see
    live state.  ``port=0`` binds an ephemeral port (see :attr:`port`).
    With ``trace_dir`` set, ``/traces`` serves that directory's
    :class:`~repro.obs.trace.RotatingTraceWriter` output by time range.

    The detection-store surface rides the same socket:

    * ``GET /query``     — with ``store_dir`` (or a live ``store``) set,
      count/top-k/window queries over the persisted records;
    * ``GET /subscribe`` — with a live ``store``, Server-Sent Events of
      records as they are appended (``?mode=poll`` long-polls instead);
    * ``/snapshot`` gains a ``"store"`` section (manifest + recent rows).
    """

    def __init__(
        self,
        provider,
        port: int = 0,
        host: str = "127.0.0.1",
        *,
        trace_dir: str | None = None,
        store=None,
        store_dir: str | None = None,
        context=None,
    ):
        self._provider = provider
        self._requested = (host, port)
        self._trace_dir = trace_dir
        self._store = store
        if store_dir is None and store is not None:
            store_dir = str(store.directory)
        self._store_dir = store_dir
        #: Zero-arg callable returning the pipeline's lineage context
        #: (terminal stage, stream-id resolution map, live qplan summary);
        #: None keeps ``/lineage`` index-addressed with no plan attachment.
        self._context = context
        self._hub = None
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "TelemetryServer":
        provider = self._provider
        trace_dir = self._trace_dir
        store_dir = self._store_dir
        context = self._context
        if self._store is not None and self._hub is None:
            from ..store.server import SubscriptionHub

            self._hub = SubscriptionHub(self._store)
        hub = self._hub

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):  # keep scrapes silent
                pass

            def _send(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def _sse(self, params: dict) -> None:
                """Stream live records until the run ends, the client goes
                away, or the testability bounds (?max_events=, ?timeout=)
                are hit.  HTTP/1.0 + no Content-Length means the connection
                closes when the handler returns — exactly SSE's contract."""
                from ..store.server import sse_event

                stream = params.get("stream", [None])[0]
                cls = params.get("cls", [None])[0]
                detected = params.get("detected", ["0"])[0] == "1"
                try:
                    max_events = int(params.get("max_events", [0])[0]) or None
                    timeout = float(params.get("timeout", [0])[0]) or None
                except ValueError:
                    self._send(400, "application/json", b'{"error": "bad bound"}')
                    return
                terminal = hub.store.terminal
                q = hub.subscribe()
                deadline = (
                    None if timeout is None else time.monotonic() + timeout
                )
                sent = 0
                try:
                    self.send_response(200)
                    self.send_header("Content-Type", "text/event-stream")
                    self.send_header("Cache-Control", "no-cache")
                    self.end_headers()
                    while True:
                        wait = 0.2
                        if deadline is not None:
                            wait = min(wait, deadline - time.monotonic())
                            if wait <= 0:
                                break
                        try:
                            seq, rec = q.get(timeout=wait)
                        except Empty:
                            continue
                        if seq is None:  # hub closed: run is over
                            break
                        if stream is not None and rec.stream != stream:
                            continue
                        if cls is not None and rec.cls != cls:
                            continue
                        if detected and rec.disposition != terminal:
                            continue
                        self.wfile.write(sse_event(seq, rec))
                        self.wfile.flush()
                        sent += 1
                        if max_events is not None and sent >= max_events:
                            break
                except (BrokenPipeError, ConnectionResetError):
                    pass  # client went away mid-stream
                finally:
                    hub.unsubscribe(q)

            def do_GET(self):
                parsed = urlparse(self.path)
                route = parsed.path
                if route == "/metrics":
                    metrics, telemetry = provider()
                    body = render_prometheus(metrics, telemetry).encode()
                    self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
                elif route == "/snapshot":
                    metrics, telemetry = provider()
                    snap = snapshot_json(metrics, telemetry)
                    if store_dir is not None:
                        from ..store.server import store_section

                        snap["store"] = store_section(store_dir, hub)
                    self._send(200, "application/json", json.dumps(snap).encode())
                elif route == "/lineage":
                    _, telemetry = provider()
                    self._send(
                        *_lineage_reply(telemetry, context, parse_qs(parsed.query))
                    )
                elif route == "/traces" and trace_dir is not None:
                    self._send(*_traces_reply(trace_dir, parse_qs(parsed.query)))
                elif route.startswith("/traces/") and trace_dir is not None:
                    self._send(*_trace_segment_reply(trace_dir, route[len("/traces/"):]))
                elif route == "/query" and store_dir is not None:
                    from ..store.server import query_reply

                    self._send(*query_reply(store_dir, parse_qs(parsed.query)))
                elif route == "/subscribe" and hub is not None:
                    params = parse_qs(parsed.query)
                    if params.get("mode", [""])[0] == "poll":
                        from ..store.server import poll_reply

                        self._send(*poll_reply(hub, params))
                    else:
                        self._sse(params)
                else:
                    self._send(404, "text/plain", b"try /metrics, /snapshot, /traces\n")

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="telemetry-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._hub is not None:
            self._hub.close()  # unblocks any open /subscribe handlers
            self._hub = None
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "TelemetryServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # -- addressing ----------------------------------------------------
    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, _ = self._requested
        return f"http://{host}:{self.port}"


# ---------------------------------------------------------------------------
# cluster aggregation
# ---------------------------------------------------------------------------

#: Counter families the aggregator additionally sums across instances into
#: ``ffsva_cluster_<family>`` series (kept out of METRIC_FAMILIES so the
#: dashboard plane's per-run catalog does not grow cluster-only names).
_CLUSTER_SUMMED = (
    "frames_offered_total",
    "frames_ingested_total",
    "frames_to_ref_total",
    "stage_frames_entered_total",
    "stage_frames_passed_total",
    "stage_frames_filtered_total",
)


class MetricsAggregator:
    """Scrape several instances' ``/metrics`` into one labeled exposition.

    ``targets`` maps an instance label to its metrics URL.  :meth:`render`
    re-emits every scraped sample with an ``instance`` label injected and
    appends cluster-wide sums for the frame/stage counter families, so one
    scrape answers both "what is instance 2 doing" and "what has the
    cluster processed".  Unreachable instances are reported via
    ``ffsva_cluster_scrape_errors_total`` rather than failing the scrape.
    """

    def __init__(self, targets: dict[str, str], timeout: float = 5.0):
        self.targets = dict(targets)
        self.timeout = timeout
        self.errors: dict[str, str] = {}

    def scrape(self) -> dict[str, list[tuple[str, dict, float]]]:
        """Fetch and parse every target; errors are recorded, not raised."""
        out: dict[str, list[tuple[str, dict, float]]] = {}
        self.errors = {}
        for label, url in self.targets.items():
            try:
                with urllib.request.urlopen(
                    url.rstrip("/") + "/metrics", timeout=self.timeout
                ) as resp:
                    out[label] = parse_prometheus(resp.read().decode())
            except Exception as exc:  # noqa: BLE001 - any scrape failure counts
                self.errors[label] = repr(exc)
        return out

    def scrape_histograms(self) -> dict[str, dict[tuple, "LatencyHistogram"]]:
        """Merge every instance's explicit-bucket histograms cluster-wide.

        Scrapes each target's ``/snapshot`` (which carries the histograms in
        :meth:`~repro.obs.hist.LatencyHistogram.to_dict` form) and folds
        same-family, same-label series together with
        :meth:`~repro.obs.hist.LatencyHistogram.merge`.  A bound-mismatched
        series is rejected (recorded under ``errors``), never silently
        misbinned; unreachable instances are likewise recorded, not raised.
        """
        from .hist import LatencyHistogram

        merged: dict[str, dict[tuple, LatencyHistogram]] = {}
        for label, url in self.targets.items():
            if label in self.errors:
                # The /metrics scrape already failed this cycle: the whole
                # instance is down — don't re-count it per endpoint.
                continue
            try:
                with urllib.request.urlopen(
                    url.rstrip("/") + "/snapshot", timeout=self.timeout
                ) as resp:
                    snap = json.load(resp)
            except Exception as exc:  # noqa: BLE001 - any scrape failure counts
                self.errors[f"{label}:snapshot"] = repr(exc)
                continue
            for family, entries in snap.get("histograms", {}).items():
                series = merged.setdefault(family, {})
                for entry in entries:
                    key = tuple(sorted(entry["labels"].items()))
                    hist = LatencyHistogram.from_dict(entry)
                    if key in series:
                        try:
                            series[key].merge(hist)
                        except ValueError as exc:
                            self.errors[f"{label}:{family}"] = repr(exc)
                    else:
                        series[key] = hist
        return merged

    def render(self) -> str:
        """One exposition: per-instance samples plus cluster sums."""
        per_instance = self.scrape()
        lines: list[str] = []
        sums: dict[tuple[str, tuple], float] = {}
        for label in sorted(per_instance):
            for name, labels, value in per_instance[label]:
                inner = ",".join(
                    f'{k}="{_escape(str(v))}"'
                    for k, v in sorted({**labels, "instance": label}.items())
                )
                lines.append(f"{name}{{{inner}}} {value:g}")
                short = name[len(_PREFIX) + 1:] if name.startswith(f"{_PREFIX}_") else name
                if short in _CLUSTER_SUMMED:
                    key = (short, tuple(sorted(labels.items())))
                    sums[key] = sums.get(key, 0.0) + value
        for short in _CLUSTER_SUMMED:
            keyed = {k: v for k, v in sums.items() if k[0] == short}
            if not keyed:
                continue
            lines.append(
                f"# HELP {_PREFIX}_cluster_{short} Sum of {_PREFIX}_{short} over instances."
            )
            lines.append(f"# TYPE {_PREFIX}_cluster_{short} counter")
            for (name, labelkey), value in sorted(keyed.items()):
                if labelkey:
                    inner = ",".join(
                        f'{k}="{_escape(str(v))}"' for k, v in labelkey
                    )
                    lines.append(f"{_PREFIX}_cluster_{name}{{{inner}}} {value:g}")
                else:
                    lines.append(f"{_PREFIX}_cluster_{name} {value:g}")
        # True cluster-wide histograms: same-bounds bucket sums over every
        # instance's series, exposed under ffsva_cluster_<family>_hist_* —
        # a scraper gets aggregatable tail latency without re-deriving it
        # from per-instance labeled buckets.
        for family, series in sorted(self.scrape_histograms().items()):
            name = f"{_PREFIX}_cluster_{family}_hist"
            lines.append(
                f"# HELP {name} Cluster-wide explicit-bucket histogram of {family}."
            )
            lines.append(f"# TYPE {name} histogram")
            for key in sorted(series):
                hist = series[key]
                labels = dict(key)
                running = 0
                for bound, n in zip(hist.bounds, hist.counts):
                    running += n
                    inner = ",".join(
                        f'{k}="{_escape(str(v))}"'
                        for k, v in sorted({**labels, "le": format(bound, "g")}.items())
                    )
                    lines.append(f"{name}_bucket{{{inner}}} {running}")
                inner = ",".join(
                    f'{k}="{_escape(str(v))}"'
                    for k, v in sorted({**labels, "le": "+Inf"}.items())
                )
                lines.append(f"{name}_bucket{{{inner}}} {hist.count}")
                if labels:
                    inner = ",".join(
                        f'{k}="{_escape(str(v))}"' for k, v in sorted(labels.items())
                    )
                    lines.append(f"{name}_sum{{{inner}}} {hist.sum}")
                    lines.append(f"{name}_count{{{inner}}} {hist.count}")
                else:
                    lines.append(f"{name}_sum {hist.sum}")
                    lines.append(f"{name}_count {hist.count}")
        lines.append(
            f"# HELP {_PREFIX}_cluster_scrape_errors_total Instances whose last scrape failed."
        )
        lines.append(f"# TYPE {_PREFIX}_cluster_scrape_errors_total gauge")
        # One instance, one error: the /metrics and /snapshot scrapes (and
        # any per-family merge rejection) record under "<label>[:detail]"
        # keys, so an unreachable instance is not double-counted.
        failed = {key.split(":", 1)[0] for key in self.errors}
        lines.append(f"{_PREFIX}_cluster_scrape_errors_total {len(failed)}")
        return "\n".join(lines) + "\n"

    def instances_json(self) -> dict:
        return {
            "targets": dict(self.targets),
            "errors": dict(self.errors),
        }


def _cluster_lineage_reply(
    aggregator: MetricsAggregator, handoffs, raw_query: str
) -> tuple[int, str, bytes]:
    """Fan ``/lineage`` out to every instance and stitch the replies.

    A frame completes on exactly one instance (the handoff conservation
    invariant), but the *caller* does not know which — and after a shed the
    same stream's earlier frames live on the source instance.  The stitched
    reply reports every instance that found the frame, the merged hop list
    (each hop tagged with its instance), and — when a handoff record covers
    the stream — which side of the boundary this frame fell on.  Instance
    ``incomplete``/``warning`` flags are preserved, never masked.
    """
    query = parse_qs(raw_query)
    stream_q = query.get("stream", [None])[0]
    frame_q = query.get("frame", [None])[0]
    if stream_q is None or frame_q is None:
        return 400, "application/json", b'{"error": "need stream= and frame="}'
    per_instance: dict[str, dict] = {}
    errors: dict[str, str] = {}
    for label, url in aggregator.targets.items():
        try:
            with urllib.request.urlopen(
                url.rstrip("/") + "/lineage?" + raw_query,
                timeout=aggregator.timeout,
            ) as resp:
                per_instance[label] = json.load(resp)
        except urllib.error.HTTPError as exc:
            if exc.code == 404:  # instance is up but never saw the frame
                try:
                    per_instance[label] = json.load(exc)
                except ValueError:
                    per_instance[label] = {"found": False}
            else:
                errors[label] = repr(exc)
        except Exception as exc:  # noqa: BLE001 - any fan-out failure counts
            errors[label] = repr(exc)
    found = {
        label: reply
        for label, reply in per_instance.items()
        if reply.get("found") and reply.get("hops")
    }
    records = [dict(h) for h in handoffs()] if handoffs is not None else []
    relevant = [h for h in records if str(h.get("stream")) == stream_q]
    handoff = None
    if relevant:
        try:
            frame_n = int(frame_q)
        except ValueError:
            frame_n = None
        handoff = relevant[-1]
        if frame_n is not None and handoff.get("boundary") is not None:
            handoff = {
                **handoff,
                "side": "dst" if frame_n >= handoff["boundary"] else "src",
            }
    hops: list[dict] = []
    for label in sorted(found):
        for hop in found[label]["hops"]:
            hops.append({**hop, "instance": label})
    body = {
        "stream": stream_q,
        "frame": frame_q,
        "found": bool(found),
        "instances": per_instance,
        "errors": errors,
        "hops": hops,
        "handoff": handoff,
        "incomplete": any(r.get("incomplete") for r in found.values()),
        "warnings": {
            label: r["warning"] for label, r in per_instance.items() if r.get("warning")
        },
    }
    status = 200 if found else 404
    return status, "application/json", json.dumps(body).encode()


class ClusterMetricsServer:
    """HTTP surface for a :class:`MetricsAggregator`.

    * ``GET /metrics``   — the aggregated exposition (scraped live);
    * ``GET /instances`` — the target map and last scrape errors as JSON;
    * ``GET /query``     — with ``store_dirs`` set, one query over every
      instance's detection store, merged — the store-plane analogue of the
      aggregated ``/metrics``;
    * ``GET /lineage``   — one frame's story stitched across the cluster:
      every instance's ``/lineage`` is queried and the instances that saw
      the frame contribute their hops (a handed-off stream's frames live on
      exactly one side of the boundary, so this finds the right instance
      and annotates the move via ``handoffs``).
    """

    def __init__(
        self,
        aggregator: MetricsAggregator,
        port: int = 0,
        host: str = "127.0.0.1",
        *,
        store_dirs: dict[str, str] | None = None,
        handoffs=None,
    ):
        self._aggregator = aggregator
        self._requested = (host, port)
        self._store_dirs = dict(store_dirs) if store_dirs else None
        #: Zero-arg callable returning the applied handoff records
        #: (``{"stream", "src", "dst", "boundary"}`` dicts) so ``/lineage``
        #: can say which instances a stream's frames are split across.
        self._handoffs = handoffs
        self._httpd: ThreadingHTTPServer | None = None
        self._thread: threading.Thread | None = None

    def start(self) -> "ClusterMetricsServer":
        aggregator = self._aggregator
        store_dirs = self._store_dirs
        handoffs = self._handoffs

        class Handler(BaseHTTPRequestHandler):
            def log_message(self, fmt, *args):
                pass

            def _send(self, status: int, content_type: str, body: bytes) -> None:
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(body)))
                self.end_headers()
                self.wfile.write(body)

            def do_GET(self):
                parsed = urlparse(self.path)
                route = parsed.path
                if route == "/metrics":
                    body = aggregator.render().encode()
                    self._send(200, "text/plain; version=0.0.4; charset=utf-8", body)
                elif route == "/instances":
                    self._send(
                        200,
                        "application/json",
                        json.dumps(aggregator.instances_json()).encode(),
                    )
                elif route == "/query" and store_dirs is not None:
                    from ..store.server import query_reply

                    self._send(*query_reply(store_dirs, parse_qs(parsed.query)))
                elif route == "/lineage":
                    self._send(
                        *_cluster_lineage_reply(
                            aggregator, handoffs, parsed.query
                        )
                    )
                else:
                    self._send(404, "text/plain", b"try /metrics or /instances\n")

        self._httpd = ThreadingHTTPServer(self._requested, Handler)
        self._thread = threading.Thread(
            target=self._httpd.serve_forever, name="cluster-metrics-http", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=2.0)
            self._thread = None

    def __enter__(self) -> "ClusterMetricsServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    @property
    def port(self) -> int:
        if self._httpd is None:
            raise RuntimeError("server not started")
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        host, _ = self._requested
        return f"http://{host}:{self.port}"
