"""Explicit-bucket latency histograms for the Prometheus export plane.

The summary quantiles already exported (``frame_latency_seconds{quantile=}``)
are computed at end-of-run from retained samples and cannot be aggregated
across runs or scraped incrementally.  Classic Prometheus histograms can:
they are plain cumulative counters per bucket bound, cheap enough to update
on the hot path (one ``bisect`` + two adds under a short lock), and they
work for live scrapes of in-progress runs.

Bucket bounds default to a log-ish ladder from 1 ms to 10 s, which spans
everything the pipeline produces — sub-millisecond SDD batch executions land
in the first bucket, multi-second end-to-end stragglers in the last.
"""

from __future__ import annotations

import math
from bisect import bisect_left

__all__ = ["DEFAULT_BUCKETS", "LatencyHistogram"]

#: Default bucket upper bounds in seconds (+Inf is implicit).
DEFAULT_BUCKETS = (
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


class LatencyHistogram:
    """One labelled series of a classic (cumulative-bucket) histogram.

    ``counts[i]`` is the number of observations ``<= bounds[i]`` *in that
    bucket alone*; rendering accumulates them into the cumulative ``le``
    samples Prometheus expects, with the implicit ``+Inf`` bucket equal to
    ``count``.  Not thread-safe by itself — the owning
    :class:`~repro.obs.Telemetry` serializes observations.
    """

    __slots__ = ("bounds", "counts", "inf", "sum", "count", "skew_clamped")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_BUCKETS):
        if list(bounds) != sorted(bounds) or len(set(bounds)) != len(bounds):
            raise ValueError("histogram bounds must be strictly increasing")
        self.bounds = tuple(float(b) for b in bounds)
        self.counts = [0] * len(self.bounds)
        self.inf = 0  # observations above the largest bound
        self.sum = 0.0
        self.count = 0
        #: Negative/NaN observations clamped to 0 (cross-process clock skew
        #: on ProcPool / cluster timestamps can produce them).
        self.skew_clamped = 0

    def observe(self, value: float) -> None:
        if value < 0.0 or math.isnan(value):
            value = 0.0
            self.skew_clamped += 1
        i = bisect_left(self.bounds, value)
        if i < len(self.counts):
            self.counts[i] += 1
        else:
            self.inf += 1
        self.sum += value
        self.count += 1

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fold ``other`` into this histogram in place (same bounds only).

        Classic-bucket histograms are plain counters, so cluster-wide
        aggregation is element-wise addition — but only when both series
        used identical bucket ladders; anything else would silently
        misattribute observations, so it is rejected.
        """
        if other.bounds != self.bounds:
            raise ValueError(
                f"cannot merge histograms with different bounds: "
                f"{self.bounds} != {other.bounds}"
            )
        for i, n in enumerate(other.counts):
            self.counts[i] += n
        self.inf += other.inf
        self.sum += other.sum
        self.count += other.count
        self.skew_clamped += other.skew_clamped
        return self

    def cumulative(self) -> list[tuple[str, int]]:
        """``(le_label, cumulative_count)`` pairs ending with ``+Inf``."""
        out = []
        running = 0
        for bound, n in zip(self.bounds, self.counts):
            running += n
            out.append((format(bound, "g"), running))
        out.append(("+Inf", self.count))
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "LatencyHistogram":
        """Rebuild a histogram from its :meth:`to_dict` form (snapshot JSON)."""
        h = cls(bounds=tuple(data["bounds"]))
        h.counts = [int(n) for n in data["counts"]]
        h.inf = int(data["inf"])
        h.sum = float(data["sum"])
        h.count = int(data["count"])
        h.skew_clamped = int(data.get("skew_clamped", 0))
        return h

    def to_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "inf": self.inf,
            "sum": self.sum,
            "count": self.count,
            "skew_clamped": self.skew_clamped,
        }
