"""Per-frame trace spans and Chrome ``trace_event`` export.

Reconstructs each frame's journey through the cascade from the event
stream: for every ``(stream, frame, stage)`` visit, a :class:`FrameSpan`
records when the frame entered the stage's queue, when service started and
ended, and how the visit ended (passed on, filtered, or analyzed at the
terminal stage).  The spans render to Chrome's JSON ``trace_event`` format
— load the dump in ``chrome://tracing`` (or Perfetto) to see queue waits
and device busy windows per stream and stage.

Two export shapes beyond the single-file dump:

* :func:`overlay_chrome_trace` merges several runs (e.g. an FFS-VA run and
  the YOLOv2 baseline) into one trace with disjoint pid ranges, so Perfetto
  shows them stacked on a single timeline;
* :class:`RotatingTraceWriter` segments long online runs into bounded,
  self-contained trace files plus a ``manifest.json``, deleting the oldest
  segments once ``max_segments`` is reached so disk usage stays bounded.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path

from .bus import TelemetryEvent

__all__ = [
    "FrameSpan",
    "build_spans",
    "chrome_trace",
    "dump_chrome_trace",
    "overlay_chrome_trace",
    "RotatingTraceWriter",
    "dump_rotating_trace",
]

#: Span dispositions.
PASSED = "pass"
FILTERED = "filtered"
ANALYZED = "analyzed"


@dataclass(frozen=True)
class FrameSpan:
    """One frame's visit to one stage."""

    stream: int
    frame: int
    stage: str
    t_enter: float  # when the frame landed in the stage's input queue
    t_start: float  # service start
    t_end: float  # service end / disposition time
    disposition: str  # "pass" | "filtered" | "analyzed"

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting in the stage's input queue."""
        return max(0.0, self.t_start - self.t_enter)

    @property
    def exec_time(self) -> float:
        """Seconds of (batched) service covering this frame."""
        return max(0.0, self.t_end - self.t_start)


def build_spans(
    events: list[TelemetryEvent], *, terminal: str | None = None
) -> list[FrameSpan]:
    """Reconstruct per-frame spans from a bus's event stream.

    ``terminal`` names the graph's terminal stage so its ``frame_pass``
    events read as ``analyzed`` rather than ``pass``.  Events may arrive
    slightly out of order across worker threads; disposition events with no
    matching ``frame_enter`` (e.g. evicted from a full ring) fall back to
    their service-start time as the enter time.
    """
    enters: dict[tuple, float] = {}
    spans: list[FrameSpan] = []
    for ev in sorted(events, key=lambda e: e.ts):
        if ev.stream is None or ev.frame is None:
            continue
        key = (ev.stream, ev.frame, ev.stage)
        if ev.kind in ("frame_enter", "admission"):
            enters.setdefault(key, ev.ts)
        elif ev.kind in ("frame_pass", "frame_filter"):
            t_start = ev.t_start if ev.t_start is not None else ev.ts
            t_enter = enters.pop(key, t_start)
            if ev.kind == "frame_filter":
                disposition = FILTERED
            elif terminal is not None and ev.stage == terminal:
                disposition = ANALYZED
            else:
                disposition = PASSED
            spans.append(
                FrameSpan(
                    stream=ev.stream,
                    frame=ev.frame,
                    stage=ev.stage,
                    t_enter=min(t_enter, t_start),
                    t_start=t_start,
                    t_end=ev.ts,
                    disposition=disposition,
                )
            )
    return spans


def _span_events(span: FrameSpan, tid: int, pid: int) -> list[dict]:
    """The complete ("X") slices one span renders to."""
    events = []
    if span.queue_wait > 0:
        events.append(
            {
                "name": f"{span.stage}:wait",
                "cat": "queue",
                "ph": "X",
                "ts": span.t_enter * 1e6,
                "dur": span.queue_wait * 1e6,
                "pid": pid,
                "tid": tid,
                "args": {"frame": span.frame},
            }
        )
    events.append(
        {
            "name": span.stage,
            "cat": span.disposition,
            "ph": "X",
            "ts": span.t_start * 1e6,
            "dur": span.exec_time * 1e6,
            "pid": pid,
            "tid": tid,
            "args": {"frame": span.frame, "disposition": span.disposition},
        }
    )
    return events


def _metadata_events(
    streams, stage_tids: dict[str, int], *, label: str | None, pid_base: int
) -> list[dict]:
    """process_name / thread_name metadata ("M") records for one run."""
    prefix = f"{label}:" if label else ""
    out = []
    for stream in sorted(streams):
        out.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": pid_base + stream,
                "tid": 0,
                "args": {"name": f"{prefix}stream-{stream}"},
            }
        )
        for stage, t in stage_tids.items():
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": pid_base + stream,
                    "tid": t,
                    "args": {"name": stage},
                }
            )
    return out


def chrome_trace(
    spans: list[FrameSpan], *, label: str | None = None, pid_base: int = 0
) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Streams map to processes and stages to threads; every span emits a
    complete ("X") slice for its service window plus an optional
    ``<stage>:wait`` slice covering the queue wait.  Timestamps are
    microseconds, as the format requires.  ``label`` prefixes the process
    names and ``pid_base`` offsets the pids — together they let several
    runs share one trace (see :func:`overlay_chrome_trace`).
    """
    stage_tids: dict[str, int] = {}
    trace_events: list[dict] = []

    def tid(stage: str) -> int:
        if stage not in stage_tids:
            stage_tids[stage] = len(stage_tids) + 1
        return stage_tids[stage]

    for span in spans:
        trace_events.extend(_span_events(span, tid(span.stage), pid_base + span.stream))
    trace_events.extend(
        _metadata_events(
            {s.stream for s in spans}, stage_tids, label=label, pid_base=pid_base
        )
    )
    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def overlay_chrome_trace(runs: dict[str, list[FrameSpan]]) -> dict:
    """Merge several runs' spans into one trace on a single timeline.

    ``runs`` maps a run label (e.g. ``"ffsva"``, ``"baseline"``) to that
    run's spans.  Each run gets a disjoint pid range and its label as the
    process-name prefix, so Perfetto / chrome://tracing shows
    ``ffsva:stream-0`` above ``baseline:stream-0`` against one clock —
    both runtimes stamp times relative to run start, which makes the
    timelines directly comparable.
    """
    trace_events: list[dict] = []
    pid_base = 0
    for run_label, spans in runs.items():
        sub = chrome_trace(spans, label=run_label, pid_base=pid_base)
        trace_events.extend(sub["traceEvents"])
        if spans:
            pid_base += max(s.stream for s in spans) + 1
        else:
            pid_base += 1
    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def dump_chrome_trace(path, spans: list[FrameSpan]) -> None:
    """Write the Chrome trace JSON for ``spans`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans), fh)


class RotatingTraceWriter:
    """Segmented Chrome-trace export with bounded disk usage.

    Spans are appended in (roughly) time order; whenever the serialized
    segment would exceed ``max_bytes``, or the segment's time extent would
    exceed ``max_span`` virtual/wall seconds, the segment is flushed to
    ``trace-NNNNN.json`` inside ``directory`` and a new one begins.  Every
    segment is a *self-contained* trace (its own metadata records), so any
    one file loads in Perfetto on its own.

    ``manifest.json`` lists segments oldest-first with their time bounds,
    span counts, and byte sizes — the index a dashboard or a pruning job
    reads.  When ``max_segments`` is set, the oldest segment file is deleted
    once the count would exceed it (counted in ``dropped_segments``), which
    bounds total disk for arbitrarily long online runs.
    """

    def __init__(
        self,
        directory,
        *,
        max_bytes: int = 1_000_000,
        max_span: float | None = None,
        max_segments: int | None = None,
        label: str | None = None,
    ):
        if max_bytes < 4096:
            raise ValueError("max_bytes must be >= 4096")
        if max_span is not None and max_span <= 0:
            raise ValueError("max_span must be positive")
        if max_segments is not None and max_segments < 1:
            raise ValueError("max_segments must be >= 1")
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.max_bytes = max_bytes
        self.max_span = max_span
        self.max_segments = max_segments
        self.label = label
        self.segments: list[dict] = []
        self.dropped_segments = 0
        self._seq = 0
        self._closed = False
        self._stage_tids: dict[str, int] = {}
        self._reset_segment()

    #: Generous serialized size of one flush-time metadata record, charged
    #: against the byte budget per (stream, stage) pair so the written file
    #: stays under ``max_bytes`` even though metadata is appended at flush.
    _META_EVENT_BYTES = 120

    def _reset_segment(self) -> None:
        self._events: list[dict] = []
        self._bytes = len('{"displayTimeUnit": "ms", "traceEvents": []}')
        self._streams: set[int] = set()
        self._t_lo: float | None = None
        self._t_hi: float | None = None
        self._n_spans = 0

    def _tid(self, stage: str) -> int:
        if stage not in self._stage_tids:
            self._stage_tids[stage] = len(self._stage_tids) + 1
        return self._stage_tids[stage]

    def add(self, span: FrameSpan) -> None:
        """Append one span, rolling the segment first if it would overflow."""
        if self._closed:
            raise RuntimeError("writer is closed")
        events = _span_events(span, self._tid(span.stage), span.stream)
        nbytes = sum(len(json.dumps(e)) + 2 for e in events)
        meta_bytes = (
            len(self._streams | {span.stream})
            * (1 + len(self._stage_tids))
            * self._META_EVENT_BYTES
        )
        if self._n_spans and (
            self._bytes + nbytes + meta_bytes > self.max_bytes
            or (
                self.max_span is not None
                and self._t_lo is not None
                and span.t_end - self._t_lo > self.max_span
            )
        ):
            self.flush()
        self._events.extend(events)
        self._bytes += nbytes
        self._streams.add(span.stream)
        lo, hi = span.t_enter, span.t_end
        self._t_lo = lo if self._t_lo is None else min(self._t_lo, lo)
        self._t_hi = hi if self._t_hi is None else max(self._t_hi, hi)
        self._n_spans += 1

    def add_spans(self, spans: list[FrameSpan]) -> None:
        """Append many spans in time order (sorted here for convenience)."""
        for span in sorted(spans, key=lambda s: (s.t_start, s.t_end)):
            self.add(span)

    def flush(self) -> dict | None:
        """Write the current segment (if non-empty); returns its manifest entry."""
        if not self._n_spans:
            return None
        events = list(self._events)
        events.extend(
            _metadata_events(
                self._streams,
                {s: t for s, t in self._stage_tids.items()},
                label=self.label,
                pid_base=0,
            )
        )
        name = f"trace-{self._seq:05d}.json"
        self._seq += 1
        path = self.directory / name
        with open(path, "w") as fh:
            json.dump({"displayTimeUnit": "ms", "traceEvents": events}, fh)
        entry = {
            "file": name,
            "t_start": self._t_lo,
            "t_end": self._t_hi,
            "spans": self._n_spans,
            "bytes": path.stat().st_size,
        }
        self.segments.append(entry)
        while self.max_segments is not None and len(self.segments) > self.max_segments:
            oldest = self.segments.pop(0)
            try:
                os.remove(self.directory / oldest["file"])
            except FileNotFoundError:
                pass
            self.dropped_segments += 1
        self._reset_segment()
        self._write_manifest()
        return entry

    def _write_manifest(self) -> None:
        manifest = {
            "label": self.label,
            "max_bytes": self.max_bytes,
            "max_span": self.max_span,
            "max_segments": self.max_segments,
            "dropped_segments": self.dropped_segments,
            "segments": self.segments,
        }
        with open(self.directory / "manifest.json", "w") as fh:
            json.dump(manifest, fh, indent=2)

    def close(self) -> dict:
        """Flush the tail segment and return the final manifest dict."""
        if not self._closed:
            self.flush()
            self._write_manifest()
            self._closed = True
        with open(self.directory / "manifest.json") as fh:
            return json.load(fh)


def dump_rotating_trace(
    directory,
    spans: list[FrameSpan],
    *,
    max_bytes: int = 1_000_000,
    max_span: float | None = None,
    max_segments: int | None = None,
    label: str | None = None,
) -> dict:
    """Write ``spans`` as a rotated segment directory; returns the manifest."""
    writer = RotatingTraceWriter(
        directory,
        max_bytes=max_bytes,
        max_span=max_span,
        max_segments=max_segments,
        label=label,
    )
    writer.add_spans(spans)
    return writer.close()
