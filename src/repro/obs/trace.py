"""Per-frame trace spans and Chrome ``trace_event`` export.

Reconstructs each frame's journey through the cascade from the event
stream: for every ``(stream, frame, stage)`` visit, a :class:`FrameSpan`
records when the frame entered the stage's queue, when service started and
ended, and how the visit ended (passed on, filtered, or analyzed at the
terminal stage).  The spans render to Chrome's JSON ``trace_event`` format
— load the dump in ``chrome://tracing`` (or Perfetto) to see queue waits
and device busy windows per stream and stage.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

from .bus import TelemetryEvent

__all__ = ["FrameSpan", "build_spans", "chrome_trace", "dump_chrome_trace"]

#: Span dispositions.
PASSED = "pass"
FILTERED = "filtered"
ANALYZED = "analyzed"


@dataclass(frozen=True)
class FrameSpan:
    """One frame's visit to one stage."""

    stream: int
    frame: int
    stage: str
    t_enter: float  # when the frame landed in the stage's input queue
    t_start: float  # service start
    t_end: float  # service end / disposition time
    disposition: str  # "pass" | "filtered" | "analyzed"

    @property
    def queue_wait(self) -> float:
        """Seconds spent waiting in the stage's input queue."""
        return max(0.0, self.t_start - self.t_enter)

    @property
    def exec_time(self) -> float:
        """Seconds of (batched) service covering this frame."""
        return max(0.0, self.t_end - self.t_start)


def build_spans(
    events: list[TelemetryEvent], *, terminal: str | None = None
) -> list[FrameSpan]:
    """Reconstruct per-frame spans from a bus's event stream.

    ``terminal`` names the graph's terminal stage so its ``frame_pass``
    events read as ``analyzed`` rather than ``pass``.  Events may arrive
    slightly out of order across worker threads; disposition events with no
    matching ``frame_enter`` (e.g. evicted from a full ring) fall back to
    their service-start time as the enter time.
    """
    enters: dict[tuple, float] = {}
    spans: list[FrameSpan] = []
    for ev in sorted(events, key=lambda e: e.ts):
        if ev.stream is None or ev.frame is None:
            continue
        key = (ev.stream, ev.frame, ev.stage)
        if ev.kind in ("frame_enter", "admission"):
            enters.setdefault(key, ev.ts)
        elif ev.kind in ("frame_pass", "frame_filter"):
            t_start = ev.t_start if ev.t_start is not None else ev.ts
            t_enter = enters.pop(key, t_start)
            if ev.kind == "frame_filter":
                disposition = FILTERED
            elif terminal is not None and ev.stage == terminal:
                disposition = ANALYZED
            else:
                disposition = PASSED
            spans.append(
                FrameSpan(
                    stream=ev.stream,
                    frame=ev.frame,
                    stage=ev.stage,
                    t_enter=min(t_enter, t_start),
                    t_start=t_start,
                    t_end=ev.ts,
                    disposition=disposition,
                )
            )
    return spans


def chrome_trace(spans: list[FrameSpan]) -> dict:
    """Render spans as a Chrome ``trace_event`` JSON object.

    Streams map to processes and stages to threads; every span emits a
    complete ("X") slice for its service window plus an optional
    ``<stage>:wait`` slice covering the queue wait.  Timestamps are
    microseconds, as the format requires.
    """
    stage_tids: dict[str, int] = {}
    trace_events: list[dict] = []

    def tid(stage: str) -> int:
        if stage not in stage_tids:
            stage_tids[stage] = len(stage_tids) + 1
        return stage_tids[stage]

    for span in spans:
        t = tid(span.stage)
        if span.queue_wait > 0:
            trace_events.append(
                {
                    "name": f"{span.stage}:wait",
                    "cat": "queue",
                    "ph": "X",
                    "ts": span.t_enter * 1e6,
                    "dur": span.queue_wait * 1e6,
                    "pid": span.stream,
                    "tid": t,
                    "args": {"frame": span.frame},
                }
            )
        trace_events.append(
            {
                "name": span.stage,
                "cat": span.disposition,
                "ph": "X",
                "ts": span.t_start * 1e6,
                "dur": span.exec_time * 1e6,
                "pid": span.stream,
                "tid": t,
                "args": {"frame": span.frame, "disposition": span.disposition},
            }
        )

    streams = sorted({s.stream for s in spans})
    for stream in streams:
        trace_events.append(
            {
                "name": "process_name",
                "ph": "M",
                "pid": stream,
                "tid": 0,
                "args": {"name": f"stream-{stream}"},
            }
        )
        for stage, t in stage_tids.items():
            trace_events.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": stream,
                    "tid": t,
                    "args": {"name": stage},
                }
            )
    return {"displayTimeUnit": "ms", "traceEvents": trace_events}


def dump_chrome_trace(path, spans: list[FrameSpan]) -> None:
    """Write the Chrome trace JSON for ``spans`` to ``path``."""
    with open(path, "w") as fh:
        json.dump(chrome_trace(spans), fh)
