"""Signal readers over the telemetry time-series (the control half of obs).

PR 2's sampler records what the system *did*; this module is how policy
code asks what the system *is doing*.  :class:`SignalReader` wraps a
:class:`~repro.obs.sampler.TimeSeriesSampler` with the windowed queries an
admission or shedding policy needs — latest values, windowed means and
all-below predicates with coverage requirements, irregular-interval EWMA —
and :class:`Hysteresis` debounces any boolean signal so a single noisy
sample can never flap a control decision.

The contract that makes closed-loop control testable: every reader method
is a *pure function of the sampled series*.  Replaying a run's series into
a fresh reader reproduces the exact same answers, so control decisions made
through this API are reproducible from the telemetry artifact alone.
"""

from __future__ import annotations

import math

from .sampler import TimeSeriesSampler

__all__ = ["SignalReader", "Hysteresis"]


class SignalReader:
    """Windowed queries over a sampler's named series.

    All ``now`` arguments default to the newest timestamp in the queried
    series, so callers on either clock domain (wall or virtual) can omit it
    when they only care about "as of the latest sweep".
    """

    def __init__(self, sampler: TimeSeriesSampler):
        self.sampler = sampler

    # -- point queries --------------------------------------------------
    def latest(self, name: str, default: float | None = None) -> float | None:
        """Most recent value of ``name`` (or ``default`` if never sampled)."""
        return self.sampler.latest().get(name, default)

    def latest_map(self, prefix: str) -> dict[str, float]:
        """Latest value of every ``prefix[label]`` series, keyed by label.

        ``latest_map("queue_depth")`` returns e.g. ``{"snm[0]": 3.0,
        "ref": 1.0}`` — the same keyed-gauge shape both runtimes feed into
        ``observe_many``.
        """
        want = prefix + "["
        out: dict[str, float] = {}
        for name, value in self.sampler.latest().items():
            if name.startswith(want) and name.endswith("]"):
                out[name[len(want):-1]] = value
        return out

    # -- window queries -------------------------------------------------
    def window(self, name: str, span: float, now: float | None = None) -> list[tuple[float, float]]:
        """All retained ``(t, value)`` points with ``t >= now - span``."""
        points = self.sampler.points(name)
        if not points:
            return []
        if now is None:
            now = points[-1][0]
        horizon = now - span
        return [(t, v) for t, v in points if horizon <= t <= now]

    def window_mean(self, name: str, span: float, now: float | None = None) -> float | None:
        """Arithmetic mean over the window (None when the window is empty)."""
        pts = self.window(name, span, now)
        if not pts:
            return None
        return sum(v for _, v in pts) / len(pts)

    def window_span(self, name: str, span: float, now: float | None = None) -> float:
        """Seconds actually covered by retained points inside the window."""
        pts = self.window(name, span, now)
        if len(pts) < 2:
            return 0.0
        return pts[-1][0] - pts[0][0]

    def all_below(
        self,
        name: str,
        threshold: float,
        span: float,
        now: float | None = None,
        *,
        min_coverage: float = 0.9,
        min_points: int = 2,
    ) -> bool:
        """Did ``name`` stay strictly below ``threshold`` for the whole window?

        This is the paper's admission predicate ("speed lower than 140 FPS
        for 5 s").  A half-empty window is not evidence: the retained points
        must span at least ``min_coverage * span`` seconds (less one sampler
        interval of slack, because points land on the sweep grid rather than
        the window horizon) and number at least ``min_points``, otherwise
        the answer is False.
        """
        pts = self.window(name, span, now)
        if len(pts) < min_points:
            return False
        required = max(0.0, span * min_coverage - self.sampler.interval)
        if pts[-1][0] - pts[0][0] < required:
            return False
        return all(v < threshold for _, v in pts)

    def ewma(self, name: str, tau: float, now: float | None = None) -> float | None:
        """Exponentially-weighted mean with time constant ``tau`` seconds.

        Handles the sampler's irregular spacing (decimation doubles the
        interval mid-series) by weighting each step with
        ``exp(-dt / tau)`` rather than assuming a fixed alpha.
        """
        if tau <= 0:
            raise ValueError("ewma time constant must be positive")
        points = self.sampler.points(name)
        if not points:
            return None
        if now is not None:
            points = [(t, v) for t, v in points if t <= now]
            if not points:
                return None
        acc = points[0][1]
        t_prev = points[0][0]
        for t, v in points[1:]:
            a = math.exp(-(t - t_prev) / tau)
            acc = a * acc + (1.0 - a) * v
            t_prev = t
        return acc


class Hysteresis:
    """K-consecutive-sample debouncer for a boolean control signal.

    The state only rises after ``up`` consecutive True observations and only
    falls after ``down`` consecutive False observations, so with
    ``up >= 2`` a single noisy sample can never flip the output — the
    anti-flap invariant the admission property tests pin down.
    """

    def __init__(self, up: int = 2, down: int = 1, initial: bool = False):
        if up < 1 or down < 1:
            raise ValueError("hysteresis counts must be >= 1")
        self.up = up
        self.down = down
        self.state = initial
        self._streak = 0  # consecutive observations disagreeing with state

    def update(self, raw: bool) -> bool:
        """Feed one observation; returns the debounced state."""
        if raw == self.state:
            self._streak = 0
            return self.state
        self._streak += 1
        if self._streak >= (self.up if raw else self.down):
            self.state = raw
            self._streak = 0
        return self.state

    def reset(self, state: bool = False) -> None:
        self.state = state
        self._streak = 0
