"""Figure 3 — throughput and latency vs number of streams, TOR = 0.103.

The paper: at a 10% target-object occurrence rate FFS-VA sustains up to 30
concurrent 30 FPS streams (7x the YOLOv2 baseline's ~4), with dynamic
batching halving latency at the cost of ~20% fewer supported streams.

We sweep the stream count for the feedback and dynamic configurations plus
the baseline, reporting per-stream throughput and reference-stage latency,
and assert the paper's ordering: a large FFS-VA/baseline capacity ratio and
the dynamic-vs-feedback latency/capacity trade-off.
"""

import pytest

from repro.baseline import baseline_online
from repro.core.admission import max_realtime_streams
from repro.sim import simulate_online

from common import OPERATING_POINT, fleet, print_table, record

TOR = 0.103
SWEEP = (1, 4, 8, 12, 16, 20, 24, 28)


def run_ffs(n, config):
    return simulate_online(fleet(n, "jackson", TOR), config)


def run_base(n):
    return baseline_online(fleet(n, "jackson", TOR))


@pytest.fixture(scope="module")
def capacity():
    """Max real-time streams for each system (computed once, reused)."""
    feedback = OPERATING_POINT
    dynamic = OPERATING_POINT.with_(batch_policy="dynamic")
    best_fb, _ = max_realtime_streams(lambda n: run_ffs(n, feedback), n_max=48)
    best_dy, _ = max_realtime_streams(lambda n: run_ffs(n, dynamic), n_max=48)
    best_base, _ = max_realtime_streams(run_base, n_max=12)
    return best_fb, best_dy, best_base


def test_fig3_stream_sweep(benchmark, capacity):
    feedback = OPERATING_POINT
    dynamic = OPERATING_POINT.with_(batch_policy="dynamic")

    # Timed kernel: one mid-sweep online simulation.
    benchmark.pedantic(lambda: run_ffs(12, feedback), rounds=1, iterations=1)

    rows = []
    series = {"n": [], "fb_fps": [], "fb_lat": [], "dy_fps": [], "dy_lat": []}
    for n in SWEEP:
        m_fb = run_ffs(n, feedback)
        m_dy = run_ffs(n, dynamic)
        rows.append(
            [
                n,
                m_fb.achieved_stream_fps(),
                m_fb.ref_latency.mean,
                "yes" if m_fb.realtime() else "no",
                m_dy.achieved_stream_fps(),
                m_dy.ref_latency.mean,
                "yes" if m_dy.realtime() else "no",
            ]
        )
        series["n"].append(n)
        series["fb_fps"].append(m_fb.achieved_stream_fps())
        series["fb_lat"].append(m_fb.ref_latency.mean)
        series["dy_fps"].append(m_dy.achieved_stream_fps())
        series["dy_lat"].append(m_dy.ref_latency.mean)

    best_fb, best_dy, best_base = capacity
    print_table(
        "Figure 3: TOR=0.103 (per-stream FPS / mean ref latency s)",
        ["streams", "fb FPS", "fb lat", "fb RT", "dyn FPS", "dyn lat", "dyn RT"],
        rows,
    )
    print(
        f"max real-time streams: feedback={best_fb}, dynamic={best_dy}, "
        f"baseline={best_base} (paper: 30 / ~24 / 4)"
    )
    record(
        "fig3",
        {
            **series,
            "max_streams_feedback": best_fb,
            "max_streams_dynamic": best_dy,
            "max_streams_baseline": best_base,
            "paper": {"max_streams": 30, "baseline": 4, "ratio": 7.0},
        },
    )

    # --- shape assertions -------------------------------------------------
    # FFS-VA supports several times more streams than the baseline (paper 7x).
    assert best_fb >= 4 * best_base
    # Dynamic batching trades some capacity away (paper ~20%).
    assert best_dy <= best_fb
    # While real-time, each stream is served at its offered 30 FPS.
    realtime_rows = [r for r in rows if r[3] == "yes"]
    for r in realtime_rows:
        assert r[1] == pytest.approx(30.0, rel=0.05)


def test_fig3_dynamic_latency_advantage(benchmark):
    """At a supported load, dynamic batching cuts latency vs feedback."""
    n = 8
    m_fb = run_ffs(n, OPERATING_POINT)
    m_dy = benchmark.pedantic(
        lambda: run_ffs(n, OPERATING_POINT.with_(batch_policy="dynamic")),
        rounds=1,
        iterations=1,
    )
    print(
        f"\nlatency at {n} streams: feedback={m_fb.ref_latency.mean:.3f}s, "
        f"dynamic={m_dy.ref_latency.mean:.3f}s (paper: dynamic ~50% lower)"
    )
    record(
        "fig3/latency_at_8_streams",
        {"feedback": m_fb.ref_latency.mean, "dynamic": m_dy.ref_latency.mean},
    )
    assert m_dy.ref_latency.mean < m_fb.ref_latency.mean
