"""Hot-path microbenchmarks: the inference fast path vs the naive path.

FFS-VA's premise is that the cheap filters run orders of magnitude faster
than the reference model, so the reproduction's per-frame overhead — stage
resize, SNM forward passes, grid-detector response maps — must stay small
*and keep staying small*.  This suite measures each hot path twice:

* **before** — the straightforward implementation (per-call resize index
  math, training-machinery ``forward`` with backward caches), kept alive
  here as reference code;
* **after**  — the shipped fast path (cached :class:`ResizePlan`,
  ``Sequential.predict``, per-instance buffers).

Medians land in ``BENCH_hotpath.json`` at the repo root (committed, so the
perf trajectory is reviewable per PR).  Correctness — fast path outputs
equivalent to the slow path — is always asserted and is the only thing
that can fail the run: timings are data, not gates, because CI machines
are noisy.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_hotpath            # full run
    PYTHONPATH=src python -m benchmarks.bench_hotpath --quick    # CI smoke
    PYTHONPATH=src python -m benchmarks.bench_hotpath --check    # correctness only
"""

from __future__ import annotations

import argparse
import platform
import statistics
import sys
import time

import numpy as np

from repro.models.griddet import GridDetector
from repro.models.sdd import SDD
from repro.models.snm import SNMConfig, build_snm_network
from repro.video.ops import get_resize_plan

from .common import print_table, record_bench

#: The jackson workload's render size (H, W) — the geometry the stage
#: resizes actually see in steady state (coral renders at a similar 90x160).
FRAME_HW = (100, 150)

#: A hi-res variant, for the scaling behaviour of the gather path.
FRAME_HW_HIRES = (360, 640)


# ---------------------------------------------------------------------------
# The "before" implementations, kept verbatim as reference code.
# ---------------------------------------------------------------------------
def reference_resize(img: np.ndarray, out_hw: tuple[int, int]) -> np.ndarray:
    """Pre-plan bilinear resize: recompute gather indices on every call."""
    arr = np.asarray(img, dtype=np.float32)
    single = arr.ndim == 2
    if single:
        arr = arr[None]
    n, h, w = arr.shape
    oh, ow = int(out_hw[0]), int(out_hw[1])
    if (oh, ow) == (h, w):
        out = arr.copy()
        return out[0] if single else out
    ys = (np.arange(oh, dtype=np.float32) + 0.5) * (h / oh) - 0.5
    xs = (np.arange(ow, dtype=np.float32) + 0.5) * (w / ow) - 0.5
    ys = np.clip(ys, 0.0, h - 1.0)
    xs = np.clip(xs, 0.0, w - 1.0)
    y0 = np.floor(ys).astype(np.intp)
    x0 = np.floor(xs).astype(np.intp)
    y1 = np.minimum(y0 + 1, h - 1)
    x1 = np.minimum(x0 + 1, w - 1)
    wy = (ys - y0).astype(np.float32)
    wx = (xs - x0).astype(np.float32)
    ia = arr[:, y0[:, None], x0[None, :]]
    ib = arr[:, y0[:, None], x1[None, :]]
    ic = arr[:, y1[:, None], x0[None, :]]
    id_ = arr[:, y1[:, None], x1[None, :]]
    wy_ = wy[None, :, None]
    wx_ = wx[None, None, :]
    top = ia * (1.0 - wx_) + ib * wx_
    bot = ic * (1.0 - wx_) + id_ * wx_
    out = top * (1.0 - wy_) + bot * wy_
    return out[0] if single else out


def forward_eval(net, x: np.ndarray) -> np.ndarray:
    """Pre-predict inference: training machinery with backward caches."""
    net.set_training(False)
    out = net.forward(x)
    net.set_training(True)
    return out


# ---------------------------------------------------------------------------
# harness
# ---------------------------------------------------------------------------
def median_pair_ms(before, after, *, reps: int, warmup: int = 3) -> tuple[float, float]:
    """Median wall times (ms) of two callables, sampled interleaved.

    Alternating before/after per iteration (instead of timing each in its
    own block) makes the reported *ratio* robust to machine-load drift over
    the measurement window — both sides see the same background noise.
    """
    for _ in range(warmup):
        before()
        after()
    b_samples, a_samples = [], []
    for _ in range(reps):
        t0 = time.perf_counter()
        before()
        t1 = time.perf_counter()
        after()
        t2 = time.perf_counter()
        b_samples.append((t1 - t0) * 1e3)
        a_samples.append((t2 - t1) * 1e3)
    return statistics.median(b_samples), statistics.median(a_samples)


class Case:
    """One before/after pair with a correctness predicate."""

    def __init__(self, name, before, after, check, reps):
        self.name = name
        self.before = before
        self.after = after
        self.check = check  # () -> bool: fast path equivalent to slow path
        self.reps = reps


def build_cases(quick: bool) -> list[Case]:
    rng = np.random.default_rng(0)
    frames1 = rng.random((1, *FRAME_HW), dtype=np.float32)
    frames10 = rng.random((10, *FRAME_HW), dtype=np.float32)
    hires8 = rng.random((8, *FRAME_HW_HIRES), dtype=np.float32)
    cases: list[Case] = []

    def resize_case(tag, batch, out_hw, reps):
        in_hw = batch.shape[1:]
        plan = get_resize_plan(in_hw, out_hw)
        buf = np.empty((len(batch), *out_hw), dtype=np.float32)
        cases.append(
            Case(
                f"resize[{tag}]",
                lambda: reference_resize(batch, out_hw),
                lambda: plan.apply(batch, out=buf),
                lambda: np.array_equal(plan.apply(batch), reference_resize(batch, out_hw)),
                reps,
            )
        )

    # Batch 10 is the paper's feedback batch size (the engine's steady-state
    # batch); batch 1 is the latency-sensitive trickle case.
    r = 40 if quick else 200
    resize_case("sdd 100x100 b1", frames1, (100, 100), r)
    resize_case("sdd 100x100 b10", frames10, (100, 100), r)
    resize_case("snm 50x50 b10", frames10, (50, 50), r)
    resize_case("tyolo 104x104 b10", frames10, (104, 104), r)
    resize_case("hires 100x100 b8", hires8, (100, 100), r)

    # SDD distance: resize + MSE against the stream reference.
    reference = rng.random(FRAME_HW, dtype=np.float32)
    sdd = SDD(reference, threshold=0.01)

    def sdd_before():
        resized = reference_resize(frames10, (100, 100))
        d = resized - sdd.reference
        return np.mean(d * d, axis=(1, 2))

    cases.append(
        Case(
            "sdd distances b10",
            sdd_before,
            lambda: sdd.distances(frames10),
            lambda: np.allclose(sdd.distances(frames10), sdd_before(), rtol=1e-5),
            40 if quick else 200,
        )
    )

    # SNM batched predict: the cascade's second filter at its real input size.
    net = build_snm_network(SNMConfig())
    x16 = rng.normal(size=(16, 1, 50, 50)).astype(np.float32)
    cases.append(
        Case(
            "snm predict b16",
            lambda: forward_eval(net, x16),
            lambda: net.predict(x16, copy=False),
            lambda: np.array_equal(net.predict(x16), forward_eval(net, x16)),
            20 if quick else 100,
        )
    )

    # Grid detector (T-YOLO operating point) batched count.
    det_fast = GridDetector(grid=13, resolution=104)
    det_ref = GridDetector(grid=13, resolution=104)
    bg = rng.random(FRAME_HW, dtype=np.float32)

    def griddet_before():
        # Reference cells path: per-call resize index math, fresh buffers.
        resized = reference_resize(frames10, (104, 104))
        bg_small = reference_resize(bg, (104, 104))
        bg_med = float(np.median(bg_small)) or 1.0
        gain = (np.median(resized, axis=(1, 2)) / bg_med)[:, None, None].astype(np.float32)
        resp = np.abs(resized - bg_small[None] * gain)
        cells = resp.reshape(10, 13, 8, 13, 8).mean(axis=(2, 4)) / 0.25
        counts = np.empty(10, dtype=np.int64)
        for i, c in enumerate(cells):
            counts[i] = len(det_ref._detect_from_cells(c, FRAME_HW))
        return counts

    cases.append(
        Case(
            "griddet count b10",
            griddet_before,
            lambda: det_fast.count_batch(frames10, bg),
            lambda: np.array_equal(det_fast.count_batch(frames10, bg), griddet_before()),
            20 if quick else 100,
        )
    )
    return cases


def run_e2e(quick: bool) -> dict:
    """End-to-end threaded run: trained models, real queues, real threads."""
    from repro.core import FFSVAConfig
    from repro.models import ModelZoo
    from repro.nn import TrainConfig
    from repro.runtime import ThreadedPipeline
    from repro.video import jackson, make_stream

    n_frames = 120 if quick else 360
    zoo = ModelZoo()
    streams = []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), n_frames, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=100,
            stride=2,
            train_config=TrainConfig(epochs=4, batch_size=32, seed=7),
        )
        streams.append(stream)
    pipe = ThreadedPipeline(streams, zoo, FFSVAConfig())
    metrics = pipe.run()
    fps = metrics.frames_ingested / metrics.duration if metrics.duration else 0.0
    return {
        "n_streams": len(streams),
        "n_frames": metrics.frames_ingested,
        "duration_s": round(metrics.duration, 4),
        "throughput_fps": round(fps, 1),
        "frames_to_ref": metrics.frames_to_ref,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke: fewer reps, no e2e")
    ap.add_argument("--check", action="store_true", help="correctness only, no timing")
    ap.add_argument("--no-e2e", action="store_true", help="skip the threaded end-to-end run")
    ap.add_argument("--out", default=None, help="override the BENCH_hotpath.json path")
    args = ap.parse_args(argv)

    cases = build_cases(args.quick)
    failures = []
    for case in cases:
        if not case.check():
            failures.append(case.name)
    if failures:
        print(f"FAIL: fast path diverges from slow path: {failures}", file=sys.stderr)
        return 1
    print(f"correctness: all {len(cases)} fast paths equivalent to their slow paths")
    if args.check:
        return 0

    results: dict[str, dict] = {}
    rows = []
    for case in cases:
        before, after = median_pair_ms(case.before, case.after, reps=case.reps)
        speedup = before / after if after > 0 else float("inf")
        results[case.name] = {
            "before_ms": round(before, 4),
            "after_ms": round(after, 4),
            "speedup": round(speedup, 2),
        }
        rows.append([case.name, before, after, speedup])
    print_table(
        "Hot-path microbenchmarks (median ms)",
        ["case", "before", "after", "speedup"],
        rows,
    )

    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "mode": "quick" if args.quick else "full",
        },
        "cases": results,
    }
    if not (args.quick or args.no_e2e):
        payload["e2e_threaded"] = run_e2e(args.quick)
        print(f"\ne2e threaded run: {payload['e2e_threaded']}")
    path = record_bench("hotpath", payload, path=args.out)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
