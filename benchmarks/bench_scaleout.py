"""Scale-out benchmarks: process-pool SDD and cross-stream SNM fusion.

PR 4's scale-out machinery changes *where* stage work executes, not *what*
it computes, so this suite gates on bit-identity and records throughput:

* **SDD pool sweep** — the flagship process-pool stage at 8 streams, for
  worker counts {1, 2, 4}: inline threaded evaluation (GIL-bound) vs
  :class:`~repro.runtime.procpool.ProcPool` dispatch over the
  shared-memory frame plane, at equal dispatcher concurrency.  The pool's
  pass masks must equal the inline masks exactly.
* **SNM fusion** — a mixed 8-stream mega-batch through
  :class:`~repro.models.snm.FusedSNM`'s weight-stacked forward vs the same
  frames through each stream's own ``predict_proba`` sequentially.  Probs
  and pass masks must be bit-identical (that is the fusion contract).
* **End-to-end** — the full threaded pipeline with
  ``executor="process", snm_fusion=True`` cross-checked against the
  simulator (``assert_stage_counts_equal``) and against a plain threaded
  run (identical per-frame outcomes).

Timings land in ``BENCH_scaleout.json`` at the repo root.  They are data,
not gates: on a single-CPU container the pool *cannot* beat the GIL (there
is no second core to scale onto, and IPC adds overhead), so the recorded
curve is honest about the host — ``meta.cpus`` says what the numbers mean.
Correctness is the only thing that can fail the run.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_scaleout            # full run
    PYTHONPATH=src python -m benchmarks.bench_scaleout --quick    # CI smoke
    PYTHONPATH=src python -m benchmarks.bench_scaleout --check    # correctness only
"""

from __future__ import annotations

import argparse
import os
import platform
import statistics
import sys
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.core import FFSVAConfig, assert_stage_counts_equal, build_trace
from repro.core.pipeline import _sdd_evaluate
from repro.models import ModelZoo
from repro.models.snm import FusedSNM
from repro.nn import TrainConfig
from repro.runtime import ProcPool, ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

from .bench_hotpath import median_pair_ms
from .common import print_table, record_bench

#: Stream fan-out for the pool sweep (the acceptance scenario: 8 streams'
#: SDD work, drained by 1, 2, then 4 workers).
N_STREAMS = 8

#: SDD's fixed batch rule size (``sdd_spec().batch.size``).
SDD_BATCH = 16

#: Worker counts swept by the SDD throughput measurement.
WORKER_COUNTS = (1, 2, 4)


def _trained_fleet(quick: bool):
    """Two trained jackson streams plus their traces (one model zoo)."""
    n_frames = 120 if quick else 240
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), n_frames, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=100,
            stride=2,
            train_config=TrainConfig(epochs=4, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


def _replicated(streams, zoo, n: int):
    """``n`` stream contexts cycling over the trained streams' bundles."""
    reps = [streams[i % len(streams)] for i in range(n)]
    bundles = [zoo[s.stream_id] for s in reps]
    return reps, bundles


def _sdd_work_items(streams, n_batches: int):
    """Per-stream SDD batches: ``(pixels, stream_index)`` pairs, 8 streams.

    Mirrors the runtime's dispatch shape — SDD is ``per_stream``, so every
    batch carries frames of exactly one stream.
    """
    reps = [streams[i % len(streams)] for i in range(N_STREAMS)]
    items = []
    for si, stream in enumerate(reps):
        for b in range(n_batches):
            idx = [(b * SDD_BATCH + k) % len(stream) for k in range(SDD_BATCH)]
            pixels = np.stack([stream.pixels(i) for i in idx])
            items.append((np.ascontiguousarray(pixels), si))
    return items


# ---------------------------------------------------------------------------
# SDD pool sweep
# ---------------------------------------------------------------------------
def check_sdd_pool(streams, zoo) -> bool:
    """Pool pass masks must equal inline evaluation exactly."""
    _, bundles = _replicated(streams, zoo, N_STREAMS)
    config = FFSVAConfig()
    items = _sdd_work_items(streams, n_batches=2)
    slot_bytes = SDD_BATCH * max(s.shape[0] * s.shape[1] for s in streams) * 8
    pool = ProcPool(
        "sdd", _sdd_evaluate, bundles, zoo, config, 2, slot_bytes=slot_bytes
    )
    try:
        for pixels, si in items:
            want, _ = _sdd_evaluate(pixels, [bundles[si]], zoo, config)
            got, _, _ = pool.run_batch(pixels, [si] * len(pixels), None)
            if not np.array_equal(np.asarray(got), np.asarray(want)):
                return False
    finally:
        pool.shutdown()
    return True


def _timed_drain(items, submit, concurrency: int) -> float:
    """Wall seconds to push every item through ``submit`` with N dispatchers."""
    abort = threading.Event()
    t0 = time.perf_counter()
    with ThreadPoolExecutor(max_workers=concurrency) as ex:
        futs = [ex.submit(submit, pixels, si, abort) for pixels, si in items]
        for f in futs:
            f.result()
    return time.perf_counter() - t0


def sweep_sdd_pool(streams, zoo, quick: bool) -> dict:
    """SDD throughput at 8 streams, threads vs process pool, 1/2/4 workers."""
    _, bundles = _replicated(streams, zoo, N_STREAMS)
    config = FFSVAConfig()
    n_batches = 3 if quick else 10
    reps = 1 if quick else 3
    items = _sdd_work_items(streams, n_batches=n_batches)
    total_frames = len(items) * SDD_BATCH
    slot_bytes = SDD_BATCH * max(s.shape[0] * s.shape[1] for s in streams) * 8

    def inline_submit(pixels, si, abort):
        return _sdd_evaluate(pixels, [bundles[si]], zoo, config)

    sweep: dict[str, dict] = {}
    rows = []
    for workers in WORKER_COUNTS:
        thread_times, pool_times = [], []
        for _ in range(reps):
            thread_times.append(_timed_drain(items, inline_submit, workers))
            pool = ProcPool(
                "sdd", _sdd_evaluate, bundles, zoo, config, workers,
                slot_bytes=slot_bytes,
            )
            try:
                pool_times.append(
                    _timed_drain(
                        items,
                        lambda px, si, ab: pool.run_batch(px, [si] * len(px), ab),
                        workers,
                    )
                )
            finally:
                pool.shutdown()
        t_thread = statistics.median(thread_times)
        t_pool = statistics.median(pool_times)
        thread_fps = total_frames / t_thread
        pool_fps = total_frames / t_pool
        sweep[str(workers)] = {
            "thread_fps": round(thread_fps, 1),
            "process_fps": round(pool_fps, 1),
            "process_over_thread": round(pool_fps / thread_fps, 3),
        }
        rows.append([f"{workers} worker(s)", thread_fps, pool_fps, pool_fps / thread_fps])
    print_table(
        f"SDD throughput, {N_STREAMS} streams x {total_frames} frames (FPS)",
        ["workers", "thread", "process", "proc/thread"],
        rows,
    )
    one = sweep[str(WORKER_COUNTS[0])]["process_fps"]
    four = sweep[str(WORKER_COUNTS[-1])]["process_fps"]
    return {
        "n_streams": N_STREAMS,
        "batch_n": SDD_BATCH,
        "total_frames": total_frames,
        "workers": sweep,
        "pool_scaling_1_to_4": round(four / one, 3) if one else None,
    }


# ---------------------------------------------------------------------------
# SNM fusion
# ---------------------------------------------------------------------------
def _mega_batch(streams, per_stream: int):
    """A mixed mega-batch interleaving ``N_STREAMS`` streams' frames."""
    reps = [streams[i % len(streams)] for i in range(N_STREAMS)]
    frames, sidx = [], []
    for k in range(per_stream):
        for si, stream in enumerate(reps):
            frames.append(stream.pixels((k * N_STREAMS + si) % len(stream)))
            sidx.append(si)
    return np.stack(frames), np.asarray(sidx, dtype=np.intp)


def _per_stream_proba(snms, pixels, sidx):
    out = np.empty(len(pixels), dtype=np.float32)
    for k in np.unique(sidx):
        sel = np.nonzero(sidx == k)[0]
        out[sel] = snms[int(k)].predict_proba(pixels[sel])
    return out


def check_snm_fusion(streams, zoo) -> bool:
    """Fused probabilities and pass masks must be bit-identical."""
    _, bundles = _replicated(streams, zoo, N_STREAMS)
    snms = [b.snm for b in bundles]
    fused = FusedSNM(snms)
    pixels, sidx = _mega_batch(streams, per_stream=5)
    got = fused.predict_proba(pixels, sidx)
    want = _per_stream_proba(snms, pixels, sidx)
    if not np.array_equal(got, want):
        return False
    for degree in (0.3, 1.0):
        want_pass = np.empty(len(pixels), dtype=bool)
        for k in np.unique(sidx):
            sel = np.nonzero(sidx == k)[0]
            want_pass[sel] = snms[int(k)].passes(want[sel], degree)
        if not np.array_equal(fused.passes(got, sidx, degree), want_pass):
            return False
    # Second call exercises the post-self-check steady state.
    return np.array_equal(fused.predict_proba(pixels, sidx), want)


def time_snm_fusion(streams, zoo, quick: bool) -> dict:
    _, bundles = _replicated(streams, zoo, N_STREAMS)
    snms = [b.snm for b in bundles]
    fused = FusedSNM(snms)
    pixels, sidx = _mega_batch(streams, per_stream=5)
    before, after = median_pair_ms(
        lambda: _per_stream_proba(snms, pixels, sidx),
        lambda: fused.predict_proba(pixels, sidx),
        reps=20 if quick else 80,
    )
    speedup = before / after if after > 0 else float("inf")
    print_table(
        f"SNM mega-batch, {len(pixels)} frames x {N_STREAMS} streams (median ms)",
        ["case", "before", "after", "speedup"],
        [["snm fused forward", before, after, speedup]],
    )
    return {
        "mega_batch": len(pixels),
        "n_streams": N_STREAMS,
        "per_stream_ms": round(before, 4),
        "fused_ms": round(after, 4),
        "speedup": round(speedup, 2),
    }


# ---------------------------------------------------------------------------
# end-to-end
# ---------------------------------------------------------------------------
def run_e2e(streams, traces, zoo) -> tuple[dict | None, str | None]:
    """Full pipeline with both features on: counters must match the
    simulator, outcomes must match the plain threaded path."""
    scale = FFSVAConfig(executor="process", num_sdd_procs=2, snm_fusion=True)
    scale_pipe = ThreadedPipeline(streams, zoo, scale)
    m_real = scale_pipe.run()
    m_sim = PipelineSimulator(traces, scale, online=False).run()
    try:
        assert_stage_counts_equal(m_real, m_sim)
    except AssertionError as exc:
        return None, f"threaded-vs-simulator counters diverge: {exc}"

    base_pipe = ThreadedPipeline(streams, zoo, FFSVAConfig())
    base_pipe.run()

    def outcome_set(pipe):
        return sorted(
            (o.stream_id, o.index, o.stage, o.ref_count) for o in pipe.outcomes
        )

    if outcome_set(scale_pipe) != outcome_set(base_pipe):
        return None, "process+fusion outcomes diverge from the plain threaded path"
    fps = m_real.frames_ingested / m_real.duration if m_real.duration else 0.0
    return {
        "n_streams": len(streams),
        "n_frames": m_real.frames_ingested,
        "frames_to_ref": m_real.frames_to_ref,
        "sim_frames_to_ref": m_sim.frames_to_ref,
        "throughput_fps": round(fps, 1),
        "procpool": m_real.extra.get("procpool"),
    }, None


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke: fewer reps/frames")
    ap.add_argument("--check", action="store_true", help="correctness only, no timing")
    ap.add_argument("--no-e2e", action="store_true", help="skip the end-to-end runs")
    ap.add_argument("--out", default=None, help="override the BENCH_scaleout.json path")
    args = ap.parse_args(argv)

    # Say up front what the numbers will mean: worker scaling is a property
    # of the host's core count, and on one CPU the pool cannot win.
    cpus = os.cpu_count() or 1
    print(f"host: {cpus} cpu(s), {platform.machine()}, python {platform.python_version()}")
    if cpus <= 1:
        print(
            "WARNING: single-CPU host — process-pool throughput cannot beat "
            "the inline path here (no second core to scale onto; IPC only "
            "adds overhead).  Correctness checks are unaffected, but treat "
            "every recorded worker-scaling number as a floor, not a curve.",
            file=sys.stderr,
        )

    streams, traces, zoo = _trained_fleet(args.quick)
    failures = []
    if not check_sdd_pool(streams, zoo):
        failures.append("sdd pool masks != inline masks")
    if not check_snm_fusion(streams, zoo):
        failures.append("fused SNM != per-stream sequential prediction")
    e2e = None
    if not args.no_e2e:
        e2e, err = run_e2e(streams, traces, zoo)
        if err:
            failures.append(err)
    if failures:
        print(f"FAIL: scale-out paths diverge from the inline paths: {failures}",
              file=sys.stderr)
        return 1
    n_checks = 2 + (0 if args.no_e2e else 1)
    print(f"correctness: all {n_checks} scale-out paths identical to their inline paths")
    if args.check:
        return 0

    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": cpus,
            "single_cpu_host": cpus <= 1,
            "mode": "quick" if args.quick else "full",
        },
        "sdd_pool_sweep": sweep_sdd_pool(streams, zoo, args.quick),
        "snm_fusion": time_snm_fusion(streams, zoo, args.quick),
    }
    if e2e is not None:
        payload["e2e_process_fused"] = e2e
        print(f"\ne2e process+fused run: {e2e}")
    path = record_bench("scaleout", payload, path=args.out)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
