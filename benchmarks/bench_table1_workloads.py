"""Table 1 — Information of Evaluation Videos.

Regenerates the workload-characterization table: for each of the two
evaluation videos (Jackson: cars at a crossroad, TOR 8%; Coral: people at an
aquarium, TOR 50%) we materialize the synthetic stand-in and measure its
empirical TOR, verifying the generator hits the paper's figures.  The timed
kernel is frame rendering, the substrate every other experiment stands on.
"""

import numpy as np
import pytest

from repro.baseline import baseline_online
from repro.obs import Telemetry
from repro.video import coral, jackson, make_stream

from common import fleet, print_table, record, record_timeseries

PAPER_ROWS = {
    "jackson": {"resolution": "600*400", "object": "Car", "fps": 30, "tor": 0.08},
    "coral": {"resolution": "1280*720", "object": "Person", "fps": 30, "tor": 0.50},
}


@pytest.mark.parametrize("spec_fn", [jackson, coral], ids=["jackson", "coral"])
def test_table1_workloads(benchmark, spec_fn):
    spec = spec_fn()
    stream = make_stream(spec, 4000, seed=0)

    # Timed kernel: rendering a batch of frames.
    ts = np.arange(0, 256)
    benchmark.pedantic(lambda: stream.pixel_batch(ts), rounds=1, iterations=1)

    measured_tor = stream.tor()
    paper = PAPER_ROWS[spec.name]
    rows = [
        [
            spec.name,
            paper["resolution"],
            f"{spec.render_width}*{spec.render_height}",
            paper["object"],
            f"{spec.fps:.0f} FPS",
            paper["tor"],
            measured_tor,
        ]
    ]
    print_table(
        f"Table 1 ({spec.name})",
        ["video", "paper res", "render res", "object", "fps", "paper TOR", "measured TOR"],
        rows,
    )
    record(
        f"table1/{spec.name}",
        {
            "paper_tor": paper["tor"],
            "measured_tor": measured_tor,
            "object": spec.kind,
            "paper_resolution": paper["resolution"],
            "render_resolution": f"{spec.render_width}x{spec.render_height}",
        },
    )

    # Shape: the synthetic workload hits the paper's TOR and object class.
    assert abs(measured_tor - paper["tor"]) < 0.05
    assert spec.kind == paper["object"].lower()
    assert spec.fps == paper["fps"]
    assert len(stream.scenes()) > 0

    # A short telemetry-attached baseline run per workload leaves a
    # queue/utilization time-series behind for the dashboard plane.
    telemetry = Telemetry()
    m_base = baseline_online(
        fleet(2, spec.name, paper["tor"], n_frames=600), telemetry=telemetry
    )
    record_timeseries(f"table1/{spec.name}_baseline", telemetry)
    assert m_base.frames_to_ref > 0
    assert "stage_fps[ref]" in telemetry.sampler.names
