"""Ablation studies for the design choices DESIGN.md calls out.

These go beyond the paper's own figures:

* X1 — feedback-queue depth thresholds: the paper picks (2, 10, 2)
  empirically and warns "too small an threshold may reduce the throughput
  while too large an threshold will increase feasible overloads and
  latency".  We sweep the depths and confirm exactly that trade-off.
* X2 — cascade composition: execute *structurally different* cascades
  (registered in ``repro.core.pipeline.CASCADES``) that drop one or more
  prepositive filters entirely, and measure how much of the end-to-end win
  each stage contributes.  Unlike defeating a filter's selectivity, the
  dropped stage costs nothing — this is the honest accounting of what each
  filter buys net of its own overhead.
* X3 — heterogeneous placement: run SNM/T-YOLO on the same GPU as the
  reference model (single-GPU placement) versus the paper's two-GPU split.
"""

from repro.devices import Placement, standard_server
from repro.obs import Telemetry
from repro.sim import simulate_offline

from common import OPERATING_POINT, fleet, print_table, record, record_timeseries

TOR = 0.203


def test_x1_queue_depth_sweep(benchmark):
    traces = fleet(8, "jackson", TOR)
    depth_sets = {
        "tiny (1,2,1,2)": {"sdd": 1, "snm": 2, "tyolo": 1, "ref": 2},
        "paper (2,10,2,4)": {"sdd": 2, "snm": 10, "tyolo": 2, "ref": 4},
        "huge (16,80,16,32)": {"sdd": 16, "snm": 80, "tyolo": 16, "ref": 32},
    }

    def run(depths, telemetry=None):
        # NumberofObjects=2 keeps the run SNM-bound (see Figure 9's bench)
        # so queue-depth effects on batching are visible.
        cfg = OPERATING_POINT.with_(
            queue_depths=depths, batch_policy="dynamic", number_of_objects=2
        )
        return simulate_offline(traces, cfg, telemetry=telemetry)

    benchmark.pedantic(lambda: run(depth_sets["paper (2,10,2,4)"]), rounds=1, iterations=1)

    rows = []
    results = {}
    for name, depths in depth_sets.items():
        # The paper-depths run carries the telemetry bus so the sweep leaves
        # its queue-depth/utilization traces behind (the ablation is *about*
        # queue dynamics; the depth curves make the trade-off inspectable).
        telemetry = Telemetry() if name.startswith("paper") else None
        m = run(depths, telemetry)
        if telemetry is not None:
            record_timeseries("ablation_x1/paper_depths", telemetry)
        results[name] = m
        rows.append([name, m.throughput_fps, m.frame_latency.mean, m.extra["mean_snm_batch"]])
    print_table(
        "Ablation X1: queue depth thresholds (offline, 8 streams, TOR=0.203)",
        ["depths", "throughput FPS", "mean latency s", "mean SNM batch"],
        rows,
    )
    record(
        "ablation_x1",
        {name: {"fps": m.throughput_fps, "latency": m.frame_latency.mean}
         for name, m in results.items()},
    )

    tiny, paper, huge = results.values()
    # Too-small thresholds strangle batching and cost throughput.
    assert paper.throughput_fps > 1.1 * tiny.throughput_fps
    # Huge thresholds buy little throughput over the paper's settings but
    # inflate latency.
    assert huge.throughput_fps < 1.15 * paper.throughput_fps
    assert huge.frame_latency.mean > paper.frame_latency.mean


def test_x2_cascade_composition(benchmark):
    traces = fleet(2, "jackson", TOR)

    def run(name: str):
        # Each variant is a *real* alternative stage graph executed by the
        # same simulator machinery — the dropped stages do not exist at all.
        return simulate_offline(traces, OPERATING_POINT.with_(cascade=name))

    benchmark.pedantic(lambda: run("ffs-va"), rounds=1, iterations=1)

    variants = ["ffs-va", "no-sdd", "no-snm", "snm-only", "tyolo-only"]
    rows = []
    results = {}
    for name in variants:
        m = run(name)
        m.check_conservation()
        results[name] = m
        terminal_fraction = m.stage_fraction("ref")
        rows.append([name, m.throughput_fps, terminal_fraction])
    print_table(
        "Ablation X2: cascade composition (offline, TOR=0.203)",
        ["cascade", "throughput FPS", "fraction reaching ref"],
        rows,
    )
    record("ablation_x2", {name: m.throughput_fps for name, m in results.items()})

    fps = {name: m.throughput_fps for name, m in results.items()}
    frac = {name: m.stage_fraction("ref") for name, m in results.items()}
    # The full cascade wins: every prepositive filter pays for itself —
    # removing any of them forwards more frames to slower stages.
    full = fps["ffs-va"]
    assert all(full > v for name, v in fps.items() if name != "ffs-va"), fps
    # Structurally, shorter cascades send a larger fraction of the input to
    # the reference model (fewer chances to drop a frame).
    assert frac["no-sdd"] >= frac["ffs-va"]
    assert frac["no-snm"] >= frac["ffs-va"]
    assert frac["snm-only"] >= frac["no-sdd"]
    # And the simulator really executed different graphs, not a defeated
    # version of the same one.
    assert "sdd" not in results["no-sdd"].stages
    assert set(results["snm-only"].stages) == {"snm", "ref"}


def test_x3_placement_ablation(benchmark):
    traces = fleet(2, "jackson", TOR)

    def single_gpu_placement():
        devices = standard_server()
        return Placement(
            devices=devices,
            stage_devices={
                "sdd": ["cpu0"],
                "snm": ["gpu0"],
                "tyolo": ["gpu0"],
                "ref": ["gpu0"],  # everything contends for one GPU
            },
        )

    m_two = benchmark.pedantic(
        lambda: simulate_offline(traces, OPERATING_POINT), rounds=1, iterations=1
    )
    m_one = simulate_offline(traces, OPERATING_POINT, placement=single_gpu_placement())

    print_table(
        "Ablation X3: device placement (offline, TOR=0.203)",
        ["placement", "throughput FPS"],
        [
            ["paper: filters on GPU0, ref alone on GPU1", m_two.throughput_fps],
            ["single GPU for everything", m_one.throughput_fps],
        ],
    )
    record(
        "ablation_x3",
        {"two_gpu_fps": m_two.throughput_fps, "one_gpu_fps": m_one.throughput_fps},
    )
    # Isolating the reference model on its own GPU is a real win.
    assert m_two.throughput_fps > 1.2 * m_one.throughput_fps
