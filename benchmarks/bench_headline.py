"""Section 5.2 headline numbers — offline speedup and online scalability.

Paper claims reproduced here:

* Offline, single stream, TOR ~0.1: FFS-VA reaches 404 FPS, 3x YOLOv2 on
  the same two-GPU box, cutting total execution time by 72.3%.
* Online: up to 30 streams vs the baseline's 4 (7x); see Figure 3's bench
  for the full sweep — here we assert the capacity ratio headline.
* Dynamic batching: ~50% lower latency than the feedback-queue mechanism
  alone for ~16-20% throughput cost (Sections 4.3.2 / 5.2).
"""

import pytest

from repro.baseline import baseline_offline, baseline_online
from repro.core.admission import max_realtime_streams
from repro.obs import Telemetry
from repro.sim import simulate_offline, simulate_online

from common import (
    ACCURACY_POINT,
    OPERATING_POINT,
    fleet,
    print_table,
    record,
    record_metrics,
    record_timeseries,
)

TOR = 0.103


def test_headline_offline_speedup(benchmark):
    """S1: offline analysis of one stream, FFS-VA vs YOLOv2-everywhere."""
    traces = fleet(1, "jackson", TOR)

    m_ffs = benchmark.pedantic(
        lambda: simulate_offline(traces, OPERATING_POINT), rounds=1, iterations=1
    )
    # The non-benchmarked accuracy-point run carries the telemetry bus, so
    # the suite leaves a queue-depth/utilization record behind without
    # perturbing the timed lambda above.
    telemetry = Telemetry()
    m_ffs_acc = simulate_offline(traces, ACCURACY_POINT, telemetry=telemetry)
    tel_base = Telemetry()
    m_base = baseline_offline(traces, telemetry=tel_base)

    speedup = m_ffs.throughput_fps / m_base.throughput_fps
    speedup_acc = m_ffs_acc.throughput_fps / m_base.throughput_fps
    time_cut = 1.0 - m_base.throughput_fps / m_ffs.throughput_fps

    print_table(
        "Headline offline (single stream, TOR=0.103)",
        ["system", "FPS", "vs baseline"],
        [
            ["FFS-VA (throughput point)", m_ffs.throughput_fps, f"{speedup:.2f}x"],
            ["FFS-VA (accuracy point)", m_ffs_acc.throughput_fps, f"{speedup_acc:.2f}x"],
            ["YOLOv2 x2 GPUs", m_base.throughput_fps, "1.00x"],
        ],
    )
    print("paper: 404 FPS = 3x, execution time -72.3%")
    record(
        "headline/offline",
        {
            "ffsva_fps": m_ffs.throughput_fps,
            "ffsva_accuracy_point_fps": m_ffs_acc.throughput_fps,
            "baseline_fps": m_base.throughput_fps,
            "speedup": speedup,
            "speedup_accuracy_point": speedup_acc,
            "paper": {"ffsva_fps": 404, "speedup": 3.0, "time_cut": 0.723},
        },
    )
    record_metrics("headline/offline_accuracy_point", m_ffs_acc)
    record_timeseries("headline/offline_accuracy_point", telemetry)
    # The baseline's series lands beside FFS-VA's, so the two runs' queue
    # and utilization traces can be plotted on one time axis.
    record_metrics("headline/offline_baseline", m_base)
    record_timeseries("headline/offline_baseline", tel_base)

    # Shape: a multi-x offline win at low TOR at either operating point.
    assert speedup >= 2.5
    assert speedup_acc >= 2.0
    assert time_cut > 0.5


def test_headline_online_capacity_ratio(benchmark):
    """S2: online capacity, FFS-VA vs baseline (paper: 30 vs 4 = 7x)."""

    def run_ffs(n):
        return simulate_online(fleet(n, "jackson", TOR, n_frames=1800), OPERATING_POINT)

    def run_base(n):
        return baseline_online(fleet(n, "jackson", TOR, n_frames=1800))

    benchmark.pedantic(lambda: run_ffs(8), rounds=1, iterations=1)
    best_ffs, _ = max_realtime_streams(run_ffs, n_max=48)
    best_base, _ = max_realtime_streams(run_base, n_max=12)
    ratio = best_ffs / max(best_base, 1)

    print(
        f"\nonline capacity: FFS-VA={best_ffs} streams, baseline={best_base} "
        f"-> {ratio:.1f}x (paper: 30 vs 4 = 7x)"
    )
    record(
        "headline/online",
        {
            "ffsva_streams": best_ffs,
            "baseline_streams": best_base,
            "ratio": ratio,
            "paper": {"ffsva_streams": 30, "baseline_streams": 4, "ratio": 7.0},
        },
    )
    assert ratio >= 4.0


def test_headline_dynamic_batch_tradeoff(benchmark):
    """Dynamic batching: large latency cut for a bounded throughput cost.

    The paper quantifies the trade-off as -50% average latency for -16%
    throughput.  The latency side shows online (frames stop waiting for
    batch mates); the throughput side shows offline in the SNM-bound
    regime, where dynamic/depth-capped batches amortize the model-load
    overhead less than full static batches.  (See EXPERIMENTS.md: in our
    simulator the throughput cost is milder, ~5%, because saturated SNM
    queues keep dynamic batches near the depth cap.)
    """
    traces = fleet(10, "jackson", 0.203)
    snm_bound = OPERATING_POINT.with_(number_of_objects=2, batch_size=30)
    fixed = snm_bound.with_(batch_policy="static")
    dynamic = snm_bound.with_(batch_policy="dynamic")

    m_fix_on = simulate_online(traces, fixed)
    m_dy_on = benchmark.pedantic(
        lambda: simulate_online(traces, dynamic), rounds=1, iterations=1
    )
    m_fix_off = simulate_offline(traces, fixed)
    m_dy_off = simulate_offline(traces, dynamic)

    lat_cut = 1.0 - m_dy_on.frame_latency.mean / m_fix_on.frame_latency.mean
    tput_cost = 1.0 - m_dy_off.throughput_fps / m_fix_off.throughput_fps
    print(
        f"\ndynamic vs fixed batching (10 streams, TOR 0.203, BatchSize 30): "
        f"latency -{lat_cut:.0%}, offline throughput -{tput_cost:.0%} "
        "(paper: -50% / -16%)"
    )
    record(
        "headline/dynamic_tradeoff",
        {
            "latency_cut": lat_cut,
            "throughput_cost": tput_cost,
            "fixed_latency": m_fix_on.frame_latency.mean,
            "dynamic_latency": m_dy_on.frame_latency.mean,
            "fixed_fps": m_fix_off.throughput_fps,
            "dynamic_fps": m_dy_off.throughput_fps,
            "paper": {"latency_cut": 0.5, "throughput_cost": 0.16},
        },
    )
    assert lat_cut > 0.3  # dynamic clearly cuts latency (paper: ~50%)
    assert 0.0 <= tput_cost < 0.3  # at a bounded throughput cost (paper: 16%)
