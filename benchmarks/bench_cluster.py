"""Cluster serving-plane sweep: instances x streams under a skewed load.

Runs the simulated cluster (:class:`repro.sim.ClusterSimulator` — virtual
clocks, so the numbers are host-independent and the sweep is cheap) over
fleets that cycle hot / idle / warm / idle streams, with the T-YOLO cost
pinned so that any two hot-or-warm streams overload one instance but each
alone fits.  Round-robin placement therefore concentrates load on the
low-index instances and the router must shed/re-forward to finish.

Per cell the sweep records the router's work (moves, vetoes, epochs), the
virtual makespan, and the final per-instance offered-frame spread — the
quantity the paper's Figure 6b balance experiment reports.  Shape
assertions, not absolute numbers, gate the run:

* frame conservation holds in every cell (offered == planned);
* a single instance never moves anything (there is nowhere to go);
* one stream per instance never moves anything (nothing may leave an
  instance streamless);
* every overloaded multi-instance cell re-forwards at least once.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_cluster            # full run
    PYTHONPATH=src python -m benchmarks.bench_cluster --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

import numpy as np

from repro.core import FFSVAConfig
from repro.devices.costs import CostModel
from repro.sim import ClusterSimulator

from .common import print_table, record_bench

sys.path.insert(0, str(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))
from tests.helpers import make_synth_trace  # noqa: E402

#: Cumulative (sdd, snm, tyolo) survival fractions, cycled over the fleet.
#: Two hot-or-warm streams exceed a 35 frames/s T-YOLO; each alone fits.
PATTERN = (
    ("hot", (0.95, 0.9, 0.4)),
    ("idle", (0.05, 0.02, 0.01)),
    ("warm", (0.55, 0.5, 0.2)),
    ("idle", (0.05, 0.02, 0.01)),
)

SLOW_TYOLO = CostModel(tyolo_infer=1.0 / 35)

#: (instances, streams) cells.  Cells where round-robin pairs two busy
#: streams on instance 0 are expected to re-forward.
CELLS = ((1, 4), (2, 4), (2, 8), (4, 4), (4, 8))


def skewed_fleet(n_streams: int, n_frames: int):
    return [
        make_synth_trace(
            n_frames,
            *PATTERN[i % len(PATTERN)][1],
            seed=1 + i,
            stream_id=f"s{i}-{PATTERN[i % len(PATTERN)][0]}",
        )
        for i in range(n_streams)
    ]


def cluster_config(n_instances: int) -> FFSVAConfig:
    return FFSVAConfig(
        telemetry=True,
        telemetry_sample_interval=0.02,
        cluster_instances=n_instances,
        cluster_reserve_slots=2,
        router_epoch=0.25,
        admission_depth_fraction=0.4,
        admission_window=0.4,
        admission_hysteresis=2,
        admission_tyolo_fps=60.0,
        stream_fps=30.0,
    )


def expect_moves(n_instances: int, n_streams: int) -> bool:
    """Does round-robin pair two busy streams on some instance, with a
    second stream left to keep the shedder non-empty and a target to admit?"""
    if n_instances < 2 or n_streams // n_instances < 2:
        return False
    busy_per_inst0 = sum(
        1
        for i in range(0, n_streams, n_instances)
        if PATTERN[i % len(PATTERN)][0] != "idle"
    )
    return busy_per_inst0 >= 2


def run_cell(n_instances: int, n_streams: int, n_frames: int) -> dict:
    traces = skewed_fleet(n_streams, n_frames)
    sim = ClusterSimulator(traces, cluster_config(n_instances), SLOW_TYOLO)
    res = sim.run()
    planned = n_streams * n_frames
    offered = [m.frames_offered for m in res.instances]
    summary = sim.router.summary()
    return {
        "instances": n_instances,
        "streams": n_streams,
        "planned": planned,
        "offered": offered,
        "conserved": res.total_offered == planned,
        "moves": len(res.moves),
        "move_labels": [list(m) for m in res.moves],
        "vetoed": summary["vetoed"],
        "epochs": summary["epochs"],
        "virtual_time": round(res.virtual_time, 2),
        "spread": max(offered) - min(offered),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke: fewer frames")
    ap.add_argument("--out", default=None, help="override the BENCH_cluster.json path")
    args = ap.parse_args(argv)
    n_frames = 240 if args.quick else 600

    cells, rows, failures = [], [], []
    for n_instances, n_streams in CELLS:
        cell = run_cell(n_instances, n_streams, n_frames)
        cells.append(cell)
        rows.append(
            [
                f"{n_instances}x{n_streams}",
                cell["moves"],
                cell["vetoed"],
                cell["virtual_time"],
                cell["spread"],
                "yes" if cell["conserved"] else "NO",
            ]
        )
        if not cell["conserved"]:
            failures.append(
                f"{n_instances}x{n_streams}: offered {sum(cell['offered'])} "
                f"!= planned {cell['planned']}"
            )
        want_moves = expect_moves(n_instances, n_streams)
        if want_moves and cell["moves"] == 0:
            failures.append(f"{n_instances}x{n_streams}: overloaded but never moved")
        if not want_moves and cell["moves"] > 0:
            failures.append(
                f"{n_instances}x{n_streams}: moved {cell['move_labels']} "
                "with no legal shed available"
            )

    print_table(
        f"cluster sweep, {n_frames} frames/stream (virtual clocks)",
        ["inst x streams", "moves", "vetoed", "v-time", "spread", "conserved"],
        rows,
    )
    if failures:
        print(f"FAIL: {failures}", file=sys.stderr)
        return 1

    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": os.cpu_count(),
            "mode": "quick" if args.quick else "full",
            "n_frames": n_frames,
        },
        "cells": cells,
    }
    path = record_bench("cluster", payload, path=args.out)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
