"""Mosaic consolidation benchmarks: object-level T-YOLO batching.

PR 8's mosaic path changes *how many* detector passes a fused T-YOLO batch
costs, not *what* it computes, so this suite gates on exact parity and
records the consolidation win:

* **Whole-frame fallback parity** — every frame packed as a full-grid
  region (the no-background / high-coverage fallback): mosaic detections
  and counts must equal :meth:`GridDetector.detect_batch` /
  :meth:`~GridDetector.count_batch` exactly.
* **ROI parity** — regions proposed from the response signal, packed onto
  shared canvases: counts must match per-frame exactly and detection F1
  must be 1.0 (boxes, confidences, and kinds round-trip through
  pack -> detect -> unmap).
* **End-to-end** — the full threaded pipeline with ``tyolo_mosaic=True``
  cross-checked against the simulator (``assert_stage_counts_equal``) and
  against the plain per-frame threaded path (identical frame outcomes).

The sweep runs the DES over streams x activity grids and compares
detector-stage throughput (frames through T-YOLO per busy second) between
the per-frame SHARED_RR path and the mosaic path, recording mean canvas
occupancy and spill counts alongside.  Timings land in
``BENCH_mosaic.json`` at the repo root; correctness is the only thing that
can fail the run.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_mosaic            # full run
    PYTHONPATH=src python -m benchmarks.bench_mosaic --quick    # CI smoke
    PYTHONPATH=src python -m benchmarks.bench_mosaic --check    # correctness only
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

import numpy as np

from repro.core import FFSVAConfig, assert_stage_counts_equal, build_trace
from repro.core.pipeline import TYOLO
from repro.models import ModelZoo
from repro.models.mosaic import (
    Region,
    effective_regions,
    mosaic_counts,
    mosaic_detections,
    plan_mosaics,
)
from repro.nn import TrainConfig
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

from .common import OPERATING_POINT, fleet, print_table, record_bench

#: Stream counts swept by the consolidation measurement (the acceptance
#: scenario is 8+ streams of sparse activity).
SWEEP_STREAMS = (2, 4, 8, 12)

#: Activity levels: target-object ratio of the synthetic clips.  Sparse
#: traffic yields small response blobs (many regions per canvas); busy
#: traffic yields large ones (fewer regions per canvas, more canvases).
ACTIVITY = {"sparse": 0.103, "busy": 0.45}

#: Batching regimes swept.  ``static16`` saturates the fused stage with
#: fixed 16-frame mega-batches — the consolidation headline, since a
#: canvas amortizes across everything packed onto it.  ``feedback10`` is
#: the paper's operating point; its arrival-limited batches (often 2-4
#: frames when the detector outruns the upstream filters) bound how much
#: one canvas can absorb, so the win there is structurally smaller.
REGIMES = {
    "static16": OPERATING_POINT.with_(batch_policy="static", batch_size=16),
    "feedback10": OPERATING_POINT,
}


def _trained_fleet(quick: bool):
    """Two trained jackson streams plus their traces (one model zoo)."""
    n_frames = 120 if quick else 240
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), n_frames, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=100,
            stride=2,
            train_config=TrainConfig(epochs=4, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


def _mixed_batch(streams, zoo, per_stream: int):
    """A cross-stream batch of pixels with per-frame response cells."""
    det = zoo.tyolo.detector
    pixels, cells, refs = [], [], []
    for si, stream in enumerate(streams):
        bg = zoo[stream.stream_id].background
        idx = [(3 * k + si) % len(stream) for k in range(per_stream)]
        px = np.stack([stream.pixels(i) for i in idx])
        pixels.append(px)
        cells.append(det.response_cells(px, bg))
        refs.append((px, bg))
    return np.concatenate(cells), refs


def _per_frame_reference(zoo, refs):
    """Per-frame detections and counts, stream by stream (the baseline)."""
    det = zoo.tyolo.detector
    dets, counts = [], []
    for px, bg in refs:
        dets.extend(det.detect_batch(px, bg))
        counts.extend(det.count_batch(px, bg).tolist())
    return dets, np.asarray(counts)


def _det_key(d):
    return (round(d.x0, 6), round(d.y0, 6), round(d.x1, 6), round(d.y1, 6),
            round(d.confidence, 6), d.kind)


def _detection_f1(got: list[list], want: list[list]) -> float:
    """Exact-match detection F1 over per-frame lists."""
    tp = fp = fn = 0
    for g, w in zip(got, want):
        gs, ws = {_det_key(d) for d in g}, {_det_key(d) for d in w}
        tp += len(gs & ws)
        fp += len(gs - ws)
        fn += len(ws - gs)
    if tp == 0:
        return 0.0 if (fp or fn) else 1.0
    return 2 * tp / (2 * tp + fp + fn)


def _mosaic_pass(det, cells, regions_per_frame, config, frame_hw):
    """Pack the given per-frame regions and run the canvas detector."""
    regions = [
        Region(i, int(b[0]), int(b[1]), int(b[2]), int(b[3]))
        for i, boxes in enumerate(regions_per_frame)
        for b in boxes
    ]
    plan = plan_mosaics(regions, config.mosaic_canvas, config.mosaic_gutter)
    dets = mosaic_detections(det, plan, cells, frame_hw, len(cells))
    counts = mosaic_counts(det, plan, cells, len(cells))
    return plan, dets, counts


# ---------------------------------------------------------------------------
# parity checks
# ---------------------------------------------------------------------------
def check_whole_frame_parity(streams, zoo) -> bool:
    """Full-grid fallback regions must reproduce per-frame results exactly."""
    det = zoo.tyolo.detector
    config = FFSVAConfig(tyolo_mosaic=True)
    cells, refs = _mixed_batch(streams, zoo, per_stream=8)
    frame_hw = refs[0][0].shape[-2:]
    whole = [effective_regions(None, det.grid) for _ in range(len(cells))]
    _, dets, counts = _mosaic_pass(det, cells, whole, config, frame_hw)
    want_dets, want_counts = _per_frame_reference(zoo, refs)
    if not np.array_equal(counts, want_counts):
        return False
    return _detection_f1(dets, want_dets) == 1.0


def check_roi_parity(streams, zoo) -> bool:
    """Response-proposed ROIs must pack and unmap to identical results."""
    det = zoo.tyolo.detector
    config = FFSVAConfig(tyolo_mosaic=True)
    cells, refs = _mixed_batch(streams, zoo, per_stream=8)
    frame_hw = refs[0][0].shape[-2:]
    proposed = det.propose_regions(cells)
    rois = [effective_regions(p, det.grid) for p in proposed]
    plan, dets, counts = _mosaic_pass(det, cells, rois, config, frame_hw)
    want_dets, want_counts = _per_frame_reference(zoo, refs)
    if not np.array_equal(counts, want_counts):
        return False
    if _detection_f1(dets, want_dets) != 1.0:
        return False
    # The consolidation must actually consolidate: fewer canvases than
    # frames for realistic traffic (otherwise the path is pointless).
    return plan.n_canvases < len(cells)


def run_e2e(streams, traces, zoo) -> tuple[dict | None, str | None]:
    """Full pipeline with the mosaic on: counters must match the simulator,
    outcomes must match the plain per-frame threaded path."""
    mosaic_cfg = FFSVAConfig(tyolo_mosaic=True)
    mosaic_pipe = ThreadedPipeline(streams, zoo, mosaic_cfg)
    m_real = mosaic_pipe.run()
    m_sim = PipelineSimulator(traces, mosaic_cfg, online=False).run()
    try:
        assert_stage_counts_equal(m_real, m_sim)
    except AssertionError as exc:
        return None, f"threaded-vs-simulator counters diverge: {exc}"

    base_pipe = ThreadedPipeline(streams, zoo, FFSVAConfig())
    base_pipe.run()

    def outcome_set(pipe):
        return sorted(
            (o.stream_id, o.index, o.stage, o.ref_count) for o in pipe.outcomes
        )

    if outcome_set(mosaic_pipe) != outcome_set(base_pipe):
        return None, "mosaic outcomes diverge from the per-frame threaded path"
    return {
        "n_streams": len(streams),
        "n_frames": m_real.frames_ingested,
        "frames_to_ref": m_real.frames_to_ref,
        "sim_frames_to_ref": m_sim.frames_to_ref,
        "mosaic": m_real.extra.get("mosaic"),
        "sim_mosaic": m_sim.extra.get("mosaic"),
    }, None


# ---------------------------------------------------------------------------
# consolidation sweep (DES)
# ---------------------------------------------------------------------------
def _detector_stage_fps(traces, config) -> tuple[float, dict | None]:
    """Frames through T-YOLO per busy second, plus mosaic stats if any."""
    sim = PipelineSimulator(traces, config, online=False, record_events=True)
    m = sim.run()
    busy = 0.0
    frames = 0
    for start, end, _dev, stage, _sidx, n_in, _n_pass in sim.events:
        if stage == TYOLO:
            busy += end - start
            frames += n_in
    fps = frames / busy if busy > 0 else 0.0
    return fps, m.extra.get("mosaic")


def sweep_consolidation(quick: bool) -> dict:
    """Detector-stage throughput, per-frame vs mosaic, streams x activity."""
    stream_counts = (2, 8) if quick else SWEEP_STREAMS
    n_frames = 200 if quick else 600
    regimes = {"static16": REGIMES["static16"]} if quick else REGIMES
    sweep: dict[str, dict] = {}
    rows = []
    for regime, base in regimes.items():
        mosaic_cfg = base.with_(tyolo_mosaic=True)
        for label, tor in ACTIVITY.items():
            for n in stream_counts:
                traces = fleet(n, "jackson", tor, n_frames=n_frames)
                fps_pf, _ = _detector_stage_fps(traces, base)
                fps_mo, stats = _detector_stage_fps(traces, mosaic_cfg)
                speedup = fps_mo / fps_pf if fps_pf > 0 else 0.0
                sweep[f"{regime}/{label}/{n}"] = {
                    "regime": regime,
                    "activity": label,
                    "tor": tor,
                    "n_streams": n,
                    "perframe_fps": round(fps_pf, 1),
                    "mosaic_fps": round(fps_mo, 1),
                    "speedup": round(speedup, 2),
                    "fill_ratio": round(stats["fill_ratio"], 4) if stats else None,
                    "regions_per_canvas": (
                        round(stats["regions_per_canvas"], 2) if stats else None
                    ),
                    "canvases": stats["canvases"] if stats else None,
                    "spills": stats["spills"] if stats else None,
                }
                rows.append([
                    regime, label, n, fps_pf, fps_mo, speedup,
                    stats["fill_ratio"] if stats else 0.0,
                    stats["spills"] if stats else 0,
                ])
    print_table(
        f"Detector-stage FPS, per-frame vs mosaic ({n_frames} frames/stream)",
        ["regime", "activity", "streams", "perframe", "mosaic", "speedup",
         "fill", "spills"],
        rows,
    )
    key = f"static16/sparse/{max(stream_counts)}"
    return {
        "n_frames": n_frames,
        "grid": sweep,
        "headline_speedup": sweep[key]["speedup"],
        "headline_scenario": key,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke: fewer reps/frames")
    ap.add_argument("--check", action="store_true", help="correctness only, no timing")
    ap.add_argument("--no-e2e", action="store_true", help="skip the end-to-end runs")
    ap.add_argument("--out", default=None, help="override the BENCH_mosaic.json path")
    args = ap.parse_args(argv)

    cpus = os.cpu_count() or 1
    print(f"host: {cpus} cpu(s), {platform.machine()}, python {platform.python_version()}")

    streams, traces, zoo = _trained_fleet(args.quick)
    failures = []
    if not check_whole_frame_parity(streams, zoo):
        failures.append("whole-frame mosaic != per-frame detections/counts")
    if not check_roi_parity(streams, zoo):
        failures.append("ROI mosaic != per-frame detections/counts")
    e2e = None
    if not args.no_e2e:
        e2e, err = run_e2e(streams, traces, zoo)
        if err:
            failures.append(err)
    if failures:
        print(f"FAIL: mosaic path diverges from the per-frame path: {failures}",
              file=sys.stderr)
        return 1
    n_checks = 2 + (0 if args.no_e2e else 1)
    print(f"correctness: all {n_checks} mosaic paths identical to the per-frame paths")
    if args.check:
        return 0

    sweep = sweep_consolidation(args.quick)
    if sweep["headline_speedup"] < 2.0:
        # Data, not a gate (cost-model calibration can move absolutes), but
        # the consolidation claim is the point of the path — say so loudly.
        print(
            f"WARNING: headline mosaic speedup {sweep['headline_speedup']}x "
            f"at {sweep['headline_scenario']} is below the 2x target",
            file=sys.stderr,
        )
    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": cpus,
            "mode": "quick" if args.quick else "full",
        },
        "consolidation_sweep": sweep,
    }
    if e2e is not None:
        payload["e2e_mosaic"] = e2e
        print(f"\ne2e mosaic run: {e2e}")
    path = record_bench("mosaic", payload, path=args.out)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
