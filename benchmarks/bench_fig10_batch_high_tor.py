"""Figure 10 — batch mechanisms at TOR = 0.980 (10 streams).

"In this case, most of the frames are eventually executed by T-YOLO no
matter what the BatchSize value is.  Therefore, BatchSize has little effect
on the throughput in this case", while the latency trends mirror Figure 9:
fixed-batch mechanisms wait for frames, dynamic does not.
"""

import pytest

from repro.sim import simulate_offline, simulate_online

from common import OPERATING_POINT, fleet, print_table, record

TOR = 0.98
BATCHES = (1, 4, 10, 20, 30)
# Five streams: right at the high-TOR capacity limit (Figure 4's 5-6), so
# latency reflects marginal queueing rather than hopeless overload.
N_STREAMS = 5


def _cfg(policy, batch):
    return OPERATING_POINT.with_(batch_policy=policy, batch_size=batch)


@pytest.fixture(scope="module")
def traces():
    return fleet(N_STREAMS, "jackson", TOR, n_frames=1500)


def test_fig10a_throughput_insensitive_to_batch(benchmark, traces):
    benchmark.pedantic(
        lambda: simulate_offline(traces, _cfg("dynamic", 10)), rounds=1, iterations=1
    )
    data = {p: [] for p in ("static", "feedback", "dynamic")}
    for b in BATCHES:
        for policy in data:
            data[policy].append(simulate_offline(traces, _cfg(policy, b)).throughput_fps)
    rows = [
        [b, data["static"][i], data["feedback"][i], data["dynamic"][i]]
        for i, b in enumerate(BATCHES)
    ]
    print_table(
        "Figure 10a: offline throughput (FPS) vs BatchSize, TOR=0.980",
        ["BatchSize", "static", "feedback", "dynamic"],
        rows,
    )
    record("fig10a", {"batch": list(BATCHES), **data,
                      "paper": "BatchSize has little effect at high TOR"})

    # Shape: T-YOLO dominates, so throughput varies only mildly with batch
    # size (well under the ~2x swing of the low-TOR case).
    for policy, series in data.items():
        assert max(series) < 1.35 * min(series), policy


def test_fig10b_latency_vs_batch(benchmark, traces):
    benchmark.pedantic(
        lambda: simulate_online(traces, _cfg("dynamic", 10)), rounds=1, iterations=1
    )
    data = {p: [] for p in ("static", "feedback", "dynamic")}
    for b in BATCHES:
        for policy in data:
            data[policy].append(simulate_online(traces, _cfg(policy, b)).frame_latency.mean)
    rows = [
        [b, data["static"][i], data["feedback"][i], data["dynamic"][i]]
        for i, b in enumerate(BATCHES)
    ]
    print_table(
        "Figure 10b: online mean frame latency (s) vs BatchSize, TOR=0.980",
        ["BatchSize", "static", "feedback", "dynamic"],
        rows,
    )
    record("fig10b", {"batch": list(BATCHES), **data,
                      "paper": "same queue management -> latency trend mirrors Fig 9b"})

    # Shape: latency is governed by T-YOLO queueing, so the mechanisms sit
    # close together ("not much difference ... but the dynamic batch
    # mechanism has a lower average latency"); dynamic never blows up with
    # BatchSize and ends at or below the fixed-batch mechanisms.
    for i in range(1, len(BATCHES)):
        assert data["dynamic"][i] <= data["static"][i] * 1.15
        assert data["dynamic"][i] <= data["feedback"][i] * 1.05
    assert max(data["dynamic"][1:]) < min(data["dynamic"][1:]) + 2.0
