"""Scale-out study — the Section 4.3.2 note made concrete.

"Although we use two GPUs as a representation in the design, tasks of SNM
or T-YOLO can be reasonably distributed across multiple GPUs to increase
the overall performance in a single FFS-VA instance."  We build a four-GPU
server placement (two filter GPUs, two reference GPUs) and measure how the
online capacity scales relative to the paper's two-GPU configuration.
"""

from repro.core.admission import max_realtime_streams
from repro.devices import Device, Placement
from repro.sim import simulate_online

from common import OPERATING_POINT, fleet, print_table, record

TOR = 0.103


def server(n_filter_gpus: int, n_ref_gpus: int) -> Placement:
    devices = {"cpu0": Device("cpu0", "cpu", memory_bytes=128 * 2**30)}
    filter_names, ref_names = [], []
    for i in range(n_filter_gpus):
        name = f"gpu{i}"
        devices[name] = Device(name, "gpu")
        filter_names.append(name)
    for i in range(n_ref_gpus):
        name = f"gpu{n_filter_gpus + i}"
        devices[name] = Device(name, "gpu")
        ref_names.append(name)
    return Placement(
        devices=devices,
        stage_devices={
            "sdd": ["cpu0"],
            "snm": filter_names,
            "tyolo": filter_names,
            "ref": ref_names,
        },
    )


def capacity(n_filter_gpus: int, n_ref_gpus: int) -> int:
    def run(n):
        return simulate_online(
            fleet(n, "jackson", TOR, n_frames=1200),
            OPERATING_POINT,
            placement=server(n_filter_gpus, n_ref_gpus),
        )

    best, _ = max_realtime_streams(run, n_max=56)
    return best


def test_scaleout_filter_gpus(benchmark):
    benchmark.pedantic(lambda: capacity(1, 1), rounds=1, iterations=1)
    configs = [(1, 1), (2, 2)]
    rows = []
    caps = {}
    for nf, nr in configs:
        caps[(nf, nr)] = capacity(nf, nr)
        rows.append([f"{nf} filter GPU(s) + {nr} ref GPU(s)", caps[(nf, nr)]])
    print_table(
        "Scale-out: online capacity vs GPU count (TOR=0.103)",
        ["server", "max real-time streams"],
        rows,
    )
    record(
        "scaleout",
        {f"{nf}f{nr}r": cap for (nf, nr), cap in caps.items()},
    )

    # Shape: doubling the server buys substantial extra capacity (the
    # filters bind at this TOR; capacity search is capped at 56 streams).
    assert caps[(2, 2)] >= min(1.5 * caps[(1, 1)], 56)
