"""Content-adaptive query planner benchmark: adaptive vs fixed plans.

PR 9's planner picks, per stream and per ``plan_epoch``-frame chunk, a
cascade exit depth, an SNM FilterDegree, and (optionally) a batch-size
target from the observed first-filter pass fraction.  This suite gates on
the planner's determinism contract and records the Pareto comparison
against every fixed ``(cascade, FilterDegree)`` operating point:

* **Cross-runtime determinism** — the threaded engine and the
  discrete-event simulator must derive the *identical* decision log and
  identical per-stage frame counts on a quiet/busy stream pair that forces
  mid-run plan churn (``--check`` gate).
* **Reach conservation** — the analytic per-frame reach reconstruction
  (replaying ``plan_for``/``degree_for`` over the trace masks) must account
  for exactly the frames the runtime delivered to the reference stage, for
  both fixed and adaptive runs (``--check`` gate).  This is what makes the
  recall numbers below trustworthy: the accuracy model and the runtime
  agree frame-for-frame on who reached the reference model.
* **Pareto sweep** — offline DES throughput and event-level (scene) recall
  for every fixed cascade x FilterDegree point versus one calibrated
  adaptive run on a mixed quiet/busy fleet.  The claim recorded in
  ``BENCH_planner.json``: no fixed point dominates adaptive, and adaptive
  beats the best *accuracy-qualified* fixed point (recall >= adaptive's)
  on throughput.
* **Lineage depth split** — the adaptive run carries telemetry, and every
  complete frame lineage (the same reconstruction ``/lineage`` and
  ``ffs-va explain`` serve) is bucketed by the planner depth in effect for
  its chunk, splitting its end-to-end latency into wait (gap + batch +
  queue) vs service seconds.  Recorded under ``adaptive.lineage_split`` —
  what each depth choice costs, and where.

Event-level accuracy is scene recall: a scene is a maximal run of frames
whose ground-truth count meets ``number_of_objects``, detected when any of
its frames survives every executed filter and reaches the reference model
(the same metric ``PlanCatalog`` calibrates against).

Usage::

    PYTHONPATH=src python -m benchmarks.bench_planner            # full run
    PYTHONPATH=src python -m benchmarks.bench_planner --quick    # CI smoke
    PYTHONPATH=src python -m benchmarks.bench_planner --check    # gates only
"""

from __future__ import annotations

import argparse
import os
import platform
import sys

import numpy as np

from repro.core import FFSVAConfig, assert_stage_counts_equal, build_trace
from repro.core.pipeline import cascade
from repro.core.qplan import PlanCatalog, _runs
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.obs import Telemetry, build_all_lineages
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

from .common import OPERATING_POINT, get_trace, print_table, record_bench

#: The mixed fleet the sweep runs on, as (workload, tor, seed, phases)
#: clips (each extra phase is a rotated copy, the same idiom
#: :func:`benchmarks.common.fleet` uses).  Three content classes:
#:
#: * **gap** — low-traffic clips whose specialized SDD has a moderate
#:   false-positive rate and whose multi-object scenes the T-YOLO count
#:   filter misses *entirely*: the full cascade scores zero on them, an
#:   SDD exit catches them.  These are where adaptive buys recall.
#: * **clean** — genuinely quiet clips with a sharp SDD (pass fraction
#:   ~0.05): an SDD exit costs almost nothing in reference load.
#: * **busy** — high-traffic clips that need the full cascade: any fixed
#:   plan shallow enough to match adaptive's recall forwards half their
#:   frames to the 15 ms/frame reference model.
GAP_CLIPS = (("jackson", 0.06, 5, 1), ("coral", 0.06, 6, 1))
CLEAN_CLIPS = (("jackson", 0.05, 0, 2), ("jackson", 0.05, 10, 2))
BUSY_CLIPS = tuple(("coral", 0.55, s, 1) for s in range(4))

#: Fixed operating points swept: every cascade that evaluates the SNM is
#: crossed with the full FilterDegree menu; SNM-free cascades have exactly
#: one operating point each.  ``ref-only`` is the recall anchor (everything
#: reaches the reference model).
SNM_CASCADES = ("ffs-va", "no-sdd", "snm-only")
PLAIN_CASCADES = ("no-snm", "tyolo-only", "ref-only")

#: Base configuration for every point: the paper's throughput-leaning
#: operating point on a multi-object query (``number_of_objects=2``) —
#: the regime where T-YOLO's count threshold is the recall-binding filter.
#: The planner thresholds are set to the fleet's content classes (the
#: clean clips' SDD pass fraction sits near 0.05, the gap clips' near
#: 0.28, the busy clips' near 0.78), and the accuracy floor sits below the
#: pooled full-depth scene recall so the calibrated catalog can trade
#: FilterDegree on cost rather than collapsing to its max-recall fallback.
BASE = OPERATING_POINT.with_(number_of_objects=2)
PLAN = dict(
    plan="adaptive",
    plan_epoch=64,
    plan_quiet=0.33,
    plan_busy=0.5,
    plan_min_accuracy=0.6,
)


def _plan_cfg(**overrides):
    base = dict(PLAN)
    base.update(overrides)
    return BASE.with_(**base)


# ---------------------------------------------------------------------------
# analytic reach + scene recall
# ---------------------------------------------------------------------------
def _filters(graph):
    return [s.name for s in graph if not s.terminal]


def fixed_reach(traces, graph, cfg) -> list[np.ndarray]:
    """Per-trace mask of frames that survive every filter in ``graph``."""
    out = []
    for trace in traces:
        alive = np.ones(len(trace), dtype=bool)
        for name in _filters(graph):
            alive &= np.asarray(graph[name].logic.trace_mask(trace, cfg), dtype=bool)
        out.append(alive)
    return out


def adaptive_reach(traces, graph, cfg, planner) -> list[np.ndarray]:
    """Per-trace reach under the planner's per-chunk (depth, degree) log.

    ``plan_for`` is clamped exactly as the runtimes clamp it, so the
    post-run reconstruction walks the same plan per frame the live routing
    used; the conservation gate (reach count == ``frames_to_ref``) holds
    this equivalence to account-level exactness.
    """
    filters = _filters(graph)
    masks: dict[tuple, np.ndarray] = {}
    out = []
    for s, trace in enumerate(traces):
        alive = np.ones(len(trace), dtype=bool)
        for lo in range(0, len(trace), planner.epoch):
            hi = min(lo + planner.epoch, len(trace))
            plan = planner.plan_for(s, lo)
            dcfg = cfg.with_(filter_degree=plan.filter_degree)
            for name in filters[: filters.index(plan.depth) + 1]:
                key = (s, name, float(plan.filter_degree))
                if key not in masks:
                    masks[key] = np.asarray(
                        graph[name].logic.trace_mask(trace, dcfg), dtype=bool
                    )
                alive[lo:hi] &= masks[key][lo:hi]
        out.append(alive)
    return out


def scene_recall(traces, reach, number_of_objects: int) -> float:
    """Fraction of ground-truth scenes with >= 1 frame reaching the ref."""
    detected = total = 0
    for trace, alive in zip(traces, reach):
        positive = np.asarray(trace.gt_count) >= number_of_objects
        for lo, hi in _runs(positive):
            total += 1
            detected += bool(alive[lo:hi].any())
    return detected / total if total else 1.0


def _conservation(reach, metrics) -> str | None:
    """The analytic reach must equal the frames the run delivered to ref."""
    want = int(sum(int(a.sum()) for a in reach))
    got = int(metrics.frames_to_ref)
    if want != got:
        return f"analytic reach {want} != frames_to_ref {got}"
    return None


# ---------------------------------------------------------------------------
# determinism + conservation gates (--check)
# ---------------------------------------------------------------------------
def _trained_fleet(quick: bool):
    """One quiet and one busy trained jackson stream (forces plan churn)."""
    n_frames = 240
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.05, 0.6)):
        stream = make_stream(jackson(), n_frames, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=100 if quick else 120,
            stride=2,
            train_config=TrainConfig(epochs=4 if quick else 6, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


def check_cross_runtime(streams, traces, zoo) -> list[str]:
    """Threaded and simulated runs must agree on the decision log, the
    per-stage frame counts, and the analytic reach reconstruction."""
    cfg = BASE.with_(plan="adaptive", plan_epoch=32, number_of_objects=1)
    failures: list[str] = []
    eng = ThreadedPipeline(streams, zoo, cfg)
    m_eng = eng.run(len(streams[0]))
    sim = PipelineSimulator(traces, cfg, online=False)
    m_sim = sim.run()
    try:
        assert_stage_counts_equal(m_eng, m_sim)
    except AssertionError as exc:
        failures.append(f"threaded-vs-simulator counters diverge: {exc}")
    log_eng = eng._planner.decision_labels()
    log_sim = sim._planner.decision_labels()
    if log_eng != log_sim:
        failures.append(
            f"decision logs diverge: threaded={log_eng} sim={log_sim}"
        )
    if not log_eng:
        failures.append("no plan transitions on the quiet/busy pair")
    reach = adaptive_reach(traces, sim.graph, cfg, sim._planner)
    err = _conservation(reach, m_sim)
    if err:
        failures.append(f"adaptive reach reconstruction: {err}")
    return failures


def check_fixed_conservation(traces) -> list[str]:
    """The cascade-mask accounting must match a static run exactly."""
    failures = []
    for name in ("ffs-va", "tyolo-only"):
        cfg = BASE.with_(cascade=name, number_of_objects=1)
        m = PipelineSimulator(traces, cfg, online=False, graph=name).run()
        err = _conservation(fixed_reach(traces, cascade(name), cfg), m)
        if err:
            failures.append(f"fixed reach ({name}): {err}")
    return failures


# ---------------------------------------------------------------------------
# Pareto sweep (DES)
# ---------------------------------------------------------------------------
def _mixed_fleet(quick: bool):
    n_frames = 400 if quick else 1500
    clips = GAP_CLIPS + CLEAN_CLIPS + BUSY_CLIPS
    if quick:
        clips = (GAP_CLIPS[0], CLEAN_CLIPS[0][:3] + (1,)) + BUSY_CLIPS[:2]
    traces = []
    for workload, tor, seed, phases in clips:
        base = get_trace(workload, tor, n_frames=n_frames, seed=seed)
        for p in range(phases):
            tr = base.rotated(p * 997) if p else base
            traces.append(tr.renamed(f"{workload}-{tor}-s{seed}p{p}"))
    return traces, n_frames


def _run_fixed(traces, name: str, degree: float) -> dict:
    cfg = BASE.with_(cascade=name, filter_degree=degree)
    sim = PipelineSimulator(traces, cfg, online=False, graph=name)
    m = sim.run()
    reach = fixed_reach(traces, sim.graph, cfg)
    err = _conservation(reach, m)
    return {
        "plan": f"{name}@{degree:g}",
        "cascade": name,
        "degree": degree,
        "throughput_fps": round(m.throughput_fps, 1),
        "recall": round(scene_recall(traces, reach, cfg.number_of_objects), 4),
        "conservation_error": err,
    }


def lineage_depth_split(sim, telemetry) -> dict:
    """Lineage-derived wait/service seconds grouped by in-effect plan depth.

    Replays the run's event ring through the lineage reconstructor (the
    same fold ``/lineage`` serves) and buckets every complete frame by the
    cascade exit depth the planner had in effect for its chunk.  The split
    answers *what the planner's depth choice costs where*: a deeper plan
    buys recall with service seconds, a shallow one trades them for queue
    waits upstream of the exit.  Only complete lineages participate (the
    incompleteness contract — size the ring to the run, never fabricate).
    """
    lineages = build_all_lineages(
        telemetry.bus.events(),
        terminal=sim.graph.terminal.name,
        dropped=telemetry.bus.dropped,
    )
    planner = sim._planner
    by_depth: dict[str, dict] = {}
    incomplete = 0
    for lin in lineages:
        if not lin.hops or lin.incomplete:
            incomplete += 1
            continue
        depth = planner.plan_for(lin.stream, lin.frame).depth
        totals = lin.totals()
        row = by_depth.setdefault(
            depth, {"frames": 0, "wait_s": 0.0, "service_s": 0.0}
        )
        row["frames"] += 1
        row["wait_s"] += totals["gap"] + totals["batch_wait"] + totals["queue_wait"]
        row["service_s"] += totals["service"]
    for row in by_depth.values():
        denom = row["wait_s"] + row["service_s"]
        row["wait_s"] = round(row["wait_s"], 4)
        row["service_s"] = round(row["service_s"], 4)
        row["wait_share"] = round(row["wait_s"] / denom, 4) if denom > 0 else 0.0
    return {
        "by_depth": dict(sorted(by_depth.items())),
        "frames": len(lineages),
        "incomplete": incomplete,
        "dropped_events": telemetry.bus.dropped,
    }


def _run_adaptive(traces) -> dict:
    cfg = _plan_cfg(adaptive_batching=True)
    catalog = PlanCatalog.build(cfg, traces=traces)
    # The event ring must hold the whole run for the lineage split to see
    # every frame: ~7 events/frame (admission + enter/disposition per hop
    # + shared batch_execs) across the fleet.
    telemetry = Telemetry(capacity=1 << 20)
    sim = PipelineSimulator(
        traces, cfg, online=False, plan_catalog=catalog, telemetry=telemetry
    )
    m = sim.run()
    reach = adaptive_reach(traces, sim.graph, cfg, sim._planner)
    err = _conservation(reach, m)
    qplan = m.extra["qplan"]
    lineage = lineage_depth_split(sim, telemetry)
    if lineage["dropped_events"]:
        print(
            f"WARNING: lineage ring evicted {lineage['dropped_events']} "
            "events; depth split covers a subset",
            file=sys.stderr,
        )
    print_table(
        "Lineage wait/service split by in-effect plan depth (adaptive run)",
        ["depth", "frames", "wait s", "service s", "wait share"],
        [
            [d, r["frames"], r["wait_s"], r["service_s"], r["wait_share"]]
            for d, r in lineage["by_depth"].items()
        ],
    )
    return {
        "plan": "adaptive",
        "cascade": cfg.cascade,
        "throughput_fps": round(m.throughput_fps, 1),
        "recall": round(scene_recall(traces, reach, cfg.number_of_objects), 4),
        "conservation_error": err,
        "catalog": {
            "depth_by_band": list(catalog.depth_by_band),
            "degree_by_band": list(catalog.degree_by_band),
        },
        "bands": {
            sid: st["band"] for sid, st in sorted(qplan["streams"].items())
        },
        "decisions": len(qplan["decisions"]),
        "lineage_split": lineage,
    }


def sweep_pareto(quick: bool) -> tuple[dict, list[str]]:
    traces, n_frames = _mixed_fleet(quick)
    degrees = (0.0, 0.5, 1.0) if quick else BASE.plan_degrees
    cascades = ("ffs-va",) if quick else SNM_CASCADES
    plain = ("tyolo-only", "ref-only") if quick else PLAIN_CASCADES

    points = []
    for name in cascades:
        for d in degrees:
            points.append(_run_fixed(traces, name, d))
    for name in plain:
        points.append(_run_fixed(traces, name, BASE.filter_degree))
    adaptive = _run_adaptive(traces)

    failures = [
        f"{p['plan']}: {p['conservation_error']}"
        for p in points + [adaptive]
        if p["conservation_error"]
    ]

    a_tps, a_rec = adaptive["throughput_fps"], adaptive["recall"]
    dominating = [
        p["plan"]
        for p in points
        if p["throughput_fps"] >= a_tps
        and p["recall"] >= a_rec
        and (p["throughput_fps"] > a_tps or p["recall"] > a_rec)
    ]
    qualified = [p for p in points if p["recall"] >= a_rec]
    best_q = max(qualified, key=lambda p: p["throughput_fps"], default=None)
    speedup = a_tps / best_q["throughput_fps"] if best_q else float("inf")

    rows = [
        [p["plan"], p["throughput_fps"], p["recall"]]
        for p in sorted(points, key=lambda p: -p["throughput_fps"])
    ]
    rows.append(["adaptive", a_tps, a_rec])
    print_table(
        f"Offline DES throughput vs scene recall ({len(traces)} streams, "
        f"{n_frames} frames each)",
        ["plan", "fps", "recall"],
        rows,
    )
    summary = {
        "n_streams": len(traces),
        "n_frames": n_frames,
        "fleet": [t.stream_id for t in traces],
        "plan_overrides": PLAN,
        "fixed_points": points,
        "adaptive": adaptive,
        "dominating_fixed_points": dominating,
        "best_qualified_fixed": best_q["plan"] if best_q else None,
        "speedup_vs_best_qualified": (
            round(speedup, 2) if best_q else None
        ),
    }
    return summary, failures


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true", help="CI smoke: fewer points/frames")
    ap.add_argument("--check", action="store_true", help="gates only, no sweep")
    ap.add_argument("--out", default=None, help="override the BENCH_planner.json path")
    args = ap.parse_args(argv)

    cpus = os.cpu_count() or 1
    print(f"host: {cpus} cpu(s), {platform.machine()}, python {platform.python_version()}")

    streams, traces, zoo = _trained_fleet(args.quick)
    failures = check_cross_runtime(streams, traces, zoo)
    failures += check_fixed_conservation(traces)
    if failures:
        print(f"FAIL: planner determinism/conservation gates: {failures}",
              file=sys.stderr)
        return 1
    print("correctness: decision logs identical across runtimes; "
          "reach reconstruction exact (fixed + adaptive)")
    if args.check:
        return 0

    sweep, failures = sweep_pareto(args.quick)
    if failures:
        print(f"FAIL: sweep conservation: {failures}", file=sys.stderr)
        return 1
    if sweep["dominating_fixed_points"]:
        print(
            f"WARNING: fixed point(s) {sweep['dominating_fixed_points']} "
            "dominate the adaptive plan",
            file=sys.stderr,
        )
    target = 1.3
    if (sweep["speedup_vs_best_qualified"] or 0) < target:
        # Data, not a gate (cost-model calibration moves absolutes), but the
        # adaptive claim is the point of the planner — say so loudly.
        print(
            f"WARNING: adaptive speedup {sweep['speedup_vs_best_qualified']}x over "
            f"best accuracy-qualified fixed point "
            f"({sweep['best_qualified_fixed']}) is below the {target}x target",
            file=sys.stderr,
        )
    payload = {
        "meta": {
            "python": platform.python_version(),
            "numpy": np.__version__,
            "machine": platform.machine(),
            "cpus": cpus,
            "mode": "quick" if args.quick else "full",
        },
        "pareto_sweep": sweep,
    }
    path = record_bench("planner", payload, path=args.out)
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
