"""Benchmark-suite configuration.

Makes the in-repo ``benchmarks`` directory importable and prints a pointer
to the accumulated results artifact at the end of a run.
"""

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))


def pytest_sessionfinish(session, exitstatus):
    results = Path(__file__).parent / "results.json"
    if results.exists():
        print(f"\n[benchmarks] accumulated measurements: {results}")
