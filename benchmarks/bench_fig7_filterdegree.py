"""Figure 7 — throughput and error rate as a function of FilterDegree.

Panel (a), car detection at TOR=0.197: "As the threshold increases, more
frames whose prediction probability c is between c_low and c_high are
filtered out" — output frames drop, offline throughput rises, the error
rate creeps up.

Panel (b), person detection at TOR=1.000: "The adjustment of the
FilterDegree value has little effect on the filtering efficiency in this
case" because every frame contains people, so the SNM keeps almost
everything regardless.
"""

import pytest

from repro.analytics import error_rate, scene_accuracy
from repro.sim import simulate_offline

from common import OPERATING_POINT, get_trace, print_table, record

FDS = (0.0, 0.25, 0.5, 0.75, 1.0)


def _sweep(workload, tor, n_frames=3000):
    trace = get_trace(workload, tor, n_frames=n_frames, with_ref=True)
    rows = []
    for fd in FDS:
        cfg = OPERATING_POINT.with_(filter_degree=fd)
        m = simulate_offline([trace], cfg)
        err = error_rate(trace, cfg)
        scenes = scene_accuracy(trace, cfg)
        rows.append(
            {
                "fd": fd,
                "output_frames": int(trace.cascade_pass(fd, cfg.number_of_objects).sum()),
                "throughput": m.throughput_fps,
                "error_rate": err,
                "scene_loss": scenes.scene_loss_rate,
            }
        )
    return trace, rows


def test_fig7a_car_detection(benchmark):
    benchmark.pedantic(
        lambda: simulate_offline(
            [get_trace("jackson", 0.197, with_ref=True)], OPERATING_POINT
        ),
        rounds=1,
        iterations=1,
    )
    trace, rows = _sweep("jackson", 0.197)
    print_table(
        f"Figure 7a: car detection (measured TOR={trace.tor():.3f})",
        ["FilterDegree", "output frames", "offline FPS", "error rate", "scene loss"],
        [[r["fd"], r["output_frames"], r["throughput"], r["error_rate"], r["scene_loss"]] for r in rows],
    )
    record("fig7a", {"rows": rows, "paper": "output frames drop / error rises with FilterDegree"})

    outputs = [r["output_frames"] for r in rows]
    errors = [r["error_rate"] for r in rows]
    tputs = [r["throughput"] for r in rows]
    # Shape: output frames monotonically non-increasing in FilterDegree
    # (the SNM is specialized enough that even FilterDegree 0 passes little
    # beyond true targets, so the decline is real but moderate); the error
    # rate rises with FilterDegree; the most aggressive setting is fastest.
    assert all(a >= b for a, b in zip(outputs, outputs[1:]))
    assert outputs[-1] <= 0.95 * outputs[0]
    assert all(e2 >= e1 - 1e-9 for e1, e2 in zip(errors, errors[1:]))
    assert errors[-1] > errors[0]
    assert tputs[-1] >= max(tputs) * 0.95


def test_fig7b_person_detection_high_tor(benchmark):
    benchmark.pedantic(
        lambda: simulate_offline(
            [get_trace("coral", 1.0, with_ref=True)], OPERATING_POINT
        ),
        rounds=1,
        iterations=1,
    )
    trace, rows = _sweep("coral", 1.0)
    print_table(
        f"Figure 7b: person detection (measured TOR={trace.tor():.3f})",
        ["FilterDegree", "output frames", "offline FPS", "error rate", "scene loss"],
        [[r["fd"], r["output_frames"], r["throughput"], r["error_rate"], r["scene_loss"]] for r in rows],
    )
    record("fig7b", {"rows": rows, "paper": "FilterDegree has little effect at TOR=1"})

    outputs = [r["output_frames"] for r in rows]
    # Shape: with people in (nearly) every frame, the SNM cannot filter:
    # the whole sweep changes the output by only a small fraction.
    assert outputs[-1] > 0.7 * outputs[0]
