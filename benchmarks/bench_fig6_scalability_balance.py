"""Figure 6 — (a) maximum scalability as a function of TOR, (b) load balance.

Figure 6a: "the maximum number of video streams supported by FFS-VA
increases as TOR decreases."  We sweep TOR and find the real-time capacity
at each point.

Figure 6b: "the execution time of video streams, normalized to that of the
longest execution time, with an even TOR distribution between 0 and 40%.
Except the very low TOR, there is not much difference between these
execution times.  This shows that load balancing is well performed."  We
run a mixed-TOR fleet offline and compare normalized per-stream finish
times.
"""

import numpy as np
import pytest

from repro.core.admission import max_realtime_streams
from repro.sim import simulate_offline, simulate_online

from common import OPERATING_POINT, fleet, get_trace, print_table, record

TOR_SWEEP = (0.05, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0)


def test_fig6a_max_streams_vs_tor(benchmark):
    def capacity(tor):
        def run(n):
            return simulate_online(
                fleet(n, "jackson", tor, n_frames=1500), OPERATING_POINT
            )

        best, _ = max_realtime_streams(run, n_max=48)
        return best

    benchmark.pedantic(lambda: capacity(0.4), rounds=1, iterations=1)

    rows = []
    caps = []
    for tor in TOR_SWEEP:
        cap = capacity(tor)
        caps.append(cap)
        rows.append([tor, cap])
    print_table("Figure 6a: max real-time streams vs TOR", ["TOR", "max streams"], rows)
    record(
        "fig6a",
        {"tor": list(TOR_SWEEP), "max_streams": caps, "paper": "monotone decrease, ~30 at 0.1 down to 5-6 at 1.0"},
    )

    # Shape: capacity is (weakly) decreasing in TOR, with a large dynamic
    # range between the low- and high-TOR ends.
    assert all(a >= b for a, b in zip(caps, caps[1:]))
    assert caps[0] >= 3 * caps[-1]
    assert caps[-1] >= 1


def test_fig6b_load_balance(benchmark):
    # Streams with TORs spread evenly over (0, 0.4], as in the paper.
    tors = [0.05, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4]
    traces = [
        get_trace("jackson", tor, n_frames=1500, seed=i).renamed(f"mix-{i}")
        for i, tor in enumerate(tors[: 4])
    ] + [
        get_trace("jackson", tor, n_frames=1500, seed=i).renamed(f"mix-{i+4}")
        for i, tor in enumerate(tors[4:])
    ]

    m = benchmark.pedantic(
        lambda: simulate_offline(traces, OPERATING_POINT), rounds=1, iterations=1
    )
    finish = np.asarray(m.extra["per_stream_finish_time"], dtype=float)
    normalized = finish / finish.max()
    rows = [[f"stream {i} (TOR {tors[i]})", normalized[i]] for i in range(len(tors))]
    print_table(
        "Figure 6b: normalized per-stream execution time (offline, mixed TOR)",
        ["stream", "normalized finish time"],
        rows,
    )
    record(
        "fig6b",
        {"tors": tors, "normalized_finish": normalized.tolist(), "paper": "near-equal except very low TOR"},
    )

    # Shape: the round-robin schedulers keep streams finishing together —
    # all but the lightest streams land within ~35% of the longest.
    heavy = normalized[2:]
    assert heavy.min() > 0.6
    assert normalized.max() == pytest.approx(1.0)
