"""Figure 4 — throughput and latency vs number of streams, TOR = 1.000.

The paper's extreme case: with target objects in every frame, "SDDs and
SNMs filter out fewer video frames and most of the frames are still fed to
the T-YOLO for filtering, limiting the amount of increase in the overall
throughput.  In this case, FFS-VA can only support 5-6 video streams in
real time" — barely ahead of the 4-stream baseline.
"""

import pytest

from repro.baseline import baseline_online
from repro.core.admission import max_realtime_streams
from repro.sim import simulate_online

from common import OPERATING_POINT, fleet, print_table, record

TOR = 1.0
SWEEP = (1, 2, 3, 4, 5, 6, 8)


def run_ffs(n):
    return simulate_online(fleet(n, "jackson", TOR), OPERATING_POINT)


def test_fig4_stream_sweep_high_tor(benchmark):
    benchmark.pedantic(lambda: run_ffs(4), rounds=1, iterations=1)

    rows = []
    for n in SWEEP:
        m = run_ffs(n)
        rows.append(
            [n, m.achieved_stream_fps(), m.ref_latency.mean, "yes" if m.realtime() else "no"]
        )
    best_ffs, _ = max_realtime_streams(run_ffs, n_max=16)
    best_base, _ = max_realtime_streams(
        lambda n: baseline_online(fleet(n, "jackson", TOR)), n_max=12
    )

    print_table(
        "Figure 4: TOR=1.000",
        ["streams", "per-stream FPS", "ref lat (s)", "real-time"],
        rows,
    )
    print(
        f"max real-time streams: FFS-VA={best_ffs}, baseline={best_base} "
        "(paper: 5-6 vs 4)"
    )
    record(
        "fig4",
        {
            "sweep": [[r[0], r[1], r[2], r[3]] for r in rows],
            "max_streams_ffsva": best_ffs,
            "max_streams_baseline": best_base,
            "paper": {"max_streams": "5-6", "baseline": 4},
        },
    )

    # Shape: at TOR 1 the cascade cannot filter much; FFS-VA's capacity
    # collapses to within ~2x of the baseline and far below its low-TOR
    # capacity (~20 streams in Figure 3).
    assert best_ffs <= 10
    assert best_ffs >= best_base - 1
    assert best_ffs < 20


def test_fig4_filters_pass_most_frames(benchmark):
    """At TOR=1 the prepositive filters drop little; most work hits T-YOLO."""
    m = benchmark.pedantic(lambda: run_ffs(2), rounds=1, iterations=1)
    tyolo_frac = m.stage_fraction("tyolo")
    print(f"\nfraction of frames executed by T-YOLO at TOR=1: {tyolo_frac:.3f}")
    record("fig4/tyolo_fraction", {"tyolo_fraction": tyolo_frac})
    assert tyolo_frac > 0.7
