"""Section 5.2 memory claim — long videos analyzed in bounded RAM.

"For a 55 GB video file, the entire system uses less than 8 GB CPU memory,
which implies greatly increased support capacity for long-time
high-definition video files."  The ratio behind the claim is ~7:1
video-to-resident-memory.  We scan a (scaled) long clip through the
chunked :class:`~repro.video.ClipStore` and assert the same property: the
peak frame-cache footprint stays an order of magnitude below the decoded
video size while every frame is visited exactly once.
"""

import pytest

from repro.video import ClipStore, VideoStream

from common import print_table, record


def test_memory_bounded_scan(benchmark):
    stream = VideoStream.synthetic(12_000, 0.1, seed=5)
    h, w = stream.shape
    budget = 6 * 64 * h * w * 4  # six 64-frame chunks resident

    def scan():
        store = ClipStore(stream, chunk_frames=64, memory_budget_bytes=budget)
        frames = 0
        for _start, chunk in store.iter_chunks():
            frames += len(chunk)
        return store, frames

    store, frames = benchmark.pedantic(scan, rounds=1, iterations=1)
    stats = store.stats()
    ratio = stats["total_video_bytes"] / stats["peak_bytes"]
    print_table(
        "Memory-bounded offline scan (paper: 55 GB file in < 8 GB RAM, ~7:1)",
        ["quantity", "value"],
        [
            ["decoded video size", f"{stats['total_video_bytes']/2**20:.0f} MB"],
            ["peak frame cache", f"{stats['peak_bytes']/2**20:.1f} MB"],
            ["video : memory ratio", f"{ratio:.0f}:1"],
            ["frames scanned", frames],
            ["chunks decoded", stats["decode_count"]],
        ],
    )
    record(
        "memory_bound",
        {
            "video_bytes": stats["total_video_bytes"],
            "peak_bytes": stats["peak_bytes"],
            "ratio": ratio,
            "paper": {"video": "55 GB", "memory": "< 8 GB", "ratio": 6.9},
        },
    )

    assert frames == 12_000
    assert stats["peak_bytes"] <= budget
    assert ratio > 7.0  # at least the paper's video:memory ratio
    assert stats["decode_count"] == (12_000 + 63) // 64  # each chunk once
