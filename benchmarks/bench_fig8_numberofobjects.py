"""Figure 8 — output frames and error rate vs NumberofObjects.

Panel (a), car detection at TOR=0.197: raising the intensity threshold cuts
the output sharply (a scene holds at most ~3 cars).  Panel (b), person
detection at TOR=1.000: output decays gradually with NumberofObjects, and
the error rate is comparatively high because "for the detection of small
and dense targets ... T-YOLO generally identifies fewer target objects than
YOLOv2".  Section 5.3.3 then shows that tolerating one or two object
misjudgments (our ``relax``) cuts the error dramatically (80.7% / 94.8%)
for a modest hit to filtering efficiency.
"""

import pytest

from repro.analytics import error_rate

from common import OPERATING_POINT, get_trace, print_table, record

CAR_NS = (1, 2, 3, 4)
PERSON_NS = (1, 2, 4, 6, 8, 10, 12)


def _sweep(trace, ns, relax=0):
    rows = []
    for n in ns:
        cfg = OPERATING_POINT.with_(number_of_objects=n, relax=relax)
        out = int(trace.cascade_pass(cfg.filter_degree, n, relax).sum())
        rows.append({"n": n, "relax": relax, "output_frames": out,
                     "error_rate": error_rate(trace, cfg)})
    return rows


def test_fig8a_car_detection(benchmark):
    trace = get_trace("jackson", 0.197, with_ref=True)
    benchmark.pedantic(lambda: _sweep(trace, CAR_NS), rounds=1, iterations=1)
    rows = _sweep(trace, CAR_NS)
    print_table(
        f"Figure 8a: car detection (TOR={trace.tor():.3f})",
        ["NumberofObjects", "output frames", "error rate"],
        [[r["n"], r["output_frames"], r["error_rate"]] for r in rows],
    )
    record("fig8a", {"rows": rows, "paper": "output drops ~80% by N=3; scenes hold <= ~3 cars"})

    outputs = [r["output_frames"] for r in rows]
    assert all(a >= b for a, b in zip(outputs, outputs[1:]))
    # Raising the threshold to the scene's max occupancy guts the output.
    assert outputs[-1] < 0.4 * outputs[0]


def test_fig8b_person_detection(benchmark):
    trace = get_trace("coral", 1.0, with_ref=True)
    benchmark.pedantic(lambda: _sweep(trace, PERSON_NS), rounds=1, iterations=1)
    rows = _sweep(trace, PERSON_NS)
    print_table(
        f"Figure 8b: person detection (TOR={trace.tor():.3f})",
        ["NumberofObjects", "output frames", "error rate"],
        [[r["n"], r["output_frames"], r["error_rate"]] for r in rows],
    )
    record("fig8b", {"rows": rows, "paper": "gradual decline; high error for dense small targets"})

    outputs = [r["output_frames"] for r in rows]
    errors = [r["error_rate"] for r in rows]
    assert all(a >= b for a, b in zip(outputs, outputs[1:]))
    assert outputs[-1] < outputs[0]
    # Dense small targets: the error rate at higher thresholds must exceed
    # the car case's near-zero regime (T-YOLO undercounts crowds).
    assert max(errors) > 0.02


def test_fig8b_relaxed_thresholds_cut_error(benchmark):
    """Section 5.3.3: tolerating 1-2 miscounted objects slashes the error."""
    trace = get_trace("coral", 1.0, with_ref=True)
    n = 6

    def run():
        return {relax: _sweep(trace, (n,), relax)[0] for relax in (0, 1, 2)}

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        [r["relax"], r["output_frames"], r["error_rate"]] for r in results.values()
    ]
    print_table(
        f"Figure 8b relaxation at NumberofObjects={n}",
        ["relax", "output frames", "error rate"],
        rows,
    )
    err0, err1, err2 = (results[r]["error_rate"] for r in (0, 1, 2))
    out0, out1, out2 = (results[r]["output_frames"] for r in (0, 1, 2))
    cut1 = 1 - err1 / err0 if err0 else 0.0
    cut2 = 1 - err2 / err0 if err0 else 0.0
    eff1 = out1 / out0 - 1 if out0 else 0.0
    print(
        f"error cut: relax=1 -> {cut1:.1%}, relax=2 -> {cut2:.1%} "
        f"(paper: 80.7% / 94.8%); extra output at relax=1: {eff1:+.1%} "
        "(paper: ~12.6% / 22.2% efficiency cost)"
    )
    record(
        "fig8b_relax",
        {
            "n": n,
            "error": [err0, err1, err2],
            "output": [out0, out1, out2],
            "error_cut": [cut1, cut2],
            "paper": {"error_cut": [0.807, 0.948], "efficiency_cost": [0.126, 0.222]},
        },
    )

    # Shape: relaxing cuts error substantially and monotonically, at the
    # cost of more frames passed downstream.
    assert err1 < err0
    assert err2 <= err1
    assert cut1 > 0.3
    assert out2 >= out1 >= out0
