"""Shared infrastructure for the experiment benchmarks.

Each ``bench_*.py`` file regenerates one table or figure from the paper's
evaluation (see DESIGN.md section 4 for the index).  The heavy lifting —
training per-stream models and tracing the filter cascade over thousands of
frames — is cached on disk by :mod:`repro.core.tracecache`, so the first run
of the suite builds the trace inventory and subsequent runs are fast.

Conventions:

* ``fleet(...)`` produces N stream traces the way the paper does — a few
  genuinely distinct clips plus phase-rotated copies ("typical
  non-overlapping video clips from each video file").
* ``record(...)`` accumulates every measured series into
  ``benchmarks/results.json`` so EXPERIMENTS.md can be regenerated from a
  single artifact.
* Shape assertions (who wins, what is monotone, where crossovers sit) are
  part of every benchmark — absolute FPS values depend on the cost model
  calibration, but the paper's qualitative claims must hold.
"""

from __future__ import annotations

import json
from functools import lru_cache
from pathlib import Path

from repro.core import FFSVAConfig, FrameTrace, workload_trace
from repro.video import WorkloadSpec, coral, jackson

__all__ = [
    "OPERATING_POINT",
    "ACCURACY_POINT",
    "BENCH_FRAMES",
    "get_trace",
    "fleet",
    "record",
    "record_bench",
    "record_metrics",
    "record_timeseries",
    "print_table",
    "jackson",
    "coral",
]

#: Frames per stream used by throughput/latency sweeps (the paper uses 5000
#: everywhere; 3000 keeps first-run trace building tolerable while leaving
#: the queueing dynamics unchanged; accuracy experiments use the full 5000).
BENCH_FRAMES = 3000

#: Throughput-leaning operating point: maximum SNM specificity, the paper's
#: empirical queue thresholds, feedback batching (their 30-stream headline
#: configuration).
OPERATING_POINT = FFSVAConfig(
    filter_degree=1.0,
    number_of_objects=1,
    relax=0,
    batch_policy="feedback",
    batch_size=10,
)

#: Accuracy-leaning operating point: mid FilterDegree ("relaxed filtering
#: conditions") used by the error-rate experiments.
ACCURACY_POINT = OPERATING_POINT.with_(filter_degree=0.5, batch_policy="dynamic")

#: How many genuinely distinct clips to build per workload/TOR before
#: resorting to phase rotations.
_DISTINCT = 4


@lru_cache(maxsize=64)
def _base_trace(workload: str, tor: float, n_frames: int, seed: int, with_ref: bool):
    spec = jackson() if workload == "jackson" else coral()
    return workload_trace(spec, n_frames, tor=tor, seed=seed, with_ref=with_ref)


def get_trace(
    workload: str = "jackson",
    tor: float = 0.103,
    *,
    n_frames: int = BENCH_FRAMES,
    seed: int = 0,
    with_ref: bool = False,
) -> FrameTrace:
    """One cached trace for a workload/TOR combination."""
    return _base_trace(workload, round(float(tor), 4), n_frames, seed, with_ref)


def fleet(
    n_streams: int,
    workload: str = "jackson",
    tor: float = 0.103,
    *,
    n_frames: int = BENCH_FRAMES,
) -> list[FrameTrace]:
    """``n_streams`` stream traces: distinct clips plus rotated phases."""
    traces = []
    for i in range(n_streams):
        base = get_trace(workload, tor, n_frames=n_frames, seed=i % _DISTINCT)
        offset = (i // _DISTINCT) * 997
        tr = base.rotated(offset) if offset else base
        traces.append(tr.renamed(f"{workload}-{tor}-{i}"))
    return traces


# ---------------------------------------------------------------------------
# result recording and pretty-printing
# ---------------------------------------------------------------------------
_RESULTS_PATH = Path(__file__).parent / "results.json"


def record(experiment: str, payload: dict) -> None:
    """Merge one experiment's measurements into benchmarks/results.json."""
    data = {}
    if _RESULTS_PATH.exists():
        try:
            data = json.loads(_RESULTS_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[experiment] = payload
    _RESULTS_PATH.write_text(json.dumps(data, indent=2, sort_keys=True))


def record_bench(name: str, payload: dict, path: str | Path | None = None) -> Path:
    """Merge one benchmark family's measurements into ``BENCH_<name>.json``.

    Performance-trajectory artifacts live at the repo root (committed, so
    the speedup history survives across PRs), one file per family — e.g.
    ``record_bench("hotpath", {...})`` maintains ``BENCH_hotpath.json``.
    Top-level keys of ``payload`` replace same-named keys of the existing
    file, so repeated runs update in place.  Returns the path written.
    """
    target = (
        Path(path)
        if path is not None
        else Path(__file__).resolve().parent.parent / f"BENCH_{name}.json"
    )
    data = {}
    if target.exists():
        try:
            data = json.loads(target.read_text())
        except json.JSONDecodeError:
            data = {}
    data.update(payload)
    target.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return target


def record_metrics(experiment: str, metrics) -> None:
    """Record one run's full :class:`RunMetrics` snapshot (canonical JSON
    form, same schema the CLI's ``--metrics-json`` writes) under
    ``<experiment>/run_metrics`` in benchmarks/results.json."""
    record(f"{experiment}/run_metrics", metrics.to_dict())


_TIMESERIES_PATH = Path(__file__).parent / "telemetry.json"


def record_timeseries(experiment: str, telemetry) -> None:
    """Persist a run's telemetry time-series and bus statistics into
    ``benchmarks/telemetry.json`` (next to results.json) so queue-depth and
    utilization traces survive the benchmark process."""
    data = {}
    if _TIMESERIES_PATH.exists():
        try:
            data = json.loads(_TIMESERIES_PATH.read_text())
        except json.JSONDecodeError:
            data = {}
    data[experiment] = {
        "bus": telemetry.bus.stats(),
        "series": telemetry.sampler.to_dict(),
    }
    _TIMESERIES_PATH.write_text(json.dumps(data, indent=2, sort_keys=True))


def print_table(title: str, headers: list[str], rows: list[list]) -> None:
    """Print a figure/table reproduction in a fixed-width layout."""
    widths = [
        max(len(str(h)), *(len(_fmt(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    line = "  ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    print(f"\n=== {title} ===")
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join(_fmt(v).ljust(w) for v, w in zip(row, widths)))


def _fmt(v) -> str:
    if isinstance(v, float):
        return f"{v:.3f}" if abs(v) < 100 else f"{v:.1f}"
    return str(v)
