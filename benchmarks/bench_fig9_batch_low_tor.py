"""Figure 9 — batch mechanisms at TOR = 0.203 (10 streams).

Panel (a): offline throughput vs BatchSize for the static, feedback, and
dynamic mechanisms.  Small batches pay the SNM model-load overhead per
frame; larger batches amortize it until another stage becomes the
bottleneck.  The feedback mechanism can never form batches beyond its
queue-depth threshold (10), so it plateaus where static keeps its full
batch size.

Panel (b): online mean frame latency vs BatchSize.  "As BatchSize
increases, more video frames need to wait a period of time in the
feedback-queue because of the fixed batch size.  For the dynamic batch
mechanism, since the batch size can be adjusted automatically according to
video contents, the average latency is basically unchanged."
"""

import pytest

from repro.obs import Telemetry
from repro.sim import simulate_offline, simulate_online

from common import OPERATING_POINT, fleet, print_table, record, record_timeseries

TOR = 0.203
BATCHES = (1, 2, 4, 8, 10, 16, 24, 30)
N_STREAMS = 10


def _cfg(policy, batch):
    # NumberofObjects=2 keeps the reference stage below saturation so the
    # experiment isolates the SNM batching efficiency the figure studies
    # (with N=1 the 56 FPS reference model is the offline bottleneck and
    # masks every batching effect).
    return OPERATING_POINT.with_(
        batch_policy=policy, batch_size=batch, number_of_objects=2
    )


@pytest.fixture(scope="module")
def traces():
    return fleet(N_STREAMS, "jackson", TOR)


def test_fig9a_throughput_vs_batch(benchmark, traces):
    benchmark.pedantic(
        lambda: simulate_offline(traces, _cfg("dynamic", 10)), rounds=1, iterations=1
    )
    data = {p: [] for p in ("static", "feedback", "dynamic")}
    for b in BATCHES:
        for policy in data:
            # The paper's operating batch (dynamic, 10) carries the telemetry
            # bus: its queue-depth traces are the feedback dynamics Figure 9
            # is about, recorded without perturbing the rest of the sweep.
            telemetry = Telemetry() if (policy == "dynamic" and b == 10) else None
            m = simulate_offline(traces, _cfg(policy, b), telemetry=telemetry)
            if telemetry is not None:
                record_timeseries("fig9a/dynamic_b10", telemetry)
            data[policy].append(m.throughput_fps)
    rows = [
        [b, data["static"][i], data["feedback"][i], data["dynamic"][i]]
        for i, b in enumerate(BATCHES)
    ]
    print_table(
        "Figure 9a: offline throughput (FPS) vs BatchSize, TOR=0.203",
        ["BatchSize", "static", "feedback", "dynamic"],
        rows,
    )
    record("fig9a", {"batch": list(BATCHES), **data,
                     "paper": "throughput grows with batch; feedback dips ~8% at large batch"})

    # Shape: batching pays — every mechanism is markedly faster at its
    # best batch than at batch 1, and static's largest-batch throughput is
    # at least as good as the depth-capped feedback mechanism's (the paper
    # reports feedback ~8% below static at large BatchSize).
    for policy in data:
        assert max(data[policy]) > 1.2 * data[policy][0]
    assert data["static"][-1] >= data["feedback"][-1] * 0.99
    # Once past the amortization knee the curves flatten (bottleneck moves
    # to T-YOLO/ref): the last two static points differ by < 10%.
    assert abs(data["static"][-1] - data["static"][-2]) < 0.1 * data["static"][-1]


def test_fig9b_latency_vs_batch(benchmark, traces):
    benchmark.pedantic(
        lambda: simulate_online(traces, _cfg("dynamic", 10)), rounds=1, iterations=1
    )
    data = {p: [] for p in ("static", "feedback", "dynamic")}
    for b in BATCHES:
        for policy in data:
            telemetry = Telemetry() if (policy == "dynamic" and b == 10) else None
            m = simulate_online(traces, _cfg(policy, b), telemetry=telemetry)
            if telemetry is not None:
                record_timeseries("fig9b/dynamic_b10", telemetry)
            data[policy].append(m.frame_latency.mean)
    rows = [
        [b, data["static"][i], data["feedback"][i], data["dynamic"][i]]
        for i, b in enumerate(BATCHES)
    ]
    print_table(
        "Figure 9b: online mean frame latency (s) vs BatchSize, TOR=0.203",
        ["BatchSize", "static", "feedback", "dynamic"],
        rows,
    )
    record("fig9b", {"batch": list(BATCHES), **data,
                     "paper": "static/feedback latency grows with batch; dynamic flat"})

    # Shape (excluding BatchSize 1, where every mechanism pays the
    # per-frame model-load overhead and the GPU runs near saturation):
    # dynamic latency is essentially flat across the sweep...
    dyn = data["dynamic"][1:]
    assert max(dyn) < min(dyn) + 0.35
    # ...while static grows substantially with BatchSize...
    assert data["static"][-1] > 1.8 * data["static"][1]
    # ...and at large batches dynamic beats both fixed-batch mechanisms.
    assert dyn[-1] < 0.6 * data["static"][-1]
    assert dyn[-1] <= data["feedback"][-1]
