"""Table 2 — statistics of error frames in 5000 consecutive video frames.

The paper analyzes the false negatives of car detection at TOR=0.25 and
groups them by run length (isolated single frames / 2-3 frame runs / <30
frame runs / 30+ frame runs), observing that isolated and short runs never
lose a scene and that "only about 50 frames out of a total of 5000 frames
are those with actual scene losses" — under 2%, the paper's headline
accuracy claim.
"""

import pytest

from repro.analytics import error_rate, error_run_stats, scene_accuracy

from common import ACCURACY_POINT, get_trace, print_table, record

PAPER_ROWS = {
    "An isolated single error frame": 3,
    "2-3 isolated-continuous error frames": 5,
    "Continuously-error frames less than 30": 73,
    "Continuously-error frames more than 30": 140,
}


def test_table2_error_frame_statistics(benchmark):
    trace = get_trace("jackson", 0.25, n_frames=5000, with_ref=True)
    cfg = ACCURACY_POINT

    stats = benchmark.pedantic(
        lambda: error_run_stats(trace, cfg), rounds=1, iterations=1
    )
    scenes = scene_accuracy(trace, cfg)
    err = error_rate(trace, cfg)

    rows = [
        [label, ours, PAPER_ROWS[label]]
        for (label, ours) in stats.as_rows()
    ]
    print_table(
        f"Table 2: error frames over 5000 frames (TOR={trace.tor():.3f})",
        ["error frame category", "measured frames", "paper frames"],
        rows,
    )
    print(
        f"frame error rate {err:.3%}; scenes: {scenes.n_scenes} total, "
        f"{scenes.n_lost} lost ({scenes.lost_frames} frames, "
        f"{scenes.lost_frame_rate:.3%} of input) — paper: ~50/5000 = 1% lost-scene frames"
    )
    record(
        "table2",
        {
            "measured": dict(stats.as_rows()),
            "paper": PAPER_ROWS,
            "frame_error_rate": err,
            "scene_losses": scenes.n_lost,
            "lost_frames": scenes.lost_frames,
            "lost_frame_rate": scenes.lost_frame_rate,
        },
    )

    # Shape assertions mirroring the paper's conclusions:
    # (1) isolated errors are rare relative to run errors,
    assert stats.isolated_single + stats.isolated_short <= max(
        stats.continuous_short + stats.continuous_long, 10
    )
    # (2) the scene-level loss stays under the paper's ~2% headline bound,
    assert scenes.lost_frame_rate < 0.02
    # (3) and the cascade detects the overwhelming majority of scenes.
    assert scenes.detection_rate > 0.9
