"""Detection-store microbenchmarks: ingest rate and range-query latency.

The store sits on the pipeline's per-frame hot path (one ``append`` per
outcome), so its write cost must stay far below any stage's service time,
and the manifest's time index must actually pay off — a narrow range query
over a many-segment store should open a small, roughly constant number of
files rather than all of them.

Two measurement families land in ``BENCH_queries.json`` at the repo root:

* ``ingest`` — records/second appended for the ``jsonl`` and ``binary``
  formats (plus bytes/record, the storage-density tradeoff);
* ``range_query`` — latency of a fixed 1-second count query as the store
  grows across segment counts, with the number of segment files the reader
  actually opened (``last_opened``) recorded as pruning evidence; a full
  scan is measured alongside for contrast.

Correctness is asserted throughout (counts match what was written; pruned
queries open strictly fewer files than a full scan); timings are data, not
gates — CI machines are noisy.

Usage::

    PYTHONPATH=src python -m benchmarks.bench_queries            # full run
    PYTHONPATH=src python -m benchmarks.bench_queries --quick    # CI smoke
"""

from __future__ import annotations

import argparse
import platform
import statistics
import sys
import tempfile
import time
from pathlib import Path

from repro.store import DetectionRecord, DetStore, DetStoreReader, count_detections

from .common import print_table, record_bench

FPS = 30.0


def _record(i: int, stream: str = "s0") -> DetectionRecord:
    return DetectionRecord(
        stream=stream,
        frame=i,
        t=i / FPS,
        cls="car",
        box=None,
        score=float(i % 3),
        disposition="ref" if i % 2 else "sdd",
    )


def bench_ingest(n_records: int, repeats: int) -> dict:
    """Append rate per on-disk format, median over repeats."""
    out: dict = {}
    records = [_record(i) for i in range(n_records)]
    for fmt in ("jsonl", "binary"):
        rates, sizes = [], []
        for _ in range(repeats):
            with tempfile.TemporaryDirectory() as tmp:
                store = DetStore(tmp, segment_bytes=256 * 1024, fmt=fmt, terminal="ref")
                t0 = time.perf_counter()
                for rec in records:
                    store.append(rec)
                elapsed = time.perf_counter() - t0
                manifest = store.close()
                rates.append(n_records / elapsed)
                sizes.append(sum(s["bytes"] for s in manifest["segments"]) / n_records)
                # Everything written must read back.
                n_read = len(DetStoreReader(tmp).records())
                assert n_read == n_records, f"{fmt}: {n_read} != {n_records}"
        out[fmt] = {
            "records_per_s": statistics.median(rates),
            "bytes_per_record": statistics.median(sizes),
            "n_records": n_records,
        }
    return out


def bench_range_query(segment_counts: list[int], repeats: int) -> list[dict]:
    """A fixed 1-second count query as the store grows across segments.

    The manifest prunes by ``[t_lo, t_hi]`` overlap, so latency and files
    opened should stay near-flat while the full-scan cost grows linearly.
    """
    rows = []
    # ~64 rows/segment at 4 KiB: enough files that pruning is visible.
    segment_bytes = 4 * 1024
    for n_segments in segment_counts:
        with tempfile.TemporaryDirectory() as tmp:
            store = DetStore(tmp, segment_bytes=segment_bytes, terminal="ref")
            i = 0
            while len(store.segments) < n_segments:
                store.append(_record(i))
                i += 1
            store.close()
            reader = DetStoreReader(tmp)
            t_mid = (i / FPS) / 2.0  # a 1-second window in the middle
            expected = sum(
                1 for j in range(i) if t_mid <= j / FPS <= t_mid + 1.0 and j % 2
            )

            def timed(fn):
                samples = []
                for _ in range(repeats):
                    t0 = time.perf_counter()
                    got = fn()
                    samples.append((time.perf_counter() - t0) * 1e3)
                return got, statistics.median(samples)

            got, ranged_ms = timed(
                lambda: count_detections(reader, t0=t_mid, t1=t_mid + 1.0)
            )
            opened_ranged = len(reader.last_opened)
            assert got == expected, f"range count {got} != {expected}"
            total, full_ms = timed(lambda: count_detections(reader))
            opened_full = len(reader.last_opened)
            assert total == sum(1 for j in range(i) if j % 2)
            assert opened_ranged < opened_full, (
                f"time index failed to prune: opened {opened_ranged}/{opened_full}"
            )
            rows.append(
                {
                    "segments": opened_full,
                    "rows": i,
                    "range_query_ms": ranged_ms,
                    "range_files_opened": opened_ranged,
                    "full_scan_ms": full_ms,
                    "full_files_opened": opened_full,
                }
            )
    return rows


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true", help="CI-sized run")
    args = parser.parse_args(argv)

    n_records = 2_000 if args.quick else 20_000
    repeats = 2 if args.quick else 5
    segment_counts = [4, 16] if args.quick else [4, 16, 64, 128]

    ingest = bench_ingest(n_records, repeats)
    print_table(
        "store ingest rate",
        ["format", "records/s", "bytes/record"],
        [
            [fmt, f"{r['records_per_s']:,.0f}", f"{r['bytes_per_record']:.1f}"]
            for fmt, r in ingest.items()
        ],
    )

    ranged = bench_range_query(segment_counts, repeats)
    print_table(
        "range-query latency vs segment count",
        ["segments", "rows", "1s query (ms)", "files opened", "full scan (ms)"],
        [
            [
                str(r["segments"]),
                str(r["rows"]),
                f"{r['range_query_ms']:.2f}",
                f"{r['range_files_opened']}/{r['full_files_opened']}",
                f"{r['full_scan_ms']:.2f}",
            ]
            for r in ranged
        ],
    )

    path = record_bench(
        "queries",
        {
            "quick": args.quick,
            "platform": {
                "python": platform.python_version(),
                "machine": platform.machine(),
            },
            "ingest": ingest,
            "range_query": ranged,
        },
    )
    print(f"\nwrote {Path(path).name}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
