"""Figure 5 — the ratio of frames executed in each filter.

The paper shows, for car detection (TOR=0.435) and person detection
(TOR=0.259), what fraction of all frames each cascade stage actually
executes, annotated with the stages' execution speeds (about 20K, 2K, 200,
and 56 FPS).  The staircase — every stage executes a subset of its
predecessor's output, with the expensive stages seeing only a TOR-sized
sliver — is the entire point of FFS-VA.
"""

import pytest

from repro.devices.costs import CostModel
from repro.sim import simulate_offline

from common import ACCURACY_POINT, fleet, print_table, record

CASES = [
    ("car", "jackson", 0.435),
    ("person", "coral", 0.259),
]


@pytest.mark.parametrize("label,workload,tor", CASES, ids=[c[0] for c in CASES])
def test_fig5_filter_ratios(benchmark, label, workload, tor):
    traces = fleet(2, workload, tor)
    m = benchmark.pedantic(
        lambda: simulate_offline(traces, ACCURACY_POINT), rounds=1, iterations=1
    )

    cm = CostModel()
    speeds = {
        "sdd": cm.effective_fps("sdd"),
        "snm": cm.effective_fps("snm", 10),
        "tyolo": cm.effective_fps("tyolo", 2),
        "ref": cm.effective_fps("ref"),
    }
    rows = [
        [stage, m.stage_fraction(stage), f"{speeds[stage]:.0f} FPS"]
        for stage in ("sdd", "snm", "tyolo", "ref")
    ]
    print_table(
        f"Figure 5 ({label} detection, TOR={tor})",
        ["filter", "fraction of frames executed", "stage speed"],
        rows,
    )
    record(
        f"fig5/{label}",
        {
            "tor": tor,
            "fractions": {s: m.stage_fraction(s) for s in ("sdd", "snm", "tyolo", "ref")},
            "stage_speeds_fps": {k: round(v) for k, v in speeds.items()},
            "paper": {"stage_speeds_fps": {"sdd": 20000, "snm": 2000, "tyolo": 200, "ref": 56}},
        },
    )

    # Shape assertions.
    fracs = [m.stage_fraction(s) for s in ("sdd", "snm", "tyolo", "ref")]
    # Every frame passes SDD; each later stage executes no more than the
    # previous one; the reference model sees roughly a TOR-sized fraction.
    assert fracs[0] == pytest.approx(1.0)
    assert fracs[0] >= fracs[1] >= fracs[2] >= fracs[3]
    assert fracs[3] < 0.75 * fracs[0]
    assert abs(fracs[3] - tor) < 0.25
    # Stage speeds land in the paper's regime (Figure 5 caption).
    assert 15_000 < speeds["sdd"] < 25_000
    assert 1_200 < speeds["snm"] < 3_000
    assert 150 < speeds["tyolo"] < 230
    assert 45 < speeds["ref"] < 67
