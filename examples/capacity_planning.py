#!/usr/bin/env python
"""Capacity planning for a camera deployment on FFS-VA servers.

Given a fleet of cameras with known activity levels (TORs), how many
two-GPU FFS-VA servers does the deployment need, and which batch mechanism
should each run?  This example uses the calibrated simulator to build the
Figure 6a capacity curve, applies it to a mixed camera fleet, and compares
batch mechanisms at the chosen load — the workflow an operator would
actually follow.

    python examples/capacity_planning.py
"""

import math

from repro import FFSVAConfig, jackson
from repro.baseline import baseline_online
from repro.core.admission import max_realtime_streams
from repro.core.tracecache import workload_trace
from repro.sim import simulate_online

CONFIG = FFSVAConfig(filter_degree=1.0, batch_policy="feedback", batch_size=10)


def capacity_at(tor: float) -> int:
    base = workload_trace(jackson(), 1500, tor=tor, seed=0)

    def run(n):
        traces = [base.rotated(613 * i).renamed(f"cam-{i}") for i in range(n)]
        return simulate_online(traces, CONFIG)

    best, _ = max_realtime_streams(run, n_max=48)
    return best


def main() -> None:
    print("== per-server capacity vs camera activity (Figure 6a curve) ==")
    curve: dict[float, int] = {}
    for tor in (0.05, 0.1, 0.2, 0.4, 0.8):
        curve[tor] = capacity_at(tor)
        print(f"  TOR {tor:4.2f}: {curve[tor]:3d} streams per server")

    # A deployment: quiet residential cameras, busier arterials, one mall.
    fleet = {0.05: 40, 0.1: 25, 0.2: 12, 0.4: 6, 0.8: 2}
    print("\n== deployment plan ==")
    servers = 0.0
    for tor, n_cams in fleet.items():
        cap = curve[tor]
        frac = n_cams / cap
        servers += frac
        print(f"  {n_cams:3d} cameras @ TOR {tor:4.2f} -> {frac:.2f} servers")
    print(f"total: {servers:.2f} -> provision {math.ceil(servers)} FFS-VA servers")

    base = workload_trace(jackson(), 1500, tor=0.1, seed=0)

    def base_run(n):
        traces = [base.rotated(613 * i).renamed(f"cam-{i}") for i in range(n)]
        return baseline_online(traces)

    base_cap, _ = max_realtime_streams(base_run, n_max=12)
    total_cams = sum(fleet.values())
    print(f"(the YOLOv2 baseline at {base_cap}/server would need "
          f"{math.ceil(total_cams / max(base_cap, 1))} servers for the same fleet)")

    print("\n== batch mechanism at the planned load ==")
    n = max(2, curve[0.1] // 2)
    traces = [base.rotated(613 * i).renamed(f"cam-{i}") for i in range(n)]
    for policy in ("feedback", "dynamic"):
        m = simulate_online(traces, CONFIG.with_(batch_policy=policy))
        print(f"  {policy:>8}: mean frame latency {m.frame_latency.mean:.2f}s, "
              f"GPU0 util {m.device_utilization['gpu0']:.0%}")
    print("pick dynamic for latency-sensitive alerting, feedback for peak capacity.")


if __name__ == "__main__":
    main()
