#!/usr/bin/env python
"""Scene-switch detection and retraining (Section 5.5, "Scene Switch").

Specialized models assume a fixed viewpoint.  Periodic lighting cycles are
fine — the SDD threshold is calibrated across them — but "when the scene
changes dramatically or the function and position of the camera have
changed, the previous specialized models will no longer work" and FFS-VA
must retrain.

This example runs a camera through three phases:

1. normal operation on the trained scene (monitor stays quiet),
2. a strong day/night lighting swing (monitor still quiet — the gain-
   corrected filters absorb global lighting), and
3. a camera repositioning (new viewpoint): the monitor trips, the stale
   models visibly misbehave, and retraining restores accuracy.

    python examples/scene_switch_retraining.py
"""

import numpy as np

from repro.models import ModelZoo, SceneChangeMonitor
from repro.video import RenderOptions, VideoStream, make_script


def stream_for(seed: int, lighting_amplitude: float = 0.06) -> VideoStream:
    script = make_script(1500, 0.3, kind="car", height=100, width=150, seed=seed)
    return VideoStream(
        script,
        stream_id=f"cam-view-{seed}",
        render_options=RenderOptions(
            lighting_amplitude=lighting_amplitude, lighting_period=900.0
        ),
    )


def presence_accuracy(zoo: ModelZoo, bundle, stream: VideoStream, ts) -> float:
    px = stream.pixel_batch(ts)
    truth = stream.gt_counts()[ts] > 0
    probs = bundle.snm.predict_proba(px)
    pred = bundle.snm.passes(probs, 0.5)
    return float((pred == truth).mean())


def main() -> None:
    old_view = stream_for(seed=300)
    zoo = ModelZoo()
    print("training specialized models on the original viewpoint ...")
    bundle = zoo.train_for_stream(old_view, n_train_frames=300, stride=2)
    monitor = SceneChangeMonitor(
        sdd_threshold=bundle.sdd.threshold, window=100, patience=2
    )

    print("\nphase 1: normal operation")
    ts = np.arange(600, 1000)
    monitor.observe(bundle.sdd.distances(old_view.pixel_batch(ts)))
    acc = presence_accuracy(zoo, bundle, old_view, np.arange(1000, 1400, 4))
    print(f"  scene change flagged: {monitor.scene_changed}; SNM accuracy {acc:.1%}")

    print("\nphase 2: strong day/night lighting swing (same viewpoint)")
    swing = stream_for(seed=300, lighting_amplitude=0.15)
    monitor.observe(bundle.sdd.distances(swing.pixel_batch(np.arange(0, 400))))
    print(f"  scene change flagged: {monitor.scene_changed} "
          "(global lighting is gain-corrected, not a scene switch)")

    print("\nphase 3: camera repositioned to a new viewpoint")
    new_view = stream_for(seed=301)
    monitor.observe(bundle.sdd.distances(new_view.pixel_batch(np.arange(0, 400))))
    stale_acc = presence_accuracy(zoo, bundle, new_view, np.arange(400, 800, 4))
    print(f"  scene change flagged: {monitor.scene_changed}; "
          f"stale-model SNM accuracy {stale_acc:.1%}")

    if monitor.scene_changed:
        print("\nretraining for the new viewpoint "
              "(the paper quotes ~1 hour; here it is seconds) ...")
        new_bundle = zoo.train_for_stream(new_view, n_train_frames=300, stride=2)
        monitor.reset()
        fresh_acc = presence_accuracy(zoo, new_bundle, new_view, np.arange(400, 800, 4))
        print(f"  retrained SNM accuracy {fresh_acc:.1%} "
              f"(was {stale_acc:.1%} with the stale models)")


if __name__ == "__main__":
    main()
