#!/usr/bin/env python
"""Post-facto search: find crowded moments in a day of aquarium footage.

The paper's second use case is offline analysis — "all stored videos need
to be processed as fast as possible to capture interesting scenes."  This
example scans a Coral-reef-like recording for frames with several visitors,
sweeps the FilterDegree knob to show the accuracy/efficiency trade-off
(Figure 7's experiment as a user workflow), and reports scene-level
accuracy against the reference-model oracle.

    python examples/aquarium_offline_search.py
"""

from repro import FFSVA, FFSVAConfig, coral, make_stream
from repro.analytics import error_rate, scene_accuracy
from repro.sim import simulate_offline


def main() -> None:
    stream = make_stream(coral(), 2400, tor=0.4, seed=23)
    print(f"scanning {stream.stream_id}: {len(stream)} frames, TOR={stream.tor():.2f}")

    system = FFSVA(FFSVAConfig(filter_degree=0.5, number_of_objects=2))
    system.train(stream, n_train_frames=300, stride=2)

    # One pass of the real models produces a trace we can re-threshold and
    # re-simulate instantly (this is how the paper sweeps its knobs too).
    print("tracing the cascade observables (incl. reference oracle) ...")
    trace = system.trace(stream, with_ref=True)

    print("\nFilterDegree sweep (offline, NumberofObjects=2):")
    print(f"{'FD':>5} {'output frames':>14} {'est. FPS':>10} "
          f"{'frame err':>10} {'scenes lost':>12}")
    for fd in (0.0, 0.25, 0.5, 0.75, 1.0):
        cfg = system.config.with_(filter_degree=fd)
        out = int(trace.cascade_pass(fd, cfg.number_of_objects, cfg.relax).sum())
        m = simulate_offline([trace], cfg)
        err = error_rate(trace, cfg)
        sc = scene_accuracy(trace, cfg)
        print(f"{fd:5.2f} {out:14d} {m.throughput_fps:10.0f} "
              f"{err:10.3%} {sc.n_lost:6d}/{sc.n_scenes}")

    # T-YOLO undercounts grouped people (it merges adjacent small objects),
    # so a strict count threshold loses crowded scenes.  Apply the paper's
    # Section 5.3.3 remedy: relax the count threshold by one, then pick the
    # most aggressive FilterDegree that still loses (almost) no scene.
    print("\nrelaxing the T-YOLO count threshold (Section 5.3.3):")
    for relax in (0, 1, 2):
        cfg = system.config.with_(relax=relax)
        sc = scene_accuracy(trace, cfg)
        print(f"  relax={relax}: scene recall {sc.detection_rate:.1%}, "
              f"frame error {error_rate(trace, cfg):.3%}")

    chosen_fd, chosen_relax = 0.0, 2
    for relax in (1, 2):
        for fd in (1.0, 0.75, 0.5, 0.25, 0.0):
            cfg = system.config.with_(filter_degree=fd, relax=relax)
            if scene_accuracy(trace, cfg).n_lost == 0:
                chosen_fd, chosen_relax = fd, relax
                break
        else:
            continue
        break
    print(f"\nchosen operating point: FilterDegree={chosen_fd}, relax={chosen_relax}")

    cfg = system.config.with_(filter_degree=chosen_fd, relax=chosen_relax)
    survivors = trace.cascade_pass(chosen_fd, cfg.number_of_objects, cfg.relax)
    hits = [i for i in range(len(trace)) if survivors[i]]
    print(f"{len(hits)} candidate frames forwarded to the full-feature model "
          f"({len(hits)/len(trace):.0%} of the recording)")
    sc = scene_accuracy(trace, cfg)
    print(f"scene recall vs oracle: {sc.detection_rate:.1%} "
          f"({sc.n_detected}/{sc.n_scenes} crowded scenes found)")
    if hits:
        print(f"first crowded moment: frame {hits[0]} "
              f"(t={hits[0]/stream.fps:.1f}s into the recording)")
    print("note: counting dense small targets is the paper's documented hard "
          "case (Figure 8b) — relaxation recovers most, not all, of the recall.")


if __name__ == "__main__":
    main()
