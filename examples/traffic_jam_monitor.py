#!/usr/bin/env python
"""Traffic-jam monitoring: the paper's motivating online scenario.

"At a crossroad, more cars detected than usual ... means a traffic jam."
We configure FFS-VA with NumberofObjects=2 so only frames with at least two
vehicles count as events, then:

1. serve a small fleet with the real threaded pipeline to show live event
   detection, and
2. scale the same configuration to paper size on the calibrated simulator,
   finding the instance's real-time capacity and demonstrating the
   Section 4.3.1 re-forwarding rule across two instances.

    python examples/traffic_jam_monitor.py
"""

from repro import FFSVA, FFSVAConfig, jackson, make_streams
from repro.core.admission import InstanceGroup, max_realtime_streams
from repro.core.tracecache import workload_trace
from repro.sim import simulate_online


def live_demo(system: FFSVA) -> None:
    print("== live demo: 2 intersections, real inference ==")
    streams = make_streams(jackson(), 2, 1200, tor=0.35, seed=11)
    for s in streams:
        system.train(s, n_train_frames=250, stride=2)
    report = system.serve_online(streams, n_frames=300, paced_fps=300.0)
    m = report.metrics
    print(f"served {m.n_streams} streams, {m.frames_ingested} frames, "
          f"{m.throughput_fps:.0f} FPS")
    jams = [ev for ev in report.events]
    print(f"{len(jams)} congested frames (>=2 vehicles); first three:")
    for ev in jams[:3]:
        print(f"  {ev.stream_id} frame {ev.index}: {ev.ref_count} vehicles")


def capacity_study(config: FFSVAConfig) -> None:
    print("\n== paper-scale capacity on the calibrated simulator ==")
    base = workload_trace(jackson(), 2000, tor=0.103, seed=0)

    def run(n):
        traces = [base.rotated(731 * i).renamed(f"cam-{i}") for i in range(n)]
        return simulate_online(traces, config)

    best, runs = max_realtime_streams(run, n_max=48)
    print(f"one FFS-VA instance sustains {best} live 30 FPS intersections")
    m = runs[best]
    print(f"  at capacity: GPU0 util {m.device_utilization['gpu0']:.0%}, "
          f"T-YOLO rate {m.extra['tyolo_fps']:.0f} FPS, "
          f"mean event latency {m.ref_latency.mean:.2f}s")


def reforwarding_demo(config: FFSVAConfig) -> None:
    print("\n== overload re-forwarding between two instances ==")
    base = workload_trace(jackson(), 1200, tor=0.103, seed=1)
    traces = [base.rotated(977 * i).renamed(f"cam-{i}") for i in range(60)]

    group = InstanceGroup(2, lambda ts: simulate_online(ts, config), config)
    # Deliberately unbalanced initial placement: 48 vs 12 streams, with the
    # first instance well past one server's capacity.
    group.assignments[0] = traces[:48]
    group.assignments[1] = traces[48:]
    for epoch in range(10):
        group.epoch()
        h = group.history[-1]
        sizes = [len(a) for a in group.assignments]
        moved = h["moved"] or "-"
        print(f"  epoch {epoch}: ingest ratios "
              f"{[round(r, 3) for r in h['ratios']]}, sizes {sizes}, moved {moved}")
    final = [len(a) for a in group.assignments]
    print(f"final placement: {final[0]} vs {final[1]} streams")


def main() -> None:
    config = FFSVAConfig(
        filter_degree=1.0,
        number_of_objects=2,  # two or more cars = congestion candidate
        relax=1,              # relaxed threshold per Section 5.3.3
        batch_policy="dynamic",
        batch_size=10,
    )
    system = FFSVA(config)
    live_demo(system)
    capacity_study(config)
    reforwarding_demo(config)


if __name__ == "__main__":
    main()
