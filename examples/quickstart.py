#!/usr/bin/env python
"""Quickstart: train FFS-VA's specialized filters and analyze a clip.

Runs the *real* pipeline end to end — synthetic surveillance video,
reference-model labelling, SDD threshold calibration, SNM training with the
built-in NumPy CNN framework, and the threaded four-stage cascade — then
prints what survived and how much work the filters saved.

    python examples/quickstart.py
"""

from repro import FFSVA, FFSVAConfig, jackson, make_stream


def main() -> None:
    # A Jackson-Hole-like stream: cars crossing a fixed-viewpoint scene,
    # with target objects in ~30% of frames.
    stream = make_stream(jackson(), 2400, tor=0.3, seed=7)
    print(f"stream {stream.stream_id}: {len(stream)} frames, TOR={stream.tor():.2f}")

    # FilterDegree 0.5 and one target object: "is there a car at all?".
    system = FFSVA(FFSVAConfig(filter_degree=0.5, number_of_objects=1, batch_size=8))

    print("training SDD + SNM on reference-model labels ...")
    bundle = system.train(stream, n_train_frames=300, stride=2)
    info = bundle.train_info
    print(
        f"  labelled {info['n_labelled']} frames "
        f"(positives {info['positive_rate']:.0%}); "
        f"delta_diff={info['sdd_threshold']:.2e}, "
        f"c_low={info['c_low']:.3f}, c_high={info['c_high']:.3f}"
    )

    print("analyzing 600 frames offline through the threaded pipeline ...")
    report = system.analyze_offline(stream, n_frames=600)
    m = report.metrics

    print(f"\nprocessed {m.frames_ingested} frames in {m.duration:.1f}s "
          f"({m.throughput_fps:.0f} FPS real compute)")
    for stage in ("sdd", "snm", "tyolo", "ref"):
        c = m.stages[stage]
        print(f"  {stage:>6}: executed {c.entered:4d} frames, filtered {c.filtered:4d}")
    saved = 1.0 - m.frames_to_ref / m.frames_ingested
    print(f"the cascade spared the full-feature model {saved:.0%} of all frames")

    print(f"\n{len(report.events)} event frames confirmed by the reference model; first five:")
    for ev in report.events[:5]:
        print(f"  frame {ev.index:4d}: {ev.ref_count} car(s), latency {ev.latency*1000:.0f} ms")


if __name__ == "__main__":
    main()
