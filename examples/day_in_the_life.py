#!/usr/bin/env python
"""A day in the life of one camera: diurnal TOR, memory-bounded scanning.

The paper's premise is that anomalies are rare *on average* — "the
target-object occurrence rate in a day is only 8%" — but arrive in rush-
hour bursts.  This example scans a synthetic 24-hour recording the way the
offline pipeline would:

* frames come through a :class:`~repro.video.ClipStore`, so the whole day
  never sits in memory (the paper: a 55 GB file analyzed in <8 GB of RAM),
* sliding-window TOR shows the day's activity profile,
* the analytic planner translates the quiet/rush extremes into how many
  such cameras one server carries at each hour, and
* the content-adaptive query planner (``plan="adaptive"``) rides the same
  diurnal curve live: cascade exit depth downshifts to the SDD through the
  small hours and climbs back to the full graph for the rushes.

    python examples/day_in_the_life.py
"""

import numpy as np

from repro.analytics import sliding_tor
from repro.core import FFSVAConfig, build_trace, plan_capacity
from repro.models import ModelZoo
from repro.sim import PipelineSimulator
from repro.video import ClipStore, day_stream


def spark(values, width: int = 48) -> str:
    """Render a series as a text sparkline."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    top = arr.max() or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in arr)


def main() -> None:
    # 125 frames/hour makes the day exactly one of the renderer's 3000-frame
    # lighting cycles, so illumination extremes coincide with the rush hours
    # instead of strobing the SDD at random night hours.
    frames_per_hour = 125
    day = day_stream(frames_per_hour=frames_per_hour, seed=17)
    print(f"one synthetic day: {len(day)} frames, average TOR {day.tor():.3f} "
          "(the paper cites 8% for real webcams)")

    # Memory-bounded scan of the whole day.
    h, w = day.shape
    budget = 4 * 64 * h * w * 4  # four chunks
    store = ClipStore(day, chunk_frames=64, memory_budget_bytes=budget)
    for _start, _chunk in store.iter_chunks():
        pass  # the offline pipeline would run the filters here
    st = store.stats()
    print(f"scanned {st['total_video_bytes']/2**20:.0f} MB of video within a "
          f"{st['memory_budget_bytes']/2**20:.1f} MB frame cache "
          f"(peak {st['peak_bytes']/2**20:.1f} MB)")

    # The day's activity profile.
    counts = day.gt_counts()
    tor_series = sliding_tor(counts, window=frames_per_hour)
    print("\nactivity over the day (sliding 1-hour TOR):")
    print(f"  {spark(tor_series)}")
    print("  00h" + " " * 42 + "24h")

    # Train once, then ask the planner what each hour costs.  Training
    # samples span the whole day — the paper's Section 5.5 advice for
    # periodic scene changes: "the training data just needs to include
    # representative frames under all conditions" (otherwise the SDD
    # threshold, calibrated on morning lighting, passes everything at night).
    print("\ntraining specialized models (sampled across the day) ...")
    zoo = ModelZoo()
    trace = build_trace(
        day, zoo, n_frames=len(day), n_train_frames=600, stride=len(day) // 600
    )
    config = FFSVAConfig(filter_degree=1.0, batch_policy="feedback", batch_size=10)
    print(f"{'hour':>5} {'TOR':>6} {'streams/server':>15}")
    for hour in (3, 8, 13, 18, 22):
        part = trace.sliced(hour * frames_per_hour, (hour + 1) * frames_per_hour)
        plan = plan_capacity(part, config)
        print(f"{hour:>4}h {part.tor():>6.3f} {plan.max_streams:>15}")
    whole = plan_capacity(trace, config)
    print(f"whole-day average -> {whole.max_streams} streams/server "
          f"(bottleneck {whole.bottleneck_device})")
    print("\nprovisioning for the rush hour, not the average, is the cost of "
          "latency guarantees; the paper's remedy is storing bursts for later.")

    # The content-adaptive query planner, live over the same day: one
    # decision per 64-frame chunk from the SDD's observed pass fraction,
    # hysteresis-debounced so the depth follows the diurnal curve rather
    # than frame noise.
    adaptive = config.with_(plan="adaptive", plan_epoch=64)
    sim = PipelineSimulator([trace], adaptive, online=False)
    sim.run()
    planner = sim._planner
    filters = [s.name for s in sim.graph if not s.terminal]
    depths = [
        filters.index(planner.plan_for(0, f).depth) + 1
        for f in range(0, len(trace), adaptive.plan_epoch)
    ]
    print(f"\nadaptive cascade depth over the day ({len(planner.decisions)} "
          "plan switches, 1 = exit at SDD, "
          f"{len(filters)} = full graph):")
    print(f"  {spark(depths)}")
    print("  00h" + " " * 42 + "24h")
    print(f"{'hour':>5} {'TOR':>6} {'modal depth':>12}")
    for hour in (2, 8, 13, 18, 23):
        lo = hour * frames_per_hour
        hs = [
            filters.index(planner.plan_for(0, f).depth) + 1
            for f in range(lo, lo + frames_per_hour, adaptive.plan_epoch)
        ]
        tor_h = trace.sliced(lo, lo + frames_per_hour).tor()
        modal = max(set(hs), key=hs.count)
        print(f"{hour:>4}h {tor_h:>6.3f} {modal:>12}")
    print("\nthe quiet hours run on the SDD alone; the rushes climb back to "
          "the full cascade — capacity follows content, not the clock.")


if __name__ == "__main__":
    main()
