#!/usr/bin/env python
"""A day in the life of one camera: diurnal TOR, memory-bounded scanning.

The paper's premise is that anomalies are rare *on average* — "the
target-object occurrence rate in a day is only 8%" — but arrive in rush-
hour bursts.  This example scans a synthetic 24-hour recording the way the
offline pipeline would:

* frames come through a :class:`~repro.video.ClipStore`, so the whole day
  never sits in memory (the paper: a 55 GB file analyzed in <8 GB of RAM),
* sliding-window TOR shows the day's activity profile, and
* the analytic planner translates the quiet/rush extremes into how many
  such cameras one server carries at each hour.

    python examples/day_in_the_life.py
"""

import numpy as np

from repro.analytics import sliding_tor
from repro.core import FFSVAConfig, build_trace, plan_capacity
from repro.models import ModelZoo
from repro.video import ClipStore, day_stream


def spark(values, width: int = 48) -> str:
    """Render a series as a text sparkline."""
    blocks = " .:-=+*#%@"
    arr = np.asarray(values, dtype=float)
    if len(arr) > width:
        edges = np.linspace(0, len(arr), width + 1).astype(int)
        arr = np.array([arr[a:b].mean() if b > a else 0.0 for a, b in zip(edges, edges[1:])])
    top = arr.max() or 1.0
    return "".join(blocks[min(int(v / top * (len(blocks) - 1)), len(blocks) - 1)] for v in arr)


def main() -> None:
    frames_per_hour = 300
    day = day_stream(frames_per_hour=frames_per_hour, seed=17)
    print(f"one synthetic day: {len(day)} frames, average TOR {day.tor():.3f} "
          "(the paper cites 8% for real webcams)")

    # Memory-bounded scan of the whole day.
    h, w = day.shape
    budget = 4 * 64 * h * w * 4  # four chunks
    store = ClipStore(day, chunk_frames=64, memory_budget_bytes=budget)
    for _start, _chunk in store.iter_chunks():
        pass  # the offline pipeline would run the filters here
    st = store.stats()
    print(f"scanned {st['total_video_bytes']/2**20:.0f} MB of video within a "
          f"{st['memory_budget_bytes']/2**20:.1f} MB frame cache "
          f"(peak {st['peak_bytes']/2**20:.1f} MB)")

    # The day's activity profile.
    counts = day.gt_counts()
    tor_series = sliding_tor(counts, window=frames_per_hour)
    print("\nactivity over the day (sliding 1-hour TOR):")
    print(f"  {spark(tor_series)}")
    print("  00h" + " " * 42 + "24h")

    # Train once, then ask the planner what each hour costs.  Training
    # samples span the whole day — the paper's Section 5.5 advice for
    # periodic scene changes: "the training data just needs to include
    # representative frames under all conditions" (otherwise the SDD
    # threshold, calibrated on morning lighting, passes everything at night).
    print("\ntraining specialized models (sampled across the day) ...")
    zoo = ModelZoo()
    trace = build_trace(
        day, zoo, n_frames=len(day), n_train_frames=600, stride=len(day) // 600
    )
    config = FFSVAConfig(filter_degree=1.0, batch_policy="feedback", batch_size=10)
    print(f"{'hour':>5} {'TOR':>6} {'streams/server':>15}")
    for hour in (3, 8, 13, 18, 22):
        part = trace.sliced(hour * frames_per_hour, (hour + 1) * frames_per_hour)
        plan = plan_capacity(part, config)
        print(f"{hour:>4}h {part.tor():>6.3f} {plan.max_streams:>15}")
    whole = plan_capacity(trace, config)
    print(f"whole-day average -> {whole.max_streams} streams/server "
          f"(bottleneck {whole.bottleneck_device})")
    print("\nprovisioning for the rush hour, not the average, is the cost of "
          "latency guarantees; the paper's remedy is storing bursts for later.")


if __name__ == "__main__":
    main()
