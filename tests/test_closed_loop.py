"""Closed-loop observability integration tests.

Four planes, one loop:

* **admission** — both runtimes drive the same sampler-fed
  :class:`~repro.core.admission.AdmissionController`, so configs with a
  deterministic outcome must produce *identical* decision logs on the wall
  clock and the virtual clock;
* **baseline telemetry** — the YOLOv2-everywhere baseline emits the same
  six-kind event schema as the cascade, so its trace overlays the FFS-VA
  trace on one timeline;
* **rotating trace export** — long runs segment into bounded files with a
  manifest, and ``max_segments`` caps total disk;
* **dashboard** — the committed Grafana JSON matches the generated model
  and every panel queries only exported metric families.
"""

import json

import pytest

from repro.baseline import BaselineSimulator, baseline_offline
from repro.core import FFSVAConfig, build_trace
from repro.core.pipeline import STAGES
from repro.models import ModelZoo
from repro.nn import TrainConfig
from repro.obs import (
    EVENT_KINDS,
    Telemetry,
    build_spans,
    overlay_chrome_trace,
    render_prometheus,
)
from repro.obs.trace import RotatingTraceWriter, dump_rotating_trace
from repro.runtime import ThreadedPipeline
from repro.sim import PipelineSimulator
from repro.video import jackson, make_stream

from tests.helpers import make_synth_trace

N_FRAMES = 240


@pytest.fixture(scope="module")
def fleet():
    """Two small trained streams plus their traces (one model zoo).

    Two streams keep the threaded run long enough (~1 s wall) for the
    admission window to fill on the wall clock as well as the virtual one.
    """
    zoo = ModelZoo()
    streams, traces = [], []
    for i, tor in enumerate((0.25, 0.45)):
        stream = make_stream(jackson(), N_FRAMES, tor=tor, seed=40 + i)
        zoo.train_for_stream(
            stream,
            n_train_frames=120,
            stride=2,
            train_config=TrainConfig(epochs=6, batch_size=32, seed=7),
        )
        streams.append(stream)
        traces.append(build_trace(stream, zoo))
    return streams, traces, zoo


def _loop_config(**overrides):
    """Telemetry-on config with shed disabled (huge queue thresholds) so the
    admission decision sequence is deterministic across runtimes."""
    base = dict(
        telemetry=True,
        queue_depths={s: 10_000 for s in STAGES},
    )
    base.update(overrides)
    return FFSVAConfig(**base)


# ---------------------------------------------------------------------------
# cross-runtime admission equivalence
# ---------------------------------------------------------------------------
class TestCrossRuntimeAdmission:
    def _labels(self, metrics):
        admission = metrics.extra["admission"]
        return [d["state"] for d in admission["decisions"]]

    def test_both_runtimes_admit_identically(self, fleet):
        # Threshold far above any achievable rate + a short window: every
        # runtime must conclude "spare capacity" exactly once.
        streams, traces, zoo = fleet
        config = _loop_config(admission_tyolo_fps=1e9, admission_window=0.5)
        m_real = ThreadedPipeline(streams, zoo, config).run()
        m_sim = PipelineSimulator(traces, config, online=False).run()
        assert self._labels(m_real) == ["admit"]
        assert self._labels(m_sim) == ["admit"]
        assert m_real.extra["admission"]["rate_stage"] == "tyolo"
        assert m_sim.extra["admission"]["rate_stage"] == "tyolo"

    def test_both_runtimes_hold_identically(self, fleet):
        # A zero threshold can never be satisfied (strict <): no
        # transition is ever logged by either runtime.
        streams, traces, zoo = fleet
        config = _loop_config(admission_tyolo_fps=0.0, admission_window=0.5)
        m_real = ThreadedPipeline(streams, zoo, config).run()
        m_sim = PipelineSimulator(traces, config, online=False).run()
        assert self._labels(m_real) == []
        assert self._labels(m_sim) == []
        assert m_real.extra["admission"]["state"] == "hold"
        assert m_sim.extra["admission"]["state"] == "hold"

    def test_sampler_carries_the_admission_signals(self, fleet):
        # The series the controller reads must actually be swept by the
        # runtime: stage_fps for the rate stage, queue_depth for the queues.
        _, traces, _ = fleet
        telemetry = Telemetry.from_config(_loop_config())
        sim = PipelineSimulator(traces, _loop_config(), online=False, telemetry=telemetry)
        sim.run()
        names = telemetry.sampler.names
        assert "stage_fps[tyolo]" in names
        assert any(n.startswith("queue_depth[") for n in names)
        assert sim.admission.sampler is telemetry.sampler


# ---------------------------------------------------------------------------
# baseline telemetry schema + overlay
# ---------------------------------------------------------------------------
def _baseline_traces(n_streams, n=300, seed=0):
    return [
        make_synth_trace(n, 0.7, 0.18, 0.10, seed=seed + i, stream_id=f"s{i}")
        for i in range(n_streams)
    ]


class TestBaselineTelemetry:
    def test_emits_shared_event_schema(self):
        telemetry = Telemetry()
        sim = BaselineSimulator(_baseline_traces(2), online=True, telemetry=telemetry)
        sim.run()
        kinds = {e.kind for e in telemetry.bus.events()}
        assert kinds <= set(EVENT_KINDS)
        assert {"admission", "frame_enter", "batch_exec", "frame_pass"} <= kinds

    def test_blocked_streams_emit_queue_block(self):
        # Overload the two GPUs so the ref queue backs up.
        telemetry = Telemetry()
        sim = BaselineSimulator(_baseline_traces(8), online=True, telemetry=telemetry)
        sim.run(max_virtual_time=10.0)
        kinds = {e.kind for e in telemetry.bus.events()}
        assert "queue_block" in kinds

    def test_samples_and_latency_histograms(self):
        telemetry = Telemetry()
        metrics = baseline_offline(_baseline_traces(1), telemetry=telemetry)
        names = telemetry.sampler.names
        assert "queue_depth[ref]" in names
        assert "stage_fps[ref]" in names
        assert any(n.startswith("device_utilization[") for n in names)
        rendered = render_prometheus(metrics, telemetry)
        assert "ffsva_frame_latency_seconds_hist_bucket" in rendered
        assert "ffsva_stage_exec_seconds_hist_bucket" in rendered

    def test_spans_build_from_baseline_events(self):
        telemetry = Telemetry()
        BaselineSimulator(_baseline_traces(1, n=120), telemetry=telemetry).run()
        spans = build_spans(telemetry.bus.events(), terminal="ref")
        analyzed = [s for s in spans if s.disposition == "analyzed"]
        assert len(analyzed) == 120
        assert all(s.stage == "ref" for s in spans)
        assert all(s.t_end >= s.t_start >= 0.0 for s in spans)

    def test_overlay_puts_both_runs_on_one_timeline(self, fleet):
        _, traces, _ = fleet
        tel_ffsva = Telemetry()
        PipelineSimulator(traces, _loop_config(), online=False, telemetry=tel_ffsva).run()
        tel_base = Telemetry()
        BaselineSimulator(_baseline_traces(1, n=120), telemetry=tel_base).run()
        merged = overlay_chrome_trace(
            {"ffsva": tel_ffsva.spans(), "baseline": tel_base.spans()}
        )
        names = {
            e["args"]["name"]
            for e in merged["traceEvents"]
            if e.get("name") == "process_name"
        }
        assert any(n.startswith("ffsva:stream-") for n in names)
        assert any(n.startswith("baseline:stream-") for n in names)
        # Disjoint pid ranges keep the runs as separate Perfetto processes.
        ffsva_pids = {
            e["pid"]
            for e in merged["traceEvents"]
            if e.get("name") == "process_name"
            and e["args"]["name"].startswith("ffsva:")
        }
        base_pids = {
            e["pid"]
            for e in merged["traceEvents"]
            if e.get("name") == "process_name"
            and e["args"]["name"].startswith("baseline:")
        }
        assert ffsva_pids and base_pids and not (ffsva_pids & base_pids)


# ---------------------------------------------------------------------------
# rotating trace export
# ---------------------------------------------------------------------------
class TestRotatingTraceExport:
    @pytest.fixture(scope="class")
    def long_run_spans(self):
        telemetry = Telemetry()
        trace = make_synth_trace(1500, 0.8, 0.5, 0.3, seed=5)
        PipelineSimulator(
            [trace], FFSVAConfig(telemetry=True), online=False, telemetry=telemetry
        ).run()
        spans = telemetry.spans()
        assert len(spans) > 1500  # multiple stage visits per frame
        return spans

    def test_segments_respect_byte_bound(self, long_run_spans, tmp_path):
        manifest = dump_rotating_trace(tmp_path, long_run_spans, max_bytes=16384)
        assert len(manifest["segments"]) >= 2
        for entry in manifest["segments"]:
            path = tmp_path / entry["file"]
            assert path.stat().st_size <= 16384
            assert path.stat().st_size == entry["bytes"]
            # Every segment is a self-contained, loadable trace.
            data = json.loads(path.read_text())
            assert data["traceEvents"]
            assert any(e.get("name") == "process_name" for e in data["traceEvents"])

    def test_manifest_indexes_segments_in_time_order(self, long_run_spans, tmp_path):
        manifest = dump_rotating_trace(tmp_path, long_run_spans, max_bytes=16384)
        on_disk = json.loads((tmp_path / "manifest.json").read_text())
        assert on_disk == manifest
        segs = manifest["segments"]
        assert sum(s["spans"] for s in segs) == len(long_run_spans)
        starts = [s["t_start"] for s in segs]
        assert starts == sorted(starts)
        assert manifest["dropped_segments"] == 0

    def test_max_segments_bounds_disk(self, long_run_spans, tmp_path):
        manifest = dump_rotating_trace(
            tmp_path, long_run_spans, max_bytes=16384, max_segments=2
        )
        assert manifest["dropped_segments"] > 0
        assert len(manifest["segments"]) == 2
        files = sorted(p.name for p in tmp_path.glob("trace-*.json"))
        assert files == [s["file"] for s in manifest["segments"]]

    def test_max_span_rolls_segments(self, long_run_spans, tmp_path):
        manifest = dump_rotating_trace(
            tmp_path, long_run_spans, max_bytes=50_000_000, max_span=2.0
        )
        assert len(manifest["segments"]) >= 2
        # The roll check fires on t_end, but a span entering long before it
        # executes can stretch a segment's extent by its queue residency.
        residency = max(s.t_end - s.t_enter for s in long_run_spans)
        for entry in manifest["segments"]:
            assert entry["t_end"] - entry["t_start"] <= 2.0 + residency

    def test_writer_validates_and_guards_close(self, tmp_path):
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path, max_bytes=100)
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path, max_span=0.0)
        with pytest.raises(ValueError):
            RotatingTraceWriter(tmp_path, max_segments=0)
        writer = RotatingTraceWriter(tmp_path)
        manifest = writer.close()
        assert manifest["segments"] == []

    def test_telemetry_dump_helper(self, tmp_path):
        telemetry = Telemetry()
        trace = make_synth_trace(300, 0.8, 0.5, 0.3, seed=6)
        PipelineSimulator(
            [trace], FFSVAConfig(telemetry=True), online=False, telemetry=telemetry
        ).run()
        manifest = telemetry.dump_rotating_trace(tmp_path, max_bytes=8192)
        assert manifest["segments"]
        assert (tmp_path / "manifest.json").exists()


# ---------------------------------------------------------------------------
# dashboard plane
# ---------------------------------------------------------------------------
class TestDashboardPlane:
    def test_generated_dashboard_validates_against_registry(self):
        from repro.obs.dashboard import grafana_dashboard, validate_dashboard

        assert validate_dashboard(grafana_dashboard()) == []

    def test_every_panel_family_is_served_by_a_live_run(self):
        from repro.obs.dashboard import validate_dashboard

        telemetry = Telemetry()
        trace = make_synth_trace(300, 0.8, 0.5, 0.3, seed=7)
        metrics = PipelineSimulator(
            [trace], FFSVAConfig(telemetry=True), online=False, telemetry=telemetry
        ).run()
        rendered = render_prometheus(metrics, telemetry)
        assert validate_dashboard(rendered=rendered) == []

    def test_committed_json_matches_generated_model(self):
        from pathlib import Path

        from repro.obs.dashboard import dashboard_json

        path = Path(__file__).resolve().parent.parent / "dashboards" / "grafana_ffsva.json"
        assert path.exists(), "run scripts/validate_dashboard.py --write"
        assert path.read_text() == dashboard_json()

    def test_extract_families_resolves_derived_series(self):
        from repro.obs.dashboard import extract_families

        fams = extract_families(
            "histogram_quantile(0.99, rate("
            "ffsva_frame_latency_seconds_hist_bucket[5m])) "
            "/ ffsva_throughput_fps"
        )
        assert fams == {"frame_latency_seconds_hist", "throughput_fps"}

    def test_unknown_family_is_reported(self):
        from repro.obs.dashboard import grafana_dashboard, validate_dashboard

        dashboard = grafana_dashboard()
        dashboard["panels"][0]["targets"][0]["expr"] = "ffsva_not_a_family_total"
        problems = validate_dashboard(dashboard)
        assert problems and "not_a_family" in problems[0]
