"""Tests for SimQueue and FeedbackQueue semantics."""

import threading
import time

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.queues import FeedbackQueue, QueueClosed, SimQueue


class TestSimQueue:
    def test_fifo_order(self):
        q = SimQueue(10)
        q.put_many([1, 2, 3])
        assert q.pop() == 1
        assert q.pop_batch(5) == [2, 3]

    def test_depth_enforced(self):
        q = SimQueue(2)
        q.put(1)
        q.put(2)
        assert not q.has_room(1)
        with pytest.raises(OverflowError):
            q.put(3)

    def test_unbounded(self):
        q = SimQueue(None)
        for i in range(1000):
            q.put(i)
        assert q.has_room(10_000)
        assert q.free_slots() is None

    def test_high_water_tracking(self):
        q = SimQueue(5)
        q.put_many([1, 2, 3])
        q.pop()
        q.put(4)
        assert q.high_water == 3
        assert q.total_in == 4

    def test_reservations_block_puts(self):
        q = SimQueue(3)
        assert q.reserve(2)
        q.put(1)
        assert not q.has_room(1)
        with pytest.raises(OverflowError):
            q.put(2)
        q.put(2, reserved=True)
        q.put(3, reserved=True)
        assert len(q) == 3

    def test_reserve_fails_when_full(self):
        q = SimQueue(1)
        q.put(1)
        assert not q.reserve(1)

    def test_put_reserved_without_reservation_raises(self):
        q = SimQueue(2)
        with pytest.raises(RuntimeError):
            q.put(1, reserved=True)

    def test_rejects_bad_depth(self):
        with pytest.raises(ValueError):
            SimQueue(0)

    @given(st.lists(st.sampled_from(["put", "pop"]), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_property_depth_invariant(self, ops):
        q = SimQueue(4)
        n_in = 0
        model = []
        for op in ops:
            if op == "put":
                if q.has_room(1):
                    q.put(n_in)
                    model.append(n_in)
                    n_in += 1
            else:
                if len(q) > 0:
                    assert q.pop() == model.pop(0)
            assert len(q) <= 4
        assert list(q._items) == model


class TestFeedbackQueue:
    def test_put_pop_roundtrip(self):
        q = FeedbackQueue(5)
        q.put("a")
        q.put("b")
        assert q.pop_batch(10) == ["a", "b"]

    def test_pop_batch_min_n_waits_for_full_batch(self):
        q = FeedbackQueue(10)
        q.put(1)
        out = q.pop_batch(4, min_n=4, timeout=0.05)
        assert out == []  # timed out waiting for a full batch
        for i in range(2, 5):
            q.put(i)
        assert q.pop_batch(4, min_n=4, timeout=0.5) == [1, 2, 3, 4]

    def test_put_blocks_until_room(self):
        q = FeedbackQueue(1)
        q.put(1)
        result = {}

        def producer():
            result["ok"] = q.put(2, timeout=2.0)

        t = threading.Thread(target=producer)
        t.start()
        time.sleep(0.05)
        assert q.pop_batch(1) == [1]
        t.join(timeout=2.0)
        assert result["ok"] is True
        assert q.pop_batch(1) == [2]

    def test_put_timeout_returns_false(self):
        q = FeedbackQueue(1)
        q.put(1)
        assert q.put(2, timeout=0.05) is False

    def test_close_wakes_consumer_with_remainder(self):
        q = FeedbackQueue(10)
        q.put(1)
        q.close()
        assert q.pop_batch(8, min_n=4, timeout=1.0) == [1]
        assert q.pop_batch(8, timeout=0.01) == []

    def test_put_after_close_raises(self):
        q = FeedbackQueue(2)
        q.close()
        with pytest.raises(QueueClosed):
            q.put(1)

    def test_producer_consumer_threads(self):
        q = FeedbackQueue(4)
        received = []

        def consumer():
            while True:
                batch = q.pop_batch(3, timeout=0.05)
                if batch:
                    received.extend(batch)
                elif q.closed and len(q) == 0:
                    return

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(200):
            q.put(i)
        q.close()
        t.join(timeout=5.0)
        assert received == list(range(200))

    def test_high_water_respects_depth(self):
        q = FeedbackQueue(3)
        done = threading.Event()

        def consumer():
            while not done.is_set() or len(q) > 0:
                q.pop_batch(2, timeout=0.01)

        t = threading.Thread(target=consumer)
        t.start()
        for i in range(50):
            q.put(i, timeout=2.0)
        done.set()
        t.join(timeout=5.0)
        assert q.high_water <= 3

    def test_pop_batch_rejects_bad_args(self):
        q = FeedbackQueue(2)
        with pytest.raises(ValueError):
            q.pop_batch(0)
        with pytest.raises(ValueError):
            q.pop_batch(2, min_n=3)

    def test_drain(self):
        q = FeedbackQueue(10)
        q.put(1)
        q.put(2)
        assert q.drain() == [1, 2]
        assert len(q) == 0

    def test_put_timeout_on_full_queue_counts_stall(self):
        q = FeedbackQueue(1)
        q.put(1)
        assert q.put(2, timeout=0.05) is False
        assert q.put(3, timeout=0.05) is False
        assert q.put_timeouts == 2
        assert q.snapshot() == {
            "depth": 1,
            "high_water": 1,
            "total_in": 1,
            "put_timeouts": 2,
            "closed": False,
        }
        # Item 1 is still there: a timed-out put mutates nothing else.
        assert q.pop_batch(5) == [1]

    def test_drain_racing_close_loses_nothing(self):
        # close() and drain() from different threads must never drop or
        # duplicate an item, whichever order the lock grants.
        for _ in range(50):
            q = FeedbackQueue(None)
            for i in range(20):
                q.put(i)
            drained: list = []
            barrier = threading.Barrier(2)

            def closer():
                barrier.wait()
                q.close()

            def drainer():
                barrier.wait()
                drained.extend(q.drain())

            threads = [threading.Thread(target=closer), threading.Thread(target=drainer)]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=2.0)
            assert q.closed
            assert drained + q.drain() == list(range(20))

    def test_pop_batch_min_n_short_batch_only_after_close(self):
        q = FeedbackQueue(10)
        q.put(1)
        q.put(2)
        # While open, min_n=3 must wait (and here time out) rather than
        # hand out a short batch.
        assert q.pop_batch(5, min_n=3, timeout=0.05) == []
        assert len(q) == 2
        q.close()
        # After close the remainder comes out even though it is short.
        assert q.pop_batch(5, min_n=3, timeout=0.5) == [1, 2]
        assert q.pop_batch(5, min_n=3, timeout=0.01) == []
