"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_rejects_unknown_workload(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["simulate", "--workload", "timessquare"])

    def test_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.workload == "jackson"
        assert args.mode == "offline"
        assert args.streams == 1

    def test_config_args_parsed(self):
        args = build_parser().parse_args(
            ["simulate", "--filter-degree", "1.0", "--batch-policy", "static",
             "--number-of-objects", "3", "--relax", "1"]
        )
        assert args.filter_degree == 1.0
        assert args.batch_policy == "static"
        assert args.number_of_objects == 3
        assert args.relax == 1

    def test_telemetry_args_parsed(self):
        args = build_parser().parse_args(
            ["simulate", "--telemetry", "--telemetry-port", "0",
             "--metrics-json", "m.json", "--trace-json", "t.json"]
        )
        assert args.telemetry is True
        assert args.telemetry_port == 0
        assert args.metrics_json == "m.json"
        assert args.trace_json == "t.json"
        # Telemetry defaults to off.
        assert build_parser().parse_args(["analyze"]).telemetry is False


class TestCommands:
    def test_workloads(self, capsys):
        assert main(["workloads"]) == 0
        out = capsys.readouterr().out
        assert "jackson" in out and "coral" in out

    def test_simulate_offline(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main(
            ["simulate", "--workload", "jackson", "--tor", "0.3",
             "--frames", "600", "--streams", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "throughput" in out
        assert "frames to reference model" in out

    def test_simulate_with_telemetry_artifacts(self, capsys, tmp_path, monkeypatch):
        import json

        from repro.core import RunMetrics

        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        metrics_path = tmp_path / "metrics.json"
        trace_path = tmp_path / "trace.json"
        code = main(
            ["simulate", "--workload", "jackson", "--tor", "0.3",
             "--frames", "400", "--telemetry",
             "--metrics-json", str(metrics_path), "--trace-json", str(trace_path)]
        )
        assert code == 0
        assert "telemetry:" in capsys.readouterr().out
        # --metrics-json round-trips through RunMetrics.from_json.
        m = RunMetrics.from_json(metrics_path.read_text())
        assert m.frames_ingested == 400
        assert set(m.stages) == {"sdd", "snm", "tyolo", "ref"}
        # --trace-json is loadable chrome://tracing input.
        assert json.loads(trace_path.read_text())["traceEvents"]

    def test_simulate_online(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main(
            ["simulate", "--tor", "0.3", "--frames", "600", "--streams", "2",
             "--mode", "online"]
        )
        assert code == 0
        assert "real-time" in capsys.readouterr().out

    def test_plan(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_TRACE_CACHE", str(tmp_path))
        code = main(["plan", "--tor", "0.3", "--frames", "600"])
        assert code == 0
        out = capsys.readouterr().out
        assert "max real-time streams" in out
        assert "bottleneck" in out

    def test_train_saves_models(self, capsys, tmp_path):
        out_dir = tmp_path / "models"
        code = main(
            ["train", "--tor", "0.3", "--frames", "700",
             "--train-frames", "150", "--out", str(out_dir)]
        )
        assert code == 0
        saved = list(out_dir.glob("*.npz"))
        assert len(saved) == 2  # weights + metadata
