"""Integration tests: threaded runtime, API facade, and runtime-vs-sim parity."""

import numpy as np
import pytest

from repro.api import FFSVA
from repro.core import FFSVAConfig, build_trace
from repro.models import ModelZoo
from repro.runtime import ThreadedPipeline
from repro.video import jackson, make_stream, make_streams


@pytest.fixture(scope="module")
def trained():
    """Two small trained streams shared by the expensive integration tests."""
    streams = make_streams(jackson(), 2, 700, tor=0.3, seed=61)
    zoo = ModelZoo()
    for s in streams:
        zoo.train_for_stream(s, n_train_frames=200, stride=2)
    return streams, zoo


class TestThreadedPipeline:
    def test_requires_trained_models(self):
        stream = make_stream(jackson(), 100, tor=0.3, seed=1)
        with pytest.raises(ValueError):
            ThreadedPipeline([stream], ModelZoo())

    def test_rejects_empty_streams(self):
        with pytest.raises(ValueError):
            ThreadedPipeline([], ModelZoo())

    def test_processes_every_frame_exactly_once(self, trained):
        streams, zoo = trained
        pipe = ThreadedPipeline(streams, zoo, FFSVAConfig(batch_size=8))
        m = pipe.run(n_frames=250)
        assert len(pipe.outcomes) == 2 * 250
        seen = {(o.stream_id, o.index) for o in pipe.outcomes}
        assert len(seen) == 2 * 250
        m.check_conservation()

    def test_outcome_stages_valid(self, trained):
        streams, zoo = trained
        pipe = ThreadedPipeline(streams, zoo, FFSVAConfig(batch_size=8))
        pipe.run(n_frames=150)
        for o in pipe.outcomes:
            assert o.stage in ("sdd", "snm", "tyolo", "ref")
            assert o.latency >= 0
            assert (o.ref_count is not None) == (o.stage == "ref")

    def test_queue_bounds_respected(self, trained):
        streams, zoo = trained
        cfg = FFSVAConfig(batch_policy="dynamic")
        pipe = ThreadedPipeline(streams, zoo, cfg)
        m = pipe.run(n_frames=200)
        for name, hw in m.queue_high_water.items():
            stage = name.split("[")[0]
            if stage == "ref":
                continue  # ref overflows to storage by default (Section 5.5)
            assert hw <= cfg.queue_depth(stage)

    def test_matches_trace_decisions(self, trained):
        """The threaded runtime and the trace builder agree frame by frame."""
        streams, zoo = trained
        cfg = FFSVAConfig(filter_degree=0.5, number_of_objects=1)
        stream = streams[0]
        trace = build_trace(stream, zoo, n_frames=200)
        pipe = ThreadedPipeline([stream], zoo, cfg)
        pipe.run(n_frames=200)
        survived_rt = {
            o.index for o in pipe.outcomes if o.stage == "ref"
        }
        survived_tr = set(np.flatnonzero(trace.cascade_pass(0.5, 1, 0)))
        assert survived_rt == survived_tr

    def test_filter_degree_one_filters_more(self, trained):
        streams, zoo = trained
        loose = ThreadedPipeline(streams, zoo, FFSVAConfig(filter_degree=0.0))
        loose.run(n_frames=200)
        strict = ThreadedPipeline(streams, zoo, FFSVAConfig(filter_degree=1.0))
        strict.run(n_frames=200)
        n_ref_loose = sum(1 for o in loose.outcomes if o.stage == "ref")
        n_ref_strict = sum(1 for o in strict.outcomes if o.stage == "ref")
        assert n_ref_strict <= n_ref_loose


class TestFFSVAFacade:
    def test_train_and_analyze(self, trained):
        streams, zoo = trained
        system = FFSVA(FFSVAConfig(batch_size=8), zoo=zoo)
        report = system.analyze_offline(streams[0], n_frames=200)
        assert report.metrics.frames_ingested == 200
        assert len(report.outcomes) == 200
        for ev in report.events:
            assert ev.stage == "ref"
            assert ev.ref_count >= system.config.number_of_objects

    def test_auto_trains_unknown_stream(self):
        system = FFSVA(FFSVAConfig(batch_size=4))
        stream = make_stream(jackson(), 450, tor=0.4, seed=71)
        report = system.analyze_offline(stream, n_frames=80)
        assert system.is_trained(stream)
        assert len(report.outcomes) == 80

    def test_simulation_entry_points(self, trained):
        streams, zoo = trained
        system = FFSVA(zoo=zoo)
        trace = system.trace(streams[0], n_frames=300)
        m_off = system.simulate_offline([trace])
        m_on = system.simulate_online([trace])
        m_base = system.simulate_baseline_offline([trace])
        assert m_off.frames_ingested == 300
        assert m_on.n_streams == 1
        assert m_base.frames_to_ref == 300
        # FFS-VA offline must beat the baseline on this low-TOR clip.
        assert m_off.throughput_fps > m_base.throughput_fps

    def test_events_match_oracle_threshold(self, trained):
        streams, zoo = trained
        system = FFSVA(FFSVAConfig(number_of_objects=2, batch_size=8), zoo=zoo)
        report = system.analyze_offline(streams[0], n_frames=150)
        for ev in report.events:
            assert ev.ref_count >= 2
