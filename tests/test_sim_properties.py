"""Property-based and edge-case tests for the pipeline simulator."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.config import FFSVAConfig
from repro.core.trace import FrameTrace
from repro.devices.costs import CostModel
from repro.sim import PipelineSimulator, simulate_offline, simulate_online

from tests.helpers import make_synth_trace


@st.composite
def trace_strategy(draw):
    n = draw(st.integers(10, 400))
    f1 = draw(st.floats(0.0, 1.0))
    f2 = draw(st.floats(0.0, 1.0)) * f1
    f3 = draw(st.floats(0.0, 1.0)) * f2
    seed = draw(st.integers(0, 2**16))
    return make_synth_trace(n, f1, f2, f3, seed=seed)


@st.composite
def config_strategy(draw):
    return FFSVAConfig(
        filter_degree=draw(st.sampled_from([0.0, 0.5, 1.0])),
        number_of_objects=draw(st.integers(1, 3)),
        relax=draw(st.integers(0, 1)),
        batch_policy=draw(st.sampled_from(["static", "feedback", "dynamic"])),
        batch_size=draw(st.integers(1, 20)),
        num_t_yolo=draw(st.integers(1, 6)),
        ref_overflow_to_storage=draw(st.booleans()),
    )


class TestSimulatorProperties:
    @given(trace=trace_strategy(), cfg=config_strategy())
    @settings(max_examples=40, deadline=None)
    def test_offline_conservation_and_completion(self, trace, cfg):
        m = simulate_offline([trace], cfg)
        m.check_conservation()
        # Every frame reaches a terminal state.
        done = m.frames_to_ref + sum(
            m.stages[s].filtered for s in ("sdd", "snm", "tyolo")
        )
        assert done == len(trace)
        # The reference model sees exactly the cascade survivors.
        expected = int(
            trace.cascade_pass(cfg.filter_degree, cfg.number_of_objects, cfg.relax).sum()
        )
        assert m.frames_to_ref == expected

    @given(trace=trace_strategy(), cfg=config_strategy())
    @settings(max_examples=25, deadline=None)
    def test_online_ingest_never_exceeds_offered(self, trace, cfg):
        m = simulate_online([trace], cfg)
        assert m.frames_ingested <= m.frames_offered
        assert m.ingest_ratio <= 1.0 + 1e-9
        m.check_conservation()

    @given(trace=trace_strategy())
    @settings(max_examples=20, deadline=None)
    def test_latency_at_least_service_time(self, trace):
        cfg = FFSVAConfig()
        m = simulate_offline([trace], cfg)
        if m.ref_latency.count:
            cm = CostModel()
            min_path = (
                cm.per_frame_time("sdd", 1)
                + cm.per_frame_time("snm", cfg.batch_size)
                + cm.per_frame_time("tyolo", cfg.num_t_yolo)
                + cm.service_time("ref", 1)
            )
            # Mean pipeline residence cannot be below the bare service path.
            assert m.ref_latency.mean >= 0.5 * min_path

    @given(
        n_streams=st.integers(1, 5),
        seed=st.integers(0, 100),
        policy=st.sampled_from(["static", "feedback", "dynamic"]),
    )
    @settings(max_examples=20, deadline=None)
    def test_multi_stream_offline_all_complete(self, n_streams, seed, policy):
        traces = [
            make_synth_trace(150, 0.8, 0.4, 0.2, seed=seed + i, stream_id=f"s{i}")
            for i in range(n_streams)
        ]
        cfg = FFSVAConfig(batch_policy=policy)
        m = simulate_offline(traces, cfg)
        assert m.frames_ingested == 150 * n_streams
        assert all(d == 150 for d in m.extra["per_stream_done"])

    @given(trace=trace_strategy())
    @settings(max_examples=15, deadline=None)
    def test_throughput_point_dominates_more_filtering(self, trace):
        """More aggressive filtering can only reduce reference-stage work."""
        loose = simulate_offline([trace], FFSVAConfig(filter_degree=0.0))
        strict = simulate_offline([trace], FFSVAConfig(filter_degree=1.0))
        assert strict.frames_to_ref <= loose.frames_to_ref


class TestSimulatorEdgeCases:
    def test_single_frame_trace(self):
        tr = make_synth_trace(1, 1.0, 1.0, 1.0)
        m = simulate_offline([tr])
        assert m.frames_to_ref == 1

    def test_single_frame_filtered(self):
        tr = make_synth_trace(1, 0.0, 0.0, 0.0)
        m = simulate_offline([tr])
        assert m.stages["sdd"].filtered == 1

    def test_batch_size_one(self):
        tr = make_synth_trace(200, 0.8, 0.4, 0.2, seed=1)
        m = simulate_offline([tr], FFSVAConfig(batch_size=1))
        m.check_conservation()
        assert m.extra["mean_snm_batch"] == pytest.approx(1.0)

    def test_num_t_yolo_larger_than_queue_depth(self):
        tr = make_synth_trace(300, 1.0, 0.9, 0.5, seed=2)
        cfg = FFSVAConfig(num_t_yolo=8)  # tyolo queue depth is only 2
        m = simulate_offline([tr], cfg)
        m.check_conservation()
        assert m.frames_to_ref == int(tr.cascade_pass(cfg.filter_degree).sum())

    def test_bounded_ref_queue_no_deadlock_under_saturation(self):
        # Heavy ref load with the overflow valve CLOSED must still drain.
        tr = make_synth_trace(600, 1.0, 1.0, 1.0, seed=3)
        cfg = FFSVAConfig(ref_overflow_to_storage=False)
        m = simulate_offline([tr], cfg)
        assert m.frames_to_ref == 600
        assert m.queue_high_water["ref"] <= cfg.queue_depth("ref")

    def test_overflow_valve_decouples_filters_from_ref(self):
        """With overflow on, filter progress does not wait for the slow ref."""
        tr = make_synth_trace(600, 1.0, 1.0, 1.0, seed=4, fps=30.0)
        on = simulate_online([tr], FFSVAConfig(ref_overflow_to_storage=True))
        off = simulate_online([tr], FFSVAConfig(ref_overflow_to_storage=False))
        assert on.ingest_ratio >= off.ingest_ratio

    def test_mixed_length_traces(self):
        traces = [
            make_synth_trace(100, 0.8, 0.4, 0.2, seed=5, stream_id="short"),
            make_synth_trace(400, 0.8, 0.4, 0.2, seed=6, stream_id="long"),
        ]
        m = simulate_offline(traces)
        assert m.extra["per_stream_done"] == [100, 400]

    def test_zero_length_trace_rejected_gracefully(self):
        tr = FrameTrace(
            "empty", "car", 30.0,
            sdd_dist=np.empty(0),
            sdd_threshold=0.5,
            snm_prob=np.empty(0, dtype=np.float32),
            c_low=0.2, c_high=0.8,
            tyolo_count=np.empty(0, dtype=np.int64),
            gt_count=np.empty(0, dtype=np.int64),
        )
        m = simulate_offline([tr])
        assert m.frames_ingested == 0

    def test_horizon_truncation_flagged(self):
        # A hopelessly overloaded run within a tiny horizon gets truncated.
        traces = [
            make_synth_trace(600, 1.0, 1.0, 1.0, seed=i, stream_id=f"s{i}")
            for i in range(10)
        ]
        sim = PipelineSimulator(traces, FFSVAConfig(), online=True)
        m = sim.run(max_virtual_time=3.0)
        assert m.extra["truncated"]
        assert m.duration <= 3.0 + 1e-9
