"""Tests for IoU matching, PR curves, AP, and the mAP harness."""

import numpy as np
import pytest

from repro.analytics import (
    average_precision,
    evaluate_map,
    iou,
    match_detections,
    precision_recall,
)
from repro.analytics.detection_eval import PRPoint
from repro.models import ReferenceModel, TYolo
from repro.models.griddet import Detection
from repro.video import GroundTruthObject, jackson, make_stream


def det(x0, y0, x1, y1, conf=0.9, kind="car"):
    return Detection(x0, y0, x1, y1, conf, kind)


def gt(cx, cy, w, h, kind="car"):
    return GroundTruthObject(kind, cx, cy, w, h, visibility=1.0)


class TestIoU:
    def test_identical_boxes(self):
        assert iou((0, 0, 10, 10), (0, 0, 10, 10)) == pytest.approx(1.0)

    def test_disjoint_boxes(self):
        assert iou((0, 0, 5, 5), (6, 6, 10, 10)) == 0.0

    def test_half_overlap(self):
        assert iou((0, 0, 10, 10), (5, 0, 15, 10)) == pytest.approx(1 / 3)

    def test_degenerate_box(self):
        assert iou((0, 0, 0, 0), (0, 0, 10, 10)) == 0.0


class TestMatching:
    def test_perfect_match(self):
        tp, n = match_detections([det(10, 10, 30, 30)], [gt(20, 20, 20, 20)])
        assert tp == [True]
        assert n == 1

    def test_no_double_matching(self):
        detections = [det(10, 10, 30, 30, conf=0.9), det(11, 11, 31, 31, conf=0.8)]
        tp, n = match_detections(detections, [gt(20, 20, 20, 20)])
        assert tp == [True, False]  # highest confidence wins the only truth
        assert n == 1

    def test_low_iou_not_matched(self):
        tp, _ = match_detections(
            [det(100, 100, 120, 120)], [gt(20, 20, 20, 20)]
        )
        assert tp == [False]

    def test_clipping_to_frame(self):
        # Truth centered off-frame; its clipped box is what the detector saw.
        truth = GroundTruthObject("car", cx=-5, cy=20, w=30, h=20)
        detection = det(0, 10, 10, 30)
        tp, _ = match_detections([detection], [truth], frame_hw=(60, 80), iou_threshold=0.3)
        assert tp == [True]


class TestPRandAP:
    def test_perfect_detector(self):
        scored = [(0.9, True), (0.8, True)]
        points = precision_recall(scored, n_truth=2)
        assert points[-1].precision == 1.0
        assert points[-1].recall == 1.0
        assert average_precision(points) == pytest.approx(1.0)

    def test_useless_detector(self):
        scored = [(0.9, False), (0.8, False)]
        points = precision_recall(scored, n_truth=5)
        assert average_precision(points) == 0.0

    def test_precision_drops_with_false_positives(self):
        scored = [(0.9, True), (0.8, False), (0.7, True)]
        points = precision_recall(scored, n_truth=2)
        assert points[0].precision == 1.0
        assert points[1].precision == pytest.approx(0.5)
        assert points[2].recall == 1.0

    def test_empty_truth(self):
        assert precision_recall([(0.9, True)], 0) == []
        assert average_precision([]) == 0.0

    def test_ap_monotone_in_quality(self):
        good = precision_recall([(0.9, True), (0.8, True), (0.7, False)], 2)
        bad = precision_recall([(0.9, False), (0.8, True), (0.7, True)], 2)
        assert average_precision(good) > average_precision(bad)


class TestEvaluateMap:
    @pytest.fixture(scope="class")
    def stream(self):
        return make_stream(jackson(), 600, tor=0.4, seed=111)

    def test_reference_model_scores_reasonably(self, stream):
        result = evaluate_map(
            ReferenceModel(), stream, np.arange(0, 600, 10)
        )
        assert 0.3 < result["map"] <= 1.0
        assert result["n_truth"]["car"] > 0

    def test_reference_beats_tyolo(self, stream):
        """The model-tier ordering the paper's Section 2.2 table encodes."""
        ref = evaluate_map(ReferenceModel(), stream, np.arange(0, 600, 10))
        ty = evaluate_map(TYolo(), stream, np.arange(0, 600, 10))
        assert ref["map"] >= ty["map"] - 0.05
