"""Tests for FFSVAConfig validation and the batch-formation policies."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batching import batch_wait_bound, decide_batch
from repro.core.config import FFSVAConfig


class TestFFSVAConfig:
    def test_defaults_match_paper(self):
        cfg = FFSVAConfig()
        assert cfg.queue_depth("sdd") == 2
        assert cfg.queue_depth("snm") == 10
        assert cfg.queue_depth("tyolo") == 2
        assert cfg.admission_tyolo_fps == 140.0
        assert cfg.admission_window == 5.0
        assert cfg.stream_fps == 30.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"filter_degree": -0.1},
            {"filter_degree": 1.1},
            {"number_of_objects": 0},
            {"relax": -1},
            {"batch_policy": "magic"},
            {"batch_size": 0},
            {"num_t_yolo": 0},
            {"stream_fps": 0},
            {"queue_depths": {"sdd": 2, "snm": 10, "tyolo": 2}},  # missing ref
            {"queue_depths": {"sdd": 0, "snm": 10, "tyolo": 2, "ref": 4}},
            {"mosaic_canvas": 12},  # smaller than the 13-cell detector grid
            {"mosaic_gutter": 0},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ValueError):
            FFSVAConfig(**kwargs)

    def test_mosaic_promotes_tyolo_to_fused(self):
        from repro.core.pipeline import FUSED, SHARED_RR, TYOLO

        base = FFSVAConfig().graph()[TYOLO]
        assert base.fan_in == SHARED_RR and not base.mosaic
        spec = FFSVAConfig(tyolo_mosaic=True).graph()[TYOLO]
        assert spec.fan_in == FUSED
        assert spec.mosaic
        assert spec.batch.kind == "config"

    def test_with_returns_modified_copy(self):
        base = FFSVAConfig()
        mod = base.with_(filter_degree=1.0)
        assert mod.filter_degree == 1.0
        assert base.filter_degree == 0.5
        assert mod.batch_size == base.batch_size

    def test_bounded_queues_by_policy(self):
        assert FFSVAConfig(batch_policy="dynamic").bounded_queues
        assert FFSVAConfig(batch_policy="feedback").bounded_queues
        assert not FFSVAConfig(batch_policy="static").bounded_queues


class TestDecideBatch:
    def test_empty_queue_waits(self):
        for policy in ("static", "feedback", "dynamic"):
            assert decide_batch(policy, 0, 8, 10) == 0

    def test_static_waits_for_full_batch(self):
        assert decide_batch("static", 7, 8, None) == 0
        assert decide_batch("static", 8, 8, None) == 8
        assert decide_batch("static", 20, 8, None) == 8

    def test_feedback_capped_by_queue_depth(self):
        # BatchSize 16 over a depth-10 queue: target is 10.
        assert decide_batch("feedback", 9, 16, 10) == 0
        assert decide_batch("feedback", 10, 16, 10) == 10

    def test_feedback_full_batch_when_depth_allows(self):
        assert decide_batch("feedback", 8, 8, 10) == 8
        assert decide_batch("feedback", 7, 8, 10) == 0

    def test_dynamic_takes_whats_there(self):
        assert decide_batch("dynamic", 3, 8, 10) == 3
        assert decide_batch("dynamic", 12, 8, 10) == 8

    def test_eof_flushes_partial(self):
        for policy in ("static", "feedback", "dynamic"):
            assert decide_batch(policy, 5, 8, 10, eof=True) == 5

    def test_eof_respects_batch_cap(self):
        assert decide_batch("static", 20, 8, None, eof=True) == 8

    def test_rejects_bad_args(self):
        with pytest.raises(ValueError):
            decide_batch("dynamic", -1, 8, 10)
        with pytest.raises(ValueError):
            decide_batch("dynamic", 1, 0, 10)
        with pytest.raises(ValueError):
            decide_batch("nope", 1, 8, 10)

    @given(
        policy=st.sampled_from(["static", "feedback", "dynamic"]),
        queue_len=st.integers(0, 50),
        batch=st.integers(1, 32),
        depth=st.one_of(st.none(), st.integers(1, 32)),
        eof=st.booleans(),
    )
    @settings(max_examples=200, deadline=None)
    def test_property_never_over_pops(self, policy, queue_len, batch, depth, eof):
        n = decide_batch(policy, queue_len, batch, depth, eof=eof)
        assert 0 <= n <= min(queue_len, batch)
        if queue_len > 0 and eof:
            assert n > 0  # flush guarantees progress at end of stream

    @given(queue_len=st.integers(1, 50), batch=st.integers(1, 32))
    @settings(max_examples=100, deadline=None)
    def test_property_dynamic_always_progresses(self, queue_len, batch):
        assert decide_batch("dynamic", queue_len, batch, 10) > 0


class TestBatchWaitBound:
    def test_dynamic_has_no_wait(self):
        cfg = FFSVAConfig(batch_policy="dynamic", batch_size=30)
        assert batch_wait_bound(cfg, 30.0) == 0.0

    def test_static_wait_grows_with_batch(self):
        small = batch_wait_bound(FFSVAConfig(batch_policy="static", batch_size=5), 30.0)
        large = batch_wait_bound(FFSVAConfig(batch_policy="static", batch_size=30), 30.0)
        assert large > small

    def test_feedback_capped_by_depth(self):
        cfg = FFSVAConfig(batch_policy="feedback", batch_size=30)
        capped = batch_wait_bound(cfg, 30.0)
        assert capped == pytest.approx((10 - 1) / 30.0)

    def test_rejects_bad_fps(self):
        with pytest.raises(ValueError):
            batch_wait_bound(FFSVAConfig(), 0.0)
